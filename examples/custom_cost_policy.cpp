// Administrator extension points: the paper's Section V provides "an
// interface for data center administrators to define their own cost
// functions based on their various policies", and Algorithm 1 evaluates "a
// more general constraint in each step". This example exercises both:
//
//   * a custom placement constraint (anti-affinity: at most 3 VMs of the
//     same tenant per server), and
//   * a custom migration cost policy (allow a migration only when its
//     expected power saving beats a per-gigabyte network cost).
//
//   ./build/examples/custom_cost_policy
#include <cstdio>
#include <string>

#include "core/power_optimizer.hpp"

namespace {

using namespace vdc;

/// Tenant of a VM, encoded in its id for this example: tenant = id % 4.
int tenant_of(consolidate::VmId id) { return static_cast<int>(id % 4); }

class TenantAntiAffinity final : public consolidate::PlacementConstraint {
 public:
  [[nodiscard]] bool admits(
      const consolidate::ServerSnapshot&,
      std::span<const consolidate::VmSnapshot* const> hosted) const override {
    int per_tenant[4] = {0, 0, 0, 0};
    for (const consolidate::VmSnapshot* vm : hosted) {
      if (++per_tenant[tenant_of(vm->id)] > 3) return false;
    }
    return true;
  }
  [[nodiscard]] std::string name() const override { return "tenant-anti-affinity"; }
};

class PayForBandwidthPolicy final : public consolidate::MigrationCostPolicy {
 public:
  explicit PayForBandwidthPolicy(double watts_per_gb) : watts_per_gb_(watts_per_gb) {}
  [[nodiscard]] bool allow(const consolidate::DataCenterSnapshot& snapshot,
                           const consolidate::MigrationProposal& p) const override {
    const double gb = snapshot.vm(p.vm).memory_mb / 1024.0;
    const double cost_w = gb * watts_per_gb_;
    std::printf("  proposal vm%-3u %u->%u  benefit %.1f W, cost %.1f W -> %s\n", p.vm,
                p.from, p.to, p.estimated_benefit_w, cost_w,
                p.estimated_benefit_w >= cost_w ? "allow" : "reject");
    return p.estimated_benefit_w >= cost_w;
  }
  [[nodiscard]] std::string name() const override { return "pay-for-bandwidth"; }

 private:
  double watts_per_gb_;
};

}  // namespace

int main() {
  using namespace vdc;
  // A scattered data center: 12 VMs across six inefficient servers, with
  // two efficient quads asleep.
  datacenter::Cluster cluster;
  for (int i = 0; i < 2; ++i) {
    const auto id = cluster.add_server(datacenter::Server(
        datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(), 32768.0));
    cluster.server(id).set_state(datacenter::ServerState::kSleeping);
  }
  for (int i = 0; i < 6; ++i) {
    cluster.add_server(datacenter::Server(datacenter::dual_core_1_5ghz(),
                                          datacenter::power_model_dual_1_5ghz(), 12288.0));
  }
  for (datacenter::VmId v = 0; v < 12; ++v) {
    datacenter::Vm vm;
    vm.name = "tenant" + std::to_string(v % 4) + "-vm" + std::to_string(v);
    vm.cpu_demand_ghz = 0.6 + 0.05 * static_cast<double>(v % 5);
    vm.memory_mb = 1024.0 * static_cast<double>(1 + v % 3);
    cluster.add_vm(vm, 2 + v % 6);
  }
  std::printf("before: %zu active servers, %.1f W\n", cluster.active_server_count(),
              cluster.arbitrate_and_power_w(true));

  core::OptimizerConfig opt_config;
  opt_config.algorithm = core::ConsolidationAlgorithm::kIpac;
  opt_config.utilization_target = 0.9;
  core::PowerOptimizer optimizer(opt_config, std::make_shared<PayForBandwidthPolicy>(8.0));
  optimizer.add_constraint(std::make_unique<TenantAntiAffinity>());

  std::printf("optimizing (cost policy decisions below):\n");
  const core::OptimizationOutcome outcome = optimizer.optimize(cluster, 0.0);
  std::printf("after: %zu active servers, %.1f W, %zu migrations\n",
              cluster.active_server_count(), cluster.arbitrate_and_power_w(true),
              outcome.migrations);

  // Show the anti-affinity held.
  for (datacenter::ServerId s = 0; s < cluster.server_count(); ++s) {
    int per_tenant[4] = {0, 0, 0, 0};
    for (const datacenter::VmId vm : cluster.vms_on(s)) ++per_tenant[tenant_of(vm)];
    for (int t = 0; t < 4; ++t) {
      if (per_tenant[t] > 3) {
        std::printf("ANTI-AFFINITY VIOLATED on server %u\n", s);
        return 1;
      }
    }
  }
  std::printf("tenant anti-affinity satisfied everywhere.\n");
  return 0;
}
