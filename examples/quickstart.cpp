// Quickstart: identify a response-time model for a two-tier application,
// attach an MPC response-time controller, and watch the 90-percentile
// response time converge to the 1000 ms set point.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "control/stability.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace vdc;

  // 1. A two-tier (web + db) application under a closed workload of 40
  //    concurrent clients — the paper's RUBBoS setup.
  const app::AppConfig app_config = app::default_two_tier_app("demo", /*seed=*/1,
                                                              /*concurrency=*/40);

  // 2. System identification: excite the staging copy, fit an ARX model.
  core::SysIdExperimentConfig sysid;
  const core::SysIdExperimentResult identified = core::identify_app_model(app_config, sysid);
  std::printf("identified ARX model: na=%zu nb=%zu nu=%zu  R^2=%.3f\n",
              identified.model.na, identified.model.nb, identified.model.nu,
              identified.r_squared);

  // 3. Controller tuning; verify nominal closed-loop stability first.
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;  // 1000 ms
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;
  const control::StabilityReport stability =
      control::analyze_closed_loop(identified.model, mpc);
  std::printf("closed loop: output decay rate=%.3f  stable=%s  steady-state=%.0f ms\n",
              stability.output_decay_rate, stability.stable ? "yes" : "no",
              stability.steady_state_output * 1000.0);

  // 4. Run the live application under control.
  sim::Simulation sim;
  app::MultiTierApp live(sim, app_config);
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.6);
  live.set_allocations(initial);
  live.start();

  core::ResponseTimeController controller(identified.model, mpc, initial);
  std::printf("\n%8s %14s %12s %12s\n", "time(s)", "p90 (ms)", "web (GHz)", "db (GHz)");
  for (int k = 1; k <= 60; ++k) {
    sim.run_until(4.0 * k);
    const auto stats = monitor.harvest();
    const std::vector<double> demands = controller.control(stats);
    live.set_allocations(demands);
    if (k % 5 == 0) {
      std::printf("%8.0f %14.0f %12.3f %12.3f\n", sim.now(),
                  controller.last_measurement() * 1000.0, demands[0], demands[1]);
    }
  }
  std::printf("\nfinal p90 = %.0f ms (set point 1000 ms)\n",
              controller.last_measurement() * 1000.0);
  return 0;
}
