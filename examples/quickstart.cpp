// Quickstart: identify a response-time model for a two-tier application,
// attach an MPC response-time controller, and watch the 90-percentile
// response time converge to the 1000 ms set point.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "app/multi_tier_app.hpp"
#include "control/stability.hpp"
#include "core/app_stack.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"
#include "telemetry/recorder.hpp"

int main() {
  using namespace vdc;

  // 1. A two-tier (web + db) application under a closed workload of 40
  //    concurrent clients — the paper's RUBBoS setup.
  const app::AppConfig app_config = app::default_two_tier_app("demo", /*seed=*/1,
                                                              /*concurrency=*/40);

  // 2. System identification: excite the staging copy, fit an ARX model.
  core::SysIdExperimentConfig sysid;
  const core::SysIdExperimentResult identified = core::identify_app_model(app_config, sysid);
  std::printf("identified ARX model: na=%zu nb=%zu nu=%zu  R^2=%.3f\n",
              identified.model.na, identified.model.nb, identified.model.nu,
              identified.r_squared);

  // 3. Controller tuning; verify nominal closed-loop stability first.
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;  // 1000 ms
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;
  const control::StabilityReport stability =
      control::analyze_closed_loop(identified.model, mpc);
  std::printf("closed loop: output decay rate=%.3f  stable=%s  steady-state=%.0f ms\n",
              stability.output_decay_rate, stability.stable ? "yes" : "no",
              stability.steady_state_output * 1000.0);

  // 4. Run the live application under control. An AppStack bundles the
  //    app + monitor + controller and ticks itself every control period;
  //    the bound telemetry recorder keeps the per-period series.
  sim::Simulation sim;
  core::AppStackConfig stack;
  stack.app = app_config;
  stack.mpc = mpc;
  core::AppStack live(sim, identified.model, stack);
  telemetry::Recorder recorder;
  live.bind_recorder(&recorder, core::response_series_name(0),
                     core::allocation_series_name(0));
  live.start_control_loop();
  sim.run_until(240.0);  // 60 control periods

  const auto& p90 = recorder.values(core::response_series_name(0));
  const auto& alloc = recorder.rows(core::allocation_series_name(0));
  std::printf("\n%8s %14s %12s %12s\n", "time(s)", "p90 (ms)", "web (GHz)", "db (GHz)");
  for (std::size_t k = 4; k < p90.size(); k += 5) {
    std::printf("%8.0f %14.0f %12.3f %12.3f\n", (static_cast<double>(k) + 1.0) * 4.0,
                p90[k] * 1000.0, alloc[k][0], alloc[k][1]);
  }
  std::printf("\nfinal p90 = %.0f ms (set point 1000 ms)\n",
              live.last_measurement() * 1000.0);
  return 0;
}
