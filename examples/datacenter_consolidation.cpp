// Data-center consolidation: run IPAC and the pMapper baseline on a
// trace-driven data center (the paper's Section VI-B environment, scaled
// to 300 VMs so the example finishes in seconds) and compare energy,
// migrations and SLA risk.
//
//   ./build/examples/datacenter_consolidation
#include <cstdio>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace vdc;

  // 1. Generate the utilization trace (stand-in for the paper's 5,415-server
  //    proprietary trace): one week at 15-minute resolution.
  trace::SyntheticTraceOptions trace_options;
  trace_options.servers = 300;
  const trace::UtilizationTrace trace = trace::generate_synthetic_trace(trace_options);
  std::printf("trace: %zu VMs x %zu samples, mean utilization %.1f%%\n",
              trace.server_count(), trace.sample_count(), 100.0 * trace.global_mean());

  // 2. Simulate one week under each optimizer.
  const core::TraceDrivenSimulator simulator(trace);
  const auto run = [&](core::ConsolidationAlgorithm algorithm, bool dvfs) {
    core::TraceSimConfig config;
    config.num_vms = 300;
    config.pool_size = 400;
    config.algorithm = algorithm;
    config.dvfs = dvfs;
    return simulator.run(config);
  };

  std::printf("\n%-22s %14s %12s %14s %12s\n", "optimizer", "energy/VM (Wh)", "migrations",
              "peak servers", "overload");
  const auto show = [](const char* name, const core::TraceSimResult& r) {
    std::printf("%-22s %14.1f %12zu %14zu %11.2f%%\n", name, r.energy_wh_per_vm,
                r.migrations, r.peak_active_servers, 100.0 * r.overload_fraction);
  };
  const core::TraceSimResult ipac = run(core::ConsolidationAlgorithm::kIpac, true);
  const core::TraceSimResult pmapper = run(core::ConsolidationAlgorithm::kPMapper, false);
  const core::TraceSimResult none = run(core::ConsolidationAlgorithm::kNone, true);
  show("IPAC + DVFS", ipac);
  show("pMapper (baseline)", pmapper);
  show("no consolidation", none);

  std::printf("\nIPAC saves %.1f%% energy per VM versus pMapper on this data center.\n",
              100.0 * (1.0 - ipac.energy_wh_per_vm / pmapper.energy_wh_per_vm));
  return 0;
}
