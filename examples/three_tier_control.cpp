// Three-tier MIMO control: a web + application + database stack (three VMs)
// under one controller — the genuinely multi-input case the paper's MIMO
// formulation exists for. Also demonstrates the deployment workflow:
//
//   identify -> auto-tune (tune_mpc) -> verify stability -> run.
//
//   ./build/examples/three_tier_control
#include <cstdio>

#include "app/multi_tier_app.hpp"
#include "control/tuning.hpp"
#include "core/app_stack.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"
#include "telemetry/recorder.hpp"
#include "util/statistics.hpp"

int main() {
  using namespace vdc;

  // 1. A three-tier application: web front end, application server, DB.
  app::AppConfig config;
  config.name = "shop";
  config.seed = 11;
  config.concurrency = 40;
  config.think_time_s = 1.0;
  config.tiers = {
      app::TierConfig{.name = "web", .mean_demand_gcycles = 0.006, .pareto_alpha = 2.2,
                      .initial_allocation_ghz = 0.8},
      app::TierConfig{.name = "app", .mean_demand_gcycles = 0.010, .pareto_alpha = 2.2,
                      .initial_allocation_ghz = 0.8},
      app::TierConfig{.name = "db", .mean_demand_gcycles = 0.008, .pareto_alpha = 2.2,
                      .initial_allocation_ghz = 0.8},
  };

  // 2. Identify the 3-input ARX model on a staging copy.
  core::SysIdExperimentConfig sysid;
  sysid.periods = 500;
  const core::SysIdExperimentResult identified = core::identify_app_model(config, sysid);
  std::printf("identified 3-input model, R^2 = %.2f, dc gains = [%.2f %.2f %.2f]\n",
              identified.r_squared, identified.model.dc_gain()[0],
              identified.model.dc_gain()[1], identified.model.dc_gain()[2]);

  // 3. Auto-tune the MPC against the nominal stability analysis.
  control::TuningOptions tuning;
  tuning.base.prediction_horizon = 12;
  tuning.base.period_s = 4.0;
  tuning.base.setpoint = 1.0;
  tuning.base.c_min = {0.15};
  tuning.base.c_max = {1.5};
  tuning.base.delta_max = 0.3;
  tuning.base.disturbance_gain = 0.5;
  const control::TuningResult tuned = control::tune_mpc(identified.model, tuning);
  if (!tuned.found) {
    std::printf("no stable tuning found (evaluated %zu candidates)\n", tuned.evaluated);
    return 1;
  }
  std::printf("tuned: M=%zu, R=%.2f, Tref=%.0f s  (decay %.3f/period, %zu/%zu stable)\n",
              tuned.config.control_horizon, tuned.config.r_weight[0], tuned.config.tref_s,
              tuned.report.output_decay_rate, tuned.stable_candidates, tuned.evaluated);

  // 4. Control the live stack to a 1000 ms 90-percentile response time.
  //    An AppStack bundles the plant + monitor + controller; the bound
  //    recorder keeps the per-period series for the report below.
  sim::Simulation sim;
  core::AppStackConfig stack;
  stack.app = config;
  stack.mpc = tuned.config;
  stack.initial_allocation_ghz = 0.8;
  core::AppStack live(sim, identified.model, stack);
  telemetry::Recorder recorder;
  live.bind_recorder(&recorder, core::response_series_name(0),
                     core::allocation_series_name(0));
  live.start_control_loop();
  sim.run_until(800.0);  // 200 control periods

  const auto& p90 = recorder.values(core::response_series_name(0));
  const auto& alloc = recorder.rows(core::allocation_series_name(0));
  std::printf("\n%8s %12s %8s %8s %8s\n", "time(s)", "p90 (ms)", "web", "app", "db");
  util::RunningStats tail;
  for (std::size_t k = 0; k < p90.size(); ++k) {
    if ((k + 1) % 25 == 0) {
      std::printf("%8.0f %12.0f %8.2f %8.2f %8.2f\n", (static_cast<double>(k) + 1.0) * 4.0,
                  p90[k] * 1000.0, alloc[k][0], alloc[k][1], alloc[k][2]);
    }
    if (k >= 60) tail.add(p90[k]);
  }
  std::printf("\nsteady state: mean p90 = %.0f ms (set point 1000 ms), std %.0f ms\n",
              tail.mean() * 1000.0, tail.stddev() * 1000.0);
  std::printf("SLA infeasible flag: %s\n",
              live.controller()->sla_infeasible() ? "yes" : "no");
  return std::abs(tail.mean() - 1.0) < 0.2 ? 0 : 1;
}
