// Surge control: the paper's Figure-3 scenario as a narrative example.
//
// Eight two-tier applications run on a four-server virtualized testbed,
// each under its own MPC response-time controller. At t=600 s the workload
// of App5 doubles ("breaking news"); the controller re-allocates CPU to
// its two VMs and the 90-percentile response time converges back to the
// 1000 ms SLA, while cluster power rises only slightly.
//
//   ./build/examples/surge_control
#include <cstdio>

#include "core/testbed.hpp"

int main() {
  using namespace vdc;

  core::TestbedConfig config;  // 8 apps, 4 servers, 1000 ms set point
  std::printf("building testbed (8 apps x 2 tiers on 4 servers) ...\n");
  core::Testbed testbed(config);
  std::printf("identified shared ARX model, R^2 = %.2f\n\n", testbed.model_r_squared());

  constexpr std::size_t kApp5 = 4;
  std::printf("%8s %16s %14s %16s\n", "time(s)", "App5 p90 (ms)", "power (W)",
              "App5 CPU (GHz)");
  const auto report = [&](double until) {
    testbed.run_until(until);
    const auto& rt = testbed.response_series(kApp5);
    const auto& power = testbed.power_series();
    const auto& alloc = testbed.allocation_series(kApp5);
    std::printf("%8.0f %16.0f %14.1f %10.2f+%.2f\n", testbed.now(), rt.back() * 1000.0,
                power.back(), alloc.back()[0], alloc.back()[1]);
  };

  for (double t = 100.0; t <= 600.0; t += 100.0) report(t);
  std::printf("--- workload of App5 doubles (concurrency 40 -> 80) ---\n");
  testbed.set_concurrency(kApp5, 80);
  for (double t = 700.0; t <= 1200.0; t += 100.0) report(t);
  std::printf("--- workload returns to normal ---\n");
  testbed.set_concurrency(kApp5, 40);
  for (double t = 1300.0; t <= 1500.0; t += 100.0) report(t);

  std::printf("\nsteady-state summary (after the first 100 s):\n");
  for (std::size_t i = 0; i < testbed.app_count(); ++i) {
    const util::RunningStats s = testbed.response_stats_after(i, 100.0);
    std::printf("  app%zu: mean p90 = %4.0f ms (std %3.0f)\n", i + 1, s.mean() * 1000.0,
                s.stddev() * 1000.0);
  }
  return 0;
}
