file(REMOVE_RECURSE
  "CMakeFiles/vdc_dcsim.dir/vdc_dcsim.cpp.o"
  "CMakeFiles/vdc_dcsim.dir/vdc_dcsim.cpp.o.d"
  "vdc_dcsim"
  "vdc_dcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_dcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
