# Empty compiler generated dependencies file for vdc_dcsim.
# This may be replaced when dependencies are built.
