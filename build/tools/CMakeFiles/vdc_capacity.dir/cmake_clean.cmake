file(REMOVE_RECURSE
  "CMakeFiles/vdc_capacity.dir/vdc_capacity.cpp.o"
  "CMakeFiles/vdc_capacity.dir/vdc_capacity.cpp.o.d"
  "vdc_capacity"
  "vdc_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
