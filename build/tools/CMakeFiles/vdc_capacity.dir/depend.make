# Empty dependencies file for vdc_capacity.
# This may be replaced when dependencies are built.
