file(REMOVE_RECURSE
  "CMakeFiles/vdc_trace_tool.dir/vdc_trace_tool.cpp.o"
  "CMakeFiles/vdc_trace_tool.dir/vdc_trace_tool.cpp.o.d"
  "vdc_trace_tool"
  "vdc_trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
