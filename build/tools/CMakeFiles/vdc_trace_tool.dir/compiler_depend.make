# Empty compiler generated dependencies file for vdc_trace_tool.
# This may be replaced when dependencies are built.
