# Empty dependencies file for vdc_consolidate.
# This may be replaced when dependencies are built.
