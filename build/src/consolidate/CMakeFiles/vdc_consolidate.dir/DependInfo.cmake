
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consolidate/constraints.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/constraints.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/constraints.cpp.o.d"
  "/root/repo/src/consolidate/cost_policy.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/cost_policy.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/cost_policy.cpp.o.d"
  "/root/repo/src/consolidate/ffd.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/ffd.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/ffd.cpp.o.d"
  "/root/repo/src/consolidate/ipac.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/ipac.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/ipac.cpp.o.d"
  "/root/repo/src/consolidate/minimum_slack.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/minimum_slack.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/minimum_slack.cpp.o.d"
  "/root/repo/src/consolidate/pac.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/pac.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/pac.cpp.o.d"
  "/root/repo/src/consolidate/pmapper.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/pmapper.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/pmapper.cpp.o.d"
  "/root/repo/src/consolidate/snapshot.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/snapshot.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/snapshot.cpp.o.d"
  "/root/repo/src/consolidate/working_placement.cpp" "src/consolidate/CMakeFiles/vdc_consolidate.dir/working_placement.cpp.o" "gcc" "src/consolidate/CMakeFiles/vdc_consolidate.dir/working_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacenter/CMakeFiles/vdc_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
