file(REMOVE_RECURSE
  "libvdc_consolidate.a"
)
