file(REMOVE_RECURSE
  "CMakeFiles/vdc_consolidate.dir/constraints.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/constraints.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/cost_policy.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/cost_policy.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/ffd.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/ffd.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/ipac.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/ipac.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/minimum_slack.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/minimum_slack.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/pac.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/pac.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/pmapper.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/pmapper.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/snapshot.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/snapshot.cpp.o.d"
  "CMakeFiles/vdc_consolidate.dir/working_placement.cpp.o"
  "CMakeFiles/vdc_consolidate.dir/working_placement.cpp.o.d"
  "libvdc_consolidate.a"
  "libvdc_consolidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_consolidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
