# Empty compiler generated dependencies file for vdc_core.
# This may be replaced when dependencies are built.
