file(REMOVE_RECURSE
  "CMakeFiles/vdc_core.dir/overload_guard.cpp.o"
  "CMakeFiles/vdc_core.dir/overload_guard.cpp.o.d"
  "CMakeFiles/vdc_core.dir/power_optimizer.cpp.o"
  "CMakeFiles/vdc_core.dir/power_optimizer.cpp.o.d"
  "CMakeFiles/vdc_core.dir/response_time_controller.cpp.o"
  "CMakeFiles/vdc_core.dir/response_time_controller.cpp.o.d"
  "CMakeFiles/vdc_core.dir/sysid_experiment.cpp.o"
  "CMakeFiles/vdc_core.dir/sysid_experiment.cpp.o.d"
  "CMakeFiles/vdc_core.dir/testbed.cpp.o"
  "CMakeFiles/vdc_core.dir/testbed.cpp.o.d"
  "CMakeFiles/vdc_core.dir/trace_sim.cpp.o"
  "CMakeFiles/vdc_core.dir/trace_sim.cpp.o.d"
  "libvdc_core.a"
  "libvdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
