file(REMOVE_RECURSE
  "libvdc_core.a"
)
