
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/overload_guard.cpp" "src/core/CMakeFiles/vdc_core.dir/overload_guard.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/overload_guard.cpp.o.d"
  "/root/repo/src/core/power_optimizer.cpp" "src/core/CMakeFiles/vdc_core.dir/power_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/power_optimizer.cpp.o.d"
  "/root/repo/src/core/response_time_controller.cpp" "src/core/CMakeFiles/vdc_core.dir/response_time_controller.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/response_time_controller.cpp.o.d"
  "/root/repo/src/core/sysid_experiment.cpp" "src/core/CMakeFiles/vdc_core.dir/sysid_experiment.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/sysid_experiment.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/core/CMakeFiles/vdc_core.dir/testbed.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/testbed.cpp.o.d"
  "/root/repo/src/core/trace_sim.cpp" "src/core/CMakeFiles/vdc_core.dir/trace_sim.cpp.o" "gcc" "src/core/CMakeFiles/vdc_core.dir/trace_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/vdc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/vdc_control.dir/DependInfo.cmake"
  "/root/repo/build/src/consolidate/CMakeFiles/vdc_consolidate.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/vdc_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vdc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vdc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
