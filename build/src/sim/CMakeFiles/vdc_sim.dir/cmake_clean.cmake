file(REMOVE_RECURSE
  "CMakeFiles/vdc_sim.dir/ps_queue.cpp.o"
  "CMakeFiles/vdc_sim.dir/ps_queue.cpp.o.d"
  "CMakeFiles/vdc_sim.dir/simulation.cpp.o"
  "CMakeFiles/vdc_sim.dir/simulation.cpp.o.d"
  "libvdc_sim.a"
  "libvdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
