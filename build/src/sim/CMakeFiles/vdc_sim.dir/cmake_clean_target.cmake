file(REMOVE_RECURSE
  "libvdc_sim.a"
)
