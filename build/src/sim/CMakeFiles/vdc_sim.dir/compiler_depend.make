# Empty compiler generated dependencies file for vdc_sim.
# This may be replaced when dependencies are built.
