# Empty dependencies file for vdc_app.
# This may be replaced when dependencies are built.
