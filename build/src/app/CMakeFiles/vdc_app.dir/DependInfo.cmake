
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/monitor.cpp" "src/app/CMakeFiles/vdc_app.dir/monitor.cpp.o" "gcc" "src/app/CMakeFiles/vdc_app.dir/monitor.cpp.o.d"
  "/root/repo/src/app/multi_tier_app.cpp" "src/app/CMakeFiles/vdc_app.dir/multi_tier_app.cpp.o" "gcc" "src/app/CMakeFiles/vdc_app.dir/multi_tier_app.cpp.o.d"
  "/root/repo/src/app/queueing.cpp" "src/app/CMakeFiles/vdc_app.dir/queueing.cpp.o" "gcc" "src/app/CMakeFiles/vdc_app.dir/queueing.cpp.o.d"
  "/root/repo/src/app/workload.cpp" "src/app/CMakeFiles/vdc_app.dir/workload.cpp.o" "gcc" "src/app/CMakeFiles/vdc_app.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
