file(REMOVE_RECURSE
  "CMakeFiles/vdc_app.dir/monitor.cpp.o"
  "CMakeFiles/vdc_app.dir/monitor.cpp.o.d"
  "CMakeFiles/vdc_app.dir/multi_tier_app.cpp.o"
  "CMakeFiles/vdc_app.dir/multi_tier_app.cpp.o.d"
  "CMakeFiles/vdc_app.dir/queueing.cpp.o"
  "CMakeFiles/vdc_app.dir/queueing.cpp.o.d"
  "CMakeFiles/vdc_app.dir/workload.cpp.o"
  "CMakeFiles/vdc_app.dir/workload.cpp.o.d"
  "libvdc_app.a"
  "libvdc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
