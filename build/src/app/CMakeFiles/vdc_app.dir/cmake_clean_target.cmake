file(REMOVE_RECURSE
  "libvdc_app.a"
)
