file(REMOVE_RECURSE
  "libvdc_trace.a"
)
