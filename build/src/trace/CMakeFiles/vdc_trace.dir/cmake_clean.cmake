file(REMOVE_RECURSE
  "CMakeFiles/vdc_trace.dir/analysis.cpp.o"
  "CMakeFiles/vdc_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/vdc_trace.dir/forecast.cpp.o"
  "CMakeFiles/vdc_trace.dir/forecast.cpp.o.d"
  "CMakeFiles/vdc_trace.dir/synthetic.cpp.o"
  "CMakeFiles/vdc_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/vdc_trace.dir/trace.cpp.o"
  "CMakeFiles/vdc_trace.dir/trace.cpp.o.d"
  "CMakeFiles/vdc_trace.dir/trace_io.cpp.o"
  "CMakeFiles/vdc_trace.dir/trace_io.cpp.o.d"
  "libvdc_trace.a"
  "libvdc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
