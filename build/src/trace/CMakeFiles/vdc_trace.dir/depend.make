# Empty dependencies file for vdc_trace.
# This may be replaced when dependencies are built.
