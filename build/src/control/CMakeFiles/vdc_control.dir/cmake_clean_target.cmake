file(REMOVE_RECURSE
  "libvdc_control.a"
)
