# Empty dependencies file for vdc_control.
# This may be replaced when dependencies are built.
