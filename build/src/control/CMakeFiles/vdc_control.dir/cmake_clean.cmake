file(REMOVE_RECURSE
  "CMakeFiles/vdc_control.dir/arx.cpp.o"
  "CMakeFiles/vdc_control.dir/arx.cpp.o.d"
  "CMakeFiles/vdc_control.dir/mpc.cpp.o"
  "CMakeFiles/vdc_control.dir/mpc.cpp.o.d"
  "CMakeFiles/vdc_control.dir/reference.cpp.o"
  "CMakeFiles/vdc_control.dir/reference.cpp.o.d"
  "CMakeFiles/vdc_control.dir/stability.cpp.o"
  "CMakeFiles/vdc_control.dir/stability.cpp.o.d"
  "CMakeFiles/vdc_control.dir/sysid.cpp.o"
  "CMakeFiles/vdc_control.dir/sysid.cpp.o.d"
  "CMakeFiles/vdc_control.dir/tuning.cpp.o"
  "CMakeFiles/vdc_control.dir/tuning.cpp.o.d"
  "libvdc_control.a"
  "libvdc_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
