# Empty compiler generated dependencies file for vdc_control.
# This may be replaced when dependencies are built.
