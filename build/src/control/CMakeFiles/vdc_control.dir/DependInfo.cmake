
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/arx.cpp" "src/control/CMakeFiles/vdc_control.dir/arx.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/arx.cpp.o.d"
  "/root/repo/src/control/mpc.cpp" "src/control/CMakeFiles/vdc_control.dir/mpc.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/mpc.cpp.o.d"
  "/root/repo/src/control/reference.cpp" "src/control/CMakeFiles/vdc_control.dir/reference.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/reference.cpp.o.d"
  "/root/repo/src/control/stability.cpp" "src/control/CMakeFiles/vdc_control.dir/stability.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/stability.cpp.o.d"
  "/root/repo/src/control/sysid.cpp" "src/control/CMakeFiles/vdc_control.dir/sysid.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/sysid.cpp.o.d"
  "/root/repo/src/control/tuning.cpp" "src/control/CMakeFiles/vdc_control.dir/tuning.cpp.o" "gcc" "src/control/CMakeFiles/vdc_control.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/vdc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
