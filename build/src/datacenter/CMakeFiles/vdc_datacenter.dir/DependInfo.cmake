
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacenter/arbitrator.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/arbitrator.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/arbitrator.cpp.o.d"
  "/root/repo/src/datacenter/cluster.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/cluster.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/cluster.cpp.o.d"
  "/root/repo/src/datacenter/cpu_spec.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/cpu_spec.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/cpu_spec.cpp.o.d"
  "/root/repo/src/datacenter/migration.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/migration.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/migration.cpp.o.d"
  "/root/repo/src/datacenter/power_model.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/power_model.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/power_model.cpp.o.d"
  "/root/repo/src/datacenter/server.cpp" "src/datacenter/CMakeFiles/vdc_datacenter.dir/server.cpp.o" "gcc" "src/datacenter/CMakeFiles/vdc_datacenter.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
