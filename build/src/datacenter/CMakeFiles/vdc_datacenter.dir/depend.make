# Empty dependencies file for vdc_datacenter.
# This may be replaced when dependencies are built.
