file(REMOVE_RECURSE
  "CMakeFiles/vdc_datacenter.dir/arbitrator.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/arbitrator.cpp.o.d"
  "CMakeFiles/vdc_datacenter.dir/cluster.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/cluster.cpp.o.d"
  "CMakeFiles/vdc_datacenter.dir/cpu_spec.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/cpu_spec.cpp.o.d"
  "CMakeFiles/vdc_datacenter.dir/migration.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/migration.cpp.o.d"
  "CMakeFiles/vdc_datacenter.dir/power_model.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/power_model.cpp.o.d"
  "CMakeFiles/vdc_datacenter.dir/server.cpp.o"
  "CMakeFiles/vdc_datacenter.dir/server.cpp.o.d"
  "libvdc_datacenter.a"
  "libvdc_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
