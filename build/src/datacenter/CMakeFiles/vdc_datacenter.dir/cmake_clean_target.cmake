file(REMOVE_RECURSE
  "libvdc_datacenter.a"
)
