file(REMOVE_RECURSE
  "libvdc_util.a"
)
