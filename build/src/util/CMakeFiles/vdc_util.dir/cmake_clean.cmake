file(REMOVE_RECURSE
  "CMakeFiles/vdc_util.dir/csv.cpp.o"
  "CMakeFiles/vdc_util.dir/csv.cpp.o.d"
  "CMakeFiles/vdc_util.dir/log.cpp.o"
  "CMakeFiles/vdc_util.dir/log.cpp.o.d"
  "CMakeFiles/vdc_util.dir/statistics.cpp.o"
  "CMakeFiles/vdc_util.dir/statistics.cpp.o.d"
  "CMakeFiles/vdc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/vdc_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/vdc_util.dir/time_series.cpp.o"
  "CMakeFiles/vdc_util.dir/time_series.cpp.o.d"
  "libvdc_util.a"
  "libvdc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
