# Empty compiler generated dependencies file for vdc_util.
# This may be replaced when dependencies are built.
