# Empty compiler generated dependencies file for vdc_linalg.
# This may be replaced when dependencies are built.
