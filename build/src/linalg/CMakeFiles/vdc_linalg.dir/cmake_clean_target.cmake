file(REMOVE_RECURSE
  "libvdc_linalg.a"
)
