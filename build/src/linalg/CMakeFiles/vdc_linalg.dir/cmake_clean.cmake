file(REMOVE_RECURSE
  "CMakeFiles/vdc_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/vdc_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/vdc_linalg.dir/eigen.cpp.o"
  "CMakeFiles/vdc_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/vdc_linalg.dir/lu.cpp.o"
  "CMakeFiles/vdc_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/vdc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/vdc_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/vdc_linalg.dir/qp.cpp.o"
  "CMakeFiles/vdc_linalg.dir/qp.cpp.o.d"
  "CMakeFiles/vdc_linalg.dir/qr.cpp.o"
  "CMakeFiles/vdc_linalg.dir/qr.cpp.o.d"
  "libvdc_linalg.a"
  "libvdc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
