# Empty dependencies file for test_matrix.
# This may be replaced when dependencies are built.
