# Empty dependencies file for test_sysid.
# This may be replaced when dependencies are built.
