file(REMOVE_RECURSE
  "CMakeFiles/test_sysid.dir/test_sysid.cpp.o"
  "CMakeFiles/test_sysid.dir/test_sysid.cpp.o.d"
  "test_sysid"
  "test_sysid.pdb"
  "test_sysid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
