
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tuning.cpp" "tests/CMakeFiles/test_tuning.dir/test_tuning.cpp.o" "gcc" "tests/CMakeFiles/test_tuning.dir/test_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vdc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/vdc_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vdc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/consolidate/CMakeFiles/vdc_consolidate.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/vdc_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vdc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
