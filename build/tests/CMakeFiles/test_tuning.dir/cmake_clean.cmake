file(REMOVE_RECURSE
  "CMakeFiles/test_tuning.dir/test_tuning.cpp.o"
  "CMakeFiles/test_tuning.dir/test_tuning.cpp.o.d"
  "test_tuning"
  "test_tuning.pdb"
  "test_tuning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
