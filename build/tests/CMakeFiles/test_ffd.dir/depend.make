# Empty dependencies file for test_ffd.
# This may be replaced when dependencies are built.
