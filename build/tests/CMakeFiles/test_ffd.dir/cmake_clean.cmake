file(REMOVE_RECURSE
  "CMakeFiles/test_ffd.dir/test_ffd.cpp.o"
  "CMakeFiles/test_ffd.dir/test_ffd.cpp.o.d"
  "test_ffd"
  "test_ffd.pdb"
  "test_ffd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ffd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
