# Empty dependencies file for test_pmapper.
# This may be replaced when dependencies are built.
