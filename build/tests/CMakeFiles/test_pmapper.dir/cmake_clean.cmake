file(REMOVE_RECURSE
  "CMakeFiles/test_pmapper.dir/test_pmapper.cpp.o"
  "CMakeFiles/test_pmapper.dir/test_pmapper.cpp.o.d"
  "test_pmapper"
  "test_pmapper.pdb"
  "test_pmapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
