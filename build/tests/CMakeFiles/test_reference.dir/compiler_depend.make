# Empty compiler generated dependencies file for test_reference.
# This may be replaced when dependencies are built.
