file(REMOVE_RECURSE
  "CMakeFiles/test_eigen.dir/test_eigen.cpp.o"
  "CMakeFiles/test_eigen.dir/test_eigen.cpp.o.d"
  "test_eigen"
  "test_eigen.pdb"
  "test_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
