# Empty compiler generated dependencies file for test_eigen.
# This may be replaced when dependencies are built.
