file(REMOVE_RECURSE
  "CMakeFiles/test_lu.dir/test_lu.cpp.o"
  "CMakeFiles/test_lu.dir/test_lu.cpp.o.d"
  "test_lu"
  "test_lu.pdb"
  "test_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
