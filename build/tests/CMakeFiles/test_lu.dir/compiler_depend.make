# Empty compiler generated dependencies file for test_lu.
# This may be replaced when dependencies are built.
