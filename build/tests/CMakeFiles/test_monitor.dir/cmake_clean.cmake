file(REMOVE_RECURSE
  "CMakeFiles/test_monitor.dir/test_monitor.cpp.o"
  "CMakeFiles/test_monitor.dir/test_monitor.cpp.o.d"
  "test_monitor"
  "test_monitor.pdb"
  "test_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
