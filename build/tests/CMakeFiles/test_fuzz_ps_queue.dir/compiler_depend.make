# Empty compiler generated dependencies file for test_fuzz_ps_queue.
# This may be replaced when dependencies are built.
