file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_ps_queue.dir/test_fuzz_ps_queue.cpp.o"
  "CMakeFiles/test_fuzz_ps_queue.dir/test_fuzz_ps_queue.cpp.o.d"
  "test_fuzz_ps_queue"
  "test_fuzz_ps_queue.pdb"
  "test_fuzz_ps_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_ps_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
