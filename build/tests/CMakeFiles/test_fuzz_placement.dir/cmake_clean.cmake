file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_placement.dir/test_fuzz_placement.cpp.o"
  "CMakeFiles/test_fuzz_placement.dir/test_fuzz_placement.cpp.o.d"
  "test_fuzz_placement"
  "test_fuzz_placement.pdb"
  "test_fuzz_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
