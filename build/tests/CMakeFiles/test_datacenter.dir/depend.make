# Empty dependencies file for test_datacenter.
# This may be replaced when dependencies are built.
