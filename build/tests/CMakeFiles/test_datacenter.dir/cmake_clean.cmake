file(REMOVE_RECURSE
  "CMakeFiles/test_datacenter.dir/test_datacenter.cpp.o"
  "CMakeFiles/test_datacenter.dir/test_datacenter.cpp.o.d"
  "test_datacenter"
  "test_datacenter.pdb"
  "test_datacenter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
