file(REMOVE_RECURSE
  "CMakeFiles/test_qp.dir/test_qp.cpp.o"
  "CMakeFiles/test_qp.dir/test_qp.cpp.o.d"
  "test_qp"
  "test_qp.pdb"
  "test_qp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
