# Empty compiler generated dependencies file for test_qp.
# This may be replaced when dependencies are built.
