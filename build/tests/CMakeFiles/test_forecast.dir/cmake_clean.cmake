file(REMOVE_RECURSE
  "CMakeFiles/test_forecast.dir/test_forecast.cpp.o"
  "CMakeFiles/test_forecast.dir/test_forecast.cpp.o.d"
  "test_forecast"
  "test_forecast.pdb"
  "test_forecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
