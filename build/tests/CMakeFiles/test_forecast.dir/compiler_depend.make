# Empty compiler generated dependencies file for test_forecast.
# This may be replaced when dependencies are built.
