file(REMOVE_RECURSE
  "CMakeFiles/test_trace_sim.dir/test_trace_sim.cpp.o"
  "CMakeFiles/test_trace_sim.dir/test_trace_sim.cpp.o.d"
  "test_trace_sim"
  "test_trace_sim.pdb"
  "test_trace_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
