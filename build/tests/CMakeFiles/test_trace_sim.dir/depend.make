# Empty dependencies file for test_trace_sim.
# This may be replaced when dependencies are built.
