# Empty dependencies file for test_ps_queue.
# This may be replaced when dependencies are built.
