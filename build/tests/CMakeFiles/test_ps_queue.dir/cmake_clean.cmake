file(REMOVE_RECURSE
  "CMakeFiles/test_ps_queue.dir/test_ps_queue.cpp.o"
  "CMakeFiles/test_ps_queue.dir/test_ps_queue.cpp.o.d"
  "test_ps_queue"
  "test_ps_queue.pdb"
  "test_ps_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ps_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
