file(REMOVE_RECURSE
  "CMakeFiles/test_time_series.dir/test_time_series.cpp.o"
  "CMakeFiles/test_time_series.dir/test_time_series.cpp.o.d"
  "test_time_series"
  "test_time_series.pdb"
  "test_time_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
