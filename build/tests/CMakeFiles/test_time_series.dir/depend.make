# Empty dependencies file for test_time_series.
# This may be replaced when dependencies are built.
