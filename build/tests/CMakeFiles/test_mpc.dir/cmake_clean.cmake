file(REMOVE_RECURSE
  "CMakeFiles/test_mpc.dir/test_mpc.cpp.o"
  "CMakeFiles/test_mpc.dir/test_mpc.cpp.o.d"
  "test_mpc"
  "test_mpc.pdb"
  "test_mpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
