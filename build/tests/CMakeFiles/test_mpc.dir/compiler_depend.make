# Empty compiler generated dependencies file for test_mpc.
# This may be replaced when dependencies are built.
