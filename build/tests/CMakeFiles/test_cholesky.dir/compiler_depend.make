# Empty compiler generated dependencies file for test_cholesky.
# This may be replaced when dependencies are built.
