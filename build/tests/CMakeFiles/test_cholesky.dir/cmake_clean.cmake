file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky.dir/test_cholesky.cpp.o"
  "CMakeFiles/test_cholesky.dir/test_cholesky.cpp.o.d"
  "test_cholesky"
  "test_cholesky.pdb"
  "test_cholesky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
