# Empty compiler generated dependencies file for test_cost_policy.
# This may be replaced when dependencies are built.
