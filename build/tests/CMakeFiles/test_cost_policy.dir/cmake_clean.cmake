file(REMOVE_RECURSE
  "CMakeFiles/test_cost_policy.dir/test_cost_policy.cpp.o"
  "CMakeFiles/test_cost_policy.dir/test_cost_policy.cpp.o.d"
  "test_cost_policy"
  "test_cost_policy.pdb"
  "test_cost_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
