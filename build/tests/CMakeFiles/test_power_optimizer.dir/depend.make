# Empty dependencies file for test_power_optimizer.
# This may be replaced when dependencies are built.
