file(REMOVE_RECURSE
  "CMakeFiles/test_power_optimizer.dir/test_power_optimizer.cpp.o"
  "CMakeFiles/test_power_optimizer.dir/test_power_optimizer.cpp.o.d"
  "test_power_optimizer"
  "test_power_optimizer.pdb"
  "test_power_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
