# Empty dependencies file for test_minimum_slack.
# This may be replaced when dependencies are built.
