file(REMOVE_RECURSE
  "CMakeFiles/test_minimum_slack.dir/test_minimum_slack.cpp.o"
  "CMakeFiles/test_minimum_slack.dir/test_minimum_slack.cpp.o.d"
  "test_minimum_slack"
  "test_minimum_slack.pdb"
  "test_minimum_slack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimum_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
