file(REMOVE_RECURSE
  "CMakeFiles/test_overload_guard.dir/test_overload_guard.cpp.o"
  "CMakeFiles/test_overload_guard.dir/test_overload_guard.cpp.o.d"
  "test_overload_guard"
  "test_overload_guard.pdb"
  "test_overload_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overload_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
