# Empty compiler generated dependencies file for test_overload_guard.
# This may be replaced when dependencies are built.
