# Empty dependencies file for test_arx.
# This may be replaced when dependencies are built.
