file(REMOVE_RECURSE
  "CMakeFiles/test_arx.dir/test_arx.cpp.o"
  "CMakeFiles/test_arx.dir/test_arx.cpp.o.d"
  "test_arx"
  "test_arx.pdb"
  "test_arx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
