file(REMOVE_RECURSE
  "CMakeFiles/test_ipac.dir/test_ipac.cpp.o"
  "CMakeFiles/test_ipac.dir/test_ipac.cpp.o.d"
  "test_ipac"
  "test_ipac.pdb"
  "test_ipac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
