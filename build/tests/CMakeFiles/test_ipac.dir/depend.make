# Empty dependencies file for test_ipac.
# This may be replaced when dependencies are built.
