file(REMOVE_RECURSE
  "CMakeFiles/test_pac.dir/test_pac.cpp.o"
  "CMakeFiles/test_pac.dir/test_pac.cpp.o.d"
  "test_pac"
  "test_pac.pdb"
  "test_pac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
