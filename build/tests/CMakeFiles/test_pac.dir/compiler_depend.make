# Empty compiler generated dependencies file for test_pac.
# This may be replaced when dependencies are built.
