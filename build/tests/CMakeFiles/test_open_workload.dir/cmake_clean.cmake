file(REMOVE_RECURSE
  "CMakeFiles/test_open_workload.dir/test_open_workload.cpp.o"
  "CMakeFiles/test_open_workload.dir/test_open_workload.cpp.o.d"
  "test_open_workload"
  "test_open_workload.pdb"
  "test_open_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
