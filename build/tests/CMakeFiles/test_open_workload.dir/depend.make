# Empty dependencies file for test_open_workload.
# This may be replaced when dependencies are built.
