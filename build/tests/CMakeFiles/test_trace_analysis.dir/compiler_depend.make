# Empty compiler generated dependencies file for test_trace_analysis.
# This may be replaced when dependencies are built.
