file(REMOVE_RECURSE
  "CMakeFiles/test_trace_analysis.dir/test_trace_analysis.cpp.o"
  "CMakeFiles/test_trace_analysis.dir/test_trace_analysis.cpp.o.d"
  "test_trace_analysis"
  "test_trace_analysis.pdb"
  "test_trace_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
