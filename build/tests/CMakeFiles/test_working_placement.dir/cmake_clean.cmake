file(REMOVE_RECURSE
  "CMakeFiles/test_working_placement.dir/test_working_placement.cpp.o"
  "CMakeFiles/test_working_placement.dir/test_working_placement.cpp.o.d"
  "test_working_placement"
  "test_working_placement.pdb"
  "test_working_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_working_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
