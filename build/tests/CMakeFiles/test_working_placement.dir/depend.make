# Empty dependencies file for test_working_placement.
# This may be replaced when dependencies are built.
