file(REMOVE_RECURSE
  "CMakeFiles/test_qr.dir/test_qr.cpp.o"
  "CMakeFiles/test_qr.dir/test_qr.cpp.o.d"
  "test_qr"
  "test_qr.pdb"
  "test_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
