# Empty dependencies file for test_qr.
# This may be replaced when dependencies are built.
