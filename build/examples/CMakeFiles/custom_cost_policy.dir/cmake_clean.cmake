file(REMOVE_RECURSE
  "CMakeFiles/custom_cost_policy.dir/custom_cost_policy.cpp.o"
  "CMakeFiles/custom_cost_policy.dir/custom_cost_policy.cpp.o.d"
  "custom_cost_policy"
  "custom_cost_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cost_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
