# Empty compiler generated dependencies file for custom_cost_policy.
# This may be replaced when dependencies are built.
