file(REMOVE_RECURSE
  "CMakeFiles/surge_control.dir/surge_control.cpp.o"
  "CMakeFiles/surge_control.dir/surge_control.cpp.o.d"
  "surge_control"
  "surge_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surge_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
