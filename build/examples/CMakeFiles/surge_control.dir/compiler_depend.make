# Empty compiler generated dependencies file for surge_control.
# This may be replaced when dependencies are built.
