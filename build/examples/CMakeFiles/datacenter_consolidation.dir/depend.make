# Empty dependencies file for datacenter_consolidation.
# This may be replaced when dependencies are built.
