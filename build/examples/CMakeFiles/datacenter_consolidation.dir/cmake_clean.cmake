file(REMOVE_RECURSE
  "CMakeFiles/datacenter_consolidation.dir/datacenter_consolidation.cpp.o"
  "CMakeFiles/datacenter_consolidation.dir/datacenter_consolidation.cpp.o.d"
  "datacenter_consolidation"
  "datacenter_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
