# Empty dependencies file for three_tier_control.
# This may be replaced when dependencies are built.
