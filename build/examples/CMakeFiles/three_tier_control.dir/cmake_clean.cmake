file(REMOVE_RECURSE
  "CMakeFiles/three_tier_control.dir/three_tier_control.cpp.o"
  "CMakeFiles/three_tier_control.dir/three_tier_control.cpp.o.d"
  "three_tier_control"
  "three_tier_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_tier_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
