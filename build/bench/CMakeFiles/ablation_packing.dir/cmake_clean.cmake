file(REMOVE_RECURSE
  "CMakeFiles/ablation_packing.dir/ablation_packing.cpp.o"
  "CMakeFiles/ablation_packing.dir/ablation_packing.cpp.o.d"
  "ablation_packing"
  "ablation_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
