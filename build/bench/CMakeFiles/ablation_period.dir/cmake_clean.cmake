file(REMOVE_RECURSE
  "CMakeFiles/ablation_period.dir/ablation_period.cpp.o"
  "CMakeFiles/ablation_period.dir/ablation_period.cpp.o.d"
  "ablation_period"
  "ablation_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
