# Empty compiler generated dependencies file for ablation_period.
# This may be replaced when dependencies are built.
