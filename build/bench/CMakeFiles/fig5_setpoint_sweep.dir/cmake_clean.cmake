file(REMOVE_RECURSE
  "CMakeFiles/fig5_setpoint_sweep.dir/fig5_setpoint_sweep.cpp.o"
  "CMakeFiles/fig5_setpoint_sweep.dir/fig5_setpoint_sweep.cpp.o.d"
  "fig5_setpoint_sweep"
  "fig5_setpoint_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_setpoint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
