# Empty dependencies file for fig5_setpoint_sweep.
# This may be replaced when dependencies are built.
