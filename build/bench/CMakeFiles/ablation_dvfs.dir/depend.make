# Empty dependencies file for ablation_dvfs.
# This may be replaced when dependencies are built.
