file(REMOVE_RECURSE
  "CMakeFiles/ablation_dvfs.dir/ablation_dvfs.cpp.o"
  "CMakeFiles/ablation_dvfs.dir/ablation_dvfs.cpp.o.d"
  "ablation_dvfs"
  "ablation_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
