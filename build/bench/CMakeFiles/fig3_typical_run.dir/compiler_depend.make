# Empty compiler generated dependencies file for fig3_typical_run.
# This may be replaced when dependencies are built.
