file(REMOVE_RECURSE
  "CMakeFiles/fig3_typical_run.dir/fig3_typical_run.cpp.o"
  "CMakeFiles/fig3_typical_run.dir/fig3_typical_run.cpp.o.d"
  "fig3_typical_run"
  "fig3_typical_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_typical_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
