file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_per_vm.dir/fig6_energy_per_vm.cpp.o"
  "CMakeFiles/fig6_energy_per_vm.dir/fig6_energy_per_vm.cpp.o.d"
  "fig6_energy_per_vm"
  "fig6_energy_per_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_per_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
