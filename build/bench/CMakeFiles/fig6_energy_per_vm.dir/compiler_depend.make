# Empty compiler generated dependencies file for fig6_energy_per_vm.
# This may be replaced when dependencies are built.
