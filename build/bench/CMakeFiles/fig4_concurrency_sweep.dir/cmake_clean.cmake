file(REMOVE_RECURSE
  "CMakeFiles/fig4_concurrency_sweep.dir/fig4_concurrency_sweep.cpp.o"
  "CMakeFiles/fig4_concurrency_sweep.dir/fig4_concurrency_sweep.cpp.o.d"
  "fig4_concurrency_sweep"
  "fig4_concurrency_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_concurrency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
