# Empty dependencies file for fig4_concurrency_sweep.
# This may be replaced when dependencies are built.
