# Empty dependencies file for fig2_response_times.
# This may be replaced when dependencies are built.
