file(REMOVE_RECURSE
  "CMakeFiles/fig2_response_times.dir/fig2_response_times.cpp.o"
  "CMakeFiles/fig2_response_times.dir/fig2_response_times.cpp.o.d"
  "fig2_response_times"
  "fig2_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
