# Empty dependencies file for testbed_two_level.
# This may be replaced when dependencies are built.
