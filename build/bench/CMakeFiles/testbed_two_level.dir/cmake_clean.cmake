file(REMOVE_RECURSE
  "CMakeFiles/testbed_two_level.dir/testbed_two_level.cpp.o"
  "CMakeFiles/testbed_two_level.dir/testbed_two_level.cpp.o.d"
  "testbed_two_level"
  "testbed_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
