#include "util/time_series.hpp"

#include <gtest/gtest.h>

namespace vdc::util {
namespace {

TEST(TimeSeries, RejectsNonPositiveDt) {
  EXPECT_THROW(TimeSeries(0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-1.0), std::invalid_argument);
}

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries s(2.0);
  s.append(1.0);
  s.append(3.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s.duration(), 4.0);
  EXPECT_THROW(static_cast<void>(s[2]), std::out_of_range);
}

TEST(TimeSeries, AtTimePiecewiseConstant) {
  TimeSeries s(10.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.at_time(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_time(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_time(9.99), 1.0);
  EXPECT_DOUBLE_EQ(s.at_time(10.0), 2.0);
  EXPECT_DOUBLE_EQ(s.at_time(25.0), 3.0);
  EXPECT_DOUBLE_EQ(s.at_time(1000.0), 3.0);  // clamped
}

TEST(TimeSeries, AtTimeThrowsOnEmpty) {
  TimeSeries s(1.0);
  EXPECT_THROW(static_cast<void>(s.at_time(0.0)), std::out_of_range);
}

TEST(TimeSeries, StatsAndIntegral) {
  TimeSeries s(0.5, {2.0, 4.0, 6.0});
  const RunningStats stats = s.stats();
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 6.0);
  // Integral: (2+4+6) * 0.5 = 6 (power [W] x time [s] = energy [J]).
  EXPECT_DOUBLE_EQ(s.integral(), 6.0);
}

TEST(TimeSeries, ValuesSpanReflectsContent) {
  TimeSeries s(1.0, {9.0, 8.0});
  const auto v = s.values();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 9.0);
}

}  // namespace
}  // namespace vdc::util
