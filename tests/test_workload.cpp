#include "app/workload.hpp"

#include <gtest/gtest.h>

namespace vdc::app {
namespace {

TEST(SurgeSchedule, ProducesTwoSteps) {
  const auto steps = surge_schedule(40, 600.0, 1200.0, 2.0);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].time_s, 600.0);
  EXPECT_EQ(steps[0].concurrency, 80u);
  EXPECT_DOUBLE_EQ(steps[1].time_s, 1200.0);
  EXPECT_EQ(steps[1].concurrency, 40u);
}

TEST(SurgeSchedule, FractionalFactorRounds) {
  const auto steps = surge_schedule(10, 1.0, 2.0, 1.25);
  EXPECT_EQ(steps[0].concurrency, 13u);  // 12.5 rounds to 13
}

TEST(SurgeSchedule, RejectsInvertedWindow) {
  EXPECT_THROW(surge_schedule(40, 10.0, 5.0), std::invalid_argument);
}

TEST(ApplySchedule, ChangesConcurrencyAtScheduledTimes) {
  sim::Simulation sim;
  MultiTierApp app(sim, default_two_tier_app("x", 1, 10));
  app.start();
  apply_schedule(sim, app, {{5.0, 20}, {10.0, 3}});
  sim.run_until(6.0);
  EXPECT_EQ(app.concurrency(), 20u);
  sim.run_until(11.0);
  EXPECT_EQ(app.concurrency(), 3u);
}

TEST(ApplySchedule, RejectsPastSteps) {
  sim::Simulation sim;
  MultiTierApp app(sim, default_two_tier_app("x", 1, 10));
  sim.schedule(2.0, [] {});
  sim.run();
  EXPECT_THROW(apply_schedule(sim, app, {{1.0, 5}}), std::invalid_argument);
}

TEST(RandomWalkSchedule, StaysInBoundsAndOnGrid) {
  util::Rng rng(3);
  const auto steps = random_walk_schedule(rng, 10, 50, 30.0, 300.0);
  ASSERT_FALSE(steps.empty());
  double prev_time = 0.0;
  for (const auto& step : steps) {
    EXPECT_GE(step.concurrency, 10u);
    EXPECT_LE(step.concurrency, 50u);
    EXPECT_GT(step.time_s, prev_time);
    prev_time = step.time_s;
  }
  EXPECT_LT(steps.back().time_s, 300.0);
}

TEST(RandomWalkSchedule, ValidatesArguments) {
  util::Rng rng(3);
  EXPECT_THROW(random_walk_schedule(rng, 50, 10, 30.0, 300.0), std::invalid_argument);
  EXPECT_THROW(random_walk_schedule(rng, 1, 2, 0.0, 300.0), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::app
