// vdc-lint fixture tests: each rule has a fixture source under
// tests/lint/fixtures/ with deliberate violations (and near-miss negative
// cases), and the full text report over the fixture set is pinned to the
// golden file tests/lint/fixtures.expected. Regenerate the golden by
// running the loop below and reviewing every changed line — the golden is
// the rule catalog's executable specification.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace {

namespace fs = std::filesystem;
using namespace vdc::lint;

const char* const kFixtureDir = VDC_LINT_FIXTURE_DIR;

std::vector<SourceFile> load_fixtures() {
  std::vector<SourceFile> files;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    SourceFile f;
    // Bare filenames as repo-relative paths keep the golden stable and make
    // the fixtures mutual siblings for quoted-include resolution.
    EXPECT_TRUE(load_source_file(entry.path().string(), entry.path().filename().string(), f));
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  return files;
}

/// The same pipeline main.cpp runs, with every rule enabled on every file.
std::vector<Finding> lint_all(std::vector<SourceFile>& files) {
  std::set<std::string> unordered_names;
  for (const SourceFile& f : files) collect_unordered_names(f, unordered_names);
  std::vector<Finding> findings;
  for (SourceFile& f : files) run_file_rules(f, all_rules_config(), unordered_names, findings);
  run_include_cycles(files, findings);
  for (SourceFile& f : files) run_suppression_hygiene(f, all_rules_config(), findings);
  sort_findings(findings);
  return findings;
}

TEST(VdcLint, FixtureReportMatchesGolden) {
  std::vector<SourceFile> files = load_fixtures();
  ASSERT_FALSE(files.empty()) << "no fixtures found under " << kFixtureDir;
  const std::vector<Finding> findings = lint_all(files);

  std::ostringstream report;
  write_text(report, findings, files.size());

  const fs::path golden_path = fs::path(kFixtureDir).parent_path() / "fixtures.expected";
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file " << golden_path;
  std::stringstream expected;
  expected << golden.rdbuf();

  EXPECT_EQ(report.str(), expected.str())
      << "fixture findings drifted from the golden; if the rule change is "
         "intentional, regenerate tests/lint/fixtures.expected and re-review it";
}

TEST(VdcLint, EveryRuleFiresOnItsFixture) {
  std::vector<SourceFile> files = load_fixtures();
  const std::vector<Finding> findings = lint_all(files);
  for (const char* rule : {"units", "determinism", "unordered-iter", "float-eq",
                           "check-side-effect", "pragma-once", "include-cycle",
                           "shard-safety", "suppression"}) {
    const bool seen = std::any_of(findings.begin(), findings.end(),
                                  [&](const Finding& f) { return f.rule == rule; });
    EXPECT_TRUE(seen) << "no fixture exercises rule '" << rule << "'";
  }
}

TEST(VdcLint, SuppressionRoundTripIsClean) {
  // A file whose every violation carries a reasoned annotation produces only
  // suppressed findings: the tool reports them but exits clean.
  std::vector<SourceFile> files = load_fixtures();
  files.erase(std::remove_if(files.begin(), files.end(),
                             [](const SourceFile& f) { return f.rel != "suppressed_clean.cpp"; }),
              files.end());
  ASSERT_EQ(files.size(), 1u);
  std::vector<Finding> findings = lint_all(files);
  EXPECT_FALSE(findings.empty()) << "fixture should still produce (suppressed) findings";
  EXPECT_EQ(unsuppressed_count(findings), 0u);
  for (const Finding& f : findings) EXPECT_TRUE(f.suppressed) << f.rule << " at line " << f.line;
}

TEST(VdcLint, SuppressionHygieneFlagsBadAnnotations) {
  std::vector<SourceFile> files = load_fixtures();
  files.erase(std::remove_if(files.begin(), files.end(),
                             [](const SourceFile& f) { return f.rel != "suppress_bad.cpp"; }),
              files.end());
  ASSERT_EQ(files.size(), 1u);
  const std::vector<Finding> findings = lint_all(files);

  auto count_matching = [&](std::string_view needle) {
    return std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
      return f.rule == "suppression" && f.message.find(needle) != std::string::npos;
    });
  };
  EXPECT_EQ(count_matching("has no reason"), 1);
  EXPECT_EQ(count_matching("unknown rule"), 1);
  EXPECT_EQ(count_matching("unused suppression"), 1);
  // Hygiene findings are never suppressible and always gate the exit code.
  EXPECT_GE(unsuppressed_count(findings), 3u);
}

}  // namespace
