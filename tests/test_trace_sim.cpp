#include "core/trace_sim.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace vdc::core {
namespace {

trace::UtilizationTrace small_trace() {
  trace::SyntheticTraceOptions o;
  o.servers = 60;
  o.samples = 192;  // two days
  o.seed = 5;
  return generate_synthetic_trace(o);
}

TraceSimConfig small_config(ConsolidationAlgorithm algorithm) {
  TraceSimConfig config;
  config.num_vms = 60;
  config.pool_size = 100;
  config.algorithm = algorithm;
  config.dvfs = algorithm == ConsolidationAlgorithm::kIpac;
  return config;
}

TEST(TraceSim, ValidatesConfig) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  TraceSimConfig config = small_config(ConsolidationAlgorithm::kIpac);
  config.num_vms = 0;
  EXPECT_THROW((void)sim.run(config), std::invalid_argument);
  config = small_config(ConsolidationAlgorithm::kIpac);
  config.num_vms = 1000;  // > trace servers
  EXPECT_THROW((void)sim.run(config), std::invalid_argument);
  config = small_config(ConsolidationAlgorithm::kIpac);
  config.consolidation_period_s = 0.0;
  EXPECT_THROW((void)sim.run(config), std::invalid_argument);
}

TEST(TraceSim, ProducesSaneMetrics) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  const TraceSimResult r = sim.run(small_config(ConsolidationAlgorithm::kIpac));
  EXPECT_GT(r.total_energy_wh, 0.0);
  EXPECT_NEAR(r.energy_wh_per_vm * 60.0, r.total_energy_wh, 1e-6);
  EXPECT_EQ(r.power_series_w.size(), t.sample_count());
  EXPECT_GT(r.optimizer_invocations, 0u);
  EXPECT_GT(r.final_active_servers, 0u);
  EXPECT_LE(r.final_active_servers, r.peak_active_servers);
  EXPECT_GE(r.overload_fraction, 0.0);
  EXPECT_LE(r.overload_fraction, 1.0);
}

TEST(TraceSim, DeterministicPerSeed) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  const TraceSimResult a = sim.run(small_config(ConsolidationAlgorithm::kIpac));
  const TraceSimResult b = sim.run(small_config(ConsolidationAlgorithm::kIpac));
  EXPECT_DOUBLE_EQ(a.energy_wh_per_vm, b.energy_wh_per_vm);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(TraceSim, IpacUsesLessEnergyThanPMapper) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  const TraceSimResult ipac = sim.run(small_config(ConsolidationAlgorithm::kIpac));
  const TraceSimResult pmapper = sim.run(small_config(ConsolidationAlgorithm::kPMapper));
  EXPECT_LT(ipac.energy_wh_per_vm, pmapper.energy_wh_per_vm);
}

TEST(TraceSim, DvfsSavesEnergy) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  TraceSimConfig with = small_config(ConsolidationAlgorithm::kIpac);
  TraceSimConfig without = small_config(ConsolidationAlgorithm::kIpac);
  without.dvfs = false;
  EXPECT_LT(sim.run(with).energy_wh_per_vm, sim.run(without).energy_wh_per_vm);
}

TEST(TraceSim, SleepPowerAccountingToggle) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  TraceSimConfig off = small_config(ConsolidationAlgorithm::kIpac);
  TraceSimConfig on = small_config(ConsolidationAlgorithm::kIpac);
  on.count_sleep_power = true;
  // Counting ACPI sleep power of the mostly-unused 100-server pool must
  // strictly increase energy.
  EXPECT_GT(sim.run(on).total_energy_wh, sim.run(off).total_energy_wh);
}

TEST(TraceSim, ProbeObservesEverySample) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  TraceSimConfig config = small_config(ConsolidationAlgorithm::kIpac);
  std::size_t calls = 0;
  config.sample_probe = [&calls](const datacenter::Cluster& cluster, std::size_t k) {
    ++calls;
    EXPECT_GT(cluster.server_count(), 0u);
    EXPECT_LT(k, 192u);
  };
  (void)sim.run(config);
  EXPECT_EQ(calls, t.sample_count());
}

TEST(TraceSim, NoConsolidationBaselineUsesMorePower) {
  const trace::UtilizationTrace t = small_trace();
  const TraceDrivenSimulator sim(t);
  TraceSimConfig ipac_config = small_config(ConsolidationAlgorithm::kIpac);
  TraceSimConfig none = small_config(ConsolidationAlgorithm::kNone);
  none.dvfs = true;  // same DVFS so the difference is consolidation alone
  const TraceSimResult consolidated = sim.run(ipac_config);
  const TraceSimResult fixed = sim.run(none);
  EXPECT_LE(consolidated.final_active_servers, fixed.final_active_servers);
}

}  // namespace
}  // namespace vdc::core
