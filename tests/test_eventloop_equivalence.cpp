// Differential replay tests: the optimized event loop (slab Simulation +
// dual-mode PsQueue) against the retained naive reference implementations in
// sim/naive.hpp. Both engines are driven through the same seeded closed-loop
// workload; below the dual-mode threshold the optimized queue reproduces the
// naive floating-point summation order exactly, so results must be
// bit-identical. Above the threshold the virtual-time formulation is used
// and only tight-tolerance agreement is required.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/naive.hpp"
#include "sim/ps_queue.hpp"
#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace vdc {
namespace {

struct ReplayTrace {
  std::vector<std::uint64_t> order;  // completion order (job ids)
  std::vector<double> times;         // completion timestamps
  double busy_time_s = 0.0;
  double stalled_time_s = 0.0;
  double work_done_gcycles = 0.0;
};

/// Closed-loop workload with capacity modulation and occasional job
/// abandonment — exercises add, remove, completion, set_capacity and the
/// stall path on whichever engine is instantiated.
template <typename Sim, typename Queue>
ReplayTrace replay(std::size_t clients, std::uint64_t target_completions,
                   std::uint64_t seed) {
  Sim sim;
  util::Rng rng(seed);
  ReplayTrace trace;
  std::uint64_t completions = 0;

  Queue* queue_ptr = nullptr;
  Queue queue(sim, 2.0, [&](std::uint64_t job) {
    ++completions;
    trace.order.push_back(job);
    trace.times.push_back(sim.now());
    if (completions >= target_completions) return;
    sim.schedule_after(rng.exponential(0.02), [&] {
      const std::uint64_t id = queue_ptr->add_job(rng.bounded_pareto(1.2, 0.05, 4.0));
      // A slice of requests is abandoned shortly after admission.
      if (rng.bernoulli(0.05)) {
        sim.schedule_after(rng.exponential(0.005), [&, id] { queue_ptr->remove_job(id); });
      }
    });
  });
  queue_ptr = &queue;

  for (std::size_t i = 0; i < clients; ++i) queue.add_job(rng.bounded_pareto(1.2, 0.05, 4.0));
  // DVFS-style capacity steps, including a stall window at zero capacity.
  const double caps[] = {2.0, 1.0, 0.0, 3.0, 1.5};
  for (int k = 0; k < 40; ++k) {
    sim.schedule(0.25 * (k + 1), [&queue, &caps, k] { queue.set_capacity(caps[k % 5]); });
  }
  while (completions < target_completions && sim.step()) {
  }
  trace.busy_time_s = queue.busy_time_s();
  trace.stalled_time_s = queue.stalled_time_s();
  trace.work_done_gcycles = queue.work_done_gcycles();
  return trace;
}

TEST(EventLoopEquivalence, SmallWorkloadIsBitIdenticalToNaive) {
  // 120 clients stays far below the dual-mode threshold: the optimized queue
  // runs the historical summation order and every double must match bitwise.
  const ReplayTrace fast = replay<sim::Simulation, sim::PsQueue>(120, 3000, 42);
  const ReplayTrace ref = replay<sim::naive::Simulation, sim::naive::PsQueue>(120, 3000, 42);

  ASSERT_EQ(fast.order.size(), ref.order.size());
  EXPECT_EQ(fast.order, ref.order);
  for (std::size_t i = 0; i < fast.times.size(); ++i) {
    ASSERT_EQ(fast.times[i], ref.times[i]) << "timestamp diverged at completion " << i;
  }
  EXPECT_EQ(fast.busy_time_s, ref.busy_time_s);
  EXPECT_EQ(fast.stalled_time_s, ref.stalled_time_s);
  EXPECT_EQ(fast.work_done_gcycles, ref.work_done_gcycles);
}

TEST(EventLoopEquivalence, LargeWorkloadAgreesWithinTolerance) {
  // 1500 clients pushes the optimized queue into the virtual-time mode where
  // the summation order legitimately differs at ulp level; completion ORDER
  // must still be identical and every statistic tightly close.
  const ReplayTrace fast = replay<sim::Simulation, sim::PsQueue>(1500, 2500, 7);
  const ReplayTrace ref = replay<sim::naive::Simulation, sim::naive::PsQueue>(1500, 2500, 7);

  ASSERT_EQ(fast.order.size(), ref.order.size());
  EXPECT_EQ(fast.order, ref.order);
  for (std::size_t i = 0; i < fast.times.size(); ++i) {
    const double scale = std::max(1.0, std::abs(ref.times[i]));
    ASSERT_NEAR(fast.times[i], ref.times[i], 1e-9 * scale) << "completion " << i;
  }
  EXPECT_NEAR(fast.busy_time_s, ref.busy_time_s, 1e-9 * std::max(1.0, ref.busy_time_s));
  EXPECT_NEAR(fast.stalled_time_s, ref.stalled_time_s, 1e-9 * std::max(1.0, ref.stalled_time_s));
  EXPECT_NEAR(fast.work_done_gcycles, ref.work_done_gcycles, 1e-6 * std::max(1.0, ref.work_done_gcycles));
}

TEST(EventLoopEquivalence, DualModeCrossoverPreservesJobs) {
  sim::Simulation sim;
  std::size_t completed = 0;
  sim::PsQueue q(sim, 1.0, [&](sim::JobId) { ++completed; });

  std::vector<sim::JobId> ids;
  for (std::size_t i = 0; i < sim::PsQueue::kFastUpThreshold - 1; ++i) {
    ids.push_back(q.add_job(1000.0));
  }
  EXPECT_FALSE(q.fast_mode());
  ids.push_back(q.add_job(1000.0));  // crosses the up-threshold
  EXPECT_TRUE(q.fast_mode());
  EXPECT_EQ(q.jobs_in_service(), sim::PsQueue::kFastUpThreshold);

  // Removing back below the down-threshold (hysteresis) converts back; every
  // job must survive both conversions with its residual intact.
  while (q.jobs_in_service() > sim::PsQueue::kFastDownThreshold) {
    const double remaining = q.remove_job(ids.back());
    ids.pop_back();
    EXPECT_GT(remaining, 0.0);
  }
  EXPECT_FALSE(q.fast_mode());
  EXPECT_EQ(q.jobs_in_service(), sim::PsQueue::kFastDownThreshold);
  for (const sim::JobId id : ids) {
    EXPECT_NEAR(q.remove_job(id), 1000.0, 1e-6);
  }
  EXPECT_EQ(q.jobs_in_service(), 0u);
  EXPECT_EQ(completed, 0u);
}

TEST(EventLoopEquivalence, SlidingWindowQuantileMatchesCopyAndSort) {
  // Property test: after every insertion/eviction the incremental
  // order-statistic index must agree bitwise with the historical
  // copy-everything-and-sort evaluation.
  util::SlidingWindow window(64);
  std::vector<double> shadow;  // insertion order, capacity 64
  util::Rng rng(123);
  const double qs[] = {0.0, 0.25, 0.5, 0.9, 0.95, 1.0};

  for (int i = 0; i < 2000; ++i) {
    double x = 0.0;
    switch (i % 4) {
      case 0: x = rng.uniform(-100.0, 100.0); break;
      case 1: x = rng.bounded_pareto(1.1, 0.01, 1e6); break;
      case 2: x = rng.normal(0.0, 1e-6); break;
      case 3: x = static_cast<double>(i % 7); break;  // heavy duplicates
    }
    window.add(x);
    shadow.push_back(x);
    if (shadow.size() > 64) shadow.erase(shadow.begin());

    ASSERT_EQ(window.size(), shadow.size());
    for (const double q : qs) {
      ASSERT_EQ(window.quantile(q), util::quantile(shadow, q))
          << "diverged at step " << i << " q=" << q;
    }
  }
}

TEST(EventLoopEquivalence, TelemetryCsvIsByteDeterministic) {
  // The monitor/statistics rewrite sits in the control loop; two identical
  // runs must still serialize to the very same CSV bytes.
  core::ScenarioSpec spec;
  spec.name = "determinism";
  spec.stack.app = app::default_two_tier_app("a", 1, 40);
  spec.policy = [](const std::optional<app::PeriodStats>&) {
    return std::vector<double>(2, 0.6);
  };
  spec.seed = 99;
  spec.duration_s = 120.0;

  const core::ScenarioResult first = core::ScenarioRunner().run(spec);
  const core::ScenarioResult second = core::ScenarioRunner().run(spec);
  const std::string csv_a = telemetry::to_csv(first.recorder);
  const std::string csv_b = telemetry::to_csv(second.recorder);
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, csv_b);
}

}  // namespace
}  // namespace vdc
