#include "consolidate/cost_policy.hpp"

#include <gtest/gtest.h>

namespace vdc::consolidate {
namespace {

DataCenterSnapshot one_vm_snapshot(double memory_mb) {
  DataCenterSnapshot snap;
  snap.vms.push_back(VmSnapshot{0, 1.0, memory_mb});
  return snap;
}

MigrationProposal proposal(double benefit, double bytes, double approved) {
  MigrationProposal p;
  p.vm = 0;
  p.estimated_benefit_w = benefit;
  p.bytes = bytes;
  p.bytes_already_approved = approved;
  return p;
}

TEST(FreeMigration, AlwaysTrue) {
  const FreeMigrationPolicy policy;
  EXPECT_TRUE(policy.allow(one_vm_snapshot(1024.0), proposal(0.0, 1e12, 1e12)));
  EXPECT_EQ(policy.name(), "free-migration");
}

TEST(FreeMigration, DeprecatedAliasStillCompiles) {
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  const AllowAllPolicy policy;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  EXPECT_EQ(policy.name(), "free-migration");
}

TEST(MigrationEnergyBudget, EnforcesCumulativeEnergyCap) {
  const MigrationEnergyBudgetPolicy policy(500.0);
  const DataCenterSnapshot snap = one_vm_snapshot(1024.0);
  MigrationProposal p = proposal(1.0, 100.0, 0.0);
  p.from = 0;
  p.to = 1;
  p.cost_j = 300.0;
  EXPECT_TRUE(policy.allow(snap, p));
  p.cost_already_approved_j = 300.0;
  p.cost_j = 200.0;
  EXPECT_TRUE(policy.allow(snap, p));  // lands exactly on the budget
  p.cost_j = 201.0;
  EXPECT_FALSE(policy.allow(snap, p));
  EXPECT_THROW(MigrationEnergyBudgetPolicy(0.0), std::invalid_argument);
}

TEST(MigrationEnergyBudget, RejectsSameHostNoOp) {
  const MigrationEnergyBudgetPolicy policy(1e9);
  const DataCenterSnapshot snap = one_vm_snapshot(1024.0);
  MigrationProposal p = proposal(100.0, 100.0, 0.0);
  p.from = 3;
  p.to = 3;
  p.cost_j = 0.0;
  EXPECT_FALSE(policy.allow(snap, p));
  p.to = 4;
  p.distance = NetworkDistance::kSameHost;
  EXPECT_FALSE(policy.allow(snap, p));
}

TEST(MigrationEnergyBudget, ThrowsOnMissingCost) {
  const MigrationEnergyBudgetPolicy policy(1e9);
  const DataCenterSnapshot snap = one_vm_snapshot(1024.0);
  MigrationProposal p = proposal(1.0, 100.0, 0.0);
  p.from = 0;
  p.to = 1;
  p.cost_j = -1.0;
  EXPECT_THROW(static_cast<void>(policy.allow(snap, p)), std::invalid_argument);
}

TEST(BandwidthBudget, EnforcesCumulativeCap) {
  const BandwidthBudgetPolicy policy(1000.0);
  const DataCenterSnapshot snap = one_vm_snapshot(1024.0);
  EXPECT_TRUE(policy.allow(snap, proposal(0.0, 600.0, 0.0)));
  EXPECT_TRUE(policy.allow(snap, proposal(0.0, 400.0, 600.0)));
  EXPECT_FALSE(policy.allow(snap, proposal(0.0, 401.0, 600.0)));
  EXPECT_THROW(BandwidthBudgetPolicy(0.0), std::invalid_argument);
}

TEST(MinBenefit, FlatThreshold) {
  const MinBenefitPolicy policy(10.0);
  const DataCenterSnapshot snap = one_vm_snapshot(1024.0);
  EXPECT_TRUE(policy.allow(snap, proposal(10.0, 0.0, 0.0)));
  EXPECT_FALSE(policy.allow(snap, proposal(9.9, 0.0, 0.0)));
}

TEST(MinBenefit, MemoryScaledThreshold) {
  // Threshold = 5 W + 2 W/GB; a 4 GB VM needs >= 13 W of benefit.
  const MinBenefitPolicy policy(5.0, 2.0);
  const DataCenterSnapshot snap = one_vm_snapshot(4096.0);
  EXPECT_TRUE(policy.allow(snap, proposal(13.0, 0.0, 0.0)));
  EXPECT_FALSE(policy.allow(snap, proposal(12.9, 0.0, 0.0)));
  EXPECT_THROW(MinBenefitPolicy(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::consolidate
