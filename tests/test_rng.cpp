#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/statistics.hpp"

namespace vdc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo = saw_lo || x == 1;
    saw_hi = saw_hi || x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(2.0, 1.0, 10.0);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 10.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoMatchesAnalyticMean) {
  // Mean of bounded Pareto(alpha=2, L=1, H=10) is
  // L^a/(1-(L/H)^a) * a/(a-1) * (L^{1-a} - H^{1-a}).
  const double alpha = 2.0;
  const double lo = 1.0;
  const double hi = 10.0;
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double expected = la / (1.0 - la / ha) * alpha / (alpha - 1.0) *
                          (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.bounded_pareto(alpha, lo, hi));
  EXPECT_NEAR(s.mean(), expected, 0.03 * expected);
}

TEST(Rng, BoundedParetoRejectsBadBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.bounded_pareto(2.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(2.0, 2.0, 1.0), std::invalid_argument);
}

// Regression: exponential(0.0) divided by zero building the distribution
// (rate 1/0 = inf) and negative/NaN means were accepted just as silently.
TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_THROW(rng.exponential(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

// Regression: alpha <= 0 inverted the bounded-Pareto CDF tail and produced
// samples outside [lo, hi] without any diagnostic.
TEST(Rng, BoundedParetoRejectsNonPositiveAlpha) {
  Rng rng(1);
  EXPECT_THROW(rng.bounded_pareto(0.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(-1.5, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(std::numeric_limits<double>::quiet_NaN(), 1.0, 10.0),
               std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(-1.0, 3.0));
  EXPECT_NEAR(s.mean(), -1.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child stream must not mirror the parent's subsequent outputs.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace vdc::util
