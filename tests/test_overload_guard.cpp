#include "core/overload_guard.hpp"

#include <gtest/gtest.h>

namespace vdc::core {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;

Cluster guarded_cluster() {
  Cluster c;
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  c.add_server(Server(datacenter::dual_core_2ghz(), datacenter::power_model_dual_2ghz(),
                      16384.0));
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  return c;
}

Vm make_vm(double demand, double memory = 512.0) {
  Vm vm;
  vm.cpu_demand_ghz = demand;
  vm.memory_mb = memory;
  return vm;
}

OverloadGuardConfig trigger_after(std::size_t checks) {
  OverloadGuardConfig config;
  config.trigger_after_checks = checks;
  return config;
}

TEST(OverloadGuard, NoActionWithoutOverload) {
  Cluster c = guarded_cluster();
  (void)c.add_vm(make_vm(1.0), 0);
  OverloadGuard guard;
  const OverloadGuardReport report = guard.check(c, 0.0);
  EXPECT_EQ(report.overloaded_servers, 0u);
  EXPECT_EQ(report.migrations, 0u);
}

TEST(OverloadGuard, DebouncesTransientOverload) {
  Cluster c = guarded_cluster();
  const auto vm = c.add_vm(make_vm(4.0), 0);  // 4 > 3 GHz capacity
  OverloadGuard guard(trigger_after(3));
  EXPECT_EQ(guard.check(c, 0.0).migrations, 0u);  // strike 1
  // Overload disappears: counter resets.
  c.vm(vm).cpu_demand_ghz = 1.0;
  EXPECT_EQ(guard.check(c, 1.0).migrations, 0u);
  c.vm(vm).cpu_demand_ghz = 4.0;
  EXPECT_EQ(guard.check(c, 2.0).migrations, 0u);  // strike 1 again
  EXPECT_EQ(guard.check(c, 3.0).migrations, 0u);  // strike 2
  const OverloadGuardReport report = guard.check(c, 4.0);  // strike 3 -> act
  EXPECT_EQ(report.overloaded_servers, 1u);
  EXPECT_GE(report.migrations, 1u);
  EXPECT_TRUE(c.overloaded_servers().empty());
}

TEST(OverloadGuard, MovesSmallestVmsToRelieve) {
  Cluster c = guarded_cluster();
  (void)c.add_vm(make_vm(2.5), 0);
  const auto small = c.add_vm(make_vm(0.8), 0);  // total 3.3 > 3 GHz
  OverloadGuard guard(trigger_after(1));
  const OverloadGuardReport report = guard.check(c, 10.0);
  EXPECT_EQ(report.migrations, 1u);
  EXPECT_NE(c.host_of(small), 0u) << "the smallest VM is the one moved";
  EXPECT_TRUE(c.overloaded_servers().empty());
  EXPECT_EQ(c.migration_log().count(), 1u);
}

TEST(OverloadGuard, WakesSleepingServerWhenActiveOnesAreFull) {
  Cluster c = guarded_cluster();
  c.server(1).set_state(datacenter::ServerState::kSleeping);
  c.server(2).set_state(datacenter::ServerState::kSleeping);
  (void)c.add_vm(make_vm(2.0), 0);
  (void)c.add_vm(make_vm(2.0), 0);  // 4 > 3 GHz, no active alternative
  OverloadGuard guard(trigger_after(1));
  const OverloadGuardReport report = guard.check(c, 0.0);
  EXPECT_GE(report.migrations, 1u);
  EXPECT_GE(report.woken_servers, 1u);
  EXPECT_TRUE(c.overloaded_servers().empty());
  EXPECT_EQ(guard.total_activations(), report.woken_servers);
}

TEST(OverloadGuard, ReportsUnplacedWhenClusterSaturated) {
  datacenter::Cluster c;
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  (void)c.add_vm(make_vm(2.0), 0);
  (void)c.add_vm(make_vm(2.0), 0);  // nowhere else to go
  OverloadGuard guard(trigger_after(1));
  const OverloadGuardReport report = guard.check(c, 0.0);
  EXPECT_GT(report.unplaced, 0u);
  EXPECT_EQ(report.migrations, 0u);
  // The evicted-but-unplaced VM stays where it was.
  EXPECT_EQ(c.vms_on(0).size(), 2u);
}

TEST(OverloadGuard, CountersAccumulateAcrossChecks) {
  Cluster c = guarded_cluster();
  const auto vm = c.add_vm(make_vm(4.0), 0);
  OverloadGuard guard(trigger_after(1));
  (void)guard.check(c, 0.0);
  const std::size_t first = guard.total_migrations();
  EXPECT_GE(first, 1u);
  // Re-overload the new host.
  c.vm(vm).cpu_demand_ghz = 30.0;
  (void)guard.check(c, 1.0);
  (void)guard.check(c, 2.0);
  EXPECT_GE(guard.total_migrations(), first);
}

}  // namespace
}  // namespace vdc::core
