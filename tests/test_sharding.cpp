// Sharded-engine equivalence suite (the differential oracle of the
// sharding work).
//
// The sharded engine partitions the applications into N shards, each with
// its own event loop, telemetry recorder, and sensor-fault stream, advanced
// concurrently between control-period barriers. The contract is strict
// determinism: a run at ANY shard count and ANY thread count must be
// bit-identical to the single-event-loop legacy engine (shards == 0) —
// same telemetry bytes, same consolidation decisions, same fault counters.
// These tests enforce that contract over the healthy optimizer path, a
// chaos plan touching every shard-relevant fault family, and horizontal
// replication (whose retire callbacks cross the shard boundary).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "fault/plan.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulation.hpp"
#include "telemetry/export.hpp"

namespace vdc {
namespace {

// ---- ShardedEngine unit behavior --------------------------------------------

TEST(ShardedEngine, LegacyModeAliasesSpine) {
  sim::ShardedEngine engine(0);
  EXPECT_EQ(engine.shard_count(), 0u);
  EXPECT_EQ(&engine.shard(0), &engine.spine());
  EXPECT_EQ(&engine.shard(5), &engine.spine());

  int fired = 0;
  engine.spine().schedule(1.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.barriers(), 0u);  // legacy mode: plain run_until, no barriers
  EXPECT_EQ(engine.now(), 2.0);
}

TEST(ShardedEngine, ShardsAreDistinctLoops) {
  sim::ShardedEngine engine(3, 1);
  EXPECT_EQ(engine.shard_count(), 3u);
  EXPECT_NE(&engine.shard(0), &engine.spine());
  EXPECT_NE(&engine.shard(0), &engine.shard(1));
  EXPECT_NE(&engine.shard(1), &engine.shard(2));
}

TEST(ShardedEngine, BarrierOrderRunsShardEventsBeforeSpineAtEqualTime) {
  // The tie-break policy: at a barrier time T, every shard is advanced
  // through T before the spine executes its own events at T. A spine event
  // at T must therefore observe the effects of shard events at T.
  sim::ShardedEngine engine(2, 1);
  std::vector<int> order;
  engine.shard(0).schedule(10.0, [&] { order.push_back(0); });
  engine.shard(1).schedule(10.0, [&] { order.push_back(1); });
  engine.spine().schedule(10.0, [&] { order.push_back(2); });
  engine.run_until(20.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_GE(engine.barriers(), 1u);
}

TEST(ShardedEngine, SpineEventsChainAcrossBarriers) {
  // A spine event that schedules a follow-up spawns a new barrier; shard
  // work in between must be drained up to each barrier time in turn.
  sim::ShardedEngine engine(2, 1);
  std::vector<double> shard_times;
  for (double t = 1.0; t < 10.0; t += 1.0) {
    engine.shard(0).schedule(t, [&, t] { shard_times.push_back(t); });
  }
  int ticks = 0;
  std::function<void()> tick = [&] {
    // Every shard event at or before this barrier has already run.
    EXPECT_EQ(shard_times.size(), static_cast<std::size_t>(ticks) * 3 + 3);
    ++ticks;
    if (ticks < 3) engine.spine().schedule_after(3.0, tick);
  };
  engine.spine().schedule(3.0, tick);
  engine.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(shard_times.size(), 9u);
  EXPECT_EQ(engine.barriers(), 3u);
}

TEST(ShardedEngine, CountersAggregateAcrossLoops) {
  sim::ShardedEngine engine(2, 1);
  engine.shard(0).schedule(1.0, [] {});
  engine.shard(1).schedule(2.0, [] {});
  engine.spine().schedule(3.0, [] {});
  EXPECT_EQ(engine.pending_events(), 3u);
  engine.run_until(5.0);
  EXPECT_EQ(engine.events_executed(), 3u);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(ShardedEngine, NextEventTimeSkipsCancelledEntries) {
  sim::Simulation sim;
  const sim::EventId early = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_EQ(*sim.next_event_time(), 1.0);
  sim.cancel(early);
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_EQ(*sim.next_event_time(), 2.0);
  sim.run_until(3.0);
  EXPECT_FALSE(sim.next_event_time().has_value());
}

// ---- Testbed equivalence: sharded == legacy, bit for bit --------------------

/// One identification run shared by every scenario below (the controllers
/// are instances of the same benchmark app, as on the paper's testbed).
const control::ArxModel& shared_model() {
  static const core::SysIdExperimentResult identified = [] {
    core::SysIdExperimentConfig sysid;
    sysid.periods = 120;
    return core::identify_app_model(app::default_two_tier_app("shard", 2001, 40), sysid);
  }();
  return identified.model;
}

core::ScenarioSpec base_spec() {
  core::ScenarioSpec spec;
  spec.name = "shard-equivalence";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 4;
  spec.testbed.num_servers = 3;
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.model = shared_model();
  spec.seed = 7;
  spec.duration_s = 400.0;
  return spec;
}

struct RunDigest {
  std::string csv;
  std::size_t migrations = 0;
  std::size_t optimizer_invocations = 0;
  std::size_t failed_migrations = 0;
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::size_t fault_total = 0;
  core::ScenarioResult result;
};

RunDigest run_with(core::ScenarioSpec spec, std::size_t shards, std::size_t threads) {
  spec.testbed.shards = shards;
  spec.testbed.shard_threads = threads;
  RunDigest digest;
  digest.result = core::ScenarioRunner().run(spec);
  digest.csv = telemetry::to_csv(digest.result.recorder);
  digest.migrations = digest.result.completed_migrations;
  digest.optimizer_invocations = digest.result.optimizer_invocations;
  digest.failed_migrations = digest.result.failed_migrations;
  digest.scale_outs = digest.result.scale_outs;
  digest.scale_ins = digest.result.scale_ins;
  digest.fault_total = digest.result.faults.total();
  return digest;
}

void expect_equivalent(const RunDigest& oracle, const RunDigest& sharded,
                       const std::string& label) {
  EXPECT_EQ(oracle.csv, sharded.csv) << label << ": telemetry CSV diverged";
  EXPECT_TRUE(oracle.result.recorder == sharded.result.recorder)
      << label << ": recorder contents diverged";
  EXPECT_EQ(oracle.migrations, sharded.migrations) << label;
  EXPECT_EQ(oracle.optimizer_invocations, sharded.optimizer_invocations) << label;
  EXPECT_EQ(oracle.failed_migrations, sharded.failed_migrations) << label;
  EXPECT_EQ(oracle.scale_outs, sharded.scale_outs) << label;
  EXPECT_EQ(oracle.scale_ins, sharded.scale_ins) << label;
  EXPECT_EQ(oracle.fault_total, sharded.fault_total) << label;
}

TEST(ShardingEquivalence, OptimizerRunMatchesLegacyAtEveryShardAndThreadCount) {
  const RunDigest oracle = run_with(base_spec(), 0, 0);
  ASSERT_FALSE(oracle.csv.empty());
  EXPECT_GT(oracle.optimizer_invocations, 0u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const RunDigest sharded = run_with(base_spec(), shards, threads);
      expect_equivalent(oracle, sharded,
                        "shards=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads));
    }
  }
}

TEST(ShardingEquivalence, ChaosRunMatchesLegacyAcrossShardCounts) {
  // Every shard-relevant fault family at once: per-app sensor streams
  // (drop/spike/stale draw from splitmix64-derived per-app RNGs, so the
  // sequences cannot depend on the shard layout), plus spine-serial dc
  // faults (crash, DVFS pin, migration aborts) that must interleave with
  // the shard barriers exactly as in the legacy engine.
  core::ScenarioSpec spec = base_spec();
  spec.name = "shard-chaos";
  spec.faults.seed = 99;
  spec.faults.sensor_dropout(40.0, 200.0, 0.2, 1);
  spec.faults.sensor_spikes(80.0, 240.0, 3.0, 0.15, 2);
  spec.faults.sensor_stale(120.0, 160.0, 0);
  spec.faults.server_crash(1, 150.0, 260.0);
  spec.faults.dvfs_pin(0, 1.2, 60.0, 300.0);
  spec.faults.migration_aborts(0.0, 400.0, 0.5);

  const RunDigest oracle = run_with(spec, 0, 0);
  EXPECT_GT(oracle.fault_total, 0u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const RunDigest sharded = run_with(spec, shards, 4);
    expect_equivalent(oracle, sharded, "chaos shards=" + std::to_string(shards));
    EXPECT_EQ(oracle.result.faults.sensor_drops, sharded.result.faults.sensor_drops);
    EXPECT_EQ(oracle.result.faults.sensor_spikes, sharded.result.faults.sensor_spikes);
    EXPECT_EQ(oracle.result.faults.stale_periods, sharded.result.faults.stale_periods);
    EXPECT_EQ(oracle.result.faults.server_crashes, sharded.result.faults.server_crashes);
    EXPECT_EQ(oracle.result.faults.dvfs_pins, sharded.result.faults.dvfs_pins);
  }
}

TEST(ShardingEquivalence, ReplicatedRunMatchesLegacy) {
  // initial_replicas > 1 activates the replica telemetry and the
  // cross-shard retire path (drained replicas tombstone their cluster VM
  // from inside the shard advance, under the testbed's retire mutex).
  core::ScenarioSpec spec = base_spec();
  spec.name = "shard-replication";
  spec.testbed.initial_replicas = 2;
  spec.testbed.supervisor.enabled = true;

  const RunDigest oracle = run_with(spec, 0, 0);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const RunDigest sharded = run_with(spec, shards, 4);
    expect_equivalent(oracle, sharded, "replication shards=" + std::to_string(shards));
  }
}

TEST(ShardingEquivalence, ScheduleEventsLandInTheSerialPhase) {
  // External setpoint/concurrency schedules go to the spine; at a shard
  // count that splits the apps they must still produce the oracle's bytes.
  core::ScenarioSpec spec = base_spec();
  spec.name = "shard-schedules";
  spec.setpoint_schedule.push_back({200.0, 1, 0.6});
  spec.concurrency_schedule.push_back({240.0, 3, 60});

  const RunDigest oracle = run_with(spec, 0, 0);
  const RunDigest sharded = run_with(spec, 3, 2);
  expect_equivalent(oracle, sharded, "schedules shards=3");
}

TEST(ShardingEquivalence, ShardCountAboveAppCountIsHarmless) {
  // More shards than apps leaves some shards empty; empty loops must not
  // disturb the barrier protocol or the merged recorder layout.
  const RunDigest oracle = run_with(base_spec(), 0, 0);
  const RunDigest sharded = run_with(base_spec(), 8, 2);
  expect_equivalent(oracle, sharded, "shards=8 apps=4");
}

}  // namespace
}  // namespace vdc
