#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  }
  return m;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(static_cast<void>(m(2, 0)), std::out_of_range);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  const std::vector<double> d = {2.0, 5.0};
  const Matrix diag = Matrix::diag(d);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(Matrix, ArithmeticShapesChecked) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
  EXPECT_NO_THROW(a * b);
  EXPECT_THROW(b * b, std::invalid_argument);
}

TEST(Matrix, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x = {1.0, -1.0};
  const Vector y = a * std::span<const double>(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, TransposeProperty) {
  util::Rng rng(3);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix b = random_matrix(3, 5, rng);
  const Matrix lhs = (a * b).transpose();
  const Matrix rhs = b.transpose() * a.transpose();
  EXPECT_LT((lhs - rhs).max_abs(), 1e-12);
}

TEST(Matrix, BlockRoundTrip) {
  util::Rng rng(5);
  Matrix big(6, 6);
  const Matrix small = random_matrix(2, 3, rng);
  big.set_block(1, 2, small);
  EXPECT_EQ(big.block(1, 2, 2, 3), small);
  EXPECT_THROW(big.set_block(5, 5, small), std::out_of_range);
  EXPECT_THROW(big.block(5, 5, 2, 2), std::out_of_range);
}

TEST(Matrix, NormAndMaxAbs) {
  const Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, ToStringContainsEntries) {
  const Matrix m{{1.5}};
  EXPECT_NE(m.to_string().find("1.5"), std::string::npos);
}

TEST(VectorOps, DotNormAxpy) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  std::vector<double> c = a;
  axpy(2.0, b, c);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[2], 4.0);
  EXPECT_THROW(static_cast<void>(dot(a, std::vector<double>{1.0})), std::invalid_argument);
}

TEST(VectorOps, AddSubScale) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(scale(a, -2.0), (Vector{-2.0, -4.0}));
}

TEST(SpectralRadius, DiagonalMatrix) {
  const Matrix m = Matrix::diag(std::vector<double>{0.5, -0.9, 0.2});
  EXPECT_NEAR(spectral_radius(m), 0.9, 1e-6);
}

TEST(SpectralRadius, RotationWithContraction) {
  // 0.8 * rotation: complex eigenvalues of modulus 0.8 (plain power
  // iteration on a vector oscillates here; the squaring estimator must not).
  const double s = 0.8;
  const Matrix m{{0.0, -s}, {s, 0.0}};
  EXPECT_NEAR(spectral_radius(m), 0.8, 1e-6);
}

TEST(SpectralRadius, UnstableMatrixDetected) {
  const Matrix m{{1.05, 1.0}, {0.0, 0.3}};
  EXPECT_NEAR(spectral_radius(m), 1.05, 1e-4);
}

TEST(SpectralRadius, ZeroMatrix) {
  EXPECT_DOUBLE_EQ(spectral_radius(Matrix(3, 3)), 0.0);
}

TEST(SpectralRadius, RequiresSquare) {
  EXPECT_THROW(static_cast<void>(spectral_radius(Matrix(2, 3))), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::linalg
