// End-to-end integration tests spanning identification -> control ->
// arbitration -> consolidation, mirroring the paper's two-level
// architecture on small instances.
#include <gtest/gtest.h>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "app/workload.hpp"
#include "control/stability.hpp"
#include "core/power_optimizer.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "core/testbed.hpp"
#include "sim/simulation.hpp"

namespace vdc {
namespace {

TEST(Integration, SysIdToControllerPipelineConverges) {
  const app::AppConfig app_config = app::default_two_tier_app("e2e", 11, 40);
  core::SysIdExperimentConfig sysid;
  sysid.periods = 300;
  const core::SysIdExperimentResult identified =
      core::identify_app_model(app_config, sysid);
  ASSERT_GT(identified.r_squared, 0.4);

  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;

  // The tuned loop must be nominally stable before deployment.
  const control::StabilityReport stability =
      control::analyze_closed_loop(identified.model, mpc);
  ASSERT_TRUE(stability.stable);

  sim::Simulation sim;
  app::MultiTierApp live(sim, app_config);
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.6);
  live.set_allocations(initial);
  live.start();
  core::ResponseTimeController controller(identified.model, mpc, initial);

  util::RunningStats tail;
  for (int k = 1; k <= 200; ++k) {
    sim.run_until(4.0 * k);
    live.set_allocations(controller.control(monitor.harvest()));
    if (k > 75) tail.add(controller.last_measurement());
  }
  EXPECT_NEAR(tail.mean(), 1.0, 0.2);
}

TEST(Integration, ControllerSurvivesSurgeSchedule) {
  const app::AppConfig app_config = app::default_two_tier_app("surge", 13, 40);
  core::SysIdExperimentConfig sysid;
  sysid.periods = 300;
  const auto identified = core::identify_app_model(app_config, sysid);

  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;

  sim::Simulation sim;
  app::MultiTierApp live(sim, app_config);
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.6);
  live.set_allocations(initial);
  live.start();
  apply_schedule(sim, live, app::surge_schedule(40, 400.0, 800.0));
  core::ResponseTimeController controller(identified.model, mpc, initial);

  util::RunningStats surge_tail;  // late surge: controller has adapted
  for (int k = 1; k <= 300; ++k) {
    sim.run_until(4.0 * k);
    live.set_allocations(controller.control(monitor.harvest()));
    const double t = sim.now();
    if (t > 600.0 && t <= 800.0) surge_tail.add(controller.last_measurement());
  }
  EXPECT_NEAR(surge_tail.mean(), 1.0, 0.4);
}

TEST(Integration, TwoLevelSystemOptimizerOnTestbedCluster) {
  // Run the testbed (application-level control), then hand its cluster to
  // the data-center-level optimizer: demands set by the controllers drive
  // consolidation decisions.
  core::TestbedConfig config;
  config.num_apps = 2;
  config.num_servers = 4;  // deliberately oversized
  config.sysid.periods = 250;
  core::Testbed tb{config};
  tb.run_until(200.0);

  datacenter::Cluster cluster = tb.cluster();  // copy for offline planning
  core::OptimizerConfig opt_config;
  opt_config.algorithm = core::ConsolidationAlgorithm::kIpac;
  opt_config.utilization_target = 0.9;
  core::PowerOptimizer optimizer(opt_config);
  const core::OptimizationOutcome outcome = optimizer.optimize(cluster, tb.now());
  // Four tier VMs at ~0.5-0.8 GHz each fit on fewer than four servers.
  EXPECT_LT(outcome.active_after, outcome.active_before);
  EXPECT_EQ(cluster.overloaded_servers().size(), 0u);
}

TEST(Integration, InfeasibleSlaIsFlagged) {
  // Set point far below what the application can deliver even at c_max with
  // an extreme workload: the controller rails its actuators and must raise
  // the infeasibility flag instead of pretending to track.
  const app::AppConfig app_config = app::default_two_tier_app("iobound", 17, 200);
  core::SysIdExperimentConfig sysid;
  sysid.periods = 250;
  const auto identified = core::identify_app_model(app_config, sysid);

  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 0.05;  // 50 ms: unreachable at concurrency 200 within c_max
  mpc.c_min = {0.15};
  mpc.c_max = {0.8};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;

  sim::Simulation sim;
  app::MultiTierApp live(sim, app_config);
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.5);
  live.set_allocations(initial);
  live.start();
  core::ResponseTimeController controller(identified.model, mpc, initial);
  for (int k = 1; k <= 80; ++k) {
    sim.run_until(4.0 * k);
    live.set_allocations(controller.control(monitor.harvest()));
  }
  EXPECT_TRUE(controller.sla_infeasible());

  // Sanity: a reachable set point must NOT be flagged.
  core::ResponseTimeController ok_controller(identified.model,
                                             [&] {
                                               control::MpcConfig c = mpc;
                                               c.setpoint = 1.5;
                                               c.c_max = {1.5};
                                               return c;
                                             }(),
                                             initial);
  sim::Simulation sim2;
  app::MultiTierApp live2(sim2, app::default_two_tier_app("ok", 18, 40));
  app::ResponseTimeMonitor monitor2(0.9);
  live2.set_response_callback([&](double, double rt) { monitor2.record(rt); });
  live2.set_allocations(initial);
  live2.start();
  for (int k = 1; k <= 80; ++k) {
    sim2.run_until(4.0 * k);
    live2.set_allocations(ok_controller.control(monitor2.harvest()));
  }
  EXPECT_FALSE(ok_controller.sla_infeasible());
}

TEST(Integration, PerAppSetpointsAreIndependent) {
  core::TestbedConfig config;
  config.num_apps = 2;
  config.num_servers = 2;
  config.sysid.periods = 250;
  core::Testbed tb{config};
  tb.set_setpoint(0, 0.7);
  tb.set_setpoint(1, 1.3);
  tb.run_until(600.0);
  EXPECT_NEAR(tb.response_stats_after(0, 250.0).mean(), 0.7, 0.2);
  EXPECT_NEAR(tb.response_stats_after(1, 250.0).mean(), 1.3, 0.35);
}

}  // namespace
}  // namespace vdc
