// End-to-end chaos tests: a fault window opens mid-run, the two-level
// controller degrades *gracefully* (stale-hold MPC, migration backoff,
// crash re-planning), and once the window clears the SLO is re-attained —
// all under the full auditor wall (any VDC_ASSERT/VDC_INVARIANT firing
// fails the test). Every scenario is deterministic: same spec, same faults,
// bit-identical telemetry on every rerun.
#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "fault/plan.hpp"
#include "telemetry/export.hpp"

namespace vdc::core {
namespace {

/// One cheap identification shared by every spec in this file.
const control::ArxModel& shared_model() {
  static const SysIdExperimentResult identified = [] {
    SysIdExperimentConfig sysid;
    sysid.periods = 120;
    return identify_app_model(app::default_two_tier_app("staging", 1001, 40), sysid);
  }();
  return identified.model;
}

ScenarioSpec standalone_spec(const char* name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.stack.app = app::default_two_tier_app("a", 1, 40);
  spec.model = shared_model();
  spec.seed = 7;
  spec.duration_s = 800.0;
  return spec;
}

ScenarioSpec testbed_spec(const char* name, std::size_t apps, std::size_t servers) {
  ScenarioSpec spec;
  spec.name = name;
  spec.engine = ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = apps;
  spec.testbed.num_servers = servers;
  spec.model = shared_model();
  spec.seed = 7;
  spec.duration_s = 800.0;
  return spec;
}

// ---- sensor faults: the MPC degrades and recovers ---------------------------

TEST(ChaosScenarios, SensorDropoutDegradesThenSloIsReattained) {
  ScenarioSpec spec = standalone_spec("dropout");
  spec.faults.sensor_dropout(200.0, 400.0, 0.9);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_GT(run.faults.sensor_drops, 0u);
  // After the window clears the controller re-converges onto the SLA.
  const util::RunningStats late = run.response_stats_after(0, 600.0);
  EXPECT_NEAR(late.mean(), spec.stack.mpc.setpoint, 0.3);
}

TEST(ChaosScenarios, StaleSensorTriggersMpcHoldAndRecovery) {
  ScenarioSpec spec = standalone_spec("stale");
  spec.faults.sensor_stale(200.0, 300.0);
  const ScenarioResult run = ScenarioRunner().run(spec);

  // Every control period inside [200, 300) held: 100 s / 4 s = 25 periods.
  EXPECT_EQ(run.stale_holds, 25u);
  // Holds mean frozen allocations: the decided demand must not move while
  // the pipeline is wedged. The tick at time t records series index
  // t/4 - 1, so the stale ticks at t = 200..296 are indices 49..73 and
  // must all equal the last fresh decision at index 48 (t = 196).
  const auto& allocs = run.allocation_series(0);
  const std::size_t last_fresh = 200 / 4 - 2;
  for (std::size_t k = last_fresh + 1; k <= last_fresh + 25; ++k) {
    EXPECT_EQ(allocs[k], allocs[last_fresh]) << "allocation moved during hold, tick " << k;
  }
  // And it recovers: post-window response returns to the set point.
  EXPECT_NEAR(run.response_stats_after(0, 600.0).mean(), spec.stack.mpc.setpoint, 0.3);
}

TEST(ChaosScenarios, SensorSpikesDoNotDestabilizeTheController) {
  ScenarioSpec spec = standalone_spec("spikes");
  spec.faults.sensor_spikes(200.0, 400.0, 10.0, 0.2);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_GT(run.faults.sensor_spikes, 0u);
  EXPECT_NEAR(run.response_stats_after(0, 600.0).mean(), spec.stack.mpc.setpoint, 0.3);
  // The corrupted measurements are *measurements*, not reality: the p90
  // the monitor reported during the window includes the spikes, but the
  // allocations stay inside the MPC's actuator bounds throughout.
  for (const std::vector<double>& a : run.allocation_series(0)) {
    for (const double ghz : a) {
      EXPECT_GE(ghz, 0.0);
      EXPECT_LE(ghz, spec.stack.mpc.c_max[0] + 1e-9);
    }
  }
}

// ---- datacenter faults: optimizer robustness --------------------------------

TEST(ChaosScenarios, MigrationAbortsAreRetriedAfterBackoff) {
  ScenarioSpec spec = testbed_spec("aborts", 3, 6);
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.testbed.optimizer_migration_backoff_s = 150.0;
  spec.duration_s = 900.0;
  // Every migration attempted before t = 300 rolls back at end-of-copy.
  spec.faults.migration_aborts(0.0, 300.0, 1.0);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_GT(run.failed_migrations, 0u);
  EXPECT_GT(run.faults.migration_aborts, 0u);
  // Once the window clears, the retried migrations land and consolidation
  // still happens: fewer active servers than the scattered start.
  EXPECT_GT(run.completed_migrations, 0u);
  const auto& active = run.recorder.values(kActiveServersSeries);
  ASSERT_FALSE(active.empty());
  EXPECT_LT(active.back(), 6.0);
  // SLOs survived the chaos (skip settling + the churn window).
  for (std::size_t i = 0; i < run.app_count; ++i) {
    EXPECT_NEAR(run.response_stats_after(i, 500.0).mean(), 1.0, 0.35) << "app " << i;
  }
}

TEST(ChaosScenarios, MigrationSlowdownDelaysButDoesNotPreventConsolidation) {
  ScenarioSpec spec = testbed_spec("slow", 3, 6);
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.duration_s = 900.0;
  spec.faults.migration_slowdown(0.0, 900.0, 5.0);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_GT(run.faults.migration_slowdowns, 0u);
  EXPECT_GT(run.completed_migrations, 0u);
  const auto& active = run.recorder.values(kActiveServersSeries);
  EXPECT_LT(active.back(), 6.0);
}

TEST(ChaosScenarios, ServerCrashEvictsRestartsAndReattainsSlo) {
  ScenarioSpec spec = testbed_spec("crash", 3, 4);
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.duration_s = 900.0;
  // Server 0 hosts app0-web and app2-web at t=0; it dies at t=60, before
  // the first optimizer pass (t=120) gets a chance to empty it, so the
  // crash is guaranteed to evict running VMs.
  spec.faults.server_crash(0, 60.0, 300.0);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_EQ(run.faults.server_crashes, 1u);
  // The evicted VMs were re-placed: restarts happened, nobody is homeless
  // at the end, and the controllers re-attained the SLA.
  EXPECT_GT(run.vm_restarts, 0u);
  for (std::size_t i = 0; i < run.app_count; ++i) {
    EXPECT_NEAR(run.response_stats_after(i, 650.0).mean(), 1.0, 0.35) << "app " << i;
  }
  // The crash and the recovery actions are visible in the annotations.
  bool saw_crash = false;
  bool saw_restart = false;
  bool saw_repair = false;
  for (const telemetry::Annotation& a : run.recorder.annotations()) {
    saw_crash |= a.label.find("server-crash srv0") != std::string::npos;
    saw_restart |= a.label.find("vm-restart") != std::string::npos;
    saw_repair |= a.label.find("server-repair srv0") != std::string::npos;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_repair);
}

TEST(ChaosScenarios, RackFailureEvictsWholeRackAndReplacesOffRack) {
  // 1 pod of 3 racks x 2 servers; rack 0 (servers 0-1) loses its PDU at
  // t=60 — before the first optimizer pass (t=120) could have emptied it —
  // and comes back at t=300. Both members crash together, so every VM the
  // rack hosted must be restarted on another rack's servers.
  TestbedConfig config;
  config.num_apps = 3;
  config.num_servers = 6;
  config.model = shared_model();
  config.seed = 7;
  config.enable_optimizer = true;
  config.optimizer_period_s = 120.0;
  config.topology = datacenter::Topology::uniform(1, 3, 2, 40.0);
  config.faults.rack_failure(0, 60.0, 300.0);
  Testbed bed(config);

  // Mid-window: the whole rack is dark, hosts nothing, and the evicted VMs
  // were re-placed onto the surviving racks (nobody is homeless).
  bed.run_until(200.0);
  const datacenter::Cluster& cluster = bed.cluster();
  for (const datacenter::ServerId s : cluster.topology().servers_in(0)) {
    EXPECT_TRUE(cluster.server(s).failed()) << "srv" << s;
    EXPECT_TRUE(cluster.vms_on(s).empty()) << "srv" << s;
  }
  EXPECT_GT(bed.vm_restarts(), 0u);
  EXPECT_TRUE(cluster.unplaced_vms().empty());

  bed.run_until(900.0);
  // One correlated failure injected, both member crashes visible through
  // the same counterset the per-server path uses.
  EXPECT_EQ(bed.fault_injector().counters().rack_failures, 1u);
  for (const datacenter::ServerId s : cluster.topology().servers_in(0)) {
    EXPECT_FALSE(cluster.server(s).failed()) << "srv" << s << " not repaired";
  }
  // SLOs re-attained once the dust settles.
  for (std::size_t i = 0; i < bed.app_count(); ++i) {
    EXPECT_NEAR(bed.response_stats_after(i, 650.0).mean(), 1.0, 0.35) << "app " << i;
  }
  // The failure and the repair are visible in the annotations.
  bool saw_failure = false;
  bool saw_repair = false;
  bool saw_restart = false;
  for (const telemetry::Annotation& a : bed.recorder().annotations()) {
    saw_failure |= a.label.find("rack-failure rack0") != std::string::npos;
    saw_repair |= a.label.find("rack-repair rack0") != std::string::npos;
    saw_restart |= a.label.find("vm-restart") != std::string::npos;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_repair);
  EXPECT_TRUE(saw_restart);
}

TEST(ChaosScenarios, DvfsPinIsAbsorbedByTheGrantRescale) {
  ScenarioSpec spec = testbed_spec("pin", 2, 2);
  // DVFS off => servers nominally run at their max frequency (2 GHz), so a
  // pin at the 1 GHz floor is a visible actuator fault. (With DVFS on the
  // arbitrator already sits at the floor under light load and a low pin
  // would be indistinguishable from normal operation.)
  spec.testbed.dvfs = false;
  spec.faults.dvfs_pin(0, 1.0, 200.0, 400.0);
  const ScenarioResult run = ScenarioRunner().run(spec);

  EXPECT_GT(run.faults.dvfs_pins, 0u);
  // Pinned at the low step, mean cluster frequency dips during the window.
  const auto& freq = run.recorder.values(kFrequencySeries);
  ASSERT_GT(freq.size(), 110u);
  double during = 0.0;
  double after = 0.0;
  for (std::size_t k = 55; k < 95; ++k) during += freq[k];   // t in (220, 380)
  for (std::size_t k = freq.size() - 40; k < freq.size(); ++k) after += freq[k];
  EXPECT_LT(during / 40.0, after / 40.0);
  // And the controllers recover once the actuator unsticks.
  for (std::size_t i = 0; i < run.app_count; ++i) {
    EXPECT_NEAR(run.response_stats_after(i, 600.0).mean(), 1.0, 0.35) << "app " << i;
  }
}

// ---- everything at once -----------------------------------------------------

TEST(ChaosScenarios, ChaosSoupRunsToCompletionDeterministically) {
  const auto soup = [] {
    ScenarioSpec spec = testbed_spec("soup", 3, 5);
    spec.testbed.enable_optimizer = true;
    spec.testbed.optimizer_period_s = 120.0;
    spec.testbed.optimizer_migration_backoff_s = 150.0;
    spec.duration_s = 900.0;
    spec.faults.migration_aborts(0.0, 400.0, 0.5)
        .migration_slowdown(0.0, 900.0, 2.0, 0.5)
        .wake_failures(0.0, 900.0, 0.5)
        .server_crash(1, 300.0, 500.0)
        .sensor_dropout(100.0, 300.0, 0.3)
        .sensor_spikes(400.0, 600.0, 5.0, 0.1)
        .sensor_stale(600.0, 650.0, 0)
        .dvfs_pin(2, 1.0, 200.0, 400.0);
    return spec;
  };
  const ScenarioResult a = ScenarioRunner().run(soup());
  const ScenarioResult b = ScenarioRunner().run(soup());

  EXPECT_GT(a.faults.total(), 0u);
  EXPECT_EQ(a.faults.server_crashes, 1u);
  EXPECT_GT(a.stale_holds, 0u);
  // Deterministic chaos: the rerun produced the identical world — every
  // recorded series, every annotation, every counter.
  EXPECT_EQ(a.recorder, b.recorder);
  EXPECT_EQ(telemetry::to_csv(a.recorder), telemetry::to_csv(b.recorder));
  EXPECT_EQ(telemetry::annotations_csv(a.recorder), telemetry::annotations_csv(b.recorder));
  EXPECT_EQ(a.faults.total(), b.faults.total());
  EXPECT_EQ(a.failed_migrations, b.failed_migrations);
  EXPECT_EQ(a.vm_restarts, b.vm_restarts);
  EXPECT_EQ(a.stale_holds, b.stale_holds);
}

TEST(ChaosScenarios, EmptyFaultPlanLeavesTestbedRunByteIdentical) {
  // The hooks must be invisible when idle: a spec with no fault windows
  // produces the same telemetry as one that never mentions faults.
  ScenarioSpec plain = testbed_spec("plain", 2, 2);
  plain.duration_s = 400.0;
  ScenarioSpec wired = plain;
  wired.faults = fault::FaultPlan{};  // explicit empty plan

  const ScenarioResult a = ScenarioRunner().run(plain);
  const ScenarioResult b = ScenarioRunner().run(wired);
  EXPECT_EQ(a.recorder, b.recorder);
  EXPECT_TRUE(a.recorder.annotations().empty());
  EXPECT_EQ(a.faults.total(), 0u);
}

}  // namespace
}  // namespace vdc::core
