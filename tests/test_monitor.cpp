#include "app/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace vdc::app {
namespace {

TEST(Monitor, RejectsBadQuantile) {
  EXPECT_THROW(ResponseTimeMonitor(-0.1), std::invalid_argument);
  EXPECT_THROW(ResponseTimeMonitor(1.5), std::invalid_argument);
}

TEST(Monitor, EmptyHarvestIsNullopt) {
  ResponseTimeMonitor m;
  EXPECT_FALSE(m.harvest().has_value());
}

TEST(Monitor, HarvestReportsPeriodStats) {
  ResponseTimeMonitor m(0.5);
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) m.record(x);
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 5u);
  EXPECT_DOUBLE_EQ(stats->mean, 3.0);
  EXPECT_DOUBLE_EQ(stats->quantile, 3.0);
  EXPECT_DOUBLE_EQ(stats->min, 1.0);
  EXPECT_DOUBLE_EQ(stats->max, 5.0);
}

TEST(Monitor, HarvestClearsPeriodBuffer) {
  ResponseTimeMonitor m;
  m.record(1.0);
  EXPECT_EQ(m.pending_samples(), 1u);
  (void)m.harvest();
  EXPECT_EQ(m.pending_samples(), 0u);
  EXPECT_FALSE(m.harvest().has_value());
}

TEST(Monitor, NinetiethPercentileDefault) {
  ResponseTimeMonitor m;  // q = 0.9
  for (int i = 1; i <= 101; ++i) m.record(static_cast<double>(i));
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->quantile, 91.0, 1e-9);
}

TEST(Monitor, LifetimeSpansAllPeriods) {
  ResponseTimeMonitor m(0.5);
  m.record(1.0);
  (void)m.harvest();
  m.record(3.0);
  (void)m.harvest();
  const PeriodStats life = m.lifetime();
  EXPECT_EQ(life.count, 2u);
  EXPECT_DOUBLE_EQ(life.mean, 2.0);
}

TEST(Monitor, LifetimeOnEmptyMonitorIsZeroed) {
  const ResponseTimeMonitor m;
  const PeriodStats life = m.lifetime();
  EXPECT_EQ(life.count, 0u);
  EXPECT_DOUBLE_EQ(life.mean, 0.0);
}

TEST(Monitor, ControlledValueFollowsMetricSelection) {
  const auto fill = [](ResponseTimeMonitor& m) {
    for (const double x : {1.0, 2.0, 3.0, 4.0, 10.0}) m.record(x);
  };
  ResponseTimeMonitor p90(0.9, SlaMetric::kQuantile);
  ResponseTimeMonitor mean(0.9, SlaMetric::kMean);
  ResponseTimeMonitor max(0.9, SlaMetric::kMax);
  fill(p90);
  fill(mean);
  fill(max);
  const auto sp = p90.harvest();
  const auto sm = mean.harvest();
  const auto sx = max.harvest();
  ASSERT_TRUE(sp && sm && sx);
  EXPECT_DOUBLE_EQ(sp->controlled, sp->quantile);
  EXPECT_DOUBLE_EQ(sm->controlled, 4.0);   // mean of the five samples
  EXPECT_DOUBLE_EQ(sx->controlled, 10.0);  // maximum
  EXPECT_EQ(mean.metric(), SlaMetric::kMean);
  EXPECT_DOUBLE_EQ(p90.quantile_level(), 0.9);
}

TEST(Monitor, MetricNames) {
  EXPECT_EQ(to_string(SlaMetric::kQuantile), "quantile");
  EXPECT_EQ(to_string(SlaMetric::kMean), "mean");
  EXPECT_EQ(to_string(SlaMetric::kMax), "max");
}

TEST(Monitor, DefaultControlledIsNinetiethPercentile) {
  ResponseTimeMonitor m;
  for (int i = 1; i <= 101; ++i) m.record(static_cast<double>(i));
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_DOUBLE_EQ(stats->controlled, stats->quantile);
}

// ---- degraded sensor pipeline (fault injection) -----------------------------

TEST(Monitor, AllSamplesDroppedStillYieldsAPeriod) {
  // "Every sample lost" and "no requests arrived" must be distinguishable:
  // the former harvests a zero-count period with the drop tally, the
  // latter harvests nothing at all.
  ResponseTimeMonitor m;
  m.note_dropped();
  m.note_dropped();
  m.note_dropped();
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 0u);
  EXPECT_EQ(stats->dropped, 3u);
  EXPECT_FALSE(stats->stale);
  EXPECT_DOUBLE_EQ(stats->mean, 0.0);
  EXPECT_DOUBLE_EQ(stats->quantile, 0.0);
}

TEST(Monitor, DropTallyRidesAlongWithSurvivingSamples) {
  ResponseTimeMonitor m(0.5);
  m.record(2.0);
  m.note_dropped();
  m.record(4.0);
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 2u);
  EXPECT_EQ(stats->dropped, 1u);
  EXPECT_DOUBLE_EQ(stats->mean, 3.0);
}

TEST(Monitor, DropTallyResetsEachPeriod) {
  ResponseTimeMonitor m;
  m.note_dropped();
  ASSERT_TRUE(m.harvest().has_value());
  EXPECT_FALSE(m.harvest().has_value());  // clean period: nothing to report
  m.record(1.0);
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->dropped, 0u);
}

TEST(Monitor, StaleFlagSurfacesAndClears) {
  ResponseTimeMonitor m;
  m.record(1.0);
  m.mark_stale();
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->stale);
  EXPECT_EQ(stats->count, 1u);  // the numbers are there, just untrustworthy
  m.record(1.0);
  const auto next = m.harvest();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->stale);
}

TEST(Monitor, StaleWithNoSamplesStillYieldsAPeriod) {
  ResponseTimeMonitor m;
  m.mark_stale();
  const auto stats = m.harvest();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->stale);
  EXPECT_EQ(stats->count, 0u);
}

TEST(Monitor, RejectsNaNSamples) {
  ResponseTimeMonitor m;
  m.record(1.0);
  EXPECT_THROW(m.record(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_EQ(m.pending_samples(), 1u);  // rejected sample left no trace
}

TEST(Monitor, PercentilePathBitIdenticalToTsdbRollups) {
  // The monitor's per-period percentile and the telemetry store's tier-1
  // rollups run the same util::WindowStats accumulator — the regression
  // this test pins is that both report EXACTLY the same doubles for the
  // same samples, so dashboards reading rollups agree with the controller's
  // feedback to the last bit.
  ResponseTimeMonitor m(0.9);
  telemetry::tsdb::TsdbConfig config;
  config.tier1_period_s = 4.0;
  telemetry::tsdb::Tsdb db(config);
  const telemetry::tsdb::MetricId id = db.declare("rt");

  util::Rng rng(99);
  double t = 0.1;
  std::vector<app::PeriodStats> harvested;
  for (int period = 0; period < 50; ++period) {
    const std::int64_t n = rng.uniform_int(1, 40);
    for (std::int64_t k = 0; k < n; ++k) {
      const double rt = rng.uniform(0.01, 2.5);
      m.record(rt);
      ASSERT_TRUE(db.append(id, t, rt));
      t += 4.0 / static_cast<double>(n + 1);
    }
    const auto stats = m.harvest();
    ASSERT_TRUE(stats.has_value());
    harvested.push_back(*stats);
    t = std::ceil(t / 4.0) * 4.0 + 0.1;  // next control period
  }

  const std::vector<telemetry::tsdb::RollupPoint> rollups = db.rollups(
      id, telemetry::tsdb::Tier::kPeriod, -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity());
  ASSERT_EQ(rollups.size(), harvested.size());
  for (std::size_t k = 0; k < rollups.size(); ++k) {
    EXPECT_EQ(rollups[k].count, harvested[k].count) << "period " << k;
    EXPECT_EQ(rollups[k].p90, harvested[k].quantile) << "period " << k;
    EXPECT_EQ(rollups[k].mean, harvested[k].mean) << "period " << k;
    EXPECT_EQ(rollups[k].min, harvested[k].min) << "period " << k;
    EXPECT_EQ(rollups[k].max, harvested[k].max) << "period " << k;
  }
}

}  // namespace
}  // namespace vdc::app
