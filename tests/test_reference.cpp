#include "control/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vdc::control {
namespace {

TEST(Reference, ValidatesParameters) {
  EXPECT_THROW(ReferenceTrajectory(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ReferenceTrajectory(1.0, -1.0), std::invalid_argument);
}

TEST(Reference, AtZeroStepsEqualsCurrent) {
  const ReferenceTrajectory ref(4.0, 16.0);
  EXPECT_NEAR(ref.at(0, 2.0, 1.0), 2.0, 1e-12);
}

TEST(Reference, MatchesEquation3) {
  const double period = 4.0;
  const double tref = 16.0;
  const ReferenceTrajectory ref(period, tref);
  const double current = 3.0;
  const double setpoint = 1.0;
  for (std::size_t i = 1; i <= 10; ++i) {
    const double expected =
        setpoint - std::exp(-static_cast<double>(i) * period / tref) * (setpoint - current);
    EXPECT_NEAR(ref.at(i, current, setpoint), expected, 1e-12);
  }
}

TEST(Reference, MonotoneApproachFromAbove) {
  const ReferenceTrajectory ref(4.0, 16.0);
  double prev = 5.0;
  for (std::size_t i = 1; i <= 20; ++i) {
    const double r = ref.at(i, 5.0, 1.0);
    EXPECT_LT(r, prev);
    EXPECT_GT(r, 1.0);
    prev = r;
  }
}

TEST(Reference, MonotoneApproachFromBelow) {
  const ReferenceTrajectory ref(4.0, 16.0);
  double prev = 0.2;
  for (std::size_t i = 1; i <= 20; ++i) {
    const double r = ref.at(i, 0.2, 1.0);
    EXPECT_GT(r, prev);
    EXPECT_LT(r, 1.0);
    prev = r;
  }
}

TEST(Reference, SmallerTrefConvergesFaster) {
  const ReferenceTrajectory fast(4.0, 8.0);
  const ReferenceTrajectory slow(4.0, 32.0);
  // Starting above the set point, the fast trajectory is closer after the
  // same number of steps.
  EXPECT_LT(fast.at(3, 2.0, 1.0), slow.at(3, 2.0, 1.0));
}

TEST(Reference, HorizonMatchesPointwise) {
  const ReferenceTrajectory ref(4.0, 16.0);
  const std::vector<double> h = ref.horizon(5, 2.0, 1.0);
  ASSERT_EQ(h.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(h[i], ref.at(i + 1, 2.0, 1.0));
  }
}

TEST(Reference, AtSetpointStaysAtSetpoint) {
  const ReferenceTrajectory ref(4.0, 16.0);
  for (std::size_t i = 0; i <= 10; ++i) {
    EXPECT_NEAR(ref.at(i, 1.0, 1.0), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace vdc::control
