// Concurrency stress for the parallel substrate: hammers util::ThreadPool
// and util::parallel_for from many producer threads, and runs a large
// ScenarioRunner table under worker contention. Primarily a TSan target
// (the CI thread-sanitizer job runs the whole suite with
// -DVDC_SANITIZE=thread); under a plain build it still verifies the
// functional contracts — exception propagation, drain-on-shutdown, and
// bit-exact spec-order results.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "app/multi_tier_app.hpp"
#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "util/thread_pool.hpp"

namespace vdc {
namespace {

constexpr int kProducers = 4;
constexpr int kTasksPerProducer = 64;

TEST(ThreadPoolStress, ConcurrentSubmittersFromManyThreads) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};

  std::vector<std::thread> producers;
  std::vector<std::future<int>> futures[kProducers];
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures[p].push_back(pool.submit([&counter, p, t] {
          counter.fetch_add(1, std::memory_order_relaxed);
          return p * kTasksPerProducer + t;
        }));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  long long sum = 0;
  for (auto& per_producer : futures) {
    for (std::future<int>& f : per_producer) sum += f.get();
  }
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
  const long long n = kProducers * kTasksPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);  // every task id delivered exactly once
}

TEST(ThreadPoolStress, TaskExceptionsReachTheFutureAndPoolSurvives) {
  util::ThreadPool pool(2);
  std::future<int> bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  std::future<int> good = pool.submit([] { return 17; });
  EXPECT_EQ(good.get(), 17);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  std::vector<std::future<int>> futures;
  {
    util::ThreadPool pool(1);  // single worker guarantees a deep queue
    for (int t = 0; t < 32; ++t) {
      futures.push_back(pool.submit([t] { return t; }));
    }
  }  // shutdown with tasks still queued: they must run, not vanish
  for (int t = 0; t < 32; ++t) {
    EXPECT_EQ(futures[static_cast<std::size_t>(t)].get(), t);
  }
}

TEST(ParallelForStress, DisjointWritesAndFullCoverage) {
  constexpr std::size_t kItems = 512;
  std::vector<std::size_t> out(kItems, 0);
  util::parallel_for(kItems, [&out](std::size_t i) { out[i] = i + 1; }, 4);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ParallelForStress, FirstExceptionIsRethrown) {
  EXPECT_THROW(
      util::parallel_for(
          64, [](std::size_t i) { if (i % 7 == 3) throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
}

TEST(ParallelForStress, ShardStyleBarrierLoopOnTheSharedPool) {
  // The sharded engine's usage pattern: repeated parallel_for rounds over
  // the same shard state, each round a barrier, every task borrowing
  // helpers from ThreadPool::shared() — with a nested parallel_for inside
  // each shard task (the harvest phase fanning out over a shard's apps).
  // TSan must see the round N writes strictly ordered before the round N+1
  // reads, and the shared pool must survive concurrent borrow/return from
  // nested loops.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kAppsPerShard = 8;
  constexpr int kRounds = 50;
  std::vector<std::vector<std::size_t>> state(kShards,
                                              std::vector<std::size_t>(kAppsPerShard, 0));
  for (int round = 0; round < kRounds; ++round) {
    util::parallel_for(
        kShards,
        [&state](std::size_t shard) {
          util::parallel_for(
              kAppsPerShard,
              [&state, shard](std::size_t app) { state[shard][app] += shard + app; }, 2);
        },
        kShards);
    // Barrier: every write of this round must be visible here.
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      for (std::size_t app = 0; app < kAppsPerShard; ++app) {
        ASSERT_EQ(state[shard][app], static_cast<std::size_t>(round + 1) * (shard + app));
      }
    }
  }
}

TEST(ParallelForStress, ConcurrentShardedTestbedsShareThePool) {
  // Two sharded testbed runs in flight at once (the ScenarioRunner table
  // pattern) contend for ThreadPool::shared() from their shard advances;
  // results must stay bit-identical to the lone run.
  core::ScenarioSpec spec;
  spec.name = "sharded-dual";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 4;
  spec.testbed.num_servers = 2;
  spec.testbed.shards = 2;
  spec.testbed.shard_threads = 2;
  spec.seed = 13;
  spec.duration_s = 120.0;
  core::SysIdExperimentConfig sysid;
  sysid.periods = 40;
  spec.model = core::identify_app_model(app::default_two_tier_app("dual", 501, 40), sysid).model;

  const core::ScenarioResult reference = core::ScenarioRunner(1).run(spec);
  core::ScenarioResult from_a;
  core::ScenarioResult from_b;
  std::thread a([&] { from_a = core::ScenarioRunner(1).run(spec); });
  std::thread b([&] { from_b = core::ScenarioRunner(1).run(spec); });
  a.join();
  b.join();
  EXPECT_TRUE(from_a.recorder == reference.recorder);
  EXPECT_TRUE(from_b.recorder == reference.recorder);
}

/// A cheap standalone scenario: fixed-allocation policy (no system
/// identification), short horizon. Cheap enough that a 16-spec table stays
/// fast under TSan's ~5-15x slowdown.
core::ScenarioSpec cheap_spec(std::string name, std::uint64_t seed) {
  core::ScenarioSpec spec;
  spec.name = std::move(name);
  spec.stack.app = app::default_two_tier_app("stress", 1, 40);
  spec.policy = [](const std::optional<app::PeriodStats>&) {
    return std::vector<double>(2, 0.6);
  };
  spec.seed = seed;
  spec.duration_s = 40.0;
  return spec;
}

TEST(ScenarioRunnerStress, LargeTableUnderWorkerContention) {
  std::vector<core::ScenarioSpec> specs;
  for (std::uint64_t s = 0; s < 16; ++s) {
    specs.push_back(cheap_spec("stress-" + std::to_string(s), 1000 + s * 17));
  }

  // More scenarios than workers forces queueing and worker reuse; the
  // results must still come back in spec order and bit-identical to serial.
  const std::vector<core::ScenarioResult> parallel = core::ScenarioRunner(4).run_all(specs);
  const std::vector<core::ScenarioResult> serial = core::ScenarioRunner(1).run_all(specs);

  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(parallel[i].name, specs[i].name);
    EXPECT_TRUE(parallel[i].recorder == serial[i].recorder) << specs[i].name;
  }
}

TEST(ScenarioRunnerStress, ConcurrentRunnersDoNotInterfere) {
  // Two independent runners in flight at once — the pattern a parameter
  // study harness produces — must not share any mutable state.
  const core::ScenarioSpec spec = cheap_spec("dual", 77);
  const core::ScenarioResult reference = core::ScenarioRunner(1).run(spec);

  std::vector<core::ScenarioSpec> table(4, spec);
  core::ScenarioResult from_a;
  core::ScenarioResult from_b;
  std::thread a([&] { from_a = core::ScenarioRunner(2).run_all(table).front(); });
  std::thread b([&] { from_b = core::ScenarioRunner(2).run_all(table).back(); });
  a.join();
  b.join();
  EXPECT_TRUE(from_a.recorder == reference.recorder);
  EXPECT_TRUE(from_b.recorder == reference.recorder);
}

}  // namespace
}  // namespace vdc
