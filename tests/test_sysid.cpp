#include "control/sysid.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace vdc::control {
namespace {

/// Simulates a known ARX model under random excitation and returns the data.
SysIdData simulate(const ArxModel& truth, std::size_t length, double noise,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  SysIdData data;
  std::vector<double> t_hist(truth.na, 0.0);
  std::vector<std::vector<double>> c_hist(truth.nb, std::vector<double>(truth.nu, 0.0));
  for (std::size_t k = 0; k < length; ++k) {
    std::vector<double> c(truth.nu);
    for (double& x : c) x = rng.uniform(0.2, 1.0);
    const double t = truth.predict(t_hist, c_hist) + rng.normal(0.0, noise);
    data.append(t, c);
    // Advance histories: the input applied at k is c (paired at index k, so
    // the model's c(k-1) is inputs[k-1] — the same convention fit_arx uses).
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
    c_hist.insert(c_hist.begin(), c);
    c_hist.pop_back();
  }
  return data;
}

ArxModel ground_truth() {
  ArxModel m;
  m.na = 1;
  m.nb = 2;
  m.nu = 2;
  m.a = {0.6};
  m.b = linalg::Matrix(2, 2);
  m.b(0, 0) = -0.5;
  m.b(0, 1) = -1.5;
  m.b(1, 0) = 0.1;
  m.b(1, 1) = 0.4;
  m.bias = 1.2;
  return m;
}

TEST(SysId, RecoversNoiselessModelExactly) {
  const ArxModel truth = ground_truth();
  const SysIdData data = simulate(truth, 300, 0.0, 5);
  const ArxModel fit = fit_arx(data, SysIdOptions{.na = 1, .nb = 2, .ridge_lambda = 0.0});
  EXPECT_NEAR(fit.a[0], truth.a[0], 1e-8);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t m = 0; m < 2; ++m) EXPECT_NEAR(fit.b(j, m), truth.b(j, m), 1e-7);
  }
  EXPECT_NEAR(fit.bias, truth.bias, 1e-7);
  EXPECT_NEAR(r_squared(fit, data), 1.0, 1e-9);
}

TEST(SysId, RecoversNoisyModelApproximately) {
  const ArxModel truth = ground_truth();
  const SysIdData data = simulate(truth, 3000, 0.05, 7);
  const ArxModel fit = fit_arx(data, SysIdOptions{.na = 1, .nb = 2, .ridge_lambda = 1e-8});
  EXPECT_NEAR(fit.a[0], truth.a[0], 0.05);
  EXPECT_NEAR(fit.b(0, 1), truth.b(0, 1), 0.1);
  EXPECT_GT(r_squared(fit, data), 0.9);
}

class SysIdOrderSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SysIdOrderSweep, RecoversRandomStableModels) {
  const auto [na, nb] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(na * 10 + nb));
  ArxModel truth;
  truth.na = static_cast<std::size_t>(na);
  truth.nb = static_cast<std::size_t>(nb);
  truth.nu = 1;
  truth.a.resize(truth.na);
  double total = 0.0;
  for (double& a : truth.a) {
    a = rng.uniform(-0.3, 0.4);
    total += std::abs(a);
  }
  if (total > 0.9) {
    for (double& a : truth.a) a *= 0.9 / total;  // keep the AR part stable
  }
  truth.b = linalg::Matrix(truth.nb, 1);
  for (std::size_t j = 0; j < truth.nb; ++j) truth.b(j, 0) = rng.uniform(-2.0, -0.1);
  truth.bias = rng.uniform(0.0, 2.0);

  const SysIdData data = simulate(truth, 500, 0.0, 99);
  const ArxModel fit =
      fit_arx(data, SysIdOptions{.na = truth.na, .nb = truth.nb, .ridge_lambda = 0.0});
  for (std::size_t i = 0; i < truth.na; ++i) EXPECT_NEAR(fit.a[i], truth.a[i], 1e-6);
  for (std::size_t j = 0; j < truth.nb; ++j) EXPECT_NEAR(fit.b(j, 0), truth.b(j, 0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Orders, SysIdOrderSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3)));

TEST(SysId, RidgeKeepsWeakExcitationWellPosed) {
  // Constant input: the regressor matrix is rank deficient without ridge.
  SysIdData data;
  double t = 0.0;
  for (int k = 0; k < 100; ++k) {
    t = 0.5 * t + 1.0;
    data.append(t, {0.7, 0.7});
  }
  EXPECT_NO_THROW(fit_arx(data, SysIdOptions{.na = 1, .nb = 2, .ridge_lambda = 1e-4}));
  EXPECT_THROW(fit_arx(data, SysIdOptions{.na = 1, .nb = 2, .ridge_lambda = 0.0}),
               std::exception);
}

TEST(SysId, InsufficientDataThrows) {
  SysIdData data;
  for (int k = 0; k < 5; ++k) data.append(1.0, {0.5});
  EXPECT_THROW(fit_arx(data), std::invalid_argument);
}

TEST(SysId, ValidatesDataConsistency) {
  SysIdData data;
  data.outputs = {1.0, 2.0};
  data.inputs = {{1.0}};
  EXPECT_THROW(data.validate(), std::invalid_argument);
  data.inputs = {{1.0}, {1.0, 2.0}};
  EXPECT_THROW(data.validate(), std::invalid_argument);
}

TEST(Excitation, HoldsLevelsForConfiguredPeriods) {
  ExcitationSequence seq(util::Rng(3), 2, 0.2, 0.8, 4);
  const auto a0 = seq.at(0);
  const auto a3 = seq.at(3);
  const auto a4 = seq.at(4);
  EXPECT_EQ(a0, a3);
  EXPECT_NE(a0, a4);
  for (const double x : a4) {
    EXPECT_GE(x, 0.2);
    EXPECT_LT(x, 0.8);
  }
}

TEST(Excitation, ValidatesArguments) {
  EXPECT_THROW(ExcitationSequence(util::Rng(1), 0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(ExcitationSequence(util::Rng(1), 1, 0.5, 0.1), std::invalid_argument);
}

TEST(RSquared, PenalizesWrongModel) {
  const ArxModel truth = ground_truth();
  const SysIdData data = simulate(truth, 500, 0.0, 11);
  ArxModel wrong = truth;
  wrong.b(0, 1) = +3.0;  // sign-flipped dominant gain
  EXPECT_LT(r_squared(wrong, data), 0.5);
}

}  // namespace
}  // namespace vdc::control
