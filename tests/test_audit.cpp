// Each domain auditor must reject corrupted state: these tests feed
// deliberately invalid values/structs to the audit functions and expect a
// CheckFailure with a useful message. The auditors take values and small
// structs precisely so corruption can be injected here without breaking the
// domain types' encapsulation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "check/app_audit.hpp"
#include "check/check.hpp"
#include "check/consolidate_audit.hpp"
#include "check/control_audit.hpp"
#include "check/dc_audit.hpp"
#include "check/fault_audit.hpp"
#include "check/sim_audit.hpp"
#include "fault/plan.hpp"
#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/working_placement.hpp"
#include "datacenter/arbitrator.hpp"
#include "datacenter/cpu_spec.hpp"
#include "datacenter/power_model.hpp"
#include "datacenter/server.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qp.hpp"

namespace vdc {
namespace {

using check::CheckFailure;

#if VDC_CHECKS_ENABLED

// ---- sim::audit -------------------------------------------------------------

TEST(SimAudit, RejectsEventScheduledInThePast) {
  EXPECT_NO_THROW(sim::audit::event_time(5.0, 5.0));
  EXPECT_NO_THROW(sim::audit::event_time(5.0, 7.5));
  EXPECT_THROW(sim::audit::event_time(5.0, 4.0), CheckFailure);
}

TEST(SimAudit, RejectsNonFiniteEventTime) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(sim::audit::event_time(0.0, nan), CheckFailure);
  EXPECT_THROW(sim::audit::event_time(0.0, inf), CheckFailure);
}

TEST(SimAudit, RejectsClockRewind) {
  EXPECT_NO_THROW(sim::audit::clock_monotonic(1.0, 1.0));
  EXPECT_THROW(sim::audit::clock_monotonic(5.0, 4.999), CheckFailure);
}

TEST(SimAudit, RejectsNegativePsResidual) {
  EXPECT_NO_THROW(sim::audit::ps_residual(0.0));
  EXPECT_NO_THROW(sim::audit::ps_residual(-1e-9));  // rounding slack
  EXPECT_THROW(sim::audit::ps_residual(-0.5), CheckFailure);
  EXPECT_THROW(sim::audit::ps_residual(std::numeric_limits<double>::quiet_NaN()), CheckFailure);
}

TEST(SimAudit, RejectsBrokenPsAccounting) {
  EXPECT_NO_THROW(sim::audit::ps_accounting(10.0, 2.0));
  EXPECT_THROW(sim::audit::ps_accounting(-1.0, 2.0), CheckFailure);
  EXPECT_THROW(sim::audit::ps_accounting(10.0, -2.0), CheckFailure);
}

// ---- datacenter::audit ------------------------------------------------------

TEST(DcAudit, RejectsOvercommittedArbitration) {
  const datacenter::CpuSpec cpu = datacenter::dual_core_2ghz();  // 4 GHz max
  const std::vector<double> demands = {1.0, 1.0};
  datacenter::ArbitrationResult result;
  result.frequency_ghz = 2.0;
  result.capacity_ghz = 4.0;
  result.saturated = false;
  result.allocations_ghz = {3.0, 3.0};  // 6 GHz granted on a 4 GHz budget
  EXPECT_THROW(datacenter::audit::arbitration(cpu, demands, result), CheckFailure);
}

TEST(DcAudit, RejectsUnderAllocationWhenUnsaturated) {
  const datacenter::CpuSpec cpu = datacenter::dual_core_2ghz();
  const std::vector<double> demands = {1.0, 1.0};
  datacenter::ArbitrationResult result;
  result.frequency_ghz = 2.0;
  result.capacity_ghz = 4.0;
  result.saturated = false;  // claims everyone got their demand...
  result.allocations_ghz = {1.0, 0.5};  // ...but VM 1 did not
  EXPECT_THROW(datacenter::audit::arbitration(cpu, demands, result), CheckFailure);
  result.saturated = true;  // the same grants are legal under saturation
  EXPECT_NO_THROW(datacenter::audit::arbitration(cpu, demands, result));
}

TEST(DcAudit, RejectsFrequencyAboveLadder) {
  const datacenter::CpuSpec cpu = datacenter::dual_core_2ghz();
  const std::vector<double> demands = {1.0};
  datacenter::ArbitrationResult result;
  result.frequency_ghz = 3.5;  // ladder tops out at 2.0
  result.capacity_ghz = 4.0;
  result.allocations_ghz = {1.0};
  EXPECT_THROW(datacenter::audit::arbitration(cpu, demands, result), CheckFailure);
}

TEST(DcAudit, RejectsWrongSleepPower) {
  datacenter::Server server(datacenter::dual_core_2ghz(), datacenter::power_model_dual_2ghz(),
                            4096.0);
  server.set_state(datacenter::ServerState::kSleeping);
  const double sleep_w = server.power_model().sleep_w;
  EXPECT_NO_THROW(datacenter::audit::server_power(server, sleep_w));
  EXPECT_THROW(datacenter::audit::server_power(server, sleep_w + 5.0), CheckFailure);
}

TEST(DcAudit, RejectsActivePowerOutsideEnvelope) {
  datacenter::Server server(datacenter::dual_core_2ghz(), datacenter::power_model_dual_2ghz(),
                            4096.0);
  ASSERT_TRUE(server.active());
  const datacenter::PowerModel& model = server.power_model();
  EXPECT_NO_THROW(datacenter::audit::server_power(server, model.max_power_w()));
  EXPECT_THROW(datacenter::audit::server_power(server, model.max_power_w() + 10.0), CheckFailure);
  EXPECT_THROW(datacenter::audit::server_power(server, model.sleep_w - 10.0), CheckFailure);
}

// ---- consolidate::audit -----------------------------------------------------

consolidate::DataCenterSnapshot two_server_snapshot() {
  consolidate::DataCenterSnapshot snap;
  consolidate::ServerSnapshot s0;
  s0.id = 0;
  s0.max_capacity_ghz = 4.0;
  s0.memory_mb = 4096.0;
  s0.active = true;
  s0.hosted = {0};
  consolidate::ServerSnapshot s1 = s0;
  s1.id = 1;
  s1.max_capacity_ghz = 12.0;
  s1.memory_mb = 8192.0;
  s1.hosted = {1};
  snap.servers = {s0, s1};
  snap.vms = {consolidate::VmSnapshot{0, 1.0, 1024.0},
              consolidate::VmSnapshot{1, 5.0, 1024.0}};
  return snap;
}

TEST(ConsolidateAudit, AcceptsFeasiblePlan) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  consolidate::PlacementPlan plan;
  plan.moves.push_back(consolidate::Move{0, 0, 1});  // 1 GHz onto the 12 GHz box
  EXPECT_NO_THROW(consolidate::audit::plan(snap, plan, constraints));
}

TEST(ConsolidateAudit, RejectsPlanOverloadingReceiver) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  consolidate::PlacementPlan plan;
  plan.moves.push_back(consolidate::Move{1, 1, 0});  // 5 GHz onto the 4 GHz box
  EXPECT_THROW(consolidate::audit::plan(snap, plan, constraints), CheckFailure);
}

TEST(ConsolidateAudit, RejectsStaleMoveSource) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  consolidate::PlacementPlan plan;
  plan.moves.push_back(consolidate::Move{0, 1, 1});  // VM 0 actually lives on server 0
  EXPECT_THROW(consolidate::audit::plan(snap, plan, constraints), CheckFailure);
}

TEST(ConsolidateAudit, RejectsDoubleMove) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  consolidate::PlacementPlan plan;
  plan.moves.push_back(consolidate::Move{0, 0, 1});
  plan.moves.push_back(consolidate::Move{0, 1, 0});
  EXPECT_THROW(consolidate::audit::plan(snap, plan, constraints), CheckFailure);
}

TEST(ConsolidateAudit, RejectsMovedAndUnplacedVm) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  consolidate::PlacementPlan plan;
  plan.moves.push_back(consolidate::Move{0, 0, 1});
  plan.unplaced.push_back(0);
  EXPECT_THROW(consolidate::audit::plan(snap, plan, constraints), CheckFailure);
}

TEST(ConsolidateAudit, RejectsNonCandidateMinSlackSelection) {
  const consolidate::DataCenterSnapshot snap = two_server_snapshot();
  const consolidate::WorkingPlacement placement(snap);
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  const std::vector<consolidate::VmId> candidates = {0};
  const std::vector<consolidate::VmId> empty = {};
  EXPECT_NO_THROW(consolidate::audit::min_slack_selection(placement, 1, candidates, constraints,
                                                          empty));
  const std::vector<consolidate::VmId> not_a_candidate = {1};
  EXPECT_THROW(consolidate::audit::min_slack_selection(placement, 1, candidates, constraints,
                                                       not_a_candidate),
               CheckFailure);
}

// ---- control::audit ---------------------------------------------------------

TEST(ControlAudit, AcceptsFeasibleOptimalQpSolution) {
  const linalg::Matrix hessian = linalg::Matrix::identity(2);
  const std::vector<double> gradient = {0.0, 0.0};
  const linalg::Matrix m_ineq = linalg::Matrix::identity(2);
  const std::vector<double> gamma = {1.0, 1.0};
  linalg::QpResult qp;
  qp.converged = true;
  qp.x = {0.0, 0.0};  // the unconstrained (and feasible) minimizer
  EXPECT_NO_THROW(control::audit::qp_solution(hessian, gradient, m_ineq, gamma, qp, false));
}

TEST(ControlAudit, RejectsPrimalInfeasibleQpSolution) {
  const linalg::Matrix hessian = linalg::Matrix::identity(2);
  const std::vector<double> gradient = {0.0, 0.0};
  const linalg::Matrix m_ineq = linalg::Matrix::identity(2);
  const std::vector<double> gamma = {-1.0, -1.0};  // requires x <= -1
  linalg::QpResult qp;
  qp.converged = true;
  qp.x = {0.0, 0.0};  // violates both rows by a full unit
  EXPECT_THROW(control::audit::qp_solution(hessian, gradient, m_ineq, gamma, qp, false),
               CheckFailure);
}

TEST(ControlAudit, RejectsSuboptimalQpSolution) {
  const linalg::Matrix hessian = linalg::Matrix::identity(2);
  const std::vector<double> gradient = {0.0, 0.0};
  const linalg::Matrix m_ineq = linalg::Matrix::identity(2);
  const std::vector<double> gamma = {1.0, 1.0};
  linalg::QpResult qp;
  qp.converged = true;
  qp.x = {0.5, 0.5};  // feasible but J = 0.25 > 0 = J(zero move)
  EXPECT_THROW(control::audit::qp_solution(hessian, gradient, m_ineq, gamma, qp, false),
               CheckFailure);
  // With an eliminated equality block the zero move is not feasible, so the
  // optimality bound is waived.
  EXPECT_NO_THROW(control::audit::qp_solution(hessian, gradient, m_ineq, gamma, qp, true));
}

TEST(ControlAudit, IgnoresUnconvergedQpSolution) {
  const linalg::Matrix hessian = linalg::Matrix::identity(1);
  const std::vector<double> gradient = {0.0};
  linalg::QpResult qp;  // converged = false: fallback paths handle this
  qp.x = {1e9};
  EXPECT_NO_THROW(
      control::audit::qp_solution(hessian, gradient, linalg::Matrix(), {}, qp, false));
}

TEST(ControlAudit, RejectsAllocationOutsideActuatorBox) {
  const std::vector<double> c_min = {0.5, 0.5};
  const std::vector<double> c_max = {2.0, 2.0};
  const std::vector<double> inside = {1.0, 2.0};
  EXPECT_NO_THROW(control::audit::allocation_bounds(inside, c_min, c_max));
  const std::vector<double> above = {1.0, 2.5};
  EXPECT_THROW(control::audit::allocation_bounds(above, c_min, c_max), CheckFailure);
  const std::vector<double> below = {0.25, 1.0};
  EXPECT_THROW(control::audit::allocation_bounds(below, c_min, c_max), CheckFailure);
}

// ---- app::audit -------------------------------------------------------------

TEST(AppAudit, RejectsLostRequests) {
  EXPECT_NO_THROW(app::audit::request_conservation(10, 7, 3));
  EXPECT_THROW(app::audit::request_conservation(10, 5, 3), CheckFailure);   // 2 lost
  EXPECT_THROW(app::audit::request_conservation(10, 8, 3), CheckFailure);   // 1 double-counted
}

TEST(AppAudit, RejectsUnphysicalMvaResult) {
  app::MvaResult result;
  result.throughput_rps = 1.0;
  result.response_time_s = 0.5;
  result.stations = {app::MvaStation{0.5, 0.5, 1.5}};  // utilization 1.5 > 1
  EXPECT_THROW(app::audit::mva_result(result, 4, 1.0), CheckFailure);
}

TEST(AppAudit, RejectsMvaPopulationOverflow) {
  app::MvaResult result;
  result.throughput_rps = 3.0;
  result.response_time_s = 0.5;
  result.stations = {app::MvaStation{0.5, 2.5, 0.9}};  // 2.5 queued + 3.0 thinking > 4
  EXPECT_THROW(app::audit::mva_result(result, 4, 1.0), CheckFailure);
}

// ---- fault::audit -----------------------------------------------------------

TEST(FaultAudit, AcceptsWellFormedWindows) {
  fault::FaultPlan plan;
  plan.migration_aborts(0.0, 100.0, 0.5);
  plan.server_crash(2, 10.0, 20.0);
  plan.dvfs_pin(0, 1.2, 0.0, 50.0);
  EXPECT_NO_THROW(fault::audit::plan(plan));
}

TEST(FaultAudit, RejectsInvertedOrEmptyWindows) {
  fault::FaultWindow w;
  w.start_s = 10.0;
  w.end_s = 10.0;
  EXPECT_THROW(fault::audit::window(w), CheckFailure);
  w.end_s = 5.0;
  EXPECT_THROW(fault::audit::window(w), CheckFailure);
  w.start_s = -1.0;
  w.end_s = 5.0;
  EXPECT_THROW(fault::audit::window(w), CheckFailure);
}

TEST(FaultAudit, RejectsProbabilityOutsideUnitInterval) {
  fault::FaultWindow w;
  w.end_s = 10.0;
  w.probability = -0.1;
  EXPECT_THROW(fault::audit::window(w), CheckFailure);
  w.probability = 1.5;
  EXPECT_THROW(fault::audit::window(w), CheckFailure);
}

TEST(FaultAudit, RejectsKindSpecificMagnitudeAbuse) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  {
    fault::FaultWindow w;  // a slowdown that speeds migrations up
    w.kind = fault::FaultKind::kMigrationSlowdown;
    w.end_s = 10.0;
    w.magnitude = 0.5;
    EXPECT_THROW(fault::audit::window(w), CheckFailure);
  }
  {
    fault::FaultWindow w;  // NaN spike multiplier
    w.kind = fault::FaultKind::kSensorSpike;
    w.end_s = 10.0;
    w.magnitude = nan;
    EXPECT_THROW(fault::audit::window(w), CheckFailure);
  }
  {
    fault::FaultWindow w;  // DVFS pin without a concrete server
    w.kind = fault::FaultKind::kDvfsPin;
    w.end_s = 10.0;
    w.magnitude = 1.0;
    w.target = fault::kAnyTarget;
    EXPECT_THROW(fault::audit::window(w), CheckFailure);
  }
  {
    fault::FaultWindow w;  // crashing "any server" is not a thing
    w.kind = fault::FaultKind::kServerCrash;
    w.end_s = 10.0;
    w.target = fault::kAnyTarget;
    EXPECT_THROW(fault::audit::window(w), CheckFailure);
  }
}

#else

TEST(Audit, ChecksDisabledInThisBuild) { SUCCEED(); }

#endif  // VDC_CHECKS_ENABLED

}  // namespace
}  // namespace vdc
