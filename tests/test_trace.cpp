#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace vdc::trace {
namespace {

TEST(Trace, ConstructionValidation) {
  EXPECT_THROW(UtilizationTrace(0, 10), std::invalid_argument);
  EXPECT_THROW(UtilizationTrace(10, 0), std::invalid_argument);
  EXPECT_THROW(UtilizationTrace(1, 1, 0.0), std::invalid_argument);
}

TEST(Trace, PaperConstants) {
  EXPECT_EQ(kPaperServerCount, 5415u);
  EXPECT_EQ(kPaperSampleCount, 672u);  // 7 days x 96 quarter-hours
  EXPECT_DOUBLE_EQ(kPaperSamplePeriodS, 900.0);
}

TEST(Trace, SetAndGet) {
  UtilizationTrace t(2, 3, 900.0);
  t.set(0, 1, 0.5);
  t.set(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
  EXPECT_THROW(static_cast<void>(t.at(2, 0)), std::out_of_range);
  EXPECT_THROW(t.set(0, 3, 0.5), std::out_of_range);
  EXPECT_THROW(t.set(0, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(t.set(0, 0, -0.1), std::invalid_argument);
}

TEST(Trace, SeriesIsContiguousView) {
  UtilizationTrace t(2, 3);
  t.set(1, 0, 0.1);
  t.set(1, 1, 0.2);
  t.set(1, 2, 0.3);
  const auto s = t.series(1);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 0.1);
  EXPECT_DOUBLE_EQ(s[2], 0.3);
  EXPECT_THROW(static_cast<void>(t.series(5)), std::out_of_range);
}

TEST(Trace, Aggregates) {
  UtilizationTrace t(2, 2);
  t.set(0, 0, 0.2);
  t.set(0, 1, 0.4);
  t.set(1, 0, 0.6);
  t.set(1, 1, 0.8);
  EXPECT_DOUBLE_EQ(t.mean_at(0), 0.4);
  EXPECT_DOUBLE_EQ(t.mean_at(1), 0.6);
  EXPECT_DOUBLE_EQ(t.global_mean(), 0.5);
  EXPECT_DOUBLE_EQ(t.server_stats(0).mean(), 0.3);
  EXPECT_DOUBLE_EQ(t.duration_s(), 1800.0);
}

}  // namespace
}  // namespace vdc::trace
