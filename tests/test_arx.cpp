#include "control/arx.hpp"

#include <gtest/gtest.h>

namespace vdc::control {
namespace {

ArxModel paper_equation_1() {
  // t(k) = 0.5 t(k-1) - 0.8 c1(k-1) - 0.2 c1(k-2) + 1.0 (shape of eq. (1)).
  ArxModel m;
  m.na = 1;
  m.nb = 2;
  m.nu = 1;
  m.a = {0.5};
  m.b = linalg::Matrix(2, 1);
  m.b(0, 0) = -0.8;
  m.b(1, 0) = -0.2;
  m.bias = 1.0;
  return m;
}

TEST(Arx, PredictMatchesHandComputation) {
  const ArxModel m = paper_equation_1();
  const std::vector<double> t_hist = {2.0};
  const std::vector<std::vector<double>> c_hist = {{1.0}, {0.5}};
  // 0.5*2 - 0.8*1 - 0.2*0.5 + 1 = 1.0 + (-0.8) + (-0.1) + 1 = 1.1.
  EXPECT_NEAR(m.predict(t_hist, c_hist), 1.1, 1e-12);
}

TEST(Arx, PredictValidatesHistoryLengths) {
  const ArxModel m = paper_equation_1();
  const std::vector<double> empty_t;
  const std::vector<double> one_t = {1.0};
  const std::vector<std::vector<double>> two_c = {{1.0}, {1.0}};
  const std::vector<std::vector<double>> one_c = {{1.0}};
  const std::vector<std::vector<double>> wide_c = {{1.0, 2.0}, {1.0, 2.0}};
  EXPECT_THROW(static_cast<void>(m.predict(empty_t, two_c)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.predict(one_t, one_c)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.predict(one_t, wide_c)), std::invalid_argument);
}

TEST(Arx, MimoPredict) {
  ArxModel m;
  m.na = 2;
  m.nb = 1;
  m.nu = 2;
  m.a = {0.3, 0.1};
  m.b = linalg::Matrix(1, 2);
  m.b(0, 0) = -1.0;
  m.b(0, 1) = -2.0;
  m.bias = 0.5;
  const double t = m.predict(std::vector<double>{1.0, 2.0},
                             std::vector<std::vector<double>>{{0.2, 0.3}});
  // 0.3*1 + 0.1*2 - 1*0.2 - 2*0.3 + 0.5 = 0.3+0.2-0.2-0.6+0.5 = 0.2.
  EXPECT_NEAR(t, 0.2, 1e-12);
}

TEST(Arx, DcGain) {
  const ArxModel m = paper_equation_1();
  // Gain = (b1+b2)/(1-a) = (-1.0)/(0.5) = -2.0.
  const std::vector<double> gain = m.dc_gain();
  ASSERT_EQ(gain.size(), 1u);
  EXPECT_NEAR(gain[0], -2.0, 1e-12);
}

TEST(Arx, DcGainThrowsOnIntegrator) {
  ArxModel m = paper_equation_1();
  m.a = {1.0};
  EXPECT_THROW(m.dc_gain(), std::runtime_error);
}

TEST(Arx, ArStability) {
  ArxModel m = paper_equation_1();
  EXPECT_TRUE(m.ar_stable());
  m.a = {1.2};
  EXPECT_FALSE(m.ar_stable());
  m.na = 2;
  m.a = {1.5, -0.7};  // roots inside unit circle
  EXPECT_TRUE(m.ar_stable());
  m.a = {2.0, -0.5};  // roots ~1.7, 0.29 -> unstable
  EXPECT_FALSE(m.ar_stable());
}

TEST(Arx, ValidateCatchesShapeErrors) {
  ArxModel m = paper_equation_1();
  EXPECT_NO_THROW(m.validate());
  m.a = {0.5, 0.1};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = paper_equation_1();
  m.b = linalg::Matrix(1, 1);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = paper_equation_1();
  m.nu = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = paper_equation_1();
  m.nb = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Arx, ParameterCount) {
  const ArxModel m = paper_equation_1();
  EXPECT_EQ(m.parameter_count(), 1u + 2u + 1u);  // na + nb*nu + bias
}

}  // namespace
}  // namespace vdc::control
