#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/export.hpp"
#include "telemetry/recorder.hpp"

namespace vdc::util {
namespace {

TEST(CsvEscape, PlainCellUnchanged) { EXPECT_EQ(csv_escape("hello"), "hello"); }

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.row(std::vector<std::string>{"1", "x,y"});
  writer.row(std::vector<double>{2.5, 3.0});
  EXPECT_EQ(writer.rows_written(), 2u);
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n2.5,3\n");
}

TEST(CsvWriter, RejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  EXPECT_THROW(writer.row(std::vector<std::string>{"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, RejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(ParseCsv, SimpleTable) {
  const CsvTable t = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "1");
  EXPECT_EQ(t.rows[1][1], "4");
  EXPECT_EQ(t.column_index("b"), 1u);
  EXPECT_DOUBLE_EQ(t.as_double(1, 0), 3.0);
}

TEST(ParseCsv, QuotedCells) {
  const CsvTable t = parse_csv("name,note\nx,\"a,b\"\ny,\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][1], "a,b");
  EXPECT_EQ(t.rows[1][1], "say \"hi\"");
}

TEST(ParseCsv, CarriageReturnsAndBlankLines) {
  const CsvTable t = parse_csv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][0], "3");
}

TEST(ParseCsv, NoHeaderMode) {
  const CsvTable t = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 2u);
}

TEST(CsvTable, ErrorsOnUnknownColumnAndBadNumber) {
  const CsvTable t = parse_csv("a\nxyz\n");
  EXPECT_THROW(static_cast<void>(t.column_index("nope")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(t.as_double(0, 0)), std::runtime_error);
}

TEST(CsvRoundTrip, WriteThenParse) {
  std::ostringstream out;
  CsvWriter writer(out, {"k", "v"});
  writer.row(std::vector<std::string>{"key,with,commas", "line\nbreak"});
  const CsvTable t = parse_csv(out.str());
  // Note: embedded newline splits on parse (line-based parser), so this
  // documents the supported round-trip subset: commas and quotes.
  EXPECT_EQ(t.rows[0][0], "key,with,commas");
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

TEST(TelemetryCsv, TsdbBackedRecorderRoundTripsThroughParser) {
  // The tiered recorder's export must be bytes this parser round-trips —
  // and identical to what the raw-vector oracle backend emits for the same
  // appends (ragged series lengths and vector columns included).
  telemetry::RecorderConfig config;
  config.backend = telemetry::RecorderConfig::Backend::kTsdb;
  telemetry::Recorder tiered(config);
  telemetry::Recorder raw;
  for (telemetry::Recorder* rec : {&tiered, &raw}) {
    rec->append("p90", 1.0 / 3.0);
    rec->append("p90", 0.125);
    rec->append("alloc", std::vector<double>{0.3, 0.7});
    rec->append("power", 123.456789);
  }
  const std::string csv = telemetry::to_csv(tiered);
  EXPECT_EQ(csv, telemetry::to_csv(raw));
  const telemetry::Recorder back = telemetry::from_csv(csv);
  EXPECT_TRUE(back == tiered);
  EXPECT_TRUE(back == raw);
}

}  // namespace
}  // namespace vdc::util
