#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/synthetic.hpp"

namespace vdc::trace {
namespace {

TEST(SeriesProfile, EmptySeriesIsZeroed) {
  const SeriesProfile p = profile_series({});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.autocorrelation_lag1, 0.0);
}

TEST(SeriesProfile, ConstantSeries) {
  const std::vector<double> flat(50, 0.4);
  const SeriesProfile p = profile_series(flat);
  EXPECT_DOUBLE_EQ(p.mean, 0.4);
  EXPECT_DOUBLE_EQ(p.stddev, 0.0);
  EXPECT_DOUBLE_EQ(p.peak_to_mean, 1.0);
  EXPECT_DOUBLE_EQ(p.autocorrelation_lag1, 0.0);  // degenerate variance
}

TEST(SeriesProfile, SmoothSeriesHasHighAutocorrelation) {
  std::vector<double> smooth;
  std::vector<double> noisy;
  for (int k = 0; k < 500; ++k) {
    smooth.push_back(0.5 + 0.3 * std::sin(0.05 * k));
    noisy.push_back(k % 2 == 0 ? 0.2 : 0.8);  // alternating
  }
  EXPECT_GT(profile_series(smooth).autocorrelation_lag1, 0.9);
  EXPECT_LT(profile_series(noisy).autocorrelation_lag1, -0.9);
}

TEST(SeriesProfile, PeakToMean) {
  const std::vector<double> v = {0.1, 0.1, 0.1, 0.5};
  const SeriesProfile p = profile_series(v);
  EXPECT_NEAR(p.peak_to_mean, 0.5 / 0.2, 1e-12);
}

TEST(TraceProfile, SyntheticTraceShowsPaperFeatures) {
  SyntheticTraceOptions options;
  options.servers = 150;
  const UtilizationTrace trace = generate_synthetic_trace(options);
  const TraceProfile profile = profile_trace(trace);

  // Enterprise-like low mean with pronounced diurnality.
  EXPECT_GT(profile.overall.mean, 0.1);
  EXPECT_LT(profile.overall.mean, 0.5);
  EXPECT_GT(profile.diurnal_ratio, 1.3);
  EXPECT_GT(profile.business_hours_mean, profile.night_mean);
  // Cluster-mean series is smooth (AR noise + diurnal shape).
  EXPECT_GT(profile.overall.autocorrelation_lag1, 0.8);
  // All four sectors profiled.
  EXPECT_EQ(profile.by_label.size(), 4u);
  // Financial has the strongest peaks relative to its mean.
  const SeriesProfile& fin = profile.by_label.at("financial");
  const SeriesProfile& tel = profile.by_label.at("telecom");
  EXPECT_GT(fin.peak_to_mean, tel.peak_to_mean);
}

TEST(TraceProfile, ReportRendersAllSections) {
  SyntheticTraceOptions options;
  options.servers = 40;
  options.samples = 192;
  const UtilizationTrace trace = generate_synthetic_trace(options);
  const std::string report = to_string(profile_trace(trace));
  EXPECT_NE(report.find("overall:"), std::string::npos);
  EXPECT_NE(report.find("diurnal:"), std::string::npos);
  EXPECT_NE(report.find("weekly:"), std::string::npos);
  EXPECT_NE(report.find("sector"), std::string::npos);
}

TEST(TraceProfile, UnlabeledTraceHasNoSectorBreakdown) {
  UtilizationTrace trace(3, 8);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t k = 0; k < 8; ++k) trace.set(s, k, 0.25);
  }
  const TraceProfile profile = profile_trace(trace);
  EXPECT_TRUE(profile.by_label.empty());
  EXPECT_DOUBLE_EQ(profile.overall.mean, 0.25);
}

}  // namespace
}  // namespace vdc::trace
