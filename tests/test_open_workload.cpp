#include <gtest/gtest.h>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "util/statistics.hpp"

namespace vdc::app {
namespace {

AppConfig open_app(double rate_rps, std::uint64_t seed = 3) {
  AppConfig config = default_two_tier_app("open", seed, 0);
  config.open_arrival_rate_rps = rate_rps;
  return config;
}

TEST(OpenWorkload, ThroughputMatchesArrivalRate) {
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(20.0));
  app.set_allocations(std::vector<double>(2, 2.0));  // ample CPU
  app.start();
  sim.run_until(500.0);
  const double rate = static_cast<double>(app.completed_requests()) / 500.0;
  EXPECT_NEAR(rate, 20.0, 1.5);
}

TEST(OpenWorkload, ModeIsFixedAtConstruction) {
  sim::Simulation sim;
  MultiTierApp open(sim, open_app(10.0));
  EXPECT_TRUE(open.open_workload());
  MultiTierApp closed(sim, default_two_tier_app("c", 1, 10));
  EXPECT_FALSE(closed.open_workload());
  EXPECT_THROW(closed.set_arrival_rate(5.0), std::logic_error);
}

TEST(OpenWorkload, SetConcurrencyIsIgnored) {
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(10.0));
  app.start();
  app.set_concurrency(100);
  sim.run_until(20.0);
  // Arrivals keep following the Poisson process, not a client population.
  EXPECT_GT(app.completed_requests(), 100u);
}

TEST(OpenWorkload, RateChangeTakesEffect) {
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(5.0));
  app.set_allocations(std::vector<double>(2, 2.0));
  app.start();
  sim.run_until(200.0);
  const auto before = app.completed_requests();
  app.set_arrival_rate(50.0);
  sim.run_until(400.0);
  const auto after = app.completed_requests() - before;
  EXPECT_GT(static_cast<double>(after), 6.0 * static_cast<double>(before));
  EXPECT_THROW(app.set_arrival_rate(-1.0), std::invalid_argument);
}

TEST(OpenWorkload, PauseAndResume) {
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(20.0));
  app.set_allocations(std::vector<double>(2, 2.0));
  app.start();
  sim.run_until(100.0);
  app.set_arrival_rate(0.0);
  sim.run_until(110.0);  // drain
  const auto frozen = app.completed_requests();
  sim.run_until(200.0);
  EXPECT_EQ(app.completed_requests(), frozen);  // no arrivals while paused
  app.set_arrival_rate(20.0);
  sim.run_until(260.0);
  EXPECT_GT(app.completed_requests(), frozen + 500u);
}

TEST(OpenWorkload, OverloadGrowsBacklogUnboundedly) {
  // Arrival rate above the service capacity: in an open system the backlog
  // diverges (unlike the closed system, which self-limits at N clients).
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(30.0));
  app.set_allocations(std::vector<double>(2, 0.1));  // web capacity ~12.5 rps
  app.start();
  sim.run_until(120.0);
  const std::size_t backlog_early = app.requests_in_flight();
  sim.run_until(240.0);
  EXPECT_GT(app.requests_in_flight(), backlog_early);
  EXPECT_GT(app.requests_in_flight(), 100u);
}

TEST(OpenWorkload, ResponseTimesRiseWithUtilization) {
  const auto p90_at = [](double rate) {
    sim::Simulation sim;
    MultiTierApp app(sim, open_app(rate, 9));
    ResponseTimeMonitor monitor(0.9);
    app.set_response_callback([&](double, double rt) { monitor.record(rt); });
    app.set_allocations(std::vector<double>{0.4, 0.6});  // web 50 rps capacity
    app.start();
    sim.run_until(400.0);
    return monitor.lifetime().quantile;
  };
  EXPECT_GT(p90_at(40.0), 2.0 * p90_at(10.0));
}

TEST(OpenWorkload, PausedAppLeavesSimulationQuiescent) {
  // Regression: a paused open app used to keep a polling event alive, so a
  // drain over an idle system never terminated. Pausing must cancel the
  // pending arrival and schedule nothing until the rate rises again.
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(20.0));
  app.start();
  sim.run_until(10.0);
  app.set_arrival_rate(0.0);
  // Residual in-flight requests complete, then the event heap is empty —
  // drain_until over an enormous horizon returns instead of spinning.
  (void)sim.drain_until(1e12);
  EXPECT_EQ(app.requests_in_flight(), 0u);
  EXPECT_EQ(sim.drain_until(1e12), 0u);  // truly quiescent: nothing pending
  // Un-pausing restarts the arrival stream.
  const auto before = app.completed_requests();
  app.set_arrival_rate(20.0);
  sim.run_until(sim.now() + 30.0);
  EXPECT_GT(app.completed_requests(), before + 100u);
}

TEST(OpenWorkload, RateStepResamplesThePendingGap) {
  // Regression: raising the rate used to leave the previously sampled
  // inter-arrival gap pending, so a 0.001 rps app stepped to 100 rps kept
  // waiting out a ~1000 s gap. The exponential is memoryless, so cancelling
  // and resampling at the new rate is distribution-exact.
  sim::Simulation sim;
  MultiTierApp app(sim, open_app(0.001, 17));
  app.set_allocations(std::vector<double>(2, 2.0));
  app.start();
  sim.run_until(1.0);
  EXPECT_EQ(app.issued_requests(), 0u);  // the first slow-rate gap is pending
  app.set_arrival_rate(100.0);
  sim.run_until(6.0);
  // ~500 arrivals in 5 s at the new rate; the stale gap would have given 0.
  EXPECT_GT(app.completed_requests(), 200u);
}

}  // namespace
}  // namespace vdc::app
