#include "control/tuning.hpp"

#include <gtest/gtest.h>

namespace vdc::control {
namespace {

ArxModel plant() {
  ArxModel m;
  m.na = 1;
  m.nb = 2;
  m.nu = 2;
  m.a = {0.5};
  m.b = linalg::Matrix(2, 2);
  m.b(0, 0) = -0.5;
  m.b(0, 1) = -1.5;
  m.b(1, 0) = 0.05;
  m.b(1, 1) = 0.3;
  m.bias = 1.5;
  return m;
}

TuningOptions default_options() {
  TuningOptions options;
  options.base.prediction_horizon = 12;
  options.base.period_s = 4.0;
  options.base.setpoint = 1.0;
  options.base.c_min = {0.1};
  options.base.c_max = {2.0};
  options.base.delta_max = 0.5;
  options.base.terminal = MpcConfig::Terminal::kSoft;
  return options;
}

TEST(Tuning, FindsAStableConfiguration) {
  const TuningResult result = tune_mpc(plant(), default_options());
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.stable_candidates, 0u);
  EXPECT_EQ(result.evaluated, 3u * 5u * 3u);
  EXPECT_TRUE(result.report.stable);
  EXPECT_LT(result.report.output_decay_rate, 1.0);
  EXPECT_NEAR(result.report.steady_state_error, 0.0, 1e-3);
}

TEST(Tuning, ChosenConfigPassesIndependentAnalysis) {
  const TuningResult result = tune_mpc(plant(), default_options());
  ASSERT_TRUE(result.found);
  const StabilityReport verify = analyze_closed_loop(plant(), result.config);
  EXPECT_TRUE(verify.stable);
  EXPECT_NEAR(verify.output_decay_rate, result.report.output_decay_rate, 1e-9);
}

TEST(Tuning, PicksFastestDecayAmongCandidates) {
  const TuningOptions options = default_options();
  const TuningResult result = tune_mpc(plant(), options);
  ASSERT_TRUE(result.found);
  // Every other stable candidate must decay no faster.
  for (const std::size_t m : options.control_horizons) {
    for (const double r : options.r_weights) {
      for (const double f : options.tref_factors) {
        MpcConfig candidate = options.base;
        candidate.control_horizon = m;
        candidate.r_weight = {r};
        candidate.tref_s = f * candidate.period_s;
        StabilityReport report;
        try {
          report = analyze_closed_loop(plant(), candidate);
        } catch (const std::exception&) {
          continue;
        }
        if (report.stable && std::abs(report.steady_state_error) <= 1e-3) {
          EXPECT_GE(report.output_decay_rate,
                    result.report.output_decay_rate - 1e-9);
        }
      }
    }
  }
}

TEST(Tuning, EmptyGridThrows) {
  TuningOptions options = default_options();
  options.r_weights.clear();
  EXPECT_THROW(tune_mpc(plant(), options), std::invalid_argument);
}

TEST(Tuning, ReportsNotFoundWhenNothingStable) {
  // A violently non-minimum-phase model with only aggressive candidates.
  ArxModel nasty;
  nasty.na = 2;
  nasty.nb = 2;
  nasty.nu = 1;
  nasty.a = {0.7, -0.18};
  nasty.b = linalg::Matrix(2, 1);
  nasty.b(0, 0) = -0.4;
  nasty.b(1, 0) = 0.72;
  nasty.bias = 1.0;
  TuningOptions options = default_options();
  options.base.prediction_horizon = 2;
  options.base.terminal = MpcConfig::Terminal::kHard;
  options.base.delta_max = 0.0;
  options.control_horizons = {2};
  options.r_weights = {1e-6};
  options.tref_factors = {3.0};
  const TuningResult result = tune_mpc(nasty, options);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.stable_candidates, 0u);
}

TEST(Tuning, InvalidModelThrows) {
  ArxModel bad = plant();
  bad.a = {0.5, 0.5};
  EXPECT_THROW(tune_mpc(bad, default_options()), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::control
