#include "app/queueing.hpp"

#include <gtest/gtest.h>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "sim/simulation.hpp"

namespace vdc::app {
namespace {

TEST(Mva, ValidatesInputs) {
  EXPECT_THROW(exact_mva(ClosedNetwork{1.0, {}}, 5), std::invalid_argument);
  EXPECT_THROW(exact_mva(ClosedNetwork{-1.0, {0.1}}, 5), std::invalid_argument);
  EXPECT_THROW(exact_mva(ClosedNetwork{1.0, {0.0}}, 5), std::invalid_argument);
}

TEST(Mva, SingleClientHasNoQueueing) {
  const ClosedNetwork net{1.0, {0.2, 0.3}};
  const MvaResult r = exact_mva(net, 1);
  // With one client there is never contention: R = sum of demands.
  EXPECT_NEAR(r.response_time_s, 0.5, 1e-12);
  EXPECT_NEAR(r.throughput_rps, 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(r.stations[0].residence_time_s, 0.2, 1e-12);
}

TEST(Mva, LittlesLawHoldsExactly) {
  const ClosedNetwork net{0.8, {0.05, 0.12, 0.03}};
  for (const std::size_t n : {1u, 5u, 20u, 80u}) {
    const MvaResult r = exact_mva(net, n);
    // N = X * (Z + R): all customers are thinking or in the network.
    EXPECT_NEAR(static_cast<double>(n),
                r.throughput_rps * (net.think_time_s + r.response_time_s), 1e-9);
    // Per-station Little's law: Q_i = X * R_i.
    for (const MvaStation& s : r.stations) {
      EXPECT_NEAR(s.queue_length, r.throughput_rps * s.residence_time_s, 1e-9);
    }
  }
}

TEST(Mva, ThroughputSaturatesAtBottleneck) {
  const ClosedNetwork net{1.0, {0.05, 0.02}};
  const MvaResult r = exact_mva(net, 400);
  EXPECT_NEAR(r.throughput_rps, 1.0 / 0.05, 0.01);  // bottleneck law
  EXPECT_NEAR(r.stations[0].utilization, 1.0, 1e-3);
  EXPECT_LT(r.stations[1].utilization, 0.5);
}

TEST(Mva, ResponseTimeMonotoneInPopulation) {
  const ClosedNetwork net{1.0, {0.05, 0.03}};
  double prev = 0.0;
  for (std::size_t n = 1; n <= 60; n += 5) {
    const double r = exact_mva(net, n).response_time_s;
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
}

TEST(Mva, UpperBoundHolds) {
  const ClosedNetwork net{1.0, {0.05, 0.03}};
  for (const std::size_t n : {1u, 10u, 50u, 200u}) {
    EXPECT_LE(exact_mva(net, n).throughput_rps, throughput_upper_bound(net, n) + 1e-9);
  }
}

TEST(Mva, PredictsDesMeanResponseTime) {
  // The DES's PS stations with heavy-tailed demands form a BCMP network:
  // MVA on the mean demands must predict the simulated mean response time.
  const std::size_t clients = 40;
  AppConfig config = default_two_tier_app("mva", 4, clients);
  const double web_alloc = 0.4;
  const double db_alloc = 0.5;

  sim::Simulation sim;
  MultiTierApp app(sim, config);
  ResponseTimeMonitor monitor(0.9);
  app.set_response_callback([&](double, double rt) { monitor.record(rt); });
  app.set_allocations(std::vector<double>{web_alloc, db_alloc});
  app.start();
  sim.run_until(2000.0);
  const double sim_mean = monitor.lifetime().mean;

  const ClosedNetwork net{
      config.think_time_s,
      {config.tiers[0].mean_demand_gcycles / web_alloc,
       config.tiers[1].mean_demand_gcycles / db_alloc}};
  const double mva_mean = exact_mva(net, clients).response_time_s;
  EXPECT_NEAR(sim_mean, mva_mean, 0.12 * mva_mean)
      << "DES mean " << sim_mean << " vs MVA " << mva_mean;
}

TEST(Mva, PredictsDesThroughput) {
  const std::size_t clients = 30;
  AppConfig config = default_two_tier_app("mva2", 6, clients);
  sim::Simulation sim;
  MultiTierApp app(sim, config);
  app.set_allocations(std::vector<double>{0.3, 0.4});
  app.start();
  sim.run_until(2000.0);
  const double sim_x = static_cast<double>(app.completed_requests()) / 2000.0;
  const ClosedNetwork net{config.think_time_s,
                          {config.tiers[0].mean_demand_gcycles / 0.3,
                           config.tiers[1].mean_demand_gcycles / 0.4}};
  const double mva_x = exact_mva(net, clients).throughput_rps;
  EXPECT_NEAR(sim_x, mva_x, 0.08 * mva_x);
}

TEST(CapacityScale, MeetsTargetAfterScaling) {
  const ClosedNetwork net{1.0, {0.05, 0.04}};
  const std::size_t clients = 40;
  const double target = 0.4;
  ASSERT_GT(exact_mva(net, clients).response_time_s, target);
  const double scale = response_time_capacity_scale(net, clients, target);
  EXPECT_GT(scale, 1.0);
  ClosedNetwork scaled = net;
  for (double& d : scaled.service_demands_s) d /= scale;
  EXPECT_NEAR(exact_mva(scaled, clients).response_time_s, target, 1e-6);
}

TEST(CapacityScale, ReturnsOneWhenAlreadyMet) {
  const ClosedNetwork net{1.0, {0.01, 0.01}};
  EXPECT_DOUBLE_EQ(response_time_capacity_scale(net, 5, 1.0), 1.0);
}

TEST(CapacityScale, RejectsBadTarget) {
  const ClosedNetwork net{1.0, {0.05}};
  EXPECT_THROW(static_cast<void>(response_time_capacity_scale(net, 5, 0.0)), std::invalid_argument);
}

TEST(Mg1Ps, FormulaAndStability) {
  EXPECT_NEAR(mg1_ps_response_time_s(5.0, 0.1), 0.1 / 0.5, 1e-12);
  EXPECT_THROW(static_cast<void>(mg1_ps_response_time_s(10.0, 0.1)), std::invalid_argument);  // rho = 1
  EXPECT_THROW(static_cast<void>(mg1_ps_response_time_s(-1.0, 0.1)), std::invalid_argument);
}

TEST(Mg1Ps, PredictsOpenWorkloadDes) {
  // Open Poisson arrivals into the two-tier app: per-tier M/G/1-PS.
  AppConfig config = default_two_tier_app("open-mva", 8, 0);
  config.open_arrival_rate_rps = 25.0;
  const double web_alloc = 0.5;  // service time 0.016 -> rho 0.4
  const double db_alloc = 0.6;   // service time 0.02  -> rho 0.5
  sim::Simulation sim;
  MultiTierApp app(sim, config);
  ResponseTimeMonitor monitor(0.9);
  app.set_response_callback([&](double, double rt) { monitor.record(rt); });
  app.set_allocations(std::vector<double>{web_alloc, db_alloc});
  app.start();
  sim.run_until(2000.0);
  const double expected =
      mg1_ps_response_time_s(25.0, config.tiers[0].mean_demand_gcycles / web_alloc) +
      mg1_ps_response_time_s(25.0, config.tiers[1].mean_demand_gcycles / db_alloc);
  EXPECT_NEAR(monitor.lifetime().mean, expected, 0.12 * expected);
}

}  // namespace
}  // namespace vdc::app
