#include "control/mpc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vdc::control {
namespace {

ArxModel siso_model() {
  // t(k) = 0.5 t(k-1) - 1.0 c(k-1) + 2.0  (steady state: t = (2 - c)/0.5).
  ArxModel m;
  m.na = 1;
  m.nb = 1;
  m.nu = 1;
  m.a = {0.5};
  m.b = linalg::Matrix(1, 1);
  m.b(0, 0) = -1.0;
  m.bias = 2.0;
  return m;
}

ArxModel mimo_model() {
  ArxModel m;
  m.na = 1;
  m.nb = 2;
  m.nu = 2;
  m.a = {0.5};
  m.b = linalg::Matrix(2, 2);
  m.b(0, 0) = -0.5;
  m.b(0, 1) = -1.5;
  m.b(1, 0) = 0.0;
  m.b(1, 1) = 0.2;
  m.bias = 2.0;
  return m;
}

MpcConfig base_config() {
  MpcConfig c;
  c.prediction_horizon = 10;
  c.control_horizon = 3;
  c.q_weight = 1.0;
  c.r_weight = {0.5};
  c.period_s = 4.0;
  c.tref_s = 12.0;
  c.setpoint = 1.0;
  c.c_min = {0.1};
  c.c_max = {3.0};
  c.delta_max = 0.5;
  c.terminal = MpcConfig::Terminal::kSoft;
  return c;
}

/// Runs the controller against its own (exact) model as the plant.
double closed_loop_final(const ArxModel& model, const MpcConfig& config, double t0,
                         std::vector<double> c0, int steps = 120,
                         std::vector<double>* final_c = nullptr) {
  MpcController ctl(model, config);
  ctl.reset(t0, c0);
  std::vector<double> t_hist(model.na, t0);
  std::vector<std::vector<double>> c_hist(model.nb, c0);
  double t = t0;
  for (int k = 0; k < steps; ++k) {
    const std::vector<double> c = ctl.step(t);
    c_hist.insert(c_hist.begin(), c);
    c_hist.pop_back();
    t = model.predict(t_hist, c_hist);
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
    if (final_c) *final_c = c;
  }
  return t;
}

TEST(MpcConfig, ValidationAndBroadcast) {
  MpcConfig c = base_config();
  const MpcConfig wide = c.broadcast(3);
  EXPECT_EQ(wide.r_weight.size(), 3u);
  EXPECT_EQ(wide.c_min.size(), 3u);
  EXPECT_NO_THROW(wide.validate(3));
  c.control_horizon = 0;
  EXPECT_THROW(c.validate(1), std::invalid_argument);
  c = base_config();
  c.control_horizon = 20;  // > P
  EXPECT_THROW(c.validate(1), std::invalid_argument);
  c = base_config();
  c.r_weight = {0.0};
  EXPECT_THROW(c.validate(1), std::invalid_argument);
  c = base_config();
  c.c_min = {2.0};
  c.c_max = {1.0};
  EXPECT_THROW(c.validate(1), std::invalid_argument);
}

TEST(Mpc, StepResponseMatchesHandComputation) {
  const MpcController ctl(siso_model(), base_config());
  const linalg::Matrix& s = ctl.step_response();
  // s(1) = b1 = -1; s(2) = a*s(1) + b1 = -1.5; s(3) = 0.5*(-1.5) - 1 = -1.75.
  EXPECT_NEAR(s(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(s(1, 0), -1.5, 1e-12);
  EXPECT_NEAR(s(2, 0), -1.75, 1e-12);
  // Converges to the DC gain -2.
  EXPECT_NEAR(s(9, 0), -2.0, 0.01);
}

TEST(Mpc, StepRequiresReset) {
  MpcController ctl(siso_model(), base_config());
  EXPECT_THROW((void)ctl.step(1.0), std::logic_error);
  EXPECT_THROW((void)ctl.current_allocations(), std::logic_error);
  ctl.reset(1.0, std::vector<double>{0.5});
  EXPECT_EQ(ctl.current_allocations(), (std::vector<double>{0.5}));
  EXPECT_THROW(ctl.reset(1.0, std::vector<double>{0.5, 0.5}), std::invalid_argument);
}

TEST(Mpc, ConvergesToSetpointOnNominalPlant) {
  const double t_final = closed_loop_final(siso_model(), base_config(), 3.0, {0.5});
  EXPECT_NEAR(t_final, 1.0, 1e-3);
}

TEST(Mpc, ConvergesFromBelow) {
  const double t_final = closed_loop_final(siso_model(), base_config(), 0.2, {2.0});
  EXPECT_NEAR(t_final, 1.0, 1e-3);
}

TEST(Mpc, MimoConvergesToSetpoint) {
  MpcConfig config = base_config();
  config.r_weight = {0.5, 0.5};
  config.c_min = {0.1, 0.1};
  config.c_max = {3.0, 3.0};
  const double t_final = closed_loop_final(mimo_model(), config, 2.5, {0.5, 0.5});
  EXPECT_NEAR(t_final, 1.0, 1e-3);
}

class TerminalModeSweep : public ::testing::TestWithParam<MpcConfig::Terminal> {};

TEST_P(TerminalModeSweep, AllModesConvergeNominally) {
  MpcConfig config = base_config();
  config.terminal = GetParam();
  const double t_final = closed_loop_final(siso_model(), config, 2.0, {0.5});
  EXPECT_NEAR(t_final, 1.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Modes, TerminalModeSweep,
                         ::testing::Values(MpcConfig::Terminal::kHard,
                                           MpcConfig::Terminal::kSoft,
                                           MpcConfig::Terminal::kOff));

TEST(Mpc, RespectsActuatorBounds) {
  MpcConfig config = base_config();
  config.c_min = {0.3};
  config.c_max = {0.9};
  MpcController ctl(siso_model(), config);
  ctl.reset(5.0, std::vector<double>{0.5});
  double t = 5.0;
  for (int k = 0; k < 50; ++k) {
    const std::vector<double> c = ctl.step(t);
    EXPECT_GE(c[0], 0.3 - 1e-9);
    EXPECT_LE(c[0], 0.9 + 1e-9);
    t = std::max(0.1, t * 0.8);
  }
}

TEST(Mpc, RespectsRateLimit) {
  MpcConfig config = base_config();
  config.delta_max = 0.05;
  MpcController ctl(siso_model(), config);
  ctl.reset(4.0, std::vector<double>{0.5});
  std::vector<double> prev = {0.5};
  for (int k = 0; k < 30; ++k) {
    const std::vector<double> c = ctl.step(4.0);  // persistent high error
    EXPECT_LE(std::abs(c[0] - prev[0]), 0.05 + 1e-9);
    prev = c;
  }
}

TEST(Mpc, RejectsConstantDisturbanceViaBiasCorrection) {
  // Plant = model + constant offset the model does not know about.
  const ArxModel model = siso_model();
  MpcConfig config = base_config();
  MpcController ctl(model, config);
  ctl.reset(1.0, std::vector<double>{0.5});
  std::vector<double> t_hist = {1.0};
  std::vector<std::vector<double>> c_hist = {{0.5}};
  double t = 1.0;
  const double offset = 0.8;  // unmodeled load increase
  for (int k = 0; k < 150; ++k) {
    const std::vector<double> c = ctl.step(t);
    c_hist.insert(c_hist.begin(), c);
    c_hist.pop_back();
    t = model.predict(t_hist, c_hist) + offset;
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
  }
  EXPECT_NEAR(t, 1.0, 5e-3) << "disturbance must be rejected (offset-free tracking)";
}

TEST(Mpc, NoDisturbanceGainLeavesOffset) {
  const ArxModel model = siso_model();
  MpcConfig config = base_config();
  config.disturbance_gain = 0.0;
  config.terminal = MpcConfig::Terminal::kOff;  // no terminal pull either
  MpcController ctl(model, config);
  ctl.reset(1.0, std::vector<double>{0.5});
  std::vector<double> t_hist = {1.0};
  std::vector<std::vector<double>> c_hist = {{0.5}};
  double t = 1.0;
  for (int k = 0; k < 150; ++k) {
    const std::vector<double> c = ctl.step(t);
    c_hist.insert(c_hist.begin(), c);
    c_hist.pop_back();
    t = model.predict(t_hist, c_hist) + 0.8;
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
  }
  EXPECT_GT(std::abs(t - 1.0), 0.05) << "without correction a steady offset remains";
}

TEST(Mpc, SetpointChangeTracked) {
  const ArxModel model = siso_model();
  MpcController ctl(model, base_config());
  ctl.reset(1.0, std::vector<double>{0.5});
  std::vector<double> t_hist = {1.0};
  std::vector<std::vector<double>> c_hist = {{0.5}};
  double t = 1.0;
  ctl.set_setpoint(1.6);
  EXPECT_DOUBLE_EQ(ctl.setpoint(), 1.6);
  for (int k = 0; k < 120; ++k) {
    const std::vector<double> c = ctl.step(t);
    c_hist.insert(c_hist.begin(), c);
    c_hist.pop_back();
    t = model.predict(t_hist, c_hist);
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
  }
  EXPECT_NEAR(t, 1.6, 1e-3);
}

TEST(Mpc, DiagnosticsPopulated) {
  MpcController ctl(siso_model(), base_config());
  ctl.reset(2.0, std::vector<double>{0.5});
  (void)ctl.step(2.0);
  const MpcDiagnostics& d = ctl.diagnostics();
  EXPECT_TRUE(d.qp_converged);
  EXPECT_TRUE(std::isfinite(d.predicted_terminal));
  EXPECT_TRUE(std::isfinite(d.cost));
}

TEST(Mpc, HardTerminalInfeasibleFallsBackGracefully) {
  // Huge initial error with a tight rate limit: the hard terminal equality
  // cannot be met. The controller must still return a bounded, in-range
  // move rather than throwing.
  MpcConfig config = base_config();
  config.terminal = MpcConfig::Terminal::kHard;
  config.delta_max = 0.02;
  MpcController ctl(siso_model(), config);
  ctl.reset(50.0, std::vector<double>{0.5});
  const std::vector<double> c = ctl.step(50.0);
  EXPECT_GE(c[0], config.c_min[0] - 1e-9);
  EXPECT_LE(c[0], config.c_max[0] + 1e-9);
}

}  // namespace
}  // namespace vdc::control
