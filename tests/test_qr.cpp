#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "linalg/lu.hpp"
#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

Matrix random_full_rank(std::size_t m, std::size_t n, util::Rng& rng) {
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  for (std::size_t j = 0; j < n && j < m; ++j) a(j, j) += 2.0;
  return a;
}

TEST(Qr, ExactSolveOnSquareSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = least_squares(a, std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Qr, OverdeterminedMatchesNormalEquations) {
  util::Rng rng(3);
  const Matrix a = random_full_rank(12, 4, rng);
  std::vector<double> b(12);
  for (double& v : b) v = rng.uniform(-2.0, 2.0);

  const Vector x_qr = least_squares(a, b);
  // Normal equations via LU: (A'A) x = A'b.
  const Matrix ata = a.transpose() * a;
  const Vector atb = a.transpose() * std::span<const double>(b);
  const Vector x_ne = lu_solve(ata, atb);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-9);
}

TEST(Qr, ResidualOrthogonalToColumnSpace) {
  util::Rng rng(5);
  const Matrix a = random_full_rank(10, 3, rng);
  std::vector<double> b(10);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = least_squares(a, b);
  const Vector ax = a * std::span<const double>(x);
  const Vector r = sub(b, ax);
  const Vector atr = a.transpose() * std::span<const double>(r);
  for (const double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Qr, RankDeficiencyDetectedAndThrows) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // second column dependent
  }
  const QrDecomposition qr(a);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW(qr.solve(std::vector<double>(4, 1.0)), std::runtime_error);
}

TEST(Qr, WideMatrixRejected) { EXPECT_THROW(QrDecomposition(Matrix(2, 3)), std::invalid_argument); }

TEST(Qr, QFullIsOrthogonal) {
  util::Rng rng(7);
  const Matrix a = random_full_rank(6, 3, rng);
  const QrDecomposition qr(a);
  const Matrix q = qr.q_full();
  EXPECT_LT((q.transpose() * q - Matrix::identity(6)).max_abs(), 1e-10);
}

TEST(Qr, QtThenQIsIdentityOnVectors) {
  util::Rng rng(9);
  const Matrix a = random_full_rank(7, 4, rng);
  const QrDecomposition qr(a);
  std::vector<double> v(7);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  const Vector round_trip = qr.q_apply(qr.qt_apply(v));
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(round_trip[i], v[i], 1e-11);
}

TEST(Qr, TrailingQColumnsSpanNullSpaceOfAt) {
  // Columns n..m-1 of Q are orthogonal to range(A): A^T q = 0.
  util::Rng rng(11);
  const Matrix a = random_full_rank(6, 2, rng);
  const QrDecomposition qr(a);
  const Matrix q = qr.q_full();
  for (std::size_t c = 2; c < 6; ++c) {
    std::vector<double> col(6);
    for (std::size_t r = 0; r < 6; ++r) col[r] = q(r, c);
    const Vector atq = a.transpose() * std::span<const double>(col);
    for (const double v : atq) EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

TEST(Qr, RReconstructsAFromQ) {
  util::Rng rng(13);
  const Matrix a = random_full_rank(5, 3, rng);
  const QrDecomposition qr(a);
  const Matrix r = qr.r();
  // A == Q * [R; 0]: check column by column via q_apply.
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<double> rc(5, 0.0);
    for (std::size_t i = 0; i <= c; ++i) rc[i] = r(i, c);
    const Vector ac = qr.q_apply(rc);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(ac[i], a(i, c), 1e-10);
  }
}

TEST(Ridge, ShrinksTowardZeroAsLambdaGrows) {
  util::Rng rng(15);
  const Matrix a = random_full_rank(8, 3, rng);
  std::vector<double> b(8);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x_small = ridge_least_squares(a, b, 1e-8);
  const Vector x_large = ridge_least_squares(a, b, 1e4);
  EXPECT_GT(norm2(x_small), norm2(x_large));
  EXPECT_LT(norm2(x_large), 1e-2);
}

TEST(Ridge, HandlesRankDeficiencyGracefully) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 1.0;
  }
  const Vector x = ridge_least_squares(a, std::vector<double>(4, 2.0), 1e-6);
  // Symmetric problem: ridge splits the weight evenly.
  EXPECT_NEAR(x[0], x[1], 1e-9);
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Ridge, RejectsNonPositiveLambda) {
  EXPECT_THROW(ridge_least_squares(Matrix(2, 2), std::vector<double>(2, 0.0), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdc::linalg
