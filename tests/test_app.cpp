#include "app/multi_tier_app.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "app/monitor.hpp"
#include "util/statistics.hpp"

namespace vdc::app {
namespace {

AppConfig small_app(std::uint64_t seed, std::size_t concurrency) {
  return default_two_tier_app("t", seed, concurrency);
}

TEST(MultiTierApp, RejectsEmptyTierList) {
  sim::Simulation sim;
  AppConfig config;
  config.tiers.clear();
  EXPECT_THROW(MultiTierApp(sim, config), std::invalid_argument);
}

TEST(MultiTierApp, CompletesRequestsUnderLoad) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(1, 10));
  app.start();
  sim.run_until(60.0);
  EXPECT_GT(app.completed_requests(), 100u);
}

TEST(MultiTierApp, StartTwiceThrows) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(1, 5));
  app.start();
  EXPECT_THROW(app.start(), std::logic_error);
}

TEST(MultiTierApp, InFlightNeverExceedsConcurrency) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(2, 12));
  app.start();
  for (int k = 1; k <= 200; ++k) {
    sim.run_until(0.25 * k);
    EXPECT_LE(app.requests_in_flight(), 12u);
  }
}

TEST(MultiTierApp, ResponseTimesArePositiveAndFinite) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(3, 20));
  bool all_ok = true;
  app.set_response_callback([&](double completion, double rt) {
    all_ok = all_ok && rt > 0.0 && rt < 1e4 && completion >= rt;
  });
  app.start();
  sim.run_until(120.0);
  EXPECT_TRUE(all_ok);
  EXPECT_GT(app.completed_requests(), 500u);
}

TEST(MultiTierApp, MoreCpuLowersResponseTime) {
  const auto p90_at = [](double alloc) {
    sim::Simulation sim;
    MultiTierApp app(sim, small_app(4, 40));
    ResponseTimeMonitor monitor(0.9);
    app.set_response_callback([&](double, double rt) { monitor.record(rt); });
    app.set_allocations(std::vector<double>(2, alloc));
    app.start();
    sim.run_until(400.0);
    return monitor.lifetime().quantile;
  };
  const double starved = p90_at(0.25);
  const double generous = p90_at(1.5);
  EXPECT_GT(starved, 2.0 * generous);
}

TEST(MultiTierApp, AllocationAccessorsRoundTrip) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(5, 5));
  app.set_allocations(std::vector<double>{0.4, 0.7});
  EXPECT_EQ(app.allocations(), (std::vector<double>{0.4, 0.7}));
  app.set_allocation(0, 0.9);
  EXPECT_DOUBLE_EQ(app.allocations()[0], 0.9);
  EXPECT_THROW(app.set_allocation(5, 1.0), std::out_of_range);
  EXPECT_THROW(app.set_allocations(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(MultiTierApp, ConcurrencyIncreaseRaisesThroughput) {
  const auto throughput_at = [](std::size_t concurrency) {
    sim::Simulation sim;
    MultiTierApp app(sim, small_app(6, concurrency));
    app.set_allocations(std::vector<double>(2, 2.0));  // ample CPU
    app.start();
    sim.run_until(300.0);
    return static_cast<double>(app.completed_requests()) / 300.0;
  };
  // With ample CPU and think time Z=1s, throughput ~ N/(Z + R) grows with N.
  EXPECT_GT(throughput_at(40), 1.8 * throughput_at(20));
}

TEST(MultiTierApp, ConcurrencyShrinkRetiresClients) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(7, 30));
  app.start();
  sim.run_until(50.0);
  app.set_concurrency(5);
  EXPECT_EQ(app.concurrency(), 5u);
  sim.run_until(150.0);
  // After draining, in-flight must respect the reduced population.
  EXPECT_LE(app.requests_in_flight(), 5u);
}

TEST(MultiTierApp, ConcurrencyGrowthTakesEffectLive) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(8, 10));
  app.set_allocations(std::vector<double>(2, 2.0));
  app.start();
  sim.run_until(100.0);
  const double rate_before = static_cast<double>(app.completed_requests()) / 100.0;
  app.set_concurrency(40);
  sim.run_until(300.0);
  const double rate_after =
      static_cast<double>(app.completed_requests()) / 300.0;  // blended, still higher
  EXPECT_GT(rate_after, rate_before * 1.5);
}

TEST(MultiTierApp, TierWorkDoneAccumulates) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(9, 10));
  app.start();
  sim.run_until(100.0);
  const double web = app.tier_work_done_gcycles(0);
  const double db = app.tier_work_done_gcycles(1);
  EXPECT_GT(web, 0.0);
  EXPECT_GT(db, 0.0);
  // Mean demands are 8 and 12 Mcycles: db tier does ~1.5x the web work.
  EXPECT_NEAR(db / web, 1.5, 0.25);
  EXPECT_THROW(static_cast<void>(app.tier_work_done_gcycles(2)), std::out_of_range);
}

TEST(MultiTierApp, DeterministicForSameSeed) {
  const auto run = [] {
    sim::Simulation sim;
    MultiTierApp app(sim, small_app(42, 15));
    app.start();
    sim.run_until(100.0);
    return app.completed_requests();
  };
  EXPECT_EQ(run(), run());
}

TEST(MultiTierApp, RejectsBadTierConfigPerField) {
  sim::Simulation sim;
  const auto expect_rejected = [&](auto&& mutate) {
    AppConfig config = small_app(1, 10);
    mutate(config);
    EXPECT_THROW(MultiTierApp(sim, config), std::invalid_argument);
  };
  expect_rejected([](AppConfig& c) { c.tiers[0].mean_demand_gcycles = 0.0; });
  expect_rejected([](AppConfig& c) { c.tiers[0].mean_demand_gcycles = -0.01; });
  expect_rejected([](AppConfig& c) {
    c.tiers[1].mean_demand_gcycles = std::numeric_limits<double>::infinity();
  });
  // alpha == 1 makes the bounded-Pareto mean divide by zero; at or below 1
  // the finite-mean rescale is meaningless. The constructor must refuse.
  expect_rejected([](AppConfig& c) { c.tiers[0].pareto_alpha = 1.0; });
  expect_rejected([](AppConfig& c) { c.tiers[0].pareto_alpha = 0.5; });
  expect_rejected([](AppConfig& c) {
    c.tiers[1].pareto_alpha = std::numeric_limits<double>::quiet_NaN();
  });
  expect_rejected([](AppConfig& c) { c.tiers[0].initial_allocation_ghz = -1.0; });
  expect_rejected([](AppConfig& c) { c.think_time_s = 0.0; });
  expect_rejected([](AppConfig& c) { c.think_time_s = -2.0; });
  // Closed mode with zero clients and no arrival rate is an empty workload.
  expect_rejected([](AppConfig& c) { c.concurrency = 0; });
}

TEST(MultiTierApp, ConcurrencyZeroThenRegrow) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(21, 10));
  app.start();
  sim.run_until(30.0);
  app.set_concurrency(0);
  sim.drain_until(500.0);  // every client retires at its next decision point
  EXPECT_EQ(app.active_clients(), 0u);
  EXPECT_EQ(app.requests_in_flight(), 0u);
  const auto before = app.completed_requests();
  app.set_concurrency(8);  // regrow from zero spawns fresh clients at once
  EXPECT_EQ(app.active_clients(), 8u);
  sim.run_until(sim.now() + 60.0);
  EXPECT_GT(app.completed_requests(), before + 50u);
}

TEST(MultiTierApp, LazyShrinkKeepsConcurrencyAndActiveClientsDistinct) {
  sim::Simulation sim;
  MultiTierApp app(sim, small_app(22, 20));
  app.start();
  sim.run_until(30.0);
  app.set_concurrency(5);
  // The target drops immediately; the population drains lazily, so right
  // after the shrink more clients may still be live than the target.
  EXPECT_EQ(app.concurrency(), 5u);
  EXPECT_GE(app.active_clients(), 5u);
  sim.run_until(90.0);  // decision points pass: excess clients retired
  EXPECT_EQ(app.active_clients(), 5u);
  EXPECT_LE(app.requests_in_flight(), 5u);
}

TEST(DefaultTwoTierApp, HasWebAndDbTiers) {
  const AppConfig config = default_two_tier_app("x", 1, 40);
  ASSERT_EQ(config.tiers.size(), 2u);
  EXPECT_EQ(config.tiers[0].name, "web");
  EXPECT_EQ(config.tiers[1].name, "db");
  EXPECT_EQ(config.concurrency, 40u);
  EXPECT_GT(config.tiers[1].mean_demand_gcycles, config.tiers[0].mean_demand_gcycles);
}

}  // namespace
}  // namespace vdc::app
