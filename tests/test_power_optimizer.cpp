#include "core/power_optimizer.hpp"

#include <gtest/gtest.h>

namespace vdc::core {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;

Cluster scattered_cluster() {
  Cluster c;
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  Vm vm;
  vm.cpu_demand_ghz = 1.0;
  vm.memory_mb = 512.0;
  c.add_vm(vm, 1);
  c.add_vm(vm, 2);
  return c;
}

OptimizerConfig make_config(ConsolidationAlgorithm algorithm, double target = 0.9) {
  OptimizerConfig config;
  config.algorithm = algorithm;
  config.utilization_target = target;
  return config;
}

TEST(PowerOptimizer, ToStringNames) {
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kIpac), "IPAC");
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kPMapper), "pMapper");
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kNone), "none");
}

TEST(PowerOptimizer, IpacConsolidatesAndSleeps) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_before, 3u);
  EXPECT_EQ(outcome.active_after, 1u);
  EXPECT_EQ(outcome.migrations, 2u);
  EXPECT_EQ(outcome.unplaced, 0u);
  EXPECT_EQ(optimizer.total_migrations(), 2u);
  EXPECT_EQ(optimizer.invocations(), 1u);
  EXPECT_EQ(c.vms_on(0).size(), 2u);
}

TEST(PowerOptimizer, PMapperAlsoConsolidates) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kPMapper, 1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_after, 1u);
  EXPECT_EQ(c.vms_on(0).size(), 2u);
}

TEST(PowerOptimizer, NoneOnlySleepsIdleServers) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kNone));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.migrations, 0u);
  EXPECT_EQ(outcome.active_after, 2u);  // the empty quad went to sleep
}

TEST(PowerOptimizer, CustomConstraintIsEnforced) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  // Forbid any server from hosting more than one VM.
  optimizer.add_constraint(std::make_unique<consolidate::CustomConstraint>(
      "one-vm-per-server",
      [](const consolidate::ServerSnapshot&,
         std::span<const consolidate::VmSnapshot* const> vms) { return vms.size() <= 1; }));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_after, 2u);  // cannot merge the two VMs
}

TEST(PowerOptimizer, CostPolicyShared) {
  Cluster c = scattered_cluster();
  // A zero-byte bandwidth budget vetoes every consolidation round.
  PowerOptimizer optimizer(
      make_config(ConsolidationAlgorithm::kIpac, 1.0),
      std::make_shared<consolidate::BandwidthBudgetPolicy>(1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.migrations, 0u);
}

TEST(PowerOptimizer, RepeatedInvocationsAreQuiescent) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  (void)optimizer.optimize(c, 0.0);
  const OptimizationOutcome second = optimizer.optimize(c, 3600.0);
  EXPECT_EQ(second.migrations, 0u);
  EXPECT_EQ(second.active_before, second.active_after);
}

}  // namespace
}  // namespace vdc::core
