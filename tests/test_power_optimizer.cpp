#include "core/power_optimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdc::core {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;

Cluster scattered_cluster() {
  Cluster c;
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  Vm vm;
  vm.cpu_demand_ghz = 1.0;
  vm.memory_mb = 512.0;
  c.add_vm(vm, 1);
  c.add_vm(vm, 2);
  return c;
}

OptimizerConfig make_config(ConsolidationAlgorithm algorithm, double target = 0.9) {
  OptimizerConfig config;
  config.algorithm = algorithm;
  config.utilization_target = target;
  return config;
}

TEST(PowerOptimizer, ToStringNames) {
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kIpac), "IPAC");
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kPMapper), "pMapper");
  EXPECT_EQ(to_string(ConsolidationAlgorithm::kNone), "none");
}

TEST(PowerOptimizer, IpacConsolidatesAndSleeps) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_before, 3u);
  EXPECT_EQ(outcome.active_after, 1u);
  EXPECT_EQ(outcome.migrations, 2u);
  EXPECT_EQ(outcome.unplaced, 0u);
  EXPECT_EQ(optimizer.total_migrations(), 2u);
  EXPECT_EQ(optimizer.invocations(), 1u);
  EXPECT_EQ(c.vms_on(0).size(), 2u);
}

TEST(PowerOptimizer, PMapperAlsoConsolidates) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kPMapper, 1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_after, 1u);
  EXPECT_EQ(c.vms_on(0).size(), 2u);
}

TEST(PowerOptimizer, NoneOnlySleepsIdleServers) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kNone));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.migrations, 0u);
  EXPECT_EQ(outcome.active_after, 2u);  // the empty quad went to sleep
}

TEST(PowerOptimizer, CustomConstraintIsEnforced) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  // Forbid any server from hosting more than one VM.
  optimizer.add_constraint(std::make_unique<consolidate::CustomConstraint>(
      "one-vm-per-server",
      [](const consolidate::ServerSnapshot&,
         std::span<const consolidate::VmSnapshot* const> vms) { return vms.size() <= 1; }));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.active_after, 2u);  // cannot merge the two VMs
}

TEST(PowerOptimizer, CostPolicyShared) {
  Cluster c = scattered_cluster();
  // A zero-byte bandwidth budget vetoes every consolidation round.
  PowerOptimizer optimizer(
      make_config(ConsolidationAlgorithm::kIpac, 1.0),
      std::make_shared<consolidate::BandwidthBudgetPolicy>(1.0));
  const OptimizationOutcome outcome = optimizer.optimize(c, 0.0);
  EXPECT_EQ(outcome.migrations, 0u);
}

TEST(PowerOptimizer, RepeatedInvocationsAreQuiescent) {
  Cluster c = scattered_cluster();
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  (void)optimizer.optimize(c, 0.0);
  const OptimizationOutcome second = optimizer.optimize(c, 3600.0);
  EXPECT_EQ(second.migrations, 0u);
  EXPECT_EQ(second.active_before, second.active_after);
}

// ---- migration failure backoff (fault injection) ----------------------------

TEST(PowerOptimizer, FailedMigrationsBackOffBeforeRetrying) {
  Cluster c = scattered_cluster();
  OptimizerConfig config = make_config(ConsolidationAlgorithm::kIpac, 1.0);
  config.migration_backoff_s = 300.0;
  PowerOptimizer optimizer(config);

  // The plan wants to consolidate both scattered VMs.
  const consolidate::PlacementPlan first = optimizer.plan(c, 0.0);
  ASSERT_FALSE(first.moves.empty());

  // Both migrations fail: every move is deferred until the backoff expires.
  for (const consolidate::Move& move : first.moves) {
    optimizer.note_migration_failure(move.vm, 0.0);
  }
  EXPECT_EQ(optimizer.migration_failures(), first.moves.size());

  const consolidate::PlacementPlan during = optimizer.plan(c, 100.0);
  EXPECT_TRUE(during.moves.empty());
  EXPECT_EQ(optimizer.moves_deferred(), first.moves.size());

  // Past the deadline the same moves are proposed again.
  const consolidate::PlacementPlan after = optimizer.plan(c, 300.0);
  EXPECT_EQ(after.moves.size(), first.moves.size());
}

TEST(PowerOptimizer, BackoffNeverDefersHomelessVmPlacements) {
  Cluster c = scattered_cluster();
  Vm vm;
  vm.cpu_demand_ghz = 0.5;
  vm.memory_mb = 256.0;
  const datacenter::VmId homeless = c.add_vm(vm);  // no host: starts homeless

  OptimizerConfig config = make_config(ConsolidationAlgorithm::kIpac, 1.0);
  config.migration_backoff_s = 1000.0;
  PowerOptimizer optimizer(config);
  optimizer.note_migration_failure(homeless, 0.0);  // e.g. its restart target died

  // A homeless VM gets no CPU at all, so re-placing it always beats
  // waiting out the backoff.
  const consolidate::PlacementPlan plan = optimizer.plan(c, 10.0);
  bool placed = false;
  for (const consolidate::Move& move : plan.moves) {
    if (move.vm == homeless) {
      EXPECT_EQ(move.from, datacenter::kNoServer);
      placed = true;
    }
  }
  EXPECT_TRUE(placed);
}

TEST(PowerOptimizer, BackoffAndHomelessPlansIdenticalAcrossEngines) {
  // The backoff machinery (defer moves for recently failed VMs, but never
  // defer a homeless re-placement) filters and re-plans around whatever the
  // consolidation engine proposes. Run the same fault sequence through the
  // fast and naive engines: every intermediate plan must be move-for-move
  // identical, so the backoff interplay cannot depend on which engine is
  // configured.
  auto run = [](ConsolidationEngine engine) {
    Cluster c = scattered_cluster();
    Vm vm;
    vm.cpu_demand_ghz = 0.5;
    vm.memory_mb = 256.0;
    const datacenter::VmId homeless = c.add_vm(vm);  // no host: starts homeless

    OptimizerConfig config = make_config(ConsolidationAlgorithm::kIpac, 1.0);
    config.engine = engine;
    config.migration_backoff_s = 300.0;
    PowerOptimizer optimizer(config);

    std::vector<consolidate::PlacementPlan> plans;
    plans.push_back(optimizer.plan(c, 0.0));
    // Every proposed migration fails, including the homeless placement's
    // restart target: the next plan may only re-place the homeless VM.
    for (const consolidate::Move& move : plans.back().moves) {
      optimizer.note_migration_failure(move.vm, 0.0);
    }
    optimizer.note_migration_failure(homeless, 0.0);
    plans.push_back(optimizer.plan(c, 100.0));  // backoff window open
    plans.push_back(optimizer.plan(c, 400.0));  // backoff expired
    return plans;
  };

  const std::vector<consolidate::PlacementPlan> fast = run(ConsolidationEngine::kFast);
  const std::vector<consolidate::PlacementPlan> naive = run(ConsolidationEngine::kNaive);
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t p = 0; p < fast.size(); ++p) {
    ASSERT_EQ(fast[p].moves.size(), naive[p].moves.size()) << "plan " << p;
    for (std::size_t m = 0; m < fast[p].moves.size(); ++m) {
      EXPECT_EQ(fast[p].moves[m].vm, naive[p].moves[m].vm) << "plan " << p;
      EXPECT_EQ(fast[p].moves[m].from, naive[p].moves[m].from) << "plan " << p;
      EXPECT_EQ(fast[p].moves[m].to, naive[p].moves[m].to) << "plan " << p;
    }
    EXPECT_EQ(fast[p].unplaced, naive[p].unplaced) << "plan " << p;
  }
  // The sequence exercised what it claims: moves proposed, then a deferral
  // window with only the homeless re-placement allowed, then a retry.
  ASSERT_FALSE(fast[0].moves.empty());
  for (const consolidate::Move& move : fast[1].moves) {
    EXPECT_EQ(move.from, datacenter::kNoServer);
  }
  ASSERT_FALSE(fast[2].moves.empty());
}

TEST(PowerOptimizer, PlanSkipsFailedServers) {
  Cluster c = scattered_cluster();
  // Kill the efficient quad the consolidation would otherwise target.
  (void)c.fail_server(0);
  PowerOptimizer optimizer(make_config(ConsolidationAlgorithm::kIpac, 1.0));
  const consolidate::PlacementPlan plan = optimizer.plan(c, 0.0);
  for (const consolidate::Move& move : plan.moves) {
    EXPECT_NE(move.to, 0u) << "planned a move onto a crashed server";
  }
}

}  // namespace
}  // namespace vdc::core
