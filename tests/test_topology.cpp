// Physical-topology layer: the pod/rack/server hierarchy, the network
// distance tiers, shared-infrastructure power conservation in the cluster,
// correlated rack failures, and the migration energy model built on top.
#include "datacenter/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "consolidate/topology_cost.hpp"
#include "datacenter/cluster.hpp"

namespace vdc::datacenter {
namespace {

Vm make_vm(double demand, double memory = 1024.0) {
  Vm vm;
  vm.cpu_demand_ghz = demand;
  vm.memory_mb = memory;
  return vm;
}

// ---- hierarchy bookkeeping --------------------------------------------------

TEST(Topology, EmptyTopologyIsTheFlatWorld) {
  const Topology topo;
  EXPECT_TRUE(topo.empty());
  EXPECT_EQ(topo.rack_count(), 0u);
  EXPECT_EQ(topo.pod_count(), 0u);
  // Unknown servers are islands, not errors.
  EXPECT_EQ(topo.rack_of(3), kNoRack);
  EXPECT_EQ(topo.pod_of(3), kNoPod);
}

TEST(Topology, BuilderAssignsAndIndexes) {
  Topology topo;
  const PodId p0 = topo.add_pod(120.0);
  const RackId r0 = topo.add_rack(p0, 40.0);
  const RackId r1 = topo.add_rack(p0, 55.0);
  topo.assign(0, r0);
  topo.assign(1, r0);
  topo.assign(2, r1);

  EXPECT_FALSE(topo.empty());
  EXPECT_EQ(topo.rack_count(), 2u);
  EXPECT_EQ(topo.pod_count(), 1u);
  EXPECT_EQ(topo.rack_of(0), r0);
  EXPECT_EQ(topo.rack_of(2), r1);
  EXPECT_EQ(topo.pod_of(2), p0);
  EXPECT_EQ(topo.pod_of_rack(r1), p0);
  EXPECT_DOUBLE_EQ(topo.rack_shared_power_w(r0), 40.0);
  EXPECT_DOUBLE_EQ(topo.rack_shared_power_w(r1), 55.0);
  EXPECT_DOUBLE_EQ(topo.pod_shared_power_w(p0), 120.0);
  ASSERT_EQ(topo.servers_in(r0).size(), 2u);
  EXPECT_EQ(topo.servers_in(r0)[1], 1u);
  ASSERT_EQ(topo.racks_in(p0).size(), 2u);
  EXPECT_EQ(topo.racks_in(p0)[0], r0);
  // Server 9 was never assigned: an island, not an error.
  EXPECT_EQ(topo.rack_of(9), kNoRack);
}

TEST(Topology, BuilderRejectsMalformedInput) {
  Topology topo;
  EXPECT_THROW(topo.add_pod(-1.0), std::invalid_argument);
  EXPECT_THROW(topo.add_rack(0, 10.0), std::out_of_range);  // no pods yet
  const PodId pod = topo.add_pod(0.0);
  EXPECT_THROW(topo.add_rack(pod, -5.0), std::invalid_argument);
  const RackId rack = topo.add_rack(pod, 10.0);
  EXPECT_THROW(topo.assign(kNoServer, rack), std::invalid_argument);
  EXPECT_THROW(topo.assign(0, rack + 1), std::out_of_range);
  topo.assign(0, rack);
  EXPECT_THROW(topo.assign(0, rack), std::logic_error);  // already assigned
  EXPECT_THROW(static_cast<void>(topo.pod_of_rack(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.rack_shared_power_w(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.pod_shared_power_w(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.servers_in(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.racks_in(5)), std::out_of_range);
}

TEST(Topology, DistanceTiersFollowTheHierarchy) {
  // 2 pods x 2 racks x 2 servers: servers 0..3 in pod 0, 4..7 in pod 1.
  const Topology topo = Topology::uniform(2, 2, 2, 30.0, 100.0);
  EXPECT_EQ(topo.distance(0, 0), NetworkDistance::kSameHost);
  EXPECT_EQ(topo.distance(0, 1), NetworkDistance::kSameRack);
  EXPECT_EQ(topo.distance(0, 2), NetworkDistance::kSamePod);
  EXPECT_EQ(topo.distance(0, 4), NetworkDistance::kCrossPod);
  EXPECT_EQ(topo.distance(4, 0), NetworkDistance::kCrossPod);
  // Islands (unassigned servers) share no known fabric with anyone.
  EXPECT_EQ(topo.distance(0, 99), NetworkDistance::kCrossPod);
  EXPECT_EQ(topo.distance(99, 99), NetworkDistance::kSameHost);
}

TEST(Topology, UniformGridAssignsRackMajor) {
  const Topology topo = Topology::uniform(2, 3, 4, 25.0, 80.0);
  EXPECT_EQ(topo.pod_count(), 2u);
  EXPECT_EQ(topo.rack_count(), 6u);
  // Rack-major: rack r holds servers [4r, 4r+4).
  for (RackId r = 0; r < 6; ++r) {
    ASSERT_EQ(topo.servers_in(r).size(), 4u);
    EXPECT_EQ(topo.servers_in(r).front(), r * 4);
    EXPECT_EQ(topo.pod_of_rack(r), r / 3);
    EXPECT_DOUBLE_EQ(topo.rack_shared_power_w(r), 25.0);
  }
  EXPECT_DOUBLE_EQ(topo.pod_shared_power_w(1), 80.0);
  EXPECT_THROW(static_cast<void>(Topology::uniform(0, 3, 4, 1.0)), std::invalid_argument);
}

// ---- migration timing over the tiers ---------------------------------------

TEST(Topology, MigrationBandwidthTiersSlowDistantCopies) {
  MigrationModel model;
  model.network_bandwidth_mbps = 1000.0;
  model.cross_rack_bandwidth_factor = 0.5;
  model.cross_pod_bandwidth_factor = 0.25;

  EXPECT_DOUBLE_EQ(model.bandwidth_mbps(NetworkDistance::kSameRack), 1000.0);
  EXPECT_DOUBLE_EQ(model.bandwidth_mbps(NetworkDistance::kSamePod), 500.0);
  EXPECT_DOUBLE_EQ(model.bandwidth_mbps(NetworkDistance::kCrossPod), 250.0);

  const double mem = 2048.0;
  EXPECT_DOUBLE_EQ(model.duration_s(mem, NetworkDistance::kSameHost), 0.0);
  const double same_rack = model.duration_s(mem, NetworkDistance::kSameRack);
  const double same_pod = model.duration_s(mem, NetworkDistance::kSamePod);
  const double cross_pod = model.duration_s(mem, NetworkDistance::kCrossPod);
  EXPECT_LT(same_rack, same_pod);
  EXPECT_LT(same_pod, cross_pod);
  // The base-tier overload agrees with the distance overload.
  EXPECT_DOUBLE_EQ(model.duration_s(mem), same_rack);
}

TEST(Topology, MigrationEnergyChargesTheDistanceTier) {
  consolidate::MigrationCostModel cost;
  cost.transfer.network_bandwidth_mbps = 1000.0;
  cost.transfer.cross_rack_bandwidth_factor = 0.5;
  cost.transfer.cross_pod_bandwidth_factor = 0.25;
  cost.migration_power_w = 25.0;

  const double mem = 4096.0;
  EXPECT_DOUBLE_EQ(cost.energy_j(mem, NetworkDistance::kSameHost), 0.0);
  const double same_rack = cost.energy_j(mem, NetworkDistance::kSameRack);
  const double same_pod = cost.energy_j(mem, NetworkDistance::kSamePod);
  const double cross_pod = cost.energy_j(mem, NetworkDistance::kCrossPod);
  EXPECT_GT(same_rack, 0.0);
  EXPECT_LT(same_rack, same_pod);
  EXPECT_LT(same_pod, cross_pod);
  // Energy is duration x migration power: J = W * s, checked literally.
  EXPECT_DOUBLE_EQ(
      same_pod, cost.transfer.duration_s(mem, NetworkDistance::kSamePod) * 25.0);
}

// ---- cluster integration: shared draw + correlated failure -----------------

Cluster racked_cluster() {
  // 2 racks x 2 servers in one pod; rack switches at 40 W, pod fabric 100 W.
  Cluster c;
  for (int i = 0; i < 4; ++i) {
    c.add_server(Server(dual_core_2ghz(), power_model_dual_2ghz(), 4096.0));
  }
  c.set_topology(Topology::uniform(1, 2, 2, 40.0, 100.0));
  return c;
}

TEST(Topology, SharedPowerPaidOnlyWhileRackIsLit) {
  Cluster c = racked_cluster();
  c.add_vm(make_vm(1.0), 0);
  c.add_vm(make_vm(1.0), 2);

  // All four servers awake: both rack draws + the pod draw are on.
  const double all_awake = c.arbitrate_and_power_w(false);

  // Sleep rack 1 entirely (servers 2,3): its 40 W switch off, pod stays
  // lit because rack 0 still is. Move the VM off first.
  c.migrate(c.vms_on(2).front(), 0, 10.0);
  c.server(2).set_state(ServerState::kSleeping);
  c.server(3).set_state(ServerState::kSleeping);
  const double rack1_dark = c.arbitrate_and_power_w(false);

  // The delta is the two members' active-vs-sleep swing plus exactly the
  // 40 W rack share. Verify the share by comparing against a flat twin of
  // the same cluster state.
  Cluster flat = racked_cluster();
  flat.set_topology(Topology{});
  flat.add_vm(make_vm(1.0), 0);
  flat.add_vm(make_vm(1.0), 0);  // both VMs on server 0, like after the move
  flat.server(2).set_state(ServerState::kSleeping);
  flat.server(3).set_state(ServerState::kSleeping);
  const double flat_power = flat.arbitrate_and_power_w(false);
  EXPECT_NEAR(rack1_dark - flat_power, 40.0 + 100.0, 1e-9);
  EXPECT_GT(all_awake, rack1_dark);
}

TEST(Topology, FullyDarkPodSwitchesOffEveryShare) {
  Cluster c = racked_cluster();
  for (ServerId s = 0; s < 4; ++s) c.server(s).set_state(ServerState::kSleeping);
  const double dark = c.arbitrate_and_power_w(false);
  // 4 servers x 6 W sleep, zero shared draw anywhere.
  EXPECT_NEAR(dark, 4 * 6.0, 1e-9);
}

TEST(Topology, MigrationLogRecordsTheDistanceTier) {
  Cluster c = racked_cluster();
  const VmId vm = c.add_vm(make_vm(0.5, 2048.0), 0);
  c.migrate(vm, 1, 10.0);  // same rack
  c.migrate(vm, 2, 20.0);  // cross rack, same pod
  ASSERT_EQ(c.migration_log().count(), 2u);
  EXPECT_EQ(c.migration_log().records()[0].distance, NetworkDistance::kSameRack);
  EXPECT_EQ(c.migration_log().records()[1].distance, NetworkDistance::kSamePod);
}

TEST(Topology, RackFailureEvictsEveryMemberTogether) {
  Cluster c = racked_cluster();
  const VmId v0 = c.add_vm(make_vm(1.0), 0);
  const VmId v1 = c.add_vm(make_vm(0.5), 1);
  c.add_vm(make_vm(0.5), 2);

  const std::vector<VmId> evicted = c.fail_rack(0);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_TRUE(c.server(0).failed());
  EXPECT_TRUE(c.server(1).failed());
  EXPECT_FALSE(c.server(2).failed());
  EXPECT_EQ(c.host_of(v0), kNoServer);
  EXPECT_EQ(c.host_of(v1), kNoServer);
  EXPECT_EQ(c.unplaced_vms().size(), 2u);
  // Failed boxes refuse to wake until repaired.
  EXPECT_FALSE(c.wake(0));

  c.repair_rack(0);
  EXPECT_FALSE(c.server(0).failed());
  EXPECT_FALSE(c.server(0).active());  // reboots powered down
  EXPECT_TRUE(c.wake(0));
  c.place(v0, 0);
  EXPECT_EQ(c.host_of(v0), 0u);
}

}  // namespace
}  // namespace vdc::datacenter
