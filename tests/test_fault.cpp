// Unit tests of the fault-injection layer itself: plan validation, the
// zero-cost disabled path (no RNG draws, ever), per-kind determinism (same
// plan + seed => identical decision sequences), window targeting, and the
// counters/event log the chaos scenarios assert against.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/check.hpp"
#include "fault/plan.hpp"

namespace vdc::fault {
namespace {

TEST(FaultPlan, EmptyPlanIsDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultInjector injector{plan};
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultPlan, BuildersChainAndPopulateWindows) {
  const FaultPlan plan = FaultPlan{}
                             .migration_aborts(100.0, 200.0, 0.5)
                             .migration_slowdown(0.0, 50.0, 3.0)
                             .wake_failures(10.0, 20.0, 1.0, 2)
                             .server_crash(1, 300.0, 400.0)
                             .sensor_dropout(0.0, 60.0, 0.25, 0)
                             .sensor_spikes(0.0, 60.0, 10.0, 0.1)
                             .sensor_stale(90.0, 120.0, 1)
                             .dvfs_pin(0, 1.0, 5.0, 15.0);
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.windows.size(), 8u);
  EXPECT_EQ(plan.windows[0].kind, FaultKind::kMigrationAbort);
  EXPECT_EQ(plan.windows[3].kind, FaultKind::kServerCrash);
  EXPECT_EQ(plan.windows[3].target, 1u);
  EXPECT_EQ(plan.windows[7].kind, FaultKind::kDvfsPin);
  EXPECT_DOUBLE_EQ(plan.windows[7].magnitude, 1.0);
}

TEST(FaultWindow, CoversRespectsTimeSpanAndTarget) {
  FaultWindow w;
  w.start_s = 10.0;
  w.end_s = 20.0;
  w.target = 3;
  EXPECT_TRUE(w.covers(10.0, 3));
  EXPECT_TRUE(w.covers(19.999, 3));
  EXPECT_FALSE(w.covers(20.0, 3));  // half-open interval
  EXPECT_FALSE(w.covers(9.999, 3));
  EXPECT_FALSE(w.covers(15.0, 4));
  w.target = kAnyTarget;
  EXPECT_TRUE(w.covers(15.0, 4));
}

#if VDC_CHECKS_ENABLED
TEST(FaultPlan, InjectorRejectsMalformedWindows) {
  using check::CheckFailure;
  {
    FaultPlan p;
    p.migration_aborts(50.0, 50.0, 1.0);  // empty interval
    EXPECT_THROW(FaultInjector{p}, CheckFailure);
  }
  {
    FaultPlan p;
    p.migration_aborts(0.0, 10.0, 1.5);  // probability > 1
    EXPECT_THROW(FaultInjector{p}, CheckFailure);
  }
  {
    FaultPlan p;
    p.migration_slowdown(0.0, 10.0, 0.5);  // would speed migrations up
    EXPECT_THROW(FaultInjector{p}, CheckFailure);
  }
  {
    FaultPlan p;
    p.dvfs_pin(kAnyTarget, 1.0, 0.0, 10.0);  // pin needs a concrete server
    EXPECT_THROW(FaultInjector{p}, CheckFailure);
  }
  {
    FaultPlan p;
    p.sensor_spikes(0.0, 10.0, -2.0, 1.0);  // negative multiplier
    EXPECT_THROW(FaultInjector{p}, CheckFailure);
  }
}
#endif

// ---- the zero-cost idle guarantee ------------------------------------------

TEST(FaultInjector, DisabledInjectorNeverDrawsAndNeverFires) {
  FaultInjector injector;  // default = disabled
  for (double t = 0.0; t < 1000.0; t += 13.0) {
    EXPECT_FALSE(injector.migration_aborts(t, 0));
    EXPECT_DOUBLE_EQ(injector.migration_slowdown(t, 0), 1.0);
    EXPECT_FALSE(injector.wake_fails(t, 1));
    EXPECT_FALSE(injector.dvfs_pin_ghz(t, 0).has_value());
    EXPECT_FALSE(injector.sensor_drops(t, 0));
    EXPECT_DOUBLE_EQ(injector.sensor_spike(t, 0), 1.0);
    EXPECT_FALSE(injector.sensor_stale(t, 0));
    EXPECT_FALSE(injector.server_down(t, 0));
  }
  EXPECT_EQ(injector.rng_draws(), 0u);
  EXPECT_EQ(injector.counters().total(), 0u);
  EXPECT_TRUE(injector.events().empty());
  EXPECT_TRUE(injector.crash_windows().empty());
}

TEST(FaultInjector, QueriesOutsideEveryWindowDoNotTouchTheRng) {
  FaultPlan plan;
  plan.migration_aborts(100.0, 200.0, 0.5);
  plan.sensor_dropout(100.0, 200.0, 0.5);
  FaultInjector injector{plan};
  for (double t = 0.0; t < 100.0; t += 7.0) {
    EXPECT_FALSE(injector.migration_aborts(t, 0));
    EXPECT_FALSE(injector.sensor_drops(t, 0));
  }
  EXPECT_EQ(injector.rng_draws(), 0u) << "idle windows must not consume randomness";
}

TEST(FaultInjector, CertainWindowsSkipTheBernoulliDraw) {
  FaultPlan plan;
  plan.migration_aborts(0.0, 100.0, 1.0);  // p = 1: no coin flip needed
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.migration_aborts(50.0, 0));
  EXPECT_TRUE(injector.migration_aborts(60.0, 7));
  EXPECT_EQ(injector.rng_draws(), 0u);
  EXPECT_EQ(injector.counters().migration_aborts, 2u);
}

// ---- per-kind determinism ---------------------------------------------------

TEST(FaultInjector, ProbabilisticDecisionsReplayExactlyUnderTheSameSeed) {
  const auto chaos = [] {
    FaultPlan plan;
    plan.seed = 42;
    plan.migration_aborts(0.0, 1000.0, 0.3);
    plan.sensor_dropout(0.0, 1000.0, 0.4);
    plan.sensor_spikes(0.0, 1000.0, 8.0, 0.2);
    return plan;
  };
  FaultInjector a{chaos()};
  FaultInjector b{chaos()};
  for (double t = 0.0; t < 1000.0; t += 3.0) {
    EXPECT_EQ(a.migration_aborts(t, 0), b.migration_aborts(t, 0)) << "t=" << t;
    EXPECT_EQ(a.sensor_drops(t, 1), b.sensor_drops(t, 1)) << "t=" << t;
    EXPECT_DOUBLE_EQ(a.sensor_spike(t, 2), b.sensor_spike(t, 2)) << "t=" << t;
  }
  EXPECT_EQ(a.rng_draws(), b.rng_draws());
  EXPECT_GT(a.rng_draws(), 0u);
  EXPECT_EQ(a.counters().migration_aborts, b.counters().migration_aborts);
  EXPECT_EQ(a.counters().sensor_drops, b.counters().sensor_drops);
  EXPECT_EQ(a.counters().sensor_spikes, b.counters().sensor_spikes);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentDecisionSequences) {
  FaultPlan p1;
  p1.seed = 1;
  p1.sensor_dropout(0.0, 1000.0, 0.5);
  FaultPlan p2 = p1;
  p2.seed = 2;
  FaultInjector a{p1};
  FaultInjector b{p2};
  std::size_t disagreements = 0;
  for (double t = 0.0; t < 1000.0; t += 1.0) {
    if (a.sensor_drops(t, 0) != b.sensor_drops(t, 0)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0u);
}

TEST(FaultInjector, WindowTargetingIsHonoredPerKind) {
  FaultPlan plan;
  plan.wake_failures(0.0, 100.0, 1.0, /*server=*/2);
  plan.sensor_stale(0.0, 100.0, /*app=*/1);
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.wake_fails(10.0, 2));
  EXPECT_FALSE(injector.wake_fails(10.0, 0));
  EXPECT_FALSE(injector.wake_fails(10.0, 3));
  EXPECT_TRUE(injector.sensor_stale(10.0, 1));
  EXPECT_FALSE(injector.sensor_stale(10.0, 0));
  EXPECT_EQ(injector.rng_draws(), 0u);  // all p = 1 windows
}

TEST(FaultInjector, SlowdownAndSpikeReturnTheWindowMagnitude) {
  FaultPlan plan;
  plan.migration_slowdown(0.0, 100.0, 4.0);
  plan.sensor_spikes(0.0, 100.0, 12.5, 1.0);
  plan.dvfs_pin(3, 1.2, 0.0, 100.0);
  FaultInjector injector{plan};
  EXPECT_DOUBLE_EQ(injector.migration_slowdown(50.0, 0), 4.0);
  EXPECT_DOUBLE_EQ(injector.migration_slowdown(150.0, 0), 1.0);  // window over
  EXPECT_DOUBLE_EQ(injector.sensor_spike(50.0, 0), 12.5);
  const std::optional<double> pin = injector.dvfs_pin_ghz(50.0, 3);
  ASSERT_TRUE(pin.has_value());
  EXPECT_DOUBLE_EQ(*pin, 1.2);
  EXPECT_FALSE(injector.dvfs_pin_ghz(50.0, 1).has_value());
}

// ---- scheduled crashes ------------------------------------------------------

TEST(FaultInjector, CrashWindowsAreExposedAndTracked) {
  FaultPlan plan;
  plan.server_crash(1, 100.0, 300.0);
  plan.server_crash(0, 500.0, 600.0);
  plan.sensor_dropout(0.0, 10.0, 1.0);  // a non-crash window to filter out
  FaultInjector injector{plan};

  const std::vector<FaultWindow> crashes = injector.crash_windows();
  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0].target, 1u);
  EXPECT_EQ(crashes[1].target, 0u);

  EXPECT_FALSE(injector.server_down(99.0, 1));
  EXPECT_TRUE(injector.server_down(100.0, 1));
  EXPECT_TRUE(injector.server_down(299.0, 1));
  EXPECT_FALSE(injector.server_down(300.0, 1));
  EXPECT_FALSE(injector.server_down(150.0, 0));  // other server's window

  injector.note_crash(100.0, 1);
  EXPECT_EQ(injector.counters().server_crashes, 1u);
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].kind, FaultKind::kServerCrash);
  EXPECT_EQ(injector.events()[0].target, 1u);
  EXPECT_DOUBLE_EQ(injector.events()[0].time_s, 100.0);
}

TEST(FaultInjector, EventLogRecordsDiscreteFaultsInOrder) {
  FaultPlan plan;
  plan.migration_aborts(0.0, 100.0, 1.0);
  plan.wake_failures(0.0, 100.0, 1.0);
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.wake_fails(5.0, 2));
  EXPECT_TRUE(injector.migration_aborts(10.0, 0));
  ASSERT_EQ(injector.events().size(), 2u);
  EXPECT_EQ(injector.events()[0].kind, FaultKind::kWakeFailure);
  EXPECT_EQ(injector.events()[1].kind, FaultKind::kMigrationAbort);
  EXPECT_LE(injector.events()[0].time_s, injector.events()[1].time_s);
}

TEST(FaultKind, ToStringCoversEveryKind) {
  EXPECT_EQ(to_string(FaultKind::kMigrationAbort), "migration-abort");
  EXPECT_EQ(to_string(FaultKind::kServerCrash), "server-crash");
  EXPECT_EQ(to_string(FaultKind::kDvfsPin), "dvfs-pin");
  EXPECT_FALSE(to_string(FaultKind::kSensorStale).empty());
}

}  // namespace
}  // namespace vdc::fault
