#include "consolidate/minimum_slack.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "consolidate/naive.hpp"
#include "datacenter/cluster.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

/// Builds a snapshot with one server of the given capacity and unplaced VMs
/// with the given demands (memory is ample unless specified).
DataCenterSnapshot make_instance(double capacity_ghz, std::vector<double> demands,
                                 double server_memory = 1e6,
                                 std::vector<double> memories = {}) {
  DataCenterSnapshot snap;
  ServerSnapshot server;
  server.id = 0;
  server.max_capacity_ghz = capacity_ghz;
  server.memory_mb = server_memory;
  server.max_power_w = 200.0;
  server.power_efficiency_ghz_per_w = capacity_ghz / 200.0;
  server.active = true;
  snap.servers.push_back(server);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = demands[i];
    vm.memory_mb = memories.empty() ? 1.0 : memories[i];
    snap.vms.push_back(vm);
  }
  return snap;
}

std::vector<VmId> all_ids(const DataCenterSnapshot& snap) {
  std::vector<VmId> ids(snap.vms.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

double demand_of(const DataCenterSnapshot& snap, const std::vector<VmId>& vms) {
  double total = 0.0;
  for (const VmId vm : vms) total += snap.vm(vm).cpu_demand_ghz;
  return total;
}

TEST(MinimumSlack, FindsPerfectFill) {
  // Subset {3, 2.5, 0.5} fills the 6 GHz server exactly.
  const DataCenterSnapshot snap = make_instance(6.0, {3.0, 2.5, 2.0, 0.5});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {0, 1, 2, 3};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  EXPECT_NEAR(r.slack_ghz, 0.0, 1e-9);
  EXPECT_NEAR(demand_of(snap, r.selected), 6.0, 1e-9);
}

TEST(MinimumSlack, BeatsGreedyOnClassicInstance) {
  // Greedy (largest-first) fills 5+3 = 8 of 10; optimal is 5+3+2 = 10.
  const DataCenterSnapshot snap = make_instance(10.0, {5.0, 4.0, 3.0, 2.0});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {0, 1, 2, 3};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  EXPECT_NEAR(demand_of(snap, r.selected), 10.0, 1e-9);
}

TEST(MinimumSlack, RespectsExistingResidents) {
  DataCenterSnapshot snap = make_instance(6.0, {3.0, 2.0, 1.0});
  snap.servers[0].hosted = {0};  // VM 0 already on the server
  snap.vms[0].cpu_demand_ghz = 3.0;
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {1, 2};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  // Room is 3: takes both VM 1 (2.0) and VM 2 (1.0).
  EXPECT_NEAR(r.slack_ghz, 0.0, 1e-9);
  EXPECT_EQ(r.selected.size(), 2u);
}

TEST(MinimumSlack, HonorsMemoryConstraint) {
  // CPU-wise both fit; memory admits only one.
  const DataCenterSnapshot snap =
      make_instance(10.0, {2.0, 2.0}, /*server_memory=*/1024.0,
                    /*memories=*/{800.0, 800.0});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {0, 1};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  EXPECT_EQ(r.selected.size(), 1u);
}

TEST(MinimumSlack, HonorsCustomConstraint) {
  const DataCenterSnapshot snap = make_instance(10.0, {1.0, 1.0, 1.0, 1.0});
  const WorkingPlacement wp(snap);
  ConstraintSet constraints;
  constraints.add(std::make_unique<CustomConstraint>(
      "max-two", [](const ServerSnapshot&, std::span<const VmSnapshot* const> vms) {
        return vms.size() <= 2;
      }));
  const std::vector<VmId> candidates = {0, 1, 2, 3};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  EXPECT_EQ(r.selected.size(), 2u);
}

TEST(MinimumSlack, EpsilonAcceptsGoodEnoughFit) {
  const DataCenterSnapshot snap = make_instance(6.0, {5.95, 3.0, 2.9});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  MinSlackOptions options;
  options.epsilon_ghz = 0.1;
  const std::vector<VmId> candidates = {0, 1, 2};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints, options);
  // 5.95 leaves slack 0.05 < 0.1: accepted immediately, search stops.
  EXPECT_NEAR(r.slack_ghz, 0.05, 1e-9);
  EXPECT_EQ(r.selected, (std::vector<VmId>{0}));
}

TEST(MinimumSlack, EmptyCandidatesKeepBaseline) {
  const DataCenterSnapshot snap = make_instance(6.0, {});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const MinSlackResult r = minimum_slack(wp, 0, {}, constraints);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.slack_ghz, 6.0);
}

TEST(MinimumSlack, OversizedCandidatesIgnored) {
  const DataCenterSnapshot snap = make_instance(2.0, {5.0, 1.5});
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {0, 1};
  const MinSlackResult r = minimum_slack(wp, 0, candidates, constraints);
  EXPECT_EQ(r.selected, (std::vector<VmId>{1}));
}

TEST(MinimumSlack, RejectsPlacedCandidates) {
  DataCenterSnapshot snap = make_instance(6.0, {1.0});
  snap.servers[0].hosted = {0};
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> candidates = {0};
  EXPECT_THROW(minimum_slack(wp, 0, candidates, constraints), std::invalid_argument);
}

TEST(MinimumSlack, StepBudgetEscalationTerminates) {
  // 24 identical-ish items force a big search tree; a tiny budget must
  // still terminate and produce a sane (feasible) answer.
  std::vector<double> demands;
  for (int i = 0; i < 24; ++i) demands.push_back(0.37 + 0.001 * i);
  const DataCenterSnapshot snap = make_instance(4.0, demands);
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  MinSlackOptions options;
  options.epsilon_ghz = 1e-6;  // practically unreachable
  options.step_budget = 50;
  options.max_escalations = 3;
  const MinSlackResult r = minimum_slack(wp, 0, all_ids(snap), constraints, options);
  EXPECT_LE(demand_of(snap, r.selected), 4.0 + 1e-9);
  EXPECT_GT(r.escalations, 0u);
}

TEST(MinimumSlack, BudgetExhaustedExactlyAtEscalationBoundary) {
  // Ten candidates, none of which fit the server: the search touches each
  // once (one counted step apiece) and selects nothing, so the total step
  // count is exactly n. With step_budget == n the final touch lands exactly
  // on the escalation threshold — one escalation must fire, and the fast
  // engine's bulk-counted skip must land on the same boundary the naive
  // per-step walk does.
  const DataCenterSnapshot snap = make_instance(4.0, std::vector<double>(10, 5.0));
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  MinSlackOptions options;
  options.epsilon_ghz = 1e-6;
  options.step_budget = 10;
  options.max_escalations = 3;
  const MinSlackResult fast = minimum_slack(wp, 0, all_ids(snap), constraints, options);
  const MinSlackResult ref = naive::minimum_slack(wp, 0, all_ids(snap), constraints, options);
  EXPECT_TRUE(fast.selected.empty());
  EXPECT_EQ(fast.steps, 10u);
  EXPECT_EQ(fast.escalations, 1u);
  EXPECT_EQ(ref.steps, fast.steps);
  EXPECT_EQ(ref.escalations, fast.escalations);

  // One more unit of budget and the boundary is never reached: same empty
  // selection, zero escalations, in both engines.
  options.step_budget = 11;
  const MinSlackResult under = minimum_slack(wp, 0, all_ids(snap), constraints, options);
  const MinSlackResult under_ref =
      naive::minimum_slack(wp, 0, all_ids(snap), constraints, options);
  EXPECT_EQ(under.steps, 10u);
  EXPECT_EQ(under.escalations, 0u);
  EXPECT_EQ(under_ref.steps, under.steps);
  EXPECT_EQ(under_ref.escalations, under.escalations);
}

TEST(MinimumSlack, MaxEscalationsExhaustionMatchesNaive) {
  // A 2^24-node tree against a 40-step budget and two permitted
  // escalations: the search terminates by exhausting max_escalations, and
  // the fast engine must stop at the same logical step with the same
  // incumbent as the reference (branch-and-bound stays disarmed when the
  // budget can bind, so even the step accounting is required to be exact).
  std::vector<double> demands;
  for (int i = 0; i < 24; ++i) demands.push_back(0.37 + 0.001 * i);
  const DataCenterSnapshot snap = make_instance(4.0, demands);
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  MinSlackOptions options;
  options.epsilon_ghz = 1e-9;  // unreachable: termination is by escalation
  options.step_budget = 40;
  options.max_escalations = 2;
  const MinSlackResult fast = minimum_slack(wp, 0, all_ids(snap), constraints, options);
  const MinSlackResult ref = naive::minimum_slack(wp, 0, all_ids(snap), constraints, options);
  EXPECT_EQ(fast.escalations, 2u);
  EXPECT_EQ(fast.selected, ref.selected);
  EXPECT_EQ(fast.steps, ref.steps);
  EXPECT_EQ(fast.escalations, ref.escalations);
  EXPECT_DOUBLE_EQ(fast.slack_ghz, ref.slack_ghz);
  // The budget bound: steps never exceed (escalations + 1) * step_budget.
  EXPECT_LE(fast.steps, (options.max_escalations + 1) * options.step_budget);
}

class MinSlackOptimalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(MinSlackOptimalitySweep, MatchesBruteForceOnSmallInstances) {
  util::Rng rng(static_cast<std::uint64_t>(700 + GetParam()));
  const std::size_t n = 8;
  std::vector<double> demands(n);
  for (double& d : demands) d = rng.uniform(0.3, 2.0);
  const double capacity = 4.0;
  const DataCenterSnapshot snap = make_instance(capacity, demands);
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  // Brute force best subset by slack.
  double best = capacity;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) total += demands[i];
    }
    if (total <= capacity + 1e-12) best = std::min(best, capacity - total);
  }

  std::vector<VmId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  MinSlackOptions options;
  options.epsilon_ghz = 1e-9;
  const MinSlackResult r = minimum_slack(wp, 0, ids, constraints, options);
  EXPECT_NEAR(r.slack_ghz, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinSlackOptimalitySweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace vdc::consolidate
