#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {5.0, 10.0};
  const Vector x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = lu_solve(a, std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument); }

TEST(Lu, DeterminantWithPermutationSign) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
  const Matrix b{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(b).determinant(), 6.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  util::Rng rng(7);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 3.0;  // diagonally dominant, comfortably invertible
  }
  const Matrix inv = LuDecomposition(a).inverse();
  EXPECT_LT((a * inv - Matrix::identity(4)).max_abs(), 1e-10);
}

class LuRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSweep, ResidualIsTiny) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 6;
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-5.0, 5.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 4.0;
  }
  const Vector x = lu_solve(a, b);
  const Vector ax = a * std::span<const double>(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomSweep, ::testing::Range(0, 12));

TEST(Lu, MatrixRhsSolve) {
  const Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const Matrix x = LuDecomposition(a).solve(Matrix::identity(2));
  EXPECT_LT((a * x - Matrix::identity(2)).max_abs(), 1e-12);
}

TEST(Lu, DimensionMismatchThrows) {
  const LuDecomposition lu(Matrix{{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_THROW(lu.solve(std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::linalg
