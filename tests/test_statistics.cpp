#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "util/rng.hpp"

namespace vdc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  std::mt19937 gen(7);
  std::normal_distribution<double> dist(3.0, 2.0);
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(gen);
    (i % 3 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Quantile, ThrowsOnEmptyOrBadQ) {
  EXPECT_THROW(static_cast<void>(quantile({}, 0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(quantile({1.0}, -0.1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(quantile({1.0}, 1.1)), std::invalid_argument);
}

TEST(Quantile, EndpointsAndMedian) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.9), 9.0);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MatchesSortedIndexOnUniformGrid) {
  const double q = GetParam();
  std::vector<double> v(101);
  for (int i = 0; i <= 100; ++i) v[static_cast<std::size_t>(i)] = static_cast<double>(i);
  // With 101 equally spaced points, the type-7 quantile is exactly 100*q.
  EXPECT_NEAR(quantile(v, q), 100.0 * q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0));

class P2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(P2Sweep, ConvergesToExactQuantileOnUniform) {
  const double q = GetParam();
  P2Quantile p2(q);
  std::mt19937 gen(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(gen);
    p2.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, q);
  EXPECT_NEAR(p2.value(), exact, 0.02) << "q=" << q;
}

TEST_P(P2Sweep, ConvergesOnExponential) {
  const double q = GetParam();
  if (q == 0.0 || q == 1.0) GTEST_SKIP() << "degenerate for heavy tails";
  P2Quantile p2(q);
  std::mt19937 gen(43);
  std::exponential_distribution<double> dist(1.0);
  std::vector<double> all;
  for (int i = 0; i < 30000; ++i) {
    const double x = dist(gen);
    p2.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, q);
  EXPECT_NEAR(p2.value(), exact, 0.05 * std::max(1.0, exact)) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Sweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95));

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
  p2.add(1.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 2.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamped into first bin
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamped into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

// ---- empty-window edges (the sensor-fault paths hit these) ------------------

TEST(SlidingWindow, QuantileOnEmptyWindowIsZeroNotathrow) {
  SlidingWindow w(8);
  EXPECT_DOUBLE_EQ(w.quantile(0.9), 0.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 0.0);
}

TEST(SlidingWindow, QuantileWithSingleSampleIsThatSample) {
  SlidingWindow w(8);
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(w.quantile(0.9), 3.5);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 3.5);
}

// Regression: Histogram::add computed the bin index with a float->size_t
// cast BEFORE clamping, which is undefined behaviour for NaN, ±infinity and
// anything beyond ±2^63. Finite out-of-range values must clamp; NaN belongs
// to no bin and is counted separately.
TEST(Histogram, ExtremeAndNanSamplesAreSafe) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.invalid(), 0u);

  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.invalid(), 2u);
  EXPECT_EQ(h.total(), 4u);  // NaN never binned, never part of total
}

TEST(SlidingWindow, RejectsNanSamples) {
  SlidingWindow w(8);
  w.add(1.0);
  EXPECT_THROW(w.add(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_EQ(w.size(), 1u);  // the bad sample was not admitted
}

TEST(P2Quantile, EmptyEstimatorReportsZero) {
  const P2Quantile p2(0.9);
  EXPECT_DOUBLE_EQ(p2.value(), 0.0);
}

TEST(P2Quantile, SingleSampleIsExact) {
  P2Quantile p2(0.9);
  p2.add(2.25);
  EXPECT_DOUBLE_EQ(p2.value(), 2.25);
}

TEST(WindowStats, MatchesRunningStatsAndExactQuantileBitForBit) {
  // WindowStats is the shared order-statistic glue behind both the
  // monitor's percentile path and the tsdb's tier rollups; its outputs
  // must be the exact doubles of the brute-force recompute.
  WindowStats w;
  RunningStats rs;
  std::vector<double> samples;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    w.add(x);
    rs.add(x);
    samples.push_back(x);
    EXPECT_EQ(w.mean(), rs.mean());
    EXPECT_EQ(w.min(), rs.min());
    EXPECT_EQ(w.max(), rs.max());
  }
  EXPECT_EQ(w.count(), 500u);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(w.quantile(q), quantile(samples, q));
  }
}

TEST(WindowStats, RejectsNaNWithoutMutating) {
  WindowStats w;
  w.add(1.0);
  EXPECT_THROW(w.add(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.mean(), 1.0);
}

TEST(WindowStats, ResetEmptiesTheWindow) {
  WindowStats w;
  w.add(2.0);
  w.add(4.0);
  w.reset();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.count(), 0u);
  w.add(7.0);
  EXPECT_EQ(w.quantile(0.9), 7.0);
}

}  // namespace
}  // namespace vdc::util
