#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sysid_experiment.hpp"
#include "telemetry/export.hpp"

namespace vdc::core {
namespace {

/// One cheap identification shared by every MPC spec in this file.
const control::ArxModel& shared_model() {
  static const SysIdExperimentResult identified = [] {
    SysIdExperimentConfig sysid;
    sysid.periods = 120;
    return identify_app_model(app::default_two_tier_app("staging", 1001, 40),
                              sysid);
  }();
  return identified.model;
}

/// A short (40-period) MPC-controlled standalone scenario.
ScenarioSpec mpc_spec(const char* name, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.stack.app = app::default_two_tier_app("a", 1, 40);
  spec.model = shared_model();
  spec.seed = seed;
  spec.duration_s = 160.0;
  return spec;
}

ScenarioSpec static_spec(const char* name, std::uint64_t seed, double alloc) {
  ScenarioSpec spec;
  spec.name = name;
  spec.stack.app = app::default_two_tier_app("s", 1, 40);
  spec.policy = [alloc](const std::optional<app::PeriodStats>&) {
    return std::vector<double>(2, alloc);
  };
  spec.seed = seed;
  spec.duration_s = 160.0;
  return spec;
}

TEST(ScenarioRunner, RecordsOneSamplePerControlPeriod) {
  const ScenarioResult run = ScenarioRunner().run(mpc_spec("solo", 5));
  EXPECT_EQ(run.name, "solo");
  EXPECT_EQ(run.app_count, 1u);
  EXPECT_EQ(run.response_series(0).size(), 40u);  // 160 s / 4 s
  EXPECT_EQ(run.allocation_series(0).size(), 40u);
  EXPECT_EQ(run.allocation_series(0)[0].size(), 2u);
}

TEST(ScenarioRunner, ParallelMatchesSerialBitExactly) {
  std::vector<ScenarioSpec> specs;
  specs.push_back(mpc_spec("a", 11));
  specs.push_back(mpc_spec("b", 22));
  specs.push_back(static_spec("c", 33, 0.5));
  specs.push_back(mpc_spec("d", 44));

  const std::vector<ScenarioResult> serial = ScenarioRunner(1).run_all(specs);
  const std::vector<ScenarioResult> parallel4 = ScenarioRunner(4).run_all(specs);
  const std::vector<ScenarioResult> parallel2 = ScenarioRunner(2).run_all(specs);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel4.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].name, specs[i].name);      // spec order preserved
    EXPECT_EQ(parallel4[i].name, specs[i].name);
    EXPECT_TRUE(serial[i].recorder == parallel4[i].recorder) << specs[i].name;
    EXPECT_TRUE(serial[i].recorder == parallel2[i].recorder) << specs[i].name;
  }
}

TEST(ScenarioRunner, RepeatedRunsAreDeterministic) {
  const ScenarioSpec spec = mpc_spec("repeat", 7);
  const ScenarioResult first = ScenarioRunner().run(spec);
  const ScenarioResult second = ScenarioRunner().run(spec);
  EXPECT_TRUE(first.recorder == second.recorder);
}

TEST(ScenarioRunner, SeedOverrideChangesTheRun) {
  const ScenarioResult a = ScenarioRunner().run(mpc_spec("x", 100));
  const ScenarioResult b = ScenarioRunner().run(mpc_spec("x", 200));
  EXPECT_FALSE(a.recorder == b.recorder);
}

TEST(ScenarioRunner, ConcurrencyScheduleFiresDuringTheRun) {
  ScenarioSpec calm = static_spec("calm", 9, 0.5);
  ScenarioSpec surged = static_spec("surged", 9, 0.5);
  surged.concurrency_schedule = {{.time_s = 80.0, .app = 0, .concurrency = 80}};
  const ScenarioResult a = ScenarioRunner().run(calm);
  const ScenarioResult b = ScenarioRunner().run(surged);
  // Identical until the event fires, different after it.
  EXPECT_EQ(a.response_series(0)[10], b.response_series(0)[10]);  // t = 44 s
  const util::RunningStats calm_tail = a.response_stats_after(0, 100.0);
  const util::RunningStats surge_tail = b.response_stats_after(0, 100.0);
  EXPECT_GT(surge_tail.mean(), calm_tail.mean());
}

TEST(ScenarioRunner, TestbedEngineRunsAndExposesClusterSeries) {
  ScenarioSpec spec;
  spec.name = "cluster";
  spec.engine = ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 2;
  spec.testbed.num_servers = 2;
  spec.testbed.model = shared_model();  // skip the sysid experiment
  spec.duration_s = 80.0;
  spec.seed = 3;

  const ScenarioResult serial = ScenarioRunner(1).run(spec);
  EXPECT_EQ(serial.app_count, 2u);
  EXPECT_DOUBLE_EQ(serial.model_r_squared, 1.0);
  EXPECT_EQ(serial.response_series(1).size(), 20u);
  EXPECT_FALSE(serial.power_series().empty());

  const std::vector<ScenarioSpec> specs{spec, spec};
  const std::vector<ScenarioResult> parallel = ScenarioRunner(2).run_all(specs);
  EXPECT_TRUE(parallel[0].recorder == serial.recorder);
  EXPECT_TRUE(parallel[1].recorder == serial.recorder);
}

TEST(ScenarioRunner, ChaosTelemetryIsByteIdenticalAcrossRerunsAndThreadCounts) {
  // The determinism regression demanded by the fault subsystem: one seeded
  // chaos spec => the exported CSV (series AND annotations) is the same
  // byte string on every rerun and on every worker-thread count.
  ScenarioSpec spec;
  spec.name = "chaos";
  spec.engine = ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 2;
  spec.testbed.num_servers = 3;
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 80.0;
  spec.testbed.model = shared_model();
  spec.duration_s = 400.0;
  spec.seed = 3;
  spec.faults.migration_aborts(0.0, 200.0, 0.5)
      .sensor_dropout(50.0, 150.0, 0.3)
      .sensor_stale(200.0, 250.0, 0)
      .server_crash(1, 260.0, 320.0);

  const ScenarioResult serial = ScenarioRunner(1).run(spec);
  const std::string csv = telemetry::to_csv(serial.recorder);
  const std::string annotations = telemetry::annotations_csv(serial.recorder);
  EXPECT_GT(serial.faults.total(), 0u);
  EXPECT_FALSE(annotations.empty());

  const ScenarioResult rerun = ScenarioRunner(1).run(spec);
  EXPECT_EQ(telemetry::to_csv(rerun.recorder), csv);
  EXPECT_EQ(telemetry::annotations_csv(rerun.recorder), annotations);

  const std::vector<ScenarioSpec> specs{spec, spec, spec};
  for (const std::size_t threads : {std::size_t{2}, std::size_t{3}}) {
    const std::vector<ScenarioResult> parallel = ScenarioRunner(threads).run_all(specs);
    for (const ScenarioResult& r : parallel) {
      EXPECT_EQ(telemetry::to_csv(r.recorder), csv) << threads << " threads";
      EXPECT_EQ(telemetry::annotations_csv(r.recorder), annotations)
          << threads << " threads";
      EXPECT_EQ(r.faults.total(), serial.faults.total());
      EXPECT_EQ(r.stale_holds, serial.stale_holds);
    }
  }
}

}  // namespace
}  // namespace vdc::core
