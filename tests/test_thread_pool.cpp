#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace vdc::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); return 0; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsBodyException) {
  EXPECT_THROW(
      parallel_for(16, [](std::size_t i) {
        if (i == 7) throw std::logic_error("bad index");
      }, 4),
      std::logic_error);
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for(values.size(),
               [&](std::size_t i) { sum.fetch_add(static_cast<long long>(values[i])); }, 6);
  EXPECT_EQ(sum.load(), 10000LL * 9999LL / 2LL);
}

TEST(ThreadPool, SharedPoolIsAProcessWideSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  EXPECT_EQ(a.submit([] { return 17; }).get(), 17);
}

TEST(ParallelFor, RepeatedCallsReuseTheSharedPool) {
  // parallel_for no longer spawns threads per call; hammering it must not
  // exhaust anything and must stay correct across many small invocations.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    parallel_for(32, [&](std::size_t) { count.fetch_add(1); }, 4);
    ASSERT_EQ(count.load(), 32);
  }
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // An inner parallel_for runs while every pool worker may already be busy
  // with the outer one. The caller-participates design guarantees progress
  // even with zero free workers.
  std::atomic<int> inner_total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); }, 4);
  }, 8);
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelFor, ManyMoreIterationsThanWorkers) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace vdc::util
