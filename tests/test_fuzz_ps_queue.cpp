// Fuzz test: the event-driven PS queue against a brute-force discrete-time
// reference integrator under random arrival/capacity-change schedules.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/ps_queue.hpp"
#include "util/rng.hpp"

namespace vdc::sim {
namespace {

struct Scenario {
  struct Arrival {
    double time;
    double demand;
  };
  struct CapacityChange {
    double time;
    double capacity;
  };
  std::vector<Arrival> arrivals;
  std::vector<CapacityChange> capacity_changes;
  double initial_capacity = 1.0;
};

Scenario random_scenario(util::Rng& rng) {
  Scenario s;
  s.initial_capacity = rng.uniform(0.5, 3.0);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(0.3);
    s.arrivals.push_back({t, rng.uniform(0.05, 1.0)});
  }
  t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t += rng.exponential(1.5);
    // Occasionally drop to zero capacity (VM starved by the arbitrator).
    s.capacity_changes.push_back({t, rng.bernoulli(0.15) ? 0.0 : rng.uniform(0.3, 3.0)});
  }
  return s;
}

/// Brute-force reference: integrate the PS dynamics on a fine time grid.
std::map<int, double> reference_completions(const Scenario& s, double horizon, double dt) {
  std::map<int, double> remaining;  // arrival index -> residual work
  std::map<int, double> completion;
  std::size_t next_arrival = 0;
  std::size_t next_change = 0;
  double capacity = s.initial_capacity;
  for (double t = 0.0; t < horizon; t += dt) {
    while (next_arrival < s.arrivals.size() && s.arrivals[next_arrival].time <= t) {
      remaining[static_cast<int>(next_arrival)] = s.arrivals[next_arrival].demand;
      ++next_arrival;
    }
    while (next_change < s.capacity_changes.size() &&
           s.capacity_changes[next_change].time <= t) {
      capacity = s.capacity_changes[next_change].capacity;
      ++next_change;
    }
    if (remaining.empty() || capacity <= 0.0) continue;
    const double share = capacity * dt / static_cast<double>(remaining.size());
    for (auto it = remaining.begin(); it != remaining.end();) {
      it->second -= share;
      if (it->second <= 0.0) {
        completion[it->first] = t;
        it = remaining.erase(it);
      } else {
        ++it;
      }
    }
  }
  return completion;
}

class PsQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PsQueueFuzz, MatchesDiscreteTimeReference) {
  util::Rng rng(static_cast<std::uint64_t>(7000 + GetParam()));
  const Scenario scenario = random_scenario(rng);
  constexpr double kHorizon = 60.0;
  constexpr double kDt = 1e-3;

  // Event-driven run.
  Simulation sim;
  std::map<JobId, int> job_to_arrival;
  std::map<int, double> completions;
  PsQueue queue(sim, scenario.initial_capacity, [&](JobId id) {
    completions[job_to_arrival.at(id)] = sim.now();
  });
  for (std::size_t i = 0; i < scenario.arrivals.size(); ++i) {
    const auto& a = scenario.arrivals[i];
    if (a.time >= kHorizon) break;
    sim.schedule(a.time, [&, i] {
      const JobId id = queue.add_job(scenario.arrivals[i].demand);
      job_to_arrival[id] = static_cast<int>(i);
    });
  }
  for (const auto& change : scenario.capacity_changes) {
    if (change.time >= kHorizon) break;
    sim.schedule(change.time, [&queue, c = change.capacity] { queue.set_capacity(c); });
  }
  sim.run_until(kHorizon);

  const std::map<int, double> reference = reference_completions(scenario, kHorizon, kDt);
  // Same jobs complete, at matching times (within the grid resolution).
  for (const auto& [arrival, t_ref] : reference) {
    ASSERT_TRUE(completions.contains(arrival)) << "job " << arrival << " missing";
    EXPECT_NEAR(completions.at(arrival), t_ref, 0.05) << "job " << arrival;
  }
  for (const auto& [arrival, t_event] : completions) {
    EXPECT_TRUE(reference.contains(arrival))
        << "job " << arrival << " completed only in the event-driven run (t=" << t_event
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsQueueFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace vdc::sim
