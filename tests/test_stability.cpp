#include "control/stability.hpp"

#include <gtest/gtest.h>

namespace vdc::control {
namespace {

ArxModel benign_model() {
  ArxModel m;
  m.na = 1;
  m.nb = 2;
  m.nu = 2;
  m.a = {0.5};
  m.b = linalg::Matrix(2, 2);
  m.b(0, 0) = -0.5;
  m.b(0, 1) = -1.5;
  m.b(1, 0) = 0.05;
  m.b(1, 1) = 0.3;
  m.bias = 1.5;
  return m;
}

MpcConfig tame_config() {
  MpcConfig c;
  c.prediction_horizon = 12;
  c.control_horizon = 3;
  c.q_weight = 1.0;
  c.r_weight = {1.0};
  c.period_s = 4.0;
  c.tref_s = 16.0;
  c.setpoint = 1.0;
  c.c_min = {0.1};
  c.c_max = {2.0};
  c.delta_max = 0.5;
  c.terminal = MpcConfig::Terminal::kSoft;
  return c;
}

TEST(Stability, BenignTuningIsStable) {
  const StabilityReport r = analyze_closed_loop(benign_model(), tame_config());
  EXPECT_TRUE(r.stable);
  EXPECT_LT(r.output_decay_rate, 1.0);
  EXPECT_GT(r.output_decay_rate, 0.0);
  EXPECT_EQ(r.state_dimension, 1u + 2u);  // t(k) + c(k-1) block
}

TEST(Stability, OffsetFreeTrackingAtFixedPoint) {
  const StabilityReport r = analyze_closed_loop(benign_model(), tame_config());
  ASSERT_TRUE(r.stable);
  // The terminal penalty drives the nominal fixed point onto the set point.
  EXPECT_NEAR(r.steady_state_error, 0.0, 1e-6);
  EXPECT_NEAR(r.steady_state_output, 1.0, 1e-6);
}

TEST(Stability, FullSpectralRadiusCarriesStructuralUnitMode) {
  // Two inputs, one output: the closed loop always has an allocation-
  // redistribution mode with eigenvalue 1 — the raw spectral radius is ~1
  // even for a perfectly stable loop.
  const StabilityReport r = analyze_closed_loop(benign_model(), tame_config());
  EXPECT_NEAR(r.full_spectral_radius, 1.0, 1e-6);
}

TEST(Stability, SisoFullRadiusBelowOneWhenStable) {
  ArxModel m;
  m.na = 1;
  m.nb = 1;
  m.nu = 1;
  m.a = {0.5};
  m.b = linalg::Matrix(1, 1);
  m.b(0, 0) = -1.0;
  m.bias = 2.0;
  const StabilityReport r = analyze_closed_loop(m, tame_config());
  EXPECT_TRUE(r.stable);
  EXPECT_LT(r.full_spectral_radius, 1.0 + 1e-9);
}

TEST(Stability, DetectsUnstableTuning) {
  // Non-minimum-phase-like model (sign-alternating b) with a short hard
  // terminal horizon is a classic recipe for an unstable MPC loop.
  ArxModel m;
  m.na = 2;
  m.nb = 2;
  m.nu = 1;
  m.a = {0.7, -0.18};
  m.b = linalg::Matrix(2, 1);
  m.b(0, 0) = -0.4;
  m.b(1, 0) = 0.72;  // lag-2 overshoots lag-1 with opposite sign
  m.bias = 1.0;
  MpcConfig config = tame_config();
  config.terminal = MpcConfig::Terminal::kHard;
  config.control_horizon = 2;
  config.prediction_horizon = 2;
  config.r_weight = {1e-6};
  config.delta_max = 0.0;  // no rate limit to mask it
  const StabilityReport r = analyze_closed_loop(m, config);
  EXPECT_FALSE(r.stable);
  EXPECT_GE(r.output_decay_rate, 1.0);
}

TEST(Stability, HigherRDampens) {
  ArxModel m = benign_model();
  MpcConfig gentle = tame_config();
  MpcConfig aggressive = tame_config();
  aggressive.r_weight = {0.01};
  gentle.r_weight = {5.0};
  const StabilityReport fast = analyze_closed_loop(m, aggressive);
  const StabilityReport slow = analyze_closed_loop(m, gentle);
  ASSERT_TRUE(fast.stable);
  ASSERT_TRUE(slow.stable);
  // More control penalty -> slower decay of output errors.
  EXPECT_LE(fast.output_decay_rate, slow.output_decay_rate + 0.05);
}

TEST(Stability, ValidatesModelAndConfig) {
  ArxModel bad = benign_model();
  bad.a = {0.5, 0.5};  // wrong length
  EXPECT_THROW(analyze_closed_loop(bad, tame_config()), std::invalid_argument);
  MpcConfig bad_config = tame_config();
  bad_config.prediction_horizon = 0;
  EXPECT_THROW(analyze_closed_loop(benign_model(), bad_config), std::invalid_argument);
}

TEST(Stability, ScalarConfigBroadcasts) {
  // tame_config uses width-1 vectors; the analysis must broadcast them to
  // the model's two inputs without error.
  EXPECT_NO_THROW(analyze_closed_loop(benign_model(), tame_config()));
}

}  // namespace
}  // namespace vdc::control
