// Differential and property tests for the tiered telemetry store.
//
// The load-bearing claim: every tier-1/tier-2 rollup point — finalized or
// still open — is *bit-identical* to a brute-force recompute over the raw
// samples of its window (util::RunningStats in append order for the
// moments, util::quantile for the percentile). EXPECT_EQ on doubles is
// deliberate throughout: the engine and the oracle must run the exact same
// arithmetic.
#include "telemetry/tsdb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace vdc::telemetry::tsdb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Brute-force rollup of (time, value) pairs: group by floor(t / period),
/// recompute each window's statistics from scratch. Returns windows in
/// time order, the last one being the still-open window.
std::vector<RollupPoint> brute_rollups(const std::vector<RawSample>& samples, double period_s,
                                       double q) {
  std::map<std::int64_t, std::vector<double>> windows;
  for (const RawSample& s : samples) {
    windows[static_cast<std::int64_t>(std::floor(s.time_s / period_s))].push_back(s.value);
  }
  std::vector<RollupPoint> out;
  for (const auto& [w, values] : windows) {
    util::RunningStats rs;
    for (double v : values) rs.add(v);
    RollupPoint p;
    p.start_s = static_cast<double>(w) * period_s;
    p.count = rs.count();
    p.min = rs.min();
    p.max = rs.max();
    p.mean = rs.mean();
    p.p90 = util::quantile(values, q);
    out.push_back(p);
  }
  return out;
}

TsdbConfig small_config() {
  TsdbConfig config;
  config.page_samples = 4;
  config.tier0_max_pages = 0;  // keep everything unless a test says otherwise
  config.tier1_period_s = 2.0;
  config.tier1_retention_points = 0;
  config.tier2_period_s = 8.0;
  config.tier2_retention_points = 0;
  return config;
}

TEST(TsdbConfigValidation, RejectsNonsense) {
  TsdbConfig config;
  config.page_samples = 0;
  EXPECT_THROW(Tsdb{config}, std::invalid_argument);
  config = {};
  config.tier1_period_s = 0.0;
  EXPECT_THROW(Tsdb{config}, std::invalid_argument);
  config = {};
  config.tier2_period_s = -1.0;
  EXPECT_THROW(Tsdb{config}, std::invalid_argument);
  config = {};
  config.quantile = 1.5;
  EXPECT_THROW(Tsdb{config}, std::invalid_argument);
  config = {};
  config.quantile = kNan;
  EXPECT_THROW(Tsdb{config}, std::invalid_argument);
}

TEST(TsdbDeclare, IdempotentAndFindable) {
  Tsdb db(small_config());
  const MetricId a = db.declare("app0/p90");
  const MetricId b = db.declare("cluster/power_w");
  EXPECT_NE(a, b);
  EXPECT_EQ(db.declare("app0/p90"), a);
  EXPECT_EQ(db.metric_count(), 2u);
  ASSERT_TRUE(db.find("cluster/power_w").has_value());
  EXPECT_EQ(*db.find("cluster/power_w"), b);
  EXPECT_FALSE(db.find("nope").has_value());
  EXPECT_EQ(db.name(a), "app0/p90");
  EXPECT_THROW(static_cast<void>(db.samples_appended(99)), std::out_of_range);
}

TEST(TsdbRollups, BitIdenticalToBruteForceRecompute) {
  TsdbConfig config = small_config();
  Tsdb db(config);
  const MetricId id = db.declare("m");

  util::Rng rng(42);
  std::vector<RawSample> accepted;
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform(0.0, 1.3);  // irregular spacing: empty windows included
    const double v = rng.uniform(0.1, 3.0);
    ASSERT_TRUE(db.append(id, t, v));
    accepted.push_back(RawSample{t, v});
  }

  for (const Tier tier : {Tier::kPeriod, Tier::kHourly}) {
    const double period_s =
        tier == Tier::kPeriod ? config.tier1_period_s : config.tier2_period_s;
    const std::vector<RollupPoint> expected =
        brute_rollups(accepted, period_s, config.quantile);
    const std::vector<RollupPoint> got = db.rollups(id, tier, -kInf, kInf);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].start_s, expected[k].start_s);
      EXPECT_EQ(got[k].count, expected[k].count);
      EXPECT_EQ(got[k].min, expected[k].min);
      EXPECT_EQ(got[k].max, expected[k].max);
      EXPECT_EQ(got[k].mean, expected[k].mean);
      EXPECT_EQ(got[k].p90, expected[k].p90);
    }
    // All but the open window are finalized.
    EXPECT_EQ(db.finalized(id, tier).size(), expected.size() - 1);
  }
}

TEST(TsdbRollups, EmptyWindowsProduceNoPoints) {
  Tsdb db(small_config());  // tier-1 period 2 s
  const MetricId id = db.declare("m");
  ASSERT_TRUE(db.append(id, 0.5, 1.0));
  ASSERT_TRUE(db.append(id, 100.5, 2.0));  // 49 empty windows skipped
  const std::vector<RollupPoint> points = db.rollups(id, Tier::kPeriod, -kInf, kInf);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].start_s, 0.0);
  EXPECT_EQ(points[1].start_s, 100.0);
}

TEST(TsdbRollups, SingleSampleWindowHasDegenerateStats) {
  Tsdb db(small_config());
  const MetricId id = db.declare("m");
  ASSERT_TRUE(db.append(id, 3.0, 0.7));
  const std::vector<RollupPoint> points = db.rollups(id, Tier::kPeriod, -kInf, kInf);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].count, 1u);
  EXPECT_EQ(points[0].min, 0.7);
  EXPECT_EQ(points[0].max, 0.7);
  EXPECT_EQ(points[0].mean, 0.7);
  EXPECT_EQ(points[0].p90, 0.7);
}

TEST(TsdbRollups, OpenWindowIsComputedOnTheFlyWithoutMutation) {
  Tsdb db(small_config());
  const MetricId id = db.declare("m");
  ASSERT_TRUE(db.append(id, 0.1, 1.0));
  ASSERT_TRUE(db.append(id, 0.2, 3.0));
  EXPECT_TRUE(db.finalized(id, Tier::kPeriod).empty());
  const std::vector<RollupPoint> first = db.rollups(id, Tier::kPeriod, -kInf, kInf);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].count, 2u);
  EXPECT_EQ(first[0].mean, 2.0);
  // Querying again is identical (nothing was flushed)...
  EXPECT_EQ(db.rollups(id, Tier::kPeriod, -kInf, kInf)[0], first[0]);
  // ...and the open window keeps absorbing samples.
  ASSERT_TRUE(db.append(id, 0.3, 5.0));
  EXPECT_EQ(db.rollups(id, Tier::kPeriod, -kInf, kInf)[0].count, 3u);
}

TEST(TsdbAppend, RejectsNaNAndCountsIt) {
  Tsdb db(small_config());
  const MetricId id = db.declare("m");
  EXPECT_FALSE(db.append(id, 1.0, kNan));
  EXPECT_FALSE(db.append(id, kNan, 1.0));
  EXPECT_EQ(db.rejected_nan(id), 2u);
  EXPECT_EQ(db.samples_appended(id), 0u);
  EXPECT_TRUE(db.raw(id, -kInf, kInf).empty());
  EXPECT_TRUE(db.rollups(id, Tier::kPeriod, -kInf, kInf).empty());
  // A NaN-rejected append does not advance the time cursor.
  EXPECT_TRUE(db.append(id, 0.5, 1.0));
}

TEST(TsdbAppend, RejectsOutOfOrderKeepsEqualTimestamps) {
  Tsdb db(small_config());
  const MetricId id = db.declare("m");
  ASSERT_TRUE(db.append(id, 2.0, 1.0));
  EXPECT_FALSE(db.append(id, 1.9, 9.0));
  EXPECT_EQ(db.rejected_out_of_order(id), 1u);
  EXPECT_TRUE(db.append(id, 2.0, 2.0));  // equal timestamp is in order
  EXPECT_EQ(db.samples_appended(id), 2u);
  const std::vector<RawSample> raw = db.raw(id, -kInf, kInf);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[1].value, 2.0);
}

TEST(TsdbRaw, HalfOpenRangeAndPageBoundaries) {
  Tsdb db(small_config());  // 4 samples per page
  const MetricId id = db.declare("m");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.append(id, static_cast<double>(i), static_cast<double>(i) * 10.0));
  }
  EXPECT_EQ(db.pages_live(id), 3u);
  // [3, 7) straddles the first page boundary: samples 3,4,5,6.
  const std::vector<RawSample> mid = db.raw(id, 3.0, 7.0);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.front().time_s, 3.0);  // t0 inclusive
  EXPECT_EQ(mid.back().time_s, 6.0);   // t1 exclusive
  EXPECT_TRUE(db.raw(id, 10.0, kInf).empty());
  EXPECT_TRUE(db.raw(id, 5.0, 5.0).empty());  // empty window
  EXPECT_EQ(db.raw(id, -kInf, kInf).size(), 10u);
}

TEST(TsdbEviction, DropsWholePagesAndRecyclesThem) {
  TsdbConfig config = small_config();
  config.tier0_max_pages = 2;
  Tsdb db(config);
  const MetricId id = db.declare("m");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(db.append(id, static_cast<double>(i), 1.0));
  }
  EXPECT_EQ(db.pages_live(id), 2u);
  EXPECT_EQ(db.samples_evicted(id), 4u);
  EXPECT_EQ(db.free_pages(), 1u);  // evicted page parked for reuse
  ASSERT_TRUE(db.earliest_raw_time_s(id).has_value());
  EXPECT_EQ(*db.earliest_raw_time_s(id), 4.0);
  // Rollups survive eviction: every window is still present.
  EXPECT_EQ(db.rollups(id, Tier::kPeriod, -kInf, kInf).size(), 6u);
}

TEST(TsdbMemoryBound, WeekLongStreamStaysWithinPageBudget) {
  TsdbConfig config;  // defaults: 256-sample pages, 64-page budget
  config.tier1_retention_points = 512;
  config.tier2_retention_points = 256;
  Tsdb db(config);
  const MetricId id = db.declare("m");
  util::Rng rng(7);
  // One sample per 4 s control period for a simulated week.
  const std::size_t samples = 7 * 24 * 3600 / 4;
  for (std::size_t i = 0; i < samples; ++i) {
    ASSERT_TRUE(db.append(id, static_cast<double>(i) * 4.0, rng.uniform(0.0, 2.0)));
  }
  EXPECT_EQ(db.samples_appended(id), samples);
  // The bound is on pages allocated, not RSS: the live ring never exceeds
  // the budget and eviction recycles through at most one spare page.
  EXPECT_LE(db.pages_live(id), config.tier0_max_pages);
  EXPECT_LE(db.free_pages(), 1u);
  // Whole-page eviction: the newest (possibly partial) page counts against
  // the budget, so retained = budget pages minus the unfilled tail.
  const std::size_t total_pages =
      (samples + config.page_samples - 1) / config.page_samples;
  EXPECT_EQ(db.samples_evicted(id),
            (total_pages - config.tier0_max_pages) * config.page_samples);
  // Storage model: bounded pages + bounded rollup rings, irrespective of
  // how many samples streamed through.
  const auto open_acc_samples =
      static_cast<std::size_t>((config.tier1_period_s + config.tier2_period_s) / 4.0) + 2;
  const std::size_t budget_bytes =
      (config.tier0_max_pages + 1) * config.page_samples * sizeof(RawSample) +
      (config.tier1_retention_points + config.tier2_retention_points + 2) *
          sizeof(RollupPoint) +
      open_acc_samples * 40;
  EXPECT_LE(db.approx_memory_bytes(), budget_bytes);
}

TEST(TsdbAutoTier, DegradesFromRawToPeriodToHourly) {
  TsdbConfig config = small_config();
  config.tier0_max_pages = 2;        // raw keeps 8 samples
  config.tier1_retention_points = 4;  // tier 1 keeps 4 finalized windows
  Tsdb db(config);
  const MetricId id = db.declare("m");

  // While nothing has been evicted, kAuto serves raw — even for ranges
  // before the first sample (the history is complete).
  ASSERT_TRUE(db.append(id, 0.0, 1.0));
  EXPECT_EQ(db.query(id, -kInf, kInf).tier, Tier::kRaw);

  for (int i = 1; i < 40; ++i) {
    ASSERT_TRUE(db.append(id, static_cast<double>(i), static_cast<double>(i)));
  }
  // Raw now starts at t=32; tier 1 (2 s windows, 4 retained + open) starts
  // at t=28; tier 2 (8 s windows, nothing evicted) covers everything.
  ASSERT_TRUE(db.earliest_raw_time_s(id).has_value());
  EXPECT_EQ(*db.earliest_raw_time_s(id), 32.0);

  EXPECT_EQ(db.query(id, 33.0, kInf).tier, Tier::kRaw);
  EXPECT_EQ(db.query(id, 30.0, kInf).tier, Tier::kPeriod);
  EXPECT_EQ(db.query(id, 1.0, kInf).tier, Tier::kHourly);
  // Explicit tier requests are honored regardless of coverage.
  EXPECT_EQ(db.query(id, 1.0, kInf, Tier::kPeriod).tier, Tier::kPeriod);
  const QueryResult hourly = db.query(id, -kInf, kInf, Tier::kHourly);
  EXPECT_EQ(hourly.tier, Tier::kHourly);
  EXPECT_EQ(hourly.size(), 5u);  // windows 0,8,16,24,32
}

TEST(TsdbRollupRange, ReturnsIntersectingWindowsOnly) {
  Tsdb db(small_config());  // tier-1 period 2 s
  const MetricId id = db.declare("m");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.append(id, static_cast<double>(i), 1.0));
  }
  // Windows: [0,2) [2,4) [4,6) [6,8) [8,10). Range [3,5) intersects
  // [2,4) and [4,6).
  const std::vector<RollupPoint> points = db.rollups(id, Tier::kPeriod, 3.0, 5.0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].start_s, 2.0);
  EXPECT_EQ(points[1].start_s, 4.0);
  // A range that touches only the open window returns just it.
  const std::vector<RollupPoint> open = db.rollups(id, Tier::kPeriod, 8.5, 9.0);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].start_s, 8.0);
}

TEST(TsdbValueSemantics, CopiesAreIndependent) {
  Tsdb db(small_config());
  const MetricId id = db.declare("m");
  ASSERT_TRUE(db.append(id, 0.0, 1.0));
  Tsdb copy = db;
  ASSERT_TRUE(copy.append(id, 1.0, 2.0));
  EXPECT_EQ(db.samples_appended(id), 1u);
  EXPECT_EQ(copy.samples_appended(id), 2u);
}

}  // namespace
}  // namespace vdc::telemetry::tsdb
