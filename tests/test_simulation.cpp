#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdc::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, RejectsPastAndEmptyCallbacks) {
  Simulation sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(10.0, nullptr), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, CancelUnknownIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(2.0, [&] { fired.push_back(2.0); });
  sim.schedule(3.0, [&] { fired.push_back(3.0); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_THROW(sim.run_until(5.0), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulation, ScheduleAfterUsesRelativeDelay) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule_after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelInsideEvent) {
  Simulation sim;
  bool second_fired = false;
  EventId second = 0;
  sim.schedule(1.0, [&] { sim.cancel(second); });
  second = sim.schedule(2.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunUntilWithOnlyCancelledEvents) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] { FAIL(); });
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

}  // namespace
}  // namespace vdc::sim
