#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

namespace vdc::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, RejectsPastAndEmptyCallbacks) {
  Simulation sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(10.0, nullptr), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, CancelUnknownIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(2.0, [&] { fired.push_back(2.0); });
  sim.schedule(3.0, [&] { fired.push_back(3.0); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_THROW(sim.run_until(5.0), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulation, ScheduleAfterUsesRelativeDelay) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule_after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelInsideEvent) {
  Simulation sim;
  bool second_fired = false;
  EventId second = 0;
  sim.schedule(1.0, [&] { sim.cancel(second); });
  second = sim.schedule(2.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunUntilWithOnlyCancelledEvents) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] { FAIL(); });
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

// ---- slab / generation-handle semantics -------------------------------------

TEST(Simulation, RecycledSlotDoesNotResurrectOldId) {
  Simulation sim;
  const EventId stale = sim.schedule(1.0, [] {});
  sim.run();  // slot released back to the free list

  // The next schedule reuses the slot under a bumped generation: the old
  // handle must neither cancel nor alias the new event.
  bool fired = false;
  sim.schedule(2.0, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, DoubleCancelReturnsFalseAndSlotIsReusable) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] { FAIL(); });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);

  int fired = 0;
  for (int k = 0; k < 100; ++k) sim.schedule(1.0 + k, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulation, SlotsAreRecycledNotLeaked) {
  Simulation sim;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 20; ++k) sim.schedule_after(0.5, [] {});
    sim.run();
  }
  // 1000 events executed through at most 20 concurrent slots.
  EXPECT_EQ(sim.events_executed(), 1000u);
  EXPECT_LE(sim.slab_size(), 20u);
}

TEST(Simulation, CallbackCanRescheduleIntoItsOwnSlot) {
  // The executing event's slot is released before its callback runs, so a
  // self-rescheduling callback (the PsQueue completion pattern) may land in
  // the very slot it came from — and must still execute correctly.
  Simulation sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10) sim.schedule_after(1.0, [&] { hop(); });
  };
  sim.schedule(1.0, [&] { hop(); });
  sim.run();
  EXPECT_EQ(hops, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, LargeCallbacksFallBackToHeapStorage) {
  // Callbacks bigger than the inline buffer take the heap path of
  // EventCallback; behaviour must be indistinguishable.
  Simulation sim;
  std::array<double, 32> payload{};  // 256 bytes, well past the inline buffer
  payload.fill(1.5);
  double sum = 0.0;
  sim.schedule(1.0, [payload, &sum] {
    for (const double v : payload) sum += v;
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sum, 48.0);
}

TEST(EventCallback, ReportsInlineVersusHeapStorage) {
  int x = 0;
  EventCallback small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());

  std::array<char, 128> big{};
  EventCallback large([big, &x] { x += big[0] + 2; });
  EXPECT_FALSE(large.is_inline());

  small();
  large();
  EXPECT_EQ(x, 3);

  // Moving transfers the callable (inline via relocate, heap via pointer).
  EventCallback moved(std::move(large));
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(large));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(x, 5);
}

}  // namespace
}  // namespace vdc::sim
