#include "consolidate/ipac.hpp"

#include <gtest/gtest.h>

#include "datacenter/cluster.hpp"

namespace vdc::consolidate {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;

Cluster heterogeneous_cluster() {
  Cluster c;
  // Server 0: efficient quad; servers 1-2: inefficient duals.
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  return c;
}

Vm make_vm(double demand, double memory = 512.0) {
  Vm vm;
  vm.cpu_demand_ghz = demand;
  vm.memory_mb = memory;
  return vm;
}

TEST(Ipac, ConsolidatesScatteredVmsOntoEfficientServer) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(1.0), 2);
  (void)c.add_vm(make_vm(0.5), 1);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport report = ipac(snap, constraints);
  EXPECT_TRUE(report.plan.complete());
  EXPECT_EQ(report.occupied_before, 2u);
  EXPECT_EQ(report.occupied_after, 1u);
  EXPECT_GT(report.consolidation_moves, 0u);
  apply_plan(c, report.plan, 0.0);
  EXPECT_EQ(c.vms_on(0).size(), 3u);  // everything on the quad
  EXPECT_EQ(c.active_server_count(), 1u);
}

TEST(Ipac, ResolvesOverloadByEvictingSmallestVms) {
  Cluster c = heterogeneous_cluster();
  // Dual-1.5GHz server (3 GHz capacity) carrying 4.3 GHz of demand.
  (void)c.add_vm(make_vm(2.5), 1);
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(0.8), 1);
  ASSERT_TRUE(c.overloaded(1));
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport report = ipac(snap, constraints);
  EXPECT_GT(report.overload_moves, 0u);
  apply_plan(c, report.plan, 0.0);
  EXPECT_TRUE(c.overloaded_servers().empty());
}

TEST(Ipac, NoChangeOnAlreadyOptimalLayout) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 0);
  (void)c.add_vm(make_vm(1.0), 0);
  c.sleep_idle_servers();
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport report = ipac(snap, constraints);
  EXPECT_TRUE(report.plan.moves.empty());
  EXPECT_EQ(report.occupied_before, report.occupied_after);
}

TEST(Ipac, CostPolicyVetoRollsBackRound) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(1.0), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  // A policy that rejects every consolidation migration.
  class VetoPolicy final : public MigrationCostPolicy {
   public:
    [[nodiscard]] bool allow(const DataCenterSnapshot&, const MigrationProposal&) const override {
      return false;
    }
    [[nodiscard]] std::string name() const override { return "veto"; }
  };
  const IpacReport report = ipac(snap, constraints, VetoPolicy());
  EXPECT_TRUE(report.plan.moves.empty());
  EXPECT_GT(report.rounds_rejected_by_policy, 0u);
  EXPECT_EQ(report.occupied_after, report.occupied_before);
}

TEST(Ipac, StopsWhenEvacuationDoesNotShrink) {
  Cluster c = heterogeneous_cluster();
  // Fill every server so nothing can be emptied.
  (void)c.add_vm(make_vm(11.0, 30000.0), 0);
  (void)c.add_vm(make_vm(2.8, 12000.0), 1);
  (void)c.add_vm(make_vm(2.8, 12000.0), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport report = ipac(snap, constraints);
  EXPECT_TRUE(report.plan.moves.empty());
  EXPECT_EQ(report.occupied_after, 3u);
  EXPECT_LE(report.rounds_accepted, 0u);
}

TEST(Ipac, MaxRoundsLimitsWork) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(0.5), 1);
  (void)c.add_vm(make_vm(0.5), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  IpacOptions options;
  options.max_rounds = 0;
  const IpacReport report = ipac(snap, constraints, FreeMigrationPolicy(), options);
  EXPECT_EQ(report.rounds_attempted, 0u);
  EXPECT_TRUE(report.plan.moves.empty());
}

TEST(Ipac, IncrementalSecondInvocationIsQuiescent) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(1.0), 2);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport first = ipac(snapshot_of(c), constraints);
  apply_plan(c, first.plan, 0.0);
  const IpacReport second = ipac(snapshot_of(c), constraints);
  EXPECT_TRUE(second.plan.moves.empty());
}

TEST(Ipac, WakesSleepingEfficientServerWhenNeeded) {
  Cluster c = heterogeneous_cluster();
  c.server(0).set_state(datacenter::ServerState::kSleeping);
  // Overload an inefficient server; relief must be able to wake the quad.
  (void)c.add_vm(make_vm(2.0), 1);
  (void)c.add_vm(make_vm(2.0), 1);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const IpacReport report = ipac(snap, constraints);
  apply_plan(c, report.plan, 0.0);
  EXPECT_TRUE(c.overloaded_servers().empty());
}

// ---- rack-aware gating edges ------------------------------------------------

/// 1 pod, 2 racks x 2 servers with a 30 W rack switch each. The efficient
/// quad (server 0) anchors the consolidation target; single-VM inefficient
/// donors make every round a single move, so the budget arithmetic below is
/// exact.
Cluster racked_mixed() {
  Cluster c;
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  for (int i = 0; i < 3; ++i) {
    c.add_server(Server(datacenter::dual_core_1_5ghz(),
                        datacenter::power_model_dual_1_5ghz(), 12288.0));
  }
  c.set_topology(datacenter::Topology::uniform(1, 2, 2, 30.0));
  return c;
}

TEST(Ipac, BudgetExactlyExhaustedMidPlanStopsFurtherRounds) {
  Cluster c = racked_mixed();
  (void)c.add_vm(make_vm(3.0, 1024.0), 0);
  (void)c.add_vm(make_vm(0.5, 1024.0), 1);
  (void)c.add_vm(make_vm(0.5, 1024.0), 2);
  (void)c.add_vm(make_vm(0.5, 1024.0), 3);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  RackAwareOptions rack;
  rack.enabled = true;
  rack.benefit_horizon_s = 3600.0;  // long horizon: every round is net-positive
  const IpacReport unbounded = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  ASSERT_GE(unbounded.plan.moves.size(), 2u);
  EXPECT_EQ(unbounded.rounds_rejected_by_budget, 0u);

  // Price the budget at EXACTLY the first move's migration energy: round 1
  // fits to the joule, every later round overruns and is rolled back.
  const Move& first = unbounded.plan.moves.front();
  rack.migration_energy_budget_j =
      rack.cost.energy_j(snap.vm(first.vm).memory_mb, snap.distance(first.from, first.to));
  const IpacReport capped = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  ASSERT_EQ(capped.plan.moves.size(), 1u);
  EXPECT_EQ(capped.plan.moves.front().vm, first.vm);
  EXPECT_EQ(capped.plan.moves.front().to, first.to);
  EXPECT_DOUBLE_EQ(capped.migration_energy_j, rack.migration_energy_budget_j);
  EXPECT_GT(capped.rounds_rejected_by_budget, 0u);
  EXPECT_LT(capped.plan.moves.size(), unbounded.plan.moves.size());
}

TEST(Ipac, CrossPodCostExceedingRackSwitchOffBenefitIsRejected) {
  // 2 pods x 1 rack x 1 server: the only consolidation move is cross-pod.
  // A huge VM over the starved core tier burns far more migration energy
  // than the emptied server + rack switch save over a short horizon.
  Cluster c;
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.set_topology(datacenter::Topology::uniform(2, 1, 1, 5.0));
  (void)c.add_vm(make_vm(0.5, 16384.0), 0);
  (void)c.add_vm(make_vm(2.0, 1024.0), 1);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  RackAwareOptions rack;
  rack.enabled = true;
  rack.cost.transfer.cross_pod_bandwidth_factor = 0.1;  // starved core tier
  rack.benefit_horizon_s = 10.0;
  const IpacReport gated = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  EXPECT_TRUE(gated.plan.moves.empty());
  EXPECT_GT(gated.rounds_rejected_by_cost, 0u);
  EXPECT_EQ(gated.occupied_after, gated.occupied_before);
  EXPECT_EQ(gated.racks_emptied, 0u);

  // Sanity check the economics, not just the verdict: the flat engine (and
  // a long enough horizon) both take the move, so the veto above really is
  // the distance-dependent cost speaking.
  const IpacReport flat = ipac(snap, constraints);
  EXPECT_FALSE(flat.plan.moves.empty());
  rack.benefit_horizon_s = 1e6;
  const IpacReport patient = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  EXPECT_FALSE(patient.plan.moves.empty());
  EXPECT_EQ(patient.racks_emptied, 1u);
  EXPECT_GT(patient.migration_energy_j, 0.0);
}

}  // namespace
}  // namespace vdc::consolidate
