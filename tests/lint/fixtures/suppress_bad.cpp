// Suppression-hygiene fixture: unknown rule names, reasonless suppressions,
// and suppressions with no matching finding are themselves findings.
namespace fixture {

// vdc-lint: float-eq-ok
bool reasonless(double a, double b) { return a == b; }

// vdc-lint: flot-eq-ok typo in the rule name
bool unknown_rule(double a, double b) { return a != b; }

// vdc-lint: determinism-ok nothing nondeterministic actually happens here
inline int unused_suppression() { return 7; }

}  // namespace fixture
