// unordered-iter fixture: un-annotated range-for over an unordered container
// (even one declared in another file — see unordered_iter_decl.hpp) is
// flagged; classic for loops and ordered containers are not.
#include <map>
#include <unordered_map>

#include "unordered_iter_decl.hpp"

namespace fixture {

double sum_table(const std::unordered_map<int, double>& table) {
  double total = 0.0;
  for (const auto& [key, value] : table) total += value;  // BAD: inline type
  return total;
}

double sum_registry(const Registry& registry) {
  double total = 0.0;
  for (const auto& [key, value] : registry.weights) total += value;  // BAD: cross-file decl
  for (auto it = registry.weights.begin(); it != registry.weights.end(); ++it) {
    total += it->second;  // ok: classic for is assumed to be doing something deliberate
  }
  std::map<int, double> ordered(registry.weights.begin(), registry.weights.end());
  for (const auto& [key, value] : ordered) total += value;  // ok: ordered
  return total;
}

}  // namespace fixture
