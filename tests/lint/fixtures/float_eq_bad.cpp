// float-eq fixture: == / != with a floating operand is flagged whether the
// operand is a declared double, a float literal, a unit-suffixed name, or a
// double-returning call; integer and tolerance comparisons are not.
#include <cmath>

namespace fixture {

double measure();

bool compare(double lhs, double rhs, int count, double budget_w) {
  bool r = lhs == rhs;            // BAD: both declared double
  r = r || (lhs != 0.5);          // BAD: float literal
  r = r || (budget_w == 0.0);     // BAD: unit-suffixed name
  r = r || (measure() == lhs);    // BAD: double-returning call
  r = r || (count == 3);          // ok: integral
  r = r || (std::abs(lhs - rhs) < 1e-9);  // ok: tolerance
  return r;
}

}  // namespace fixture
