// check-side-effect fixture: mutation inside VDC_ASSERT/VDC_INVARIANT
// vanishes under -DVDC_CHECKS=OFF and must be flagged; pure reads and
// lambda captures must not.
#include <vector>

#define VDC_ASSERT(cond, ...) static_cast<void>(sizeof((cond) ? 1 : 0))
#define VDC_INVARIANT(cond, ...) static_cast<void>(sizeof((cond) ? 1 : 0))

namespace fixture {

int audit(std::vector<int>& log, int counter) {
  VDC_ASSERT(++counter > 0);                       // BAD: increment
  VDC_INVARIANT(counter = 7);                      // BAD: assignment
  VDC_ASSERT(log.size() < 10u, "log overflowed");  // ok: pure read
  VDC_INVARIANT([&] { return !log.empty(); }());   // ok: capture, no mutation
  log.push_back(counter);                          // ok: outside any macro
  return counter;
}

}  // namespace fixture
