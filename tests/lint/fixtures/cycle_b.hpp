// include-cycle fixture, half B: completes the cycle with cycle_a.hpp.
#pragma once

#include "cycle_a.hpp"

namespace fixture {
struct B {
  int value = 0;
};
}  // namespace fixture
