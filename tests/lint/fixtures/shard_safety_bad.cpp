// shard-safety fixture: mutable static / namespace-scope state that would
// race across shard threads, plus the safe forms the rule must not flag.
#include <cstddef>

namespace fixture {

int global_counter = 0;               // BAD: mutable namespace-scope variable
double last_power_w = 0.0;            // BAD: mutable namespace-scope variable
const int kLimit = 8;                 // ok: const
constexpr double kPeriodS = 4.0;      // ok: constexpr
inline constexpr int kShards = 4;     // ok: inline constexpr

// vdc-lint: shard-safety-ok process-wide cache fed before the parallel phase
int annotated_cache = 0;

int next_id() {
  static int counter = 0;             // BAD: mutable function-local static
  static const int base = 100;        // ok: const static
  return base + ++counter;
}

class Widget {
 public:
  static std::size_t live_count;      // BAD: mutable class-static member
  static constexpr int kMax = 16;     // ok: constexpr member
  static int reset_all();             // ok: static member FUNCTION
  double weight = 1.0;                // ok: instance member
};

std::size_t Widget::live_count = 0;   // BAD: the member's definition

void bump() { ++global_counter; }     // use, not a declaration: no finding

}  // namespace fixture
