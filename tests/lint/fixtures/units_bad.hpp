// units-rule fixture: quantity-named floating declarations without unit
// suffixes must be flagged; suffixed/dimensionless/composite names must not.
#pragma once

namespace fixture {

struct PowerSample {
  double power_draw = 0.0;        // BAD: quantity stem, no unit
  double power_w = 0.0;           // ok: watt suffix
  double idle_energy = 0.0;       // BAD
  double idle_energy_j = 0.0;     // ok
  double demand_frac = 0.0;       // ok: dimensionless marker
  double energy_wh_per_vm = 0.0;  // ok: per-composite with a count
  int capacity_slots = 0;         // ok: not floating-point
};

double peak_frequency = 0.0;  // BAD: namespace-scope variable

double tier_capacity();      // BAD: double-returning function
double tier_capacity_ghz();  // ok

void observe(double latency, double latency_s, double util);  // BAD: first only

}  // namespace fixture
