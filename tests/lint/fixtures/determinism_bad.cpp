// determinism-rule fixture: hidden-state and wall-clock entropy sources are
// banned; same-named member functions are not.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

struct Sim {
  int time() const { return 0; }  // ok: member named `time`
};

double draw() {
  std::random_device rd;                               // BAD
  const auto wall = std::chrono::system_clock::now();  // BAD
  std::srand(42);                                      // BAD
  const long stamp = std::time(nullptr);               // BAD
  Sim sim;
  return static_cast<double>(sim.time()) + static_cast<double>(std::rand()) +  // ok then BAD
         static_cast<double>(stamp) + static_cast<double>(wall.time_since_epoch().count()) +
         static_cast<double>(rd());
}

}  // namespace fixture
