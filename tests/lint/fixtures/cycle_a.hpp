// include-cycle fixture, half A: includes cycle_b.hpp which includes us back.
#pragma once

#include "cycle_b.hpp"

namespace fixture {
struct A {
  int value = 0;
};
}  // namespace fixture
