// Suppression round-trip fixture: every violation here carries a reasoned
// annotation, so the file must produce only *suppressed* findings (exit 0).
#include <unordered_map>

namespace fixture {

struct Probe {
  // vdc-lint: units-ok legacy field kept for golden-file compatibility
  double power_reading = 0.0;
};

double total(const std::unordered_map<int, double>& table, double expected) {
  double sum = 0.0;
  // vdc-lint: unordered-iter-ok sum is commutative up to FP rounding, which this fixture ignores
  for (const auto& [key, value] : table) sum += value;
  if (sum == expected) {  // vdc-lint: float-eq-ok exact echo check is the fixture contract
    return 0.0;
  }
  return sum;
}

}  // namespace fixture
