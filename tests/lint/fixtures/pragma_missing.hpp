// pragma-once fixture: a header with include guards but no #pragma once is
// flagged (the repo standardizes on the pragma).
#ifndef FIXTURE_PRAGMA_MISSING_HPP
#define FIXTURE_PRAGMA_MISSING_HPP

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif  // FIXTURE_PRAGMA_MISSING_HPP
