// Declaration side of the unordered-iter fixture: the container member lives
// here, the flagged loop lives in unordered_iter_bad.cpp.
#pragma once

#include <unordered_map>

namespace fixture {

struct Registry {
  std::unordered_map<int, double> weights;
};

}  // namespace fixture
