#include "consolidate/working_placement.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "consolidate/snapshot.hpp"
#include "datacenter/cluster.hpp"

namespace vdc::consolidate {
namespace {

datacenter::Cluster small_cluster() {
  using namespace datacenter;
  Cluster c;
  c.add_server(Server(dual_core_2ghz(), power_model_dual_2ghz(), 4096.0));
  c.add_server(Server(quad_core_3ghz(), power_model_quad_3ghz(), 8192.0));
  Vm vm;
  vm.cpu_demand_ghz = 1.0;
  vm.memory_mb = 1024.0;
  c.add_vm(vm, 0);
  vm.cpu_demand_ghz = 0.5;
  c.add_vm(vm, 0);
  vm.cpu_demand_ghz = 2.0;
  c.add_vm(vm, 1);
  vm.cpu_demand_ghz = 0.25;
  c.add_vm(vm);  // unplaced
  return c;
}

TEST(Snapshot, CapturesClusterState) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  ASSERT_EQ(snap.servers.size(), 2u);
  ASSERT_EQ(snap.vms.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.server(1).max_capacity_ghz, 12.0);
  EXPECT_GT(snap.server(1).power_efficiency_ghz_per_w, snap.server(0).power_efficiency_ghz_per_w);
  EXPECT_EQ(snap.server(0).hosted.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.vm(2).cpu_demand_ghz, 2.0);
  EXPECT_EQ(snap.host_of(0), 0u);
  EXPECT_EQ(snap.host_of(3), datacenter::kNoServer);
  EXPECT_GT(snap.server(0).idle_power_w, snap.server(0).sleep_power_w);
}

TEST(WorkingPlacement, InitialSumsMatchSnapshot) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  const WorkingPlacement wp(snap);
  EXPECT_DOUBLE_EQ(wp.cpu_demand_ghz(0), 1.5);
  EXPECT_DOUBLE_EQ(wp.cpu_demand_ghz(1), 2.0);
  EXPECT_DOUBLE_EQ(wp.memory_used_mb(0), 2048.0);
  EXPECT_EQ(wp.host_of(3), datacenter::kNoServer);
  EXPECT_EQ(wp.occupied_server_count(), 2u);
}

TEST(WorkingPlacement, PlaceAndRemoveMaintainInvariants) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  WorkingPlacement wp(snap);
  wp.place(3, 1);
  EXPECT_EQ(wp.host_of(3), 1u);
  EXPECT_DOUBLE_EQ(wp.cpu_demand_ghz(1), 2.25);
  wp.remove(3);
  EXPECT_EQ(wp.host_of(3), datacenter::kNoServer);
  EXPECT_DOUBLE_EQ(wp.cpu_demand_ghz(1), 2.0);
  EXPECT_THROW(wp.remove(3), std::logic_error);
  wp.place(3, 0);
  EXPECT_THROW(wp.place(3, 1), std::logic_error);
}

TEST(WorkingPlacement, CpuSlack) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  const WorkingPlacement wp(snap);
  EXPECT_DOUBLE_EQ(wp.cpu_slack(0), 4.0 - 1.5);
  EXPECT_DOUBLE_EQ(wp.cpu_slack(1), 12.0 - 2.0);
}

TEST(WorkingPlacement, AdmitsWithExtra) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const VmId extra_ok[] = {3};   // +0.25 GHz on server 0 -> 1.75 <= 4
  EXPECT_TRUE(wp.admits_with(0, extra_ok, constraints));
  EXPECT_TRUE(wp.feasible(0, constraints));
  // Memory: server 0 has 4096, uses 2048; adding three 1 GB VMs... build a
  // custom check instead: a VM with 3000 MB breaks memory.
  DataCenterSnapshot snap2 = snap;
  snap2.vms.push_back(VmSnapshot{4, 0.1, 3000.0});
  const WorkingPlacement wp2(snap2);
  const VmId extra_mem[] = {4};
  EXPECT_FALSE(wp2.admits_with(0, extra_mem, constraints));
}

TEST(WorkingPlacement, PlanDiffsAgainstSnapshot) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  WorkingPlacement wp(snap);
  // Move VM 0 from server 0 to 1; place unplaced VM 3 on 0.
  wp.remove(0);
  wp.place(0, 1);
  wp.place(3, 0);
  const PlacementPlan plan = wp.plan();
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_TRUE(plan.complete());
  bool saw_migration = false;
  bool saw_initial = false;
  for (const Move& m : plan.moves) {
    if (m.vm == 0) {
      saw_migration = true;
      EXPECT_EQ(m.from, 0u);
      EXPECT_EQ(m.to, 1u);
    }
    if (m.vm == 3) {
      saw_initial = true;
      EXPECT_EQ(m.from, datacenter::kNoServer);
      EXPECT_EQ(m.to, 0u);
    }
  }
  EXPECT_TRUE(saw_migration);
  EXPECT_TRUE(saw_initial);
}

TEST(WorkingPlacement, NoChangesMeansEmptyPlan) {
  const datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  const WorkingPlacement wp(snap);
  EXPECT_TRUE(wp.plan().moves.empty());
}

TEST(WorkingPlacement, EvacuatingAPackedServerIsNotQuadratic) {
  // Regression guard for remove()'s swap-and-pop slot tracking: the old
  // erase-remove scan made evacuating an n-VM server O(n^2). 50k removals
  // quadratically cost ~1.25e9 element shifts (multiple seconds even in a
  // release build, far more under sanitizers); linearly they are a few
  // milliseconds, so the generous wall-clock bound below stays noise-proof
  // on slow CI while still catching a quadratic reintroduction.
  constexpr std::size_t kVms = 50000;
  DataCenterSnapshot snap;
  for (ServerId s = 0; s < 2; ++s) {
    ServerSnapshot server;
    server.id = s;
    server.max_capacity_ghz = 1e6;
    server.memory_mb = 1e9;
    server.max_power_w = 200.0;
    server.power_efficiency_ghz_per_w = 1.0;
    server.active = true;
    snap.servers.push_back(server);
  }
  for (std::size_t i = 0; i < kVms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = 0.01;
    vm.memory_mb = 1.0;
    snap.vms.push_back(vm);
    snap.servers[0].hosted.push_back(vm.id);
  }
  WorkingPlacement wp(snap);
  const auto t0 = std::chrono::steady_clock::now();
  for (VmId vm = 0; vm < kVms; ++vm) {
    wp.remove(vm);
    wp.place(vm, 1);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(wp.hosted(0).size(), 0u);
  EXPECT_EQ(wp.hosted(1).size(), kVms);
  EXPECT_EQ(wp.occupied_server_count(), 1u);
  EXPECT_LT(elapsed.count(), 2.5);
}

TEST(ApplyPlan, ExecutesMovesAndSleepsIdle) {
  datacenter::Cluster c = small_cluster();
  const DataCenterSnapshot snap = snapshot_of(c);
  WorkingPlacement wp(snap);
  // Consolidate everything onto server 1.
  wp.remove(0);
  wp.remove(1);
  wp.place(0, 1);
  wp.place(1, 1);
  wp.place(3, 1);
  apply_plan(c, wp.plan(), 42.0);
  EXPECT_EQ(c.vms_on(1).size(), 4u);
  EXPECT_TRUE(c.vms_on(0).empty());
  EXPECT_FALSE(c.server(0).active());  // slept
  EXPECT_EQ(c.migration_log().count(), 2u);  // VM 0 and 1 migrated; 3 placed
}

TEST(ApplyPlan, WakesSleepingTarget) {
  datacenter::Cluster c = small_cluster();
  c.migrate(2, 0);  // empty server 1
  c.sleep_idle_servers();
  ASSERT_FALSE(c.server(1).active());
  const DataCenterSnapshot snap = snapshot_of(c);
  WorkingPlacement wp(snap);
  wp.remove(2);
  wp.place(2, 1);
  apply_plan(c, wp.plan(), 0.0);
  EXPECT_TRUE(c.server(1).active());
  EXPECT_EQ(c.host_of(2), 1u);
}

}  // namespace
}  // namespace vdc::consolidate
