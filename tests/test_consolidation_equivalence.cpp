// Differential tests: the fast consolidation engine (incremental
// WorkingPlacement aggregates, SlackIndex target selection, plan-exact
// Minimum Slack pruning) against the retained naive oracles in
// consolidate/naive.hpp — the same strategy as test_eventloop_equivalence
// for the event loop. The fast engine is required to be *plan-exact*: for
// every seeded fleet, including ones where the Minimum Slack step budget
// binds and epsilon escalates mid-search, the two engines must produce
// move-for-move identical plans. Only reported step counts may differ
// (armed branch-and-bound skips counted work), and only when the budget
// provably cannot bind.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "consolidate/ipac.hpp"
#include "consolidate/naive.hpp"
#include "consolidate/pmapper.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

/// Heterogeneous 100-server fleet in the bench's mold: capacities 3-12 GHz,
/// VMs 0.1-1.5 GHz round-robin over the awake servers. Every 10th server
/// starts asleep (a wake target); small servers can start overloaded
/// (exercises relief).
DataCenterSnapshot random_fleet(std::size_t servers, std::size_t vms, std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  std::vector<ServerId> awake;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = i % 10 != 9;
    if (s.active) awake.push_back(s.id);
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
    snap.servers[awake[i % awake.size()]].hosted.push_back(vm.id);
  }
  return snap;
}

/// The same fleet with physical coordinates: racks of 5 servers, pods of 4
/// racks, non-trivial shared draws, and bandwidth tiers that slow distant
/// copies. Exercises every rack-aware branch of both engines.
DataCenterSnapshot racked_fleet(std::size_t servers, std::size_t vms, std::uint64_t seed) {
  DataCenterSnapshot snap = random_fleet(servers, vms, seed);
  constexpr std::size_t kPerRack = 5;
  constexpr std::size_t kRacksPerPod = 4;
  for (ServerSnapshot& s : snap.servers) {
    const auto rack = static_cast<RackId>(s.id / kPerRack);
    s.rack = rack;
    s.pod = static_cast<PodId>(rack / kRacksPerPod);
    if (rack >= snap.racks.size()) {
      snap.racks.push_back(RackSnapshot{
          .id = rack, .pod = s.pod, .shared_power_w = 40.0, .members = {}});
    }
    snap.racks[rack].members.push_back(s.id);
    if (s.pod >= snap.pods.size()) {
      snap.pods.push_back(PodSnapshot{.id = s.pod, .shared_power_w = 90.0});
    }
  }
  return snap;
}

/// Rack-aware knobs tuned so BOTH gates actually fire on the 100-server
/// fleets: a short horizon makes cross-pod moves lose net energy, and the
/// budget is small enough to exhaust mid-plan on most seeds.
RackAwareOptions binding_rack_options() {
  RackAwareOptions rack;
  rack.enabled = true;
  rack.cost.transfer.cross_rack_bandwidth_factor = 0.5;
  rack.cost.transfer.cross_pod_bandwidth_factor = 0.25;
  rack.migration_energy_budget_j = 20000.0;
  rack.benefit_horizon_s = 120.0;
  return rack;
}

void expect_same_plan(const PlacementPlan& fast, const PlacementPlan& ref,
                      std::uint64_t seed) {
  ASSERT_EQ(fast.moves.size(), ref.moves.size()) << "seed " << seed;
  for (std::size_t i = 0; i < fast.moves.size(); ++i) {
    EXPECT_EQ(fast.moves[i].vm, ref.moves[i].vm) << "seed " << seed << " move " << i;
    EXPECT_EQ(fast.moves[i].from, ref.moves[i].from) << "seed " << seed << " move " << i;
    EXPECT_EQ(fast.moves[i].to, ref.moves[i].to) << "seed " << seed << " move " << i;
  }
  EXPECT_EQ(fast.unplaced, ref.unplaced) << "seed " << seed;
}

class ConsolidationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ConsolidationEquivalence, IpacPlansIdenticalUnderHugeBudget) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  // A budget the search can never exhaust: escalation is off the table and
  // both engines must agree on every report field except step counts
  // (branch-and-bound arms on small calls and skips counted work).
  IpacOptions options;
  options.min_slack.step_budget = 1u << 30;
  const IpacReport fast = ipac(snap, constraints, FreeMigrationPolicy(), options);
  const IpacReport ref = naive::ipac(snap, constraints, FreeMigrationPolicy(), options);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.rounds_accepted, ref.rounds_accepted) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, IpacPlansIdenticalUnderDefaultBudget) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  // Default options: relief-sized candidate lists exhaust the per-call step
  // budget and escalate epsilon mid-search. Plan exactness must hold anyway
  // — the fast engine replicates the reference's escalation ladder step for
  // step through its bulk-counted skips.
  const IpacReport fast = ipac(snap, constraints);
  const IpacReport ref = naive::ipac(snap, constraints);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.rounds_accepted, ref.rounds_accepted) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, PMapperPlansIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport fast = pmapper(snap, constraints);
  const PMapperReport ref = naive::pmapper(snap, constraints);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
  EXPECT_EQ(fast.target_demand_ghz, ref.target_demand_ghz) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, PowerEstimateMatchesNaiveScanAfterAPass) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  WorkingPlacement placement(snap);
  // Churn the placement (evacuate a third of the servers onto the rest),
  // then compare the incrementally maintained power estimate against the
  // naive full scan: the compensated sum must match to near round-off.
  for (ServerId server = 0; server < 100; server += 3) {
    const std::vector<VmId> residents(placement.hosted(server).begin(),
                                      placement.hosted(server).end());
    for (const VmId vm : residents) {
      placement.remove(vm);
      placement.place(vm, (server + 1) % 100);
    }
  }
  EXPECT_NEAR(placement.estimated_power_w(), naive::estimated_power_w(placement), 1e-6)
      << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, RackAwareIpacPlansIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = racked_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const RackAwareOptions rack = binding_rack_options();
  const IpacReport fast = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  const IpacReport ref = naive::ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.rounds_accepted, ref.rounds_accepted) << "seed " << seed;
  EXPECT_EQ(fast.rounds_rejected_by_cost, ref.rounds_rejected_by_cost) << "seed " << seed;
  EXPECT_EQ(fast.rounds_rejected_by_budget, ref.rounds_rejected_by_budget)
      << "seed " << seed;
  EXPECT_EQ(fast.racks_emptied, ref.racks_emptied) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
  // Both engines charge the identical moves in the identical order: the
  // energy ledgers must agree to the bit, not just to rounding.
  EXPECT_EQ(fast.migration_energy_j, ref.migration_energy_j) << "seed " << seed;
  // Relief moves are budget-exempt yet still charged to the ledger, so the
  // total can exceed the budget on fleets that start overloaded; the strict
  // within-budget property is asserted by the overload-free cost-edge tests.
  EXPECT_GT(fast.migration_energy_j, 0.0) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, RackAwarePMapperPlansIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = racked_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const RackAwareOptions rack = binding_rack_options();
  const PMapperReport fast = pmapper(snap, constraints, rack);
  const PMapperReport ref = naive::pmapper(snap, constraints, rack);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.moves_rejected_by_budget, ref.moves_rejected_by_budget) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
  EXPECT_EQ(fast.migration_energy_j, ref.migration_energy_j) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, DegenerateTopologyReproducesFlatPlans) {
  // 1-rack-per-server with zero shared draw, a free cost model and a zero
  // benefit horizon: every rack-aware tie-break and gate provably reduces
  // to the flat baseline, so enabling the machinery must not move a single
  // decision.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  DataCenterSnapshot snap = random_fleet(100, 500, seed);
  for (ServerSnapshot& s : snap.servers) {
    s.rack = static_cast<RackId>(s.id);
    s.pod = 0;
    snap.racks.push_back(RackSnapshot{
        .id = s.rack, .pod = 0, .shared_power_w = 0.0, .members = {s.id}});
  }
  snap.pods.push_back(PodSnapshot{.id = 0, .shared_power_w = 0.0});
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  RackAwareOptions degenerate;
  degenerate.enabled = true;
  degenerate.cost.migration_power_w = 0.0;  // every move is free
  degenerate.benefit_horizon_s = 0.0;       // and claims zero benefit
  DataCenterSnapshot flat = snap;
  flat.racks.clear();
  flat.pods.clear();
  expect_same_plan(ipac(snap, constraints, FreeMigrationPolicy(), {}, degenerate).plan,
                   ipac(flat, constraints).plan, seed);
  expect_same_plan(pmapper(snap, constraints, degenerate).plan,
                   pmapper(flat, constraints).plan, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidationEquivalence, ::testing::Range(1, 11));

// Minimum Slack head-to-head under a *binding* budget: with 24 candidates
// the 2^24-sized tree dwarfs the 50-step budget, so branch-and-bound stays
// disarmed and the fast engine must mirror the reference exactly — same
// selection, same counted steps, same escalations.
TEST(ConsolidationEquivalence, MinimumSlackExactUnderBindingBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    DataCenterSnapshot snap;
    ServerSnapshot server;
    server.id = 0;
    server.max_capacity_ghz = 8.0;
    server.memory_mb = 4000.0;
    server.max_power_w = 200.0;
    server.power_efficiency_ghz_per_w = 8.0 / 200.0;
    server.active = true;
    snap.servers.push_back(server);
    std::vector<VmId> candidates;
    for (std::size_t i = 0; i < 24; ++i) {
      VmSnapshot vm;
      vm.id = static_cast<VmId>(i);
      vm.cpu_demand_ghz = rng.uniform(0.2, 1.2);
      vm.memory_mb = rng.uniform(100.0, 600.0);
      snap.vms.push_back(vm);
      candidates.push_back(vm.id);
    }
    const WorkingPlacement placement(snap);
    const ConstraintSet constraints = ConstraintSet::standard(1.0);
    MinSlackOptions options;
    options.epsilon_ghz = 1e-6;  // practically unreachable: budget governs
    options.step_budget = 50;
    options.max_escalations = 4;
    const MinSlackResult fast = minimum_slack(placement, 0, candidates, constraints, options);
    const MinSlackResult ref =
        naive::minimum_slack(placement, 0, candidates, constraints, options);
    EXPECT_EQ(fast.selected, ref.selected) << "seed " << seed;
    EXPECT_EQ(fast.steps, ref.steps) << "seed " << seed;
    EXPECT_EQ(fast.escalations, ref.escalations) << "seed " << seed;
    EXPECT_DOUBLE_EQ(fast.slack_ghz, ref.slack_ghz) << "seed " << seed;
  }
}

// Budgeted Minimum Slack head-to-head: binding *energy* budget, non-binding
// step budget (the budgeted DFS has no branch-and-bound arming, so a binding
// step budget would count steps differently from the plain engine). Fast and
// reference must agree on everything; with an infinite energy budget the
// selection must collapse to plain minimum_slack's.
TEST(ConsolidationEquivalence, BudgetedMinimumSlackMatchesReferenceAndCollapses) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    DataCenterSnapshot snap;
    ServerSnapshot server;
    server.id = 0;
    server.max_capacity_ghz = 8.0;
    server.memory_mb = 4000.0;
    server.max_power_w = 200.0;
    server.power_efficiency_ghz_per_w = 8.0 / 200.0;
    server.active = true;
    snap.servers.push_back(server);
    std::vector<VmId> candidates;
    std::vector<double> cost_j;
    double total_cost = 0.0;
    for (std::size_t i = 0; i < 18; ++i) {
      VmSnapshot vm;
      vm.id = static_cast<VmId>(i);
      vm.cpu_demand_ghz = rng.uniform(0.2, 1.2);
      vm.memory_mb = rng.uniform(100.0, 600.0);
      snap.vms.push_back(vm);
      candidates.push_back(vm.id);
      cost_j.push_back(rng.uniform(10.0, 120.0));
      total_cost += cost_j.back();
    }
    const WorkingPlacement placement(snap);
    const ConstraintSet constraints = ConstraintSet::standard(1.0);
    MinSlackOptions options;
    options.step_budget = 1u << 30;

    const double budget = total_cost / 3.0;  // binding: most subsets priced out
    const BudgetedMinSlackResult fast =
        minimum_slack_budgeted(placement, 0, candidates, cost_j, budget, constraints, options);
    const BudgetedMinSlackResult ref = naive::minimum_slack_budgeted(
        placement, 0, candidates, cost_j, budget, constraints, options);
    EXPECT_EQ(fast.result.selected, ref.result.selected) << "seed " << seed;
    EXPECT_EQ(fast.result.steps, ref.result.steps) << "seed " << seed;
    EXPECT_EQ(fast.result.escalations, ref.result.escalations) << "seed " << seed;
    EXPECT_DOUBLE_EQ(fast.result.slack_ghz, ref.result.slack_ghz) << "seed " << seed;
    EXPECT_DOUBLE_EQ(fast.cost_j, ref.cost_j) << "seed " << seed;
    EXPECT_LE(fast.cost_j, budget + 1e-9) << "seed " << seed;

    // Infinite budget: the cost dimension vanishes and the selection is the
    // plain engine's, bit for bit.
    const BudgetedMinSlackResult unbounded = minimum_slack_budgeted(
        placement, 0, candidates, cost_j, std::numeric_limits<double>::infinity(),
        constraints, options);
    const MinSlackResult plain = minimum_slack(placement, 0, candidates, constraints, options);
    EXPECT_EQ(unbounded.result.selected, plain.selected) << "seed " << seed;
    EXPECT_DOUBLE_EQ(unbounded.result.slack_ghz, plain.slack_ghz) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vdc::consolidate
