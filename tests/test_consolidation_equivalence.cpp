// Differential tests: the fast consolidation engine (incremental
// WorkingPlacement aggregates, SlackIndex target selection, plan-exact
// Minimum Slack pruning) against the retained naive oracles in
// consolidate/naive.hpp — the same strategy as test_eventloop_equivalence
// for the event loop. The fast engine is required to be *plan-exact*: for
// every seeded fleet, including ones where the Minimum Slack step budget
// binds and epsilon escalates mid-search, the two engines must produce
// move-for-move identical plans. Only reported step counts may differ
// (armed branch-and-bound skips counted work), and only when the budget
// provably cannot bind.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "consolidate/ipac.hpp"
#include "consolidate/naive.hpp"
#include "consolidate/pmapper.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

/// Heterogeneous 100-server fleet in the bench's mold: capacities 3-12 GHz,
/// VMs 0.1-1.5 GHz round-robin over the awake servers. Every 10th server
/// starts asleep (a wake target); small servers can start overloaded
/// (exercises relief).
DataCenterSnapshot random_fleet(std::size_t servers, std::size_t vms, std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  std::vector<ServerId> awake;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency = s.max_capacity_ghz / s.max_power_w;
    s.active = i % 10 != 9;
    if (s.active) awake.push_back(s.id);
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
    snap.servers[awake[i % awake.size()]].hosted.push_back(vm.id);
  }
  return snap;
}

void expect_same_plan(const PlacementPlan& fast, const PlacementPlan& ref,
                      std::uint64_t seed) {
  ASSERT_EQ(fast.moves.size(), ref.moves.size()) << "seed " << seed;
  for (std::size_t i = 0; i < fast.moves.size(); ++i) {
    EXPECT_EQ(fast.moves[i].vm, ref.moves[i].vm) << "seed " << seed << " move " << i;
    EXPECT_EQ(fast.moves[i].from, ref.moves[i].from) << "seed " << seed << " move " << i;
    EXPECT_EQ(fast.moves[i].to, ref.moves[i].to) << "seed " << seed << " move " << i;
  }
  EXPECT_EQ(fast.unplaced, ref.unplaced) << "seed " << seed;
}

class ConsolidationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ConsolidationEquivalence, IpacPlansIdenticalUnderHugeBudget) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  // A budget the search can never exhaust: escalation is off the table and
  // both engines must agree on every report field except step counts
  // (branch-and-bound arms on small calls and skips counted work).
  IpacOptions options;
  options.min_slack.step_budget = 1u << 30;
  const IpacReport fast = ipac(snap, constraints, AllowAllPolicy(), options);
  const IpacReport ref = naive::ipac(snap, constraints, AllowAllPolicy(), options);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.rounds_accepted, ref.rounds_accepted) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, IpacPlansIdenticalUnderDefaultBudget) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  // Default options: relief-sized candidate lists exhaust the per-call step
  // budget and escalate epsilon mid-search. Plan exactness must hold anyway
  // — the fast engine replicates the reference's escalation ladder step for
  // step through its bulk-counted skips.
  const IpacReport fast = ipac(snap, constraints);
  const IpacReport ref = naive::ipac(snap, constraints);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.rounds_accepted, ref.rounds_accepted) << "seed " << seed;
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, PMapperPlansIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport fast = pmapper(snap, constraints);
  const PMapperReport ref = naive::pmapper(snap, constraints);
  expect_same_plan(fast.plan, ref.plan, seed);
  EXPECT_EQ(fast.occupied_after, ref.occupied_after) << "seed " << seed;
  EXPECT_EQ(fast.target_demand_ghz, ref.target_demand_ghz) << "seed " << seed;
}

TEST_P(ConsolidationEquivalence, PowerEstimateMatchesNaiveScanAfterAPass) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const DataCenterSnapshot snap = random_fleet(100, 500, seed);
  WorkingPlacement placement(snap);
  // Churn the placement (evacuate a third of the servers onto the rest),
  // then compare the incrementally maintained power estimate against the
  // naive full scan: the compensated sum must match to near round-off.
  for (ServerId server = 0; server < 100; server += 3) {
    const std::vector<VmId> residents(placement.hosted(server).begin(),
                                      placement.hosted(server).end());
    for (const VmId vm : residents) {
      placement.remove(vm);
      placement.place(vm, (server + 1) % 100);
    }
  }
  EXPECT_NEAR(placement.estimated_power_w(), naive::estimated_power_w(placement), 1e-6)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidationEquivalence, ::testing::Range(1, 11));

// Minimum Slack head-to-head under a *binding* budget: with 24 candidates
// the 2^24-sized tree dwarfs the 50-step budget, so branch-and-bound stays
// disarmed and the fast engine must mirror the reference exactly — same
// selection, same counted steps, same escalations.
TEST(ConsolidationEquivalence, MinimumSlackExactUnderBindingBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    DataCenterSnapshot snap;
    ServerSnapshot server;
    server.id = 0;
    server.max_capacity_ghz = 8.0;
    server.memory_mb = 4000.0;
    server.max_power_w = 200.0;
    server.power_efficiency = 8.0 / 200.0;
    server.active = true;
    snap.servers.push_back(server);
    std::vector<VmId> candidates;
    for (std::size_t i = 0; i < 24; ++i) {
      VmSnapshot vm;
      vm.id = static_cast<VmId>(i);
      vm.cpu_demand_ghz = rng.uniform(0.2, 1.2);
      vm.memory_mb = rng.uniform(100.0, 600.0);
      snap.vms.push_back(vm);
      candidates.push_back(vm.id);
    }
    const WorkingPlacement placement(snap);
    const ConstraintSet constraints = ConstraintSet::standard(1.0);
    MinSlackOptions options;
    options.epsilon_ghz = 1e-6;  // practically unreachable: budget governs
    options.step_budget = 50;
    options.max_escalations = 4;
    const MinSlackResult fast = minimum_slack(placement, 0, candidates, constraints, options);
    const MinSlackResult ref =
        naive::minimum_slack(placement, 0, candidates, constraints, options);
    EXPECT_EQ(fast.selected, ref.selected) << "seed " << seed;
    EXPECT_EQ(fast.steps, ref.steps) << "seed " << seed;
    EXPECT_EQ(fast.escalations, ref.escalations) << "seed " << seed;
    EXPECT_DOUBLE_EQ(fast.slack_ghz, ref.slack_ghz) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vdc::consolidate
