// The robust control plane: gain derating, the measurement median filter,
// the asymmetric release rate limit, and the hardened ResponseTimeController
// variant end to end (spike rejection, setpoint margin, nominal-path
// equivalence).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "app/monitor.hpp"
#include "control/mpc.hpp"
#include "control/robust.hpp"
#include "core/response_time_controller.hpp"

namespace vdc::control {
namespace {

ArxModel siso_model() {
  // t(k) = 0.5 t(k-1) - 1.0 c(k-1) + 2.0  (steady state: t = (2 - c)/0.5).
  ArxModel m;
  m.na = 1;
  m.nb = 1;
  m.nu = 1;
  m.a = {0.5};
  m.b = linalg::Matrix(1, 1);
  m.b(0, 0) = -1.0;
  m.bias = 2.0;
  return m;
}

MpcConfig base_config() {
  MpcConfig config;
  config.prediction_horizon = 10;
  config.control_horizon = 3;
  config.r_weight = {0.1};
  config.period_s = 4.0;
  config.tref_s = 8.0;
  config.setpoint = 1.0;
  config.c_min = {0.1};
  config.c_max = {2.0};
  config.delta_max = 0.5;
  return config;
}

TEST(RobustConfig, Validation) {
  RobustConfig config;
  config.validate();  // defaults are sane
  config.gain_margin = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = RobustConfig{};
  config.gain_margin = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = RobustConfig{};
  config.setpoint_margin = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = RobustConfig{};
  config.setpoint_margin = 1.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = RobustConfig{};
  config.spike_window = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(RobustControl, DerateGainScalesOnlyB) {
  const ArxModel derated = derate_gain(siso_model(), 0.3);
  EXPECT_DOUBLE_EQ(derated.b(0, 0), -0.7);
  EXPECT_DOUBLE_EQ(derated.a[0], 0.5);    // AR part untouched
  EXPECT_DOUBLE_EQ(derated.bias, 2.0);    // bias untouched
  const ArxModel unchanged = derate_gain(siso_model(), 0.0);
  EXPECT_DOUBLE_EQ(unchanged.b(0, 0), -1.0);
}

TEST(MedianFilter, RejectsIsolatedSpikes) {
  MedianFilter filter(3);
  EXPECT_DOUBLE_EQ(filter.apply(1.0), 1.0);
  EXPECT_DOUBLE_EQ(filter.apply(50.0), 1.0);   // lower middle of {1, 50}
  EXPECT_DOUBLE_EQ(filter.apply(1.2), 1.2);    // median of {1, 50, 1.2}
  EXPECT_DOUBLE_EQ(filter.apply(1.1), 1.2);    // spike slides out: {50, 1.2, 1.1}
  EXPECT_DOUBLE_EQ(filter.apply(1.0), 1.1);    // fully spike-free again
}

TEST(MedianFilter, TracksSustainedShifts) {
  MedianFilter filter(3);
  (void)filter.apply(1.0);
  (void)filter.apply(1.0);
  (void)filter.apply(1.0);
  // A sustained level change passes after window/2 + 1 samples — lag, not
  // rejection.
  (void)filter.apply(3.0);
  EXPECT_DOUBLE_EQ(filter.apply(3.0), 3.0);
}

TEST(MedianFilter, WindowOneIsIdentity) {
  MedianFilter filter(1);
  EXPECT_DOUBLE_EQ(filter.apply(7.0), 7.0);
  EXPECT_DOUBLE_EQ(filter.apply(-2.0), -2.0);
}

TEST(AsymmetricRateLimit, ConfigValidation) {
  MpcConfig config = base_config();
  config.delta_down_max = 0.8;  // > delta_max
  EXPECT_THROW(MpcController(siso_model(), config), std::invalid_argument);
  config = base_config();
  config.delta_max = 0.0;
  config.delta_down_max = 0.1;  // asymmetric limit needs a rate limit at all
  EXPECT_THROW(MpcController(siso_model(), config), std::invalid_argument);
}

TEST(AsymmetricRateLimit, ReleaseIsSlowerThanGrant) {
  MpcConfig config = base_config();
  config.delta_down_max = 0.05;
  MpcController ctl(siso_model(), config);
  ctl.reset(1.0, std::vector<double>{1.0});
  // Output far above setpoint: the controller grants aggressively, up to
  // the full delta_max per period.
  const std::vector<double> up = ctl.step(3.0);
  EXPECT_GT(up[0], 1.0);
  EXPECT_LE(up[0], 1.0 + config.delta_max + 1e-9);
  // Output far below setpoint: release is capped at delta_down_max.
  double c = up[0];
  for (int k = 0; k < 5; ++k) {
    const std::vector<double> down = ctl.step(0.01);
    EXPECT_GE(down[0], c - config.delta_down_max - 1e-9)
        << "release exceeded the slew cap at step " << k;
    c = down[0];
  }
}

}  // namespace
}  // namespace vdc::control

namespace vdc::core {
namespace {

using control::ArxModel;
using control::MpcConfig;
using control::RobustConfig;

ArxModel plant_model() {
  ArxModel m;
  m.na = 1;
  m.nb = 1;
  m.nu = 1;
  m.a = {0.5};
  m.b = linalg::Matrix(1, 1);
  m.b(0, 0) = -1.0;
  m.bias = 2.0;
  return m;
}

MpcConfig controller_config() {
  MpcConfig config;
  config.prediction_horizon = 10;
  config.control_horizon = 3;
  config.r_weight = {0.1};
  config.period_s = 4.0;
  config.tref_s = 8.0;
  config.setpoint = 1.0;
  config.c_min = {0.1};
  config.c_max = {2.0};
  config.delta_max = 0.5;
  return config;
}

app::PeriodStats stats_with(double value) {
  app::PeriodStats stats;
  stats.count = 10;
  stats.quantile = value;
  stats.mean = value;
  stats.controlled = value;
  return stats;
}

TEST(RobustController, TracksTightenedSetpoint) {
  RobustConfig robust;
  robust.setpoint_margin = 0.8;
  ResponseTimeController ctl(plant_model(), controller_config(),
                             std::vector<double>{1.0}, robust);
  EXPECT_DOUBLE_EQ(ctl.mpc().setpoint(), 0.8);  // internal target is scaled
  ctl.set_setpoint(2.0);
  EXPECT_DOUBLE_EQ(ctl.mpc().setpoint(), 1.6);
}

TEST(RobustController, SpikeDoesNotStripAllocation) {
  // One wild sensor spike: the nominal controller reacts (the measurement
  // enters the MPC raw), the robust one filters it to the running median and
  // decides exactly what it would have decided on a clean sample.
  const auto run = [](std::optional<RobustConfig> robust, double seventh) {
    ResponseTimeController ctl(plant_model(), controller_config(),
                               std::vector<double>{1.0}, robust);
    std::vector<double> c;
    for (int k = 0; k < 6; ++k) c = ctl.control(stats_with(1.0));
    return ctl.control(stats_with(seventh));
  };
  const std::vector<double> nominal_clean = run(std::nullopt, 1.0);
  const std::vector<double> nominal_spike = run(std::nullopt, 40.0);
  EXPECT_GT(nominal_spike[0] - nominal_clean[0], 0.2);  // nominal chases it
  const std::vector<double> robust_clean = run(RobustConfig{}, 1.0);
  const std::vector<double> robust_spike = run(RobustConfig{}, 40.0);
  EXPECT_EQ(robust_spike, robust_clean);  // median{1,1,40} == median{1,1,1}
}

TEST(RobustController, NominalPathUnchangedWithoutRobustConfig) {
  // nullopt robust config must be the exact pre-robust controller: same
  // decisions, same held state, for the same measurement sequence.
  ResponseTimeController plain(plant_model(), controller_config(),
                               std::vector<double>{1.0});
  ResponseTimeController with_nullopt(plant_model(), controller_config(),
                                      std::vector<double>{1.0}, std::nullopt);
  for (int k = 0; k < 10; ++k) {
    const double measurement = 1.0 + 0.3 * ((k % 3) - 1);
    EXPECT_EQ(plain.control(stats_with(measurement)),
              with_nullopt.control(stats_with(measurement)));
  }
  EXPECT_EQ(plain.last_measurement(), with_nullopt.last_measurement());
}

TEST(RobustController, HoldsOnStaleExactlyLikeNominal) {
  RobustConfig robust;
  ResponseTimeController ctl(plant_model(), controller_config(),
                             std::vector<double>{1.0}, robust);
  (void)ctl.control(stats_with(1.2));
  const std::vector<double> before = ctl.mpc().current_allocations();
  app::PeriodStats stale = stats_with(9.9);
  stale.stale = true;
  const std::vector<double> held = ctl.control(stale);
  EXPECT_EQ(held, before);
  EXPECT_EQ(ctl.stale_holds(), 1u);
}

}  // namespace
}  // namespace vdc::core
