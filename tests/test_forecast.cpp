#include "trace/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"

namespace vdc::trace {
namespace {

TEST(RecentPeak, ValidatesArguments) {
  EXPECT_THROW(RecentPeakForecaster(1, 0), std::invalid_argument);
  EXPECT_THROW(RecentPeakForecaster(1, 4, 0.5), std::invalid_argument);
}

TEST(RecentPeak, TracksWindowMaximum) {
  RecentPeakForecaster f(2, 3, 1.0);
  f.observe(0, 0.5);
  f.observe(0, 0.9);
  f.observe(0, 0.2);
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 10), 0.9);
  f.observe(0, 0.1);  // evicts 0.5; max of {0.9, 0.2, 0.1}
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 10), 0.9);
  f.observe(0, 0.1);  // evicts 0.9; max of {0.2, 0.1, 0.1}
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 10), 0.2);
  // Independent per-VM histories.
  EXPECT_DOUBLE_EQ(f.predict_peak(1, 10), 0.0);
}

TEST(RecentPeak, AppliesSafetyFactor) {
  RecentPeakForecaster f(1, 4, 1.5);
  f.observe(0, 1.0);
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 1), 1.5);
}

TEST(DiurnalPeak, FallsBackToRecentBeforeFullPeriod) {
  DiurnalPeakForecaster f(1, 96, 1.0);
  f.observe(0, 0.4);
  f.observe(0, 0.6);
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 16), 0.6);
}

TEST(DiurnalPeak, SeesYesterdaysRamp) {
  // Day 1: a spike at offsets 10..12; day 2 begins flat. Predicting at the
  // start of day 2 with a horizon covering offsets 10..12 must surface the
  // spike from day 1.
  constexpr std::size_t kPeriod = 24;
  DiurnalPeakForecaster f(1, kPeriod, 1.0);
  for (std::size_t k = 0; k < kPeriod; ++k) {
    f.observe(0, (k >= 10 && k <= 12) ? 0.9 : 0.1);
  }
  for (std::size_t k = 0; k < 4; ++k) f.observe(0, 0.1);  // day 2, offsets 0..3
  // Horizon 12 spans offsets 4..15 of day 2 -> includes yesterday's spike.
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 12), 0.9);
  // Horizon 4 spans offsets 4..7 only -> flat.
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 4), 0.1);
}

TEST(DiurnalPeak, EmptyHistoryPredictsZero) {
  const DiurnalPeakForecaster f(2, 96);
  EXPECT_DOUBLE_EQ(f.predict_peak(0, 8), 0.0);
}

TEST(ForecastIntegration, ProactivePackingCutsOverload) {
  // Long (12 h) invocation period: reactive consolidation packs at the
  // trough and overloads on the ramp; diurnal forecasting should cut the
  // overload fraction substantially.
  SyntheticTraceOptions topt;
  topt.servers = 150;
  const UtilizationTrace trace = generate_synthetic_trace(topt);
  const core::TraceDrivenSimulator simulator(trace);
  core::TraceSimConfig reactive;
  reactive.num_vms = 150;
  reactive.pool_size = 250;
  reactive.consolidation_period_s = 12.0 * 3600.0;
  core::TraceSimConfig proactive = reactive;
  proactive.forecast = core::TraceSimConfig::Forecast::kDiurnalPeak;

  const core::TraceSimResult r = simulator.run(reactive);
  const core::TraceSimResult p = simulator.run(proactive);
  EXPECT_LT(p.overload_fraction, 0.6 * r.overload_fraction + 1e-9)
      << "reactive " << r.overload_fraction << " vs proactive " << p.overload_fraction;
  // Headroom costs energy (peak provisioning), and the reactive baseline's
  // energy is flattered by its own overload capping demand — allow up to
  // 1.5x but no runaway.
  EXPECT_LT(p.energy_wh_per_vm, 1.5 * r.energy_wh_per_vm);
}

TEST(ForecastIntegration, RecentPeakAlsoHelps) {
  SyntheticTraceOptions topt;
  topt.servers = 100;
  topt.samples = 288;  // three days
  const UtilizationTrace trace = generate_synthetic_trace(topt);
  const core::TraceDrivenSimulator simulator(trace);
  core::TraceSimConfig reactive;
  reactive.num_vms = 100;
  reactive.pool_size = 200;
  reactive.consolidation_period_s = 8.0 * 3600.0;
  core::TraceSimConfig proactive = reactive;
  proactive.forecast = core::TraceSimConfig::Forecast::kRecentPeak;
  const core::TraceSimResult r = simulator.run(reactive);
  const core::TraceSimResult p = simulator.run(proactive);
  EXPECT_LE(p.overload_fraction, r.overload_fraction + 1e-9);
}

}  // namespace
}  // namespace vdc::trace
