// Proof that the check macros compile to no-ops when checks are off: this
// translation unit forces VDC_CHECKS_ENABLED to 0 before including the
// header (exactly what building with -DVDC_CHECKS=OFF does globally) and
// shows that failing conditions neither throw nor get evaluated.
#define VDC_CHECKS_ENABLED 0
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "check/dc_audit.hpp"
#include "check/sim_audit.hpp"

namespace {

TEST(CheckDisabled, FailingConditionsAreSilent) {
  EXPECT_NO_THROW(VDC_ASSERT(false));
  EXPECT_NO_THROW(VDC_ASSERT(false, "message is also dropped"));
  EXPECT_NO_THROW(VDC_INVARIANT(1 == 2));
}

TEST(CheckDisabled, ConditionIsNeverEvaluated) {
  int evaluations = 0;
  // vdc-lint: check-side-effect-ok this test proves conditions compile out; the mutation is the subject under test
  VDC_ASSERT(++evaluations > 0);
  // vdc-lint: check-side-effect-ok this test proves messages compile out too; the mutation is the subject under test
  VDC_INVARIANT(++evaluations > 0, "side effects " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
}

// Behavioral parity for the hot-path auditors: every header-only audit
// function must degrade to a silent no-op in a checks-off build, even when
// fed inputs that would fire the invariant with checks on (the mirror-image
// cases of tests/test_check.cpp). A throw here means an auditor does real
// work outside the macros and release builds pay for (or crash on) it.
TEST(CheckDisabled, SimAuditorsAreSilentOnViolatingInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NO_THROW(vdc::sim::audit::event_time(1.0, 0.5));   // scheduled in the past
  EXPECT_NO_THROW(vdc::sim::audit::event_time(0.0, nan));   // non-finite timestamp
  EXPECT_NO_THROW(vdc::sim::audit::clock_monotonic(2.0, 1.0));  // clock rewind
  EXPECT_NO_THROW(vdc::sim::audit::ps_residual(-1.0));          // negative residual
  EXPECT_NO_THROW(vdc::sim::audit::ps_accounting(-1.0, -1.0));
  EXPECT_NO_THROW(vdc::sim::audit::ps_stall_accounting(nan, -2.0));
  EXPECT_NO_THROW(vdc::sim::audit::ps_finish_mark(5.0, 1.0));  // mark in virtual past
  EXPECT_NO_THROW(vdc::sim::audit::event_slab(3, 2, 0));       // slab leak
}

TEST(CheckDisabled, DataCenterAuditorsAreSilentOnViolatingInputs) {
  // Rack draw that matches neither shared+members nor members alone.
  EXPECT_NO_THROW(vdc::datacenter::audit::rack_power(0, true, 10.0, 20.0, 0.0));
  EXPECT_NO_THROW(vdc::datacenter::audit::rack_power(1, false, -5.0, 20.0, 20.0));
}

TEST(CheckDisabled, IsExactlyZeroIsIndependentOfChecksMode) {
  // The exactness helper is a plain function, not a check macro: it keeps
  // returning real answers when checks are off.
  EXPECT_TRUE(vdc::check::is_exactly_zero(0.0));
  EXPECT_TRUE(vdc::check::is_exactly_zero(-0.0));
  EXPECT_FALSE(vdc::check::is_exactly_zero(1e-300));
  EXPECT_FALSE(vdc::check::is_exactly_zero(std::numeric_limits<double>::quiet_NaN()));
}

TEST(CheckDisabled, FailHelperStillWorks) {
  // The runtime helper stays linked even in no-op builds (the macros gate
  // the call sites, not the function).
  EXPECT_THROW(vdc::check::fail("assertion", "expr", "msg", "file.cpp", 1, "fn"),
               vdc::check::CheckFailure);
}

}  // namespace
