// Proof that the check macros compile to no-ops when checks are off: this
// translation unit forces VDC_CHECKS_ENABLED to 0 before including the
// header (exactly what building with -DVDC_CHECKS=OFF does globally) and
// shows that failing conditions neither throw nor get evaluated.
#define VDC_CHECKS_ENABLED 0
#include "check/check.hpp"

#include <gtest/gtest.h>

namespace {

TEST(CheckDisabled, FailingConditionsAreSilent) {
  EXPECT_NO_THROW(VDC_ASSERT(false));
  EXPECT_NO_THROW(VDC_ASSERT(false, "message is also dropped"));
  EXPECT_NO_THROW(VDC_INVARIANT(1 == 2));
}

TEST(CheckDisabled, ConditionIsNeverEvaluated) {
  int evaluations = 0;
  VDC_ASSERT(++evaluations > 0);
  VDC_INVARIANT(++evaluations > 0, "side effects " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDisabled, FailHelperStillWorks) {
  // The runtime helper stays linked even in no-op builds (the macros gate
  // the call sites, not the function).
  EXPECT_THROW(vdc::check::fail("assertion", "expr", "msg", "file.cpp", 1, "fn"),
               vdc::check::CheckFailure);
}

}  // namespace
