#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vdc::trace {
namespace {

SyntheticTraceOptions small_options(std::uint64_t seed = 1) {
  SyntheticTraceOptions o;
  o.servers = 120;
  o.samples = kPaperSampleCount;
  o.seed = seed;
  return o;
}

TEST(Synthetic, DimensionsMatchOptions) {
  const UtilizationTrace t = generate_synthetic_trace(small_options());
  EXPECT_EQ(t.server_count(), 120u);
  EXPECT_EQ(t.sample_count(), kPaperSampleCount);
  EXPECT_EQ(t.labels.size(), 120u);
}

TEST(Synthetic, UtilizationWithinBounds) {
  const UtilizationTrace t = generate_synthetic_trace(small_options());
  for (std::size_t s = 0; s < t.server_count(); ++s) {
    for (const double u : t.series(s)) {
      EXPECT_GE(u, 0.01);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  const UtilizationTrace a = generate_synthetic_trace(small_options(7));
  const UtilizationTrace b = generate_synthetic_trace(small_options(7));
  const UtilizationTrace c = generate_synthetic_trace(small_options(8));
  EXPECT_DOUBLE_EQ(a.at(3, 100), b.at(3, 100));
  EXPECT_DOUBLE_EQ(a.global_mean(), b.global_mean());
  EXPECT_NE(a.global_mean(), c.global_mean());
}

TEST(Synthetic, AllFourSectorsPresent) {
  const UtilizationTrace t = generate_synthetic_trace(small_options());
  const std::set<std::string> sectors(t.labels.begin(), t.labels.end());
  EXPECT_TRUE(sectors.contains("manufacturing"));
  EXPECT_TRUE(sectors.contains("telecom"));
  EXPECT_TRUE(sectors.contains("financial"));
  EXPECT_TRUE(sectors.contains("retail"));
}

TEST(Synthetic, DiurnalStructureVisible) {
  // Averaged over servers and days, business hours must exceed night hours.
  const UtilizationTrace t = generate_synthetic_trace(small_options());
  double day = 0.0;
  double night = 0.0;
  int day_count = 0;
  int night_count = 0;
  for (std::size_t k = 0; k < t.sample_count(); ++k) {
    const double hour = std::fmod(static_cast<double>(k) * 900.0 / 3600.0, 24.0);
    const int weekday = static_cast<int>(static_cast<double>(k) * 900.0 / 86400.0) % 7;
    if (weekday >= 5) continue;  // weekdays only for the sharpest contrast
    if (hour >= 9.0 && hour < 17.0) {
      day += t.mean_at(k);
      ++day_count;
    } else if (hour < 5.0) {
      night += t.mean_at(k);
      ++night_count;
    }
  }
  ASSERT_GT(day_count, 0);
  ASSERT_GT(night_count, 0);
  EXPECT_GT(day / day_count, 1.3 * night / night_count);
}

TEST(Synthetic, FinancialSectorQuietOnWeekends) {
  SyntheticTraceOptions o = small_options();
  o.sectors = {default_sector_profiles()[2]};  // financial only
  o.sector_weights = {1.0};
  const UtilizationTrace t = generate_synthetic_trace(o);
  double weekday = 0.0;
  double weekend = 0.0;
  int wd = 0;
  int we = 0;
  for (std::size_t k = 0; k < t.sample_count(); ++k) {
    const int day = static_cast<int>(static_cast<double>(k) * 900.0 / 86400.0) % 7;
    if (day >= 5) {
      weekend += t.mean_at(k);
      ++we;
    } else {
      weekday += t.mean_at(k);
      ++wd;
    }
  }
  EXPECT_GT(weekday / wd, 1.15 * weekend / we);
}

TEST(Synthetic, CustomSectorMixRespected) {
  SyntheticTraceOptions o = small_options();
  o.sectors = default_sector_profiles();
  o.sector_weights = {1.0, 0.0, 0.0, 0.0};  // manufacturing only
  const UtilizationTrace t = generate_synthetic_trace(o);
  for (const std::string& label : t.labels) EXPECT_EQ(label, "manufacturing");
}

TEST(Synthetic, ValidatesWeights) {
  SyntheticTraceOptions o = small_options();
  o.sectors = default_sector_profiles();
  o.sector_weights = {1.0};  // wrong length
  EXPECT_THROW(generate_synthetic_trace(o), std::invalid_argument);
  o.sector_weights = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(generate_synthetic_trace(o), std::invalid_argument);
}

TEST(Synthetic, MeanUtilizationInDataCenterRange) {
  // Enterprise servers average 10-40% utilization; the synthetic trace
  // must land there for the consolidation results to be meaningful.
  const UtilizationTrace t = generate_synthetic_trace(small_options());
  EXPECT_GT(t.global_mean(), 0.10);
  EXPECT_LT(t.global_mean(), 0.45);
}

}  // namespace
}  // namespace vdc::trace
