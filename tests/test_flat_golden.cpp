// Byte-identity regression goldens for the flat-topology default.
//
// The rack/pod topology layer and the migration-cost-aware consolidation
// variants are strictly opt-in: with no Topology configured (the default,
// and what every figure bench ships with), the refactored stack must
// produce *byte-identical* results to the pre-topology code. These tests
// pin that down: each runs a deterministic, small-scale scenario through
// the same engines the figure benches use — the planner stack behind
// ablation_packing (PAC / FFD / IPAC / pMapper), the Testbed co-simulation
// behind fig2-fig5, and the trace-driven simulator behind fig6 — formats
// the results as CSV with fixed "%.17g" formatting, and compares the bytes
// against a committed golden file.
//
// Regenerating (only legitimate when a PR *intentionally* changes default
// behavior, which the topology refactor must not):
//   VDC_REGEN_GOLDEN=1 ./build/tests/test_flat_golden
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "consolidate/ffd.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/naive.hpp"
#include "consolidate/pmapper.hpp"
#include "consolidate/working_placement.hpp"
#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "core/trace_sim.hpp"
#include "telemetry/export.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace vdc {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Compares `produced` against the committed golden byte for byte; under
/// VDC_REGEN_GOLDEN=1 rewrites the golden instead (and skips, so a regen
/// run is visibly not a verification run).
void check_golden(const std::string& name, const std::string& produced) {
  const std::string path = std::string(VDC_GOLDEN_DIR) + "/" + name;
  if (std::getenv("VDC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << produced;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with VDC_REGEN_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == produced) return;
  // Pinpoint the first differing line instead of dumping both files.
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = std::min(expected.size(), produced.size());
  while (i < n && expected[i] == produced[i]) {
    if (expected[i] == '\n') ++line;
    ++i;
  }
  const auto line_at = [](const std::string& s, std::size_t pos) {
    const std::size_t begin = s.rfind('\n', pos == 0 ? 0 : pos - 1) + 1;
    std::size_t end = s.find('\n', pos);
    if (end == std::string::npos) end = s.size();
    return s.substr(begin, end - begin);
  };
  FAIL() << name << " diverges from its golden at line " << line << ":\n  golden:   "
         << (i < expected.size() ? line_at(expected, i) : "<eof>") << "\n  produced: "
         << (i < produced.size() ? line_at(produced, i) : "<eof>")
         << "\nByte-identity under the flat-topology default is a hard requirement; "
            "regenerate only if this change in default behavior is intentional.";
}

// ---- planner stack (the engines behind ablation_packing) --------------------

/// Heterogeneous fleet in the equivalence-test mold: capacities 3-12 GHz,
/// VMs 0.1-1.5 GHz round-robin over the awake servers, every 10th server
/// asleep.
consolidate::DataCenterSnapshot random_fleet(std::size_t servers, std::size_t vms,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  consolidate::DataCenterSnapshot snap;
  std::vector<consolidate::ServerId> awake;
  for (std::size_t i = 0; i < servers; ++i) {
    consolidate::ServerSnapshot s;
    s.id = static_cast<consolidate::ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = i % 10 != 9;
    if (s.active) awake.push_back(s.id);
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    consolidate::VmSnapshot vm;
    vm.id = static_cast<consolidate::VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
    snap.servers[awake[i % awake.size()]].hosted.push_back(vm.id);
  }
  return snap;
}

void emit_plan(std::ostringstream& csv, std::uint64_t seed, const char* algo,
               const consolidate::PlacementPlan& plan) {
  for (std::size_t i = 0; i < plan.moves.size(); ++i) {
    const consolidate::Move& m = plan.moves[i];
    csv << seed << ',' << algo << ",move," << i << ',' << m.vm << ',';
    if (m.from == datacenter::kNoServer) {
      csv << "none";
    } else {
      csv << m.from;
    }
    csv << ',' << m.to << '\n';
  }
  for (const consolidate::VmId vm : plan.unplaced) {
    csv << seed << ',' << algo << ",unplaced,," << vm << ",,\n";
  }
}

TEST(FlatGolden, PlannerPlansAreByteIdentical) {
  std::ostringstream csv;
  csv << "seed,algo,kind,index,vm,from,to\n";
  const consolidate::ConstraintSet constraints = consolidate::ConstraintSet::standard(1.0);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const consolidate::DataCenterSnapshot snap = random_fleet(100, 400, seed);

    const consolidate::IpacReport ipac_report = consolidate::ipac(snap, constraints);
    emit_plan(csv, seed, "ipac", ipac_report.plan);
    csv << seed << ",ipac,summary,," << ipac_report.occupied_before << ','
        << ipac_report.occupied_after << ',' << ipac_report.rounds_accepted << '\n';

    const consolidate::PMapperReport pm = consolidate::pmapper(snap, constraints);
    emit_plan(csv, seed, "pmapper", pm.plan);
    csv << seed << ",pmapper,summary,," << pm.occupied_before << ',' << pm.occupied_after
        << ',' << pm.moves << '\n';

    // The ablation_packing comparison: evacuate everything, then repack the
    // whole fleet with PAC and (separately) FFD in efficiency order.
    {
      consolidate::WorkingPlacement wp(snap);
      std::vector<consolidate::VmId> all;
      for (const consolidate::VmSnapshot& vm : snap.vms) {
        wp.remove(vm.id);
        all.push_back(vm.id);
      }
      const consolidate::PacResult pac =
          consolidate::power_aware_consolidation(wp, all, constraints);
      csv << seed << ",pac_repack,summary,," << pac.placed.size() << ','
          << pac.servers_used << ',' << fmt(consolidate::naive::estimated_power_w(wp)) << '\n';
      for (const consolidate::VmSnapshot& vm : snap.vms) {
        csv << seed << ",pac_repack,host," << vm.id << ',' << wp.host_of(vm.id) << ",,\n";
      }
    }
    {
      consolidate::WorkingPlacement wp(snap);
      std::vector<consolidate::VmId> all;
      for (const consolidate::VmSnapshot& vm : snap.vms) {
        wp.remove(vm.id);
        all.push_back(vm.id);
      }
      const std::vector<consolidate::ServerId> order =
          consolidate::servers_by_power_efficiency(snap);
      const consolidate::FfdResult ffd =
          consolidate::first_fit_decreasing(wp, order, all, constraints);
      csv << seed << ",ffd_repack,summary,," << ffd.placed.size() << ",,"
          << fmt(consolidate::naive::estimated_power_w(wp)) << '\n';
      for (const consolidate::VmSnapshot& vm : snap.vms) {
        csv << seed << ",ffd_repack,host," << vm.id << ',' << wp.host_of(vm.id) << ",,\n";
      }
    }
  }
  check_golden("planners.csv", csv.str());
}

// ---- Testbed co-simulation (the engine behind fig2-fig5) --------------------

const control::ArxModel& shared_model() {
  static const core::SysIdExperimentResult identified = [] {
    core::SysIdExperimentConfig sysid;
    sysid.periods = 120;
    return core::identify_app_model(app::default_two_tier_app("golden", 1001, 40), sysid);
  }();
  return identified.model;
}

TEST(FlatGolden, TestbedSeriesAreByteIdentical) {
  core::ScenarioSpec spec;
  spec.name = "flat-golden";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 4;
  spec.testbed.num_servers = 3;
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.model = shared_model();
  spec.seed = 7;
  spec.duration_s = 400.0;
  const core::ScenarioResult run = core::ScenarioRunner().run(spec);

  std::ostringstream csv;
  csv << "series,index,value\n";
  const std::vector<double>& power = run.power_series();
  for (std::size_t k = 0; k < power.size(); ++k) {
    csv << "power_w," << k << ',' << fmt(power[k]) << '\n';
  }
  for (std::size_t app = 0; app < run.app_count; ++app) {
    const std::vector<double>& resp = run.response_series(app);
    for (std::size_t k = 0; k < resp.size(); ++k) {
      csv << "response_s_app" << app << ',' << k << ',' << fmt(resp[k]) << '\n';
    }
  }
  csv << "migrations,," << run.completed_migrations << '\n';
  csv << "optimizer_invocations,," << run.optimizer_invocations << '\n';
  check_golden("testbed.csv", csv.str());
}

TEST(FlatGolden, ShardedTestbedMatchesTheSameGolden) {
  // The sharded engine against the SAME committed golden as the legacy
  // engine above: partitioning the apps over 4 parallel shards must not
  // move a single byte. (The full shard x thread matrix lives in
  // test_sharding.cpp; this pins the sharded path to the committed file so
  // a regen of the golden cannot silently paper over a divergence.)
  core::ScenarioSpec spec;
  spec.name = "flat-golden-sharded";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 4;
  spec.testbed.num_servers = 3;
  spec.testbed.enable_optimizer = true;
  spec.testbed.optimizer_period_s = 120.0;
  spec.testbed.shards = 4;
  spec.testbed.shard_threads = 2;
  spec.model = shared_model();
  spec.seed = 7;
  spec.duration_s = 400.0;
  const core::ScenarioResult run = core::ScenarioRunner().run(spec);

  std::ostringstream csv;
  csv << "series,index,value\n";
  const std::vector<double>& power = run.power_series();
  for (std::size_t k = 0; k < power.size(); ++k) {
    csv << "power_w," << k << ',' << fmt(power[k]) << '\n';
  }
  for (std::size_t app = 0; app < run.app_count; ++app) {
    const std::vector<double>& resp = run.response_series(app);
    for (std::size_t k = 0; k < resp.size(); ++k) {
      csv << "response_s_app" << app << ',' << k << ',' << fmt(resp[k]) << '\n';
    }
  }
  csv << "migrations,," << run.completed_migrations << '\n';
  csv << "optimizer_invocations,," << run.optimizer_invocations << '\n';
  check_golden("testbed.csv", csv.str());
}

// ---- telemetry backend byte-identity ----------------------------------------

TEST(FlatGolden, TelemetryBackendsExportIdenticalCsv) {
  // The same fig2-style testbed run under both recorder backends. While
  // tier-0 retention covers the run (the default by a wide margin), the
  // tiered store must hand every exporter the exact bytes the historical
  // raw vectors would have — cmp-equal CSV, pinned by a committed golden.
  core::ScenarioSpec spec;
  spec.name = "telemetry-golden";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.testbed.num_apps = 2;
  spec.testbed.num_servers = 2;
  spec.model = shared_model();
  spec.seed = 11;
  spec.duration_s = 200.0;

  spec.telemetry.backend = telemetry::RecorderConfig::Backend::kTsdb;
  const core::ScenarioResult tiered = core::ScenarioRunner().run(spec);
  spec.telemetry.backend = telemetry::RecorderConfig::Backend::kRawVectors;
  const core::ScenarioResult raw = core::ScenarioRunner().run(spec);

  const std::string tiered_csv = telemetry::to_csv(tiered.recorder);
  EXPECT_EQ(tiered_csv, telemetry::to_csv(raw.recorder));
  EXPECT_TRUE(tiered.recorder == raw.recorder);
  check_golden("telemetry_testbed.csv", tiered_csv);
}

// ---- trace-driven simulation (the engine behind fig6) -----------------------

/// Deterministic synthetic utilization trace: piecewise-constant seeded
/// draws (no libm in the generator, so the bytes cannot drift across math
/// library versions).
trace::UtilizationTrace golden_trace() {
  constexpr std::size_t kVms = 40;
  constexpr std::size_t kSamples = 96;  // one day at 15 min
  trace::UtilizationTrace t(kVms, kSamples);
  util::Rng rng(12345);
  for (std::size_t s = 0; s < kVms; ++s) {
    double level = rng.uniform(0.05, 0.6);
    for (std::size_t k = 0; k < kSamples; ++k) {
      if (k % 8 == 0) level = rng.uniform(0.05, 0.8);
      t.set(s, k, level);
    }
  }
  return t;
}

TEST(FlatGolden, TraceSimResultsAreByteIdentical) {
  const trace::UtilizationTrace t = golden_trace();
  const core::TraceDrivenSimulator sim(t);
  std::ostringstream csv;
  csv << "algo,field,index,value\n";
  for (const core::ConsolidationAlgorithm algo :
       {core::ConsolidationAlgorithm::kIpac, core::ConsolidationAlgorithm::kPMapper}) {
    core::TraceSimConfig config;
    config.num_vms = 40;
    config.pool_size = 120;
    config.seed = 42;
    config.algorithm = algo;
    config.dvfs = algo == core::ConsolidationAlgorithm::kIpac;
    const core::TraceSimResult result = sim.run(config);
    const std::string name = core::to_string(algo);
    csv << name << ",energy_wh_total,," << fmt(result.total_energy_wh) << '\n';
    csv << name << ",energy_wh_per_vm,," << fmt(result.energy_wh_per_vm) << '\n';
    csv << name << ",migrations,," << result.migrations << '\n';
    csv << name << ",optimizer_invocations,," << result.optimizer_invocations << '\n';
    csv << name << ",server_wakes,," << result.server_wakes << '\n';
    csv << name << ",peak_active_servers,," << result.peak_active_servers << '\n';
    csv << name << ",final_active_servers,," << result.final_active_servers << '\n';
    csv << name << ",overload_fraction,," << fmt(result.overload_fraction) << '\n';
    for (std::size_t k = 0; k < result.power_series_w.size(); ++k) {
      csv << name << ",power_w," << k << ',' << fmt(result.power_series_w[k]) << '\n';
    }
  }
  check_golden("trace_sim.csv", csv.str());
}

}  // namespace
}  // namespace vdc
