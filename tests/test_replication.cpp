// Tier replica sets: the dispatcher, the boot/drain state machine, request
// conservation across scaling churn, and the single-replica equivalence
// contract (scaling machinery must not perturb an app that never has a
// second serving replica).
#include <gtest/gtest.h>

#include <vector>

#include "app/multi_tier_app.hpp"

namespace vdc::app {
namespace {

AppConfig replicated_app(std::uint64_t seed, std::size_t concurrency,
                         std::size_t replicas, double boot_delay_s = 0.0) {
  AppConfig config = default_two_tier_app("rep", seed, concurrency);
  for (TierConfig& tier : config.tiers) {
    tier.initial_replicas = replicas;
    tier.max_replicas = 8;
    tier.boot_delay_s = boot_delay_s;
  }
  return config;
}

TEST(Replication, ConfigValidation) {
  sim::Simulation sim;
  AppConfig config = replicated_app(1, 10, 1);
  config.tiers[0].initial_replicas = 0;
  EXPECT_THROW(MultiTierApp(sim, config), std::invalid_argument);
  config = replicated_app(1, 10, 4);
  config.tiers[0].max_replicas = 2;  // < initial
  EXPECT_THROW(MultiTierApp(sim, config), std::invalid_argument);
  config = replicated_app(1, 10, 1);
  config.tiers[1].boot_delay_s = -1.0;
  EXPECT_THROW(MultiTierApp(sim, config), std::invalid_argument);
}

TEST(Replication, InitialReplicasServeImmediately) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(2, 40, 3, /*boot_delay_s=*/30.0));
  const ReplicaSetStatus status = app.replica_status(0);
  EXPECT_EQ(status.target, 3u);
  EXPECT_EQ(status.serving, 3u);  // initial replicas skip the boot delay
  EXPECT_EQ(status.booting, 0u);
  app.start();
  sim.run_until(60.0);
  // The dispatcher spreads work across every serving replica.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GT(app.replica_work_done_gcycles(0, r), 0.0) << "replica " << r;
    EXPECT_GT(app.replica_work_done_gcycles(1, r), 0.0) << "replica " << r;
  }
  EXPECT_GT(app.completed_requests(), 100u);
}

TEST(Replication, DeterministicForSameSeed) {
  const auto run = [] {
    sim::Simulation sim;
    MultiTierApp app(sim, replicated_app(7, 30, 3));
    app.start();
    sim.run_until(100.0);
    std::vector<double> work;
    for (std::size_t r = 0; r < 3; ++r) work.push_back(app.replica_work_done_gcycles(1, r));
    return std::pair{app.completed_requests(), work};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // identical dispatch, bit for bit
}

TEST(Replication, MoreReplicasLowerResponseTimeWhenSaturated) {
  const auto mean_rt = [](std::size_t replicas) {
    sim::Simulation sim;
    MultiTierApp app(sim, replicated_app(4, 120, replicas));
    double sum = 0.0;
    std::size_t n = 0;
    app.set_response_callback([&](double, double rt) {
      sum += rt;
      ++n;
    });
    app.set_allocations(std::vector<double>(2, 0.8));  // per-replica cap
    app.start();
    sim.run_until(300.0);
    return sum / static_cast<double>(n);
  };
  // 120 clients saturate one 0.8 GHz replica per tier; three replicas triple
  // the tier capacity, so response time collapses.
  EXPECT_GT(mean_rt(1), 2.0 * mean_rt(3));
}

TEST(Replication, BootDelayGatesServing) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(5, 40, 1, /*boot_delay_s=*/30.0));
  app.start();
  sim.run_until(20.0);
  const std::size_t slot = app.scale_out(0);
  EXPECT_EQ(slot, 1u);
  ReplicaSetStatus status = app.replica_status(0);
  EXPECT_EQ(status.target, 2u);
  EXPECT_EQ(status.serving, 1u);
  EXPECT_EQ(status.booting, 1u);
  sim.run_until(45.0);  // boot (20 + 30 = 50) not elapsed yet
  EXPECT_EQ(app.replica_status(0).booting, 1u);
  EXPECT_DOUBLE_EQ(app.replica_work_done_gcycles(0, slot), 0.0);  // serves nothing
  sim.run_until(80.0);
  status = app.replica_status(0);
  EXPECT_EQ(status.serving, 2u);
  EXPECT_EQ(status.booting, 0u);
  EXPECT_GT(app.replica_work_done_gcycles(0, slot), 0.0);
}

TEST(Replication, ScaleInDrainsThenRetires) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(6, 60, 2));
  std::vector<std::pair<std::size_t, std::size_t>> retired;
  app.set_replica_retired_callback(
      [&](std::size_t tier, std::size_t slot) { retired.emplace_back(tier, slot); });
  app.start();
  sim.run_until(50.0);
  const std::size_t victim = app.scale_in(0);
  // Draining (or already retired, if the victim happened to be empty).
  const ReplicaSetStatus status = app.replica_status(0);
  EXPECT_EQ(status.target, 1u);
  sim.run_until(100.0);  // residue completes
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0], (std::pair{std::size_t{0}, victim}));
  EXPECT_FALSE(app.replica_active(0, victim));
  EXPECT_EQ(app.replica_status(0).serving, 1u);
  // The app keeps running on the surviving replica.
  const auto before = app.completed_requests();
  sim.run_until(160.0);
  EXPECT_GT(app.completed_requests(), before);
}

TEST(Replication, ScaleInPrefersBootingVictim) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(8, 40, 1, /*boot_delay_s=*/60.0));
  app.start();
  sim.run_until(10.0);
  const std::size_t slot = app.scale_out(0);
  const std::size_t victim = app.scale_in(0);  // cancels the boot, immediately
  EXPECT_EQ(victim, slot);
  EXPECT_FALSE(app.replica_active(0, slot));
  const ReplicaSetStatus status = app.replica_status(0);
  EXPECT_EQ(status.target, 1u);
  EXPECT_EQ(status.booting, 0u);
  EXPECT_EQ(status.draining, 0u);
  sim.run_until(200.0);  // the cancelled boot event must never fire
  EXPECT_FALSE(app.replica_active(0, slot));
}

TEST(Replication, ScaleInBelowOneThrows) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(9, 10, 1));
  EXPECT_THROW(app.scale_in(0), std::logic_error);
}

TEST(Replication, ScaleOutBeyondMaxThrows) {
  sim::Simulation sim;
  AppConfig config = replicated_app(10, 10, 1);
  config.tiers[0].max_replicas = 2;
  MultiTierApp app(sim, config);
  app.scale_out(0);
  EXPECT_THROW(app.scale_out(0), std::logic_error);
}

TEST(Replication, RetiredSlotsReusedLowestFirst) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(11, 20, 1, /*boot_delay_s=*/0.0));
  app.start();
  sim.run_until(10.0);
  const std::size_t first = app.scale_out(0);
  EXPECT_EQ(first, 1u);
  app.scale_in(0);
  sim.run_until(60.0);  // drains, slot 1 frees
  ASSERT_FALSE(app.replica_active(0, 1));
  const std::size_t reused = app.scale_out(0);
  EXPECT_EQ(reused, 1u);  // lowest free slot, not a new one
  EXPECT_EQ(app.replica_slots(0), 2u);
}

TEST(Replication, SetReplicasDrivesTarget) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(12, 30, 1));
  app.start();
  sim.run_until(10.0);
  app.set_replicas(1, 3);
  EXPECT_EQ(app.replica_status(1).target, 3u);
  EXPECT_EQ(app.scale_out_count(), 2u);
  app.set_replicas(1, 1);
  EXPECT_EQ(app.replica_status(1).target, 1u);
  EXPECT_EQ(app.scale_in_count(), 2u);
}

TEST(Replication, RequestConservationAcrossChurn) {
  sim::Simulation sim;
  MultiTierApp app(sim, replicated_app(13, 80, 2));
  app.start();
  // Alternate scale-out and scale-in under load; the per-replica job maps,
  // tier resident counters, and request table must stay consistent (the
  // VDC_CHECKS audits fire on every scaling event in checked builds).
  for (int round = 1; round <= 6; ++round) {
    sim.run_until(30.0 * round);
    if (round % 2 == 1) {
      app.scale_out(round % 2);
      app.scale_out(1 - round % 2);
    } else if (app.replica_status(0).target > 1) {
      app.scale_in(0);
      app.scale_in(1);
    }
  }
  // Quiesce: retire the client population and let residue drain.
  app.set_concurrency(0);
  sim.drain_until(2000.0);
  EXPECT_EQ(app.requests_in_flight(), 0u);
  EXPECT_EQ(app.issued_requests(), app.completed_requests());
  std::size_t outstanding = 0;
  for (std::size_t j = 0; j < app.tier_count(); ++j) {
    for (std::size_t r = 0; r < app.replica_slots(j); ++r) {
      outstanding += app.replica_outstanding(j, r);
    }
  }
  EXPECT_EQ(outstanding, 0u);
}

TEST(Replication, ScalingMachineryDoesNotPerturbSingleServingReplica) {
  // The equivalence contract: an app where a second replica boots and is
  // cancelled before ever serving completes the exact same requests at the
  // exact same times as one that never scaled. (The dispatcher only draws
  // from its tie-break RNG with >= 2 serving replicas, and the workload
  // stream is a separate RNG.)
  const auto run = [](bool churn) {
    sim::Simulation sim;
    MultiTierApp app(sim, replicated_app(14, 25, 1, /*boot_delay_s=*/50.0));
    std::vector<double> completions;
    app.set_response_callback([&](double t, double) { completions.push_back(t); });
    app.start();
    if (churn) {
      sim.run_until(40.0);
      app.scale_out(0);  // boots at t = 90
      app.scale_out(1);
      sim.run_until(60.0);
      app.scale_in(0);  // cancelled while still booting
      app.scale_in(1);
    }
    sim.run_until(300.0);
    return completions;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace vdc::app
