// Fuzz tests: WorkingPlacement against a straightforward reference
// implementation under random operation sequences, and full
// plan/apply_plan consistency against a live cluster.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "consolidate/working_placement.hpp"
#include "datacenter/cluster.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

datacenter::Cluster random_cluster(util::Rng& rng, std::size_t servers, std::size_t vms) {
  datacenter::Cluster c;
  for (std::size_t s = 0; s < servers; ++s) {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        c.add_server(datacenter::Server(datacenter::quad_core_3ghz(),
                                        datacenter::power_model_quad_3ghz(), 32768.0));
        break;
      case 1:
        c.add_server(datacenter::Server(datacenter::dual_core_2ghz(),
                                        datacenter::power_model_dual_2ghz(), 16384.0));
        break;
      default:
        c.add_server(datacenter::Server(datacenter::dual_core_1_5ghz(),
                                        datacenter::power_model_dual_1_5ghz(), 12288.0));
        break;
    }
  }
  for (std::size_t v = 0; v < vms; ++v) {
    datacenter::Vm vm;
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.2);
    vm.memory_mb = rng.uniform(256.0, 2048.0);
    if (rng.bernoulli(0.7)) {
      c.add_vm(vm, static_cast<datacenter::ServerId>(rng.index(servers)));
    } else {
      c.add_vm(vm);  // unplaced
    }
  }
  return c;
}

class PlacementFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PlacementFuzz, MatchesReferenceUnderRandomOps) {
  util::Rng rng(static_cast<std::uint64_t>(5000 + GetParam()));
  const std::size_t servers = 6;
  const std::size_t vms = 20;
  const datacenter::Cluster cluster = random_cluster(rng, servers, vms);
  const DataCenterSnapshot snap = snapshot_of(cluster);
  WorkingPlacement wp(snap);

  // Reference: plain map VM -> host.
  std::map<VmId, ServerId> reference;
  for (const ServerSnapshot& server : snap.servers) {
    for (const VmId vm : server.hosted) reference[vm] = server.id;
  }

  for (int op = 0; op < 300; ++op) {
    const auto vm = static_cast<VmId>(rng.index(vms));
    const auto it = reference.find(vm);
    if (it != reference.end()) {
      wp.remove(vm);
      reference.erase(it);
    } else {
      const auto host = static_cast<ServerId>(rng.index(servers));
      wp.place(vm, host);
      reference[vm] = host;
    }

    // Spot-check invariants after every operation.
    for (VmId v = 0; v < vms; ++v) {
      const auto ref_it = reference.find(v);
      EXPECT_EQ(wp.host_of(v),
                ref_it == reference.end() ? datacenter::kNoServer : ref_it->second);
    }
    for (ServerId s = 0; s < servers; ++s) {
      double demand = 0.0;
      double memory = 0.0;
      std::size_t count = 0;
      for (const auto& [v, host] : reference) {
        if (host == s) {
          demand += snap.vm(v).cpu_demand_ghz;
          memory += snap.vm(v).memory_mb;
          ++count;
        }
      }
      EXPECT_NEAR(wp.cpu_demand_ghz(s), demand, 1e-9);
      EXPECT_NEAR(wp.memory_used_mb(s), memory, 1e-9);
      EXPECT_EQ(wp.hosted(s).size(), count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementFuzz, ::testing::Range(0, 8));

class PlanApplyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PlanApplyFuzz, ApplyPlanReproducesWorkingPlacement) {
  util::Rng rng(static_cast<std::uint64_t>(6000 + GetParam()));
  const std::size_t servers = 5;
  const std::size_t vms = 15;
  datacenter::Cluster cluster = random_cluster(rng, servers, vms);
  const DataCenterSnapshot snap = snapshot_of(cluster);
  WorkingPlacement wp(snap);

  // Random shuffle: move some placed VMs, place some unplaced ones.
  for (VmId v = 0; v < vms; ++v) {
    if (wp.host_of(v) != datacenter::kNoServer && rng.bernoulli(0.5)) wp.remove(v);
  }
  for (VmId v = 0; v < vms; ++v) {
    if (wp.host_of(v) == datacenter::kNoServer && rng.bernoulli(0.8)) {
      wp.place(v, static_cast<ServerId>(rng.index(servers)));
    }
  }

  apply_plan(cluster, wp.plan(), 1.0);
  for (VmId v = 0; v < vms; ++v) {
    if (wp.host_of(v) != datacenter::kNoServer) {
      EXPECT_EQ(cluster.host_of(v), wp.host_of(v)) << "vm " << v;
    }
  }
  // Every emptied-but-awake server must now sleep.
  for (ServerId s = 0; s < servers; ++s) {
    if (cluster.vms_on(s).empty()) {
      EXPECT_FALSE(cluster.server(s).active()) << "server " << s;
    } else {
      EXPECT_TRUE(cluster.server(s).active()) << "server " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanApplyFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace vdc::consolidate
