// Fuzz test: interleaved append/query/evict traffic against a naive
// vector-backed model of the tiered store. The model keeps every accepted
// sample and recomputes retention, rollups, and tier selection from first
// principles on each query; the engine must match it exactly — raw samples
// byte-for-byte, rollup statistics bit-for-bit (same Welford order, same
// type-7 quantile), including queries that straddle page and tier-window
// boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace vdc::telemetry::tsdb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Everything the naive model needs to predict the engine's behavior.
struct NaiveModel {
  TsdbConfig config;
  std::vector<RawSample> accepted;  // every accepted sample, in order

  /// Raw samples the engine still retains: page arithmetic from the front.
  [[nodiscard]] std::vector<RawSample> retained_raw() const {
    if (config.tier0_max_pages == 0) return accepted;
    const std::size_t total_pages =
        (accepted.size() + config.page_samples - 1) / config.page_samples;
    const std::size_t live_pages = std::min(config.tier0_max_pages, total_pages);
    const std::size_t first = (total_pages - live_pages) * config.page_samples;
    return {accepted.begin() + static_cast<std::ptrdiff_t>(first), accepted.end()};
  }

  [[nodiscard]] std::vector<RawSample> raw(double t0, double t1) const {
    std::vector<RawSample> out;
    for (const RawSample& s : retained_raw()) {
      if (s.time_s >= t0 && s.time_s < t1) out.push_back(s);
    }
    return out;
  }

  /// All windows of a tier in time order, the last being still open.
  [[nodiscard]] std::vector<RollupPoint> all_windows(Tier tier) const {
    const double period =
        tier == Tier::kPeriod ? config.tier1_period_s : config.tier2_period_s;
    std::map<std::int64_t, std::vector<double>> groups;
    for (const RawSample& s : accepted) {
      groups[static_cast<std::int64_t>(std::floor(s.time_s / period))].push_back(s.value);
    }
    std::vector<RollupPoint> out;
    for (const auto& [w, values] : groups) {
      util::RunningStats rs;
      for (double v : values) rs.add(v);
      RollupPoint p;
      p.start_s = static_cast<double>(w) * period;
      p.count = rs.count();
      p.min = rs.min();
      p.max = rs.max();
      p.mean = rs.mean();
      p.p90 = util::quantile(values, config.quantile);
      out.push_back(p);
    }
    return out;
  }

  /// Windows the engine still retains: the open (last) window plus the
  /// last `retention` finalized ones.
  [[nodiscard]] std::vector<RollupPoint> retained_windows(Tier tier) const {
    std::vector<RollupPoint> all = all_windows(tier);
    if (all.empty()) return all;
    const std::size_t retention = tier == Tier::kPeriod ? config.tier1_retention_points
                                                        : config.tier2_retention_points;
    const std::size_t finalized = all.size() - 1;
    if (retention == 0 || finalized <= retention) return all;
    return {all.begin() + static_cast<std::ptrdiff_t>(finalized - retention), all.end()};
  }

  [[nodiscard]] std::vector<RollupPoint> rollups(Tier tier, double t0, double t1) const {
    const double period =
        tier == Tier::kPeriod ? config.tier1_period_s : config.tier2_period_s;
    std::vector<RollupPoint> out;
    for (const RollupPoint& p : retained_windows(tier)) {
      if (p.start_s < t1 && p.start_s + period > t0) out.push_back(p);
    }
    return out;
  }

  /// kAuto's tier choice: finest tier whose retained data covers t0.
  [[nodiscard]] Tier auto_tier(double t0) const {
    const std::vector<RawSample> raw_kept = retained_raw();
    if (raw_kept.size() == accepted.size()) return Tier::kRaw;
    if (!raw_kept.empty() && raw_kept.front().time_s <= t0) return Tier::kRaw;
    for (const Tier tier : {Tier::kPeriod, Tier::kHourly}) {
      const std::vector<RollupPoint> all = all_windows(tier);
      const std::vector<RollupPoint> kept = retained_windows(tier);
      if (kept.size() == all.size()) return tier;
      if (!kept.empty() && kept.front().start_s <= t0) return tier;
    }
    return Tier::kHourly;
  }
};

void expect_same_points(const std::vector<RollupPoint>& got,
                        const std::vector<RollupPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start_s, want[i].start_s) << "point " << i;
    EXPECT_EQ(got[i].count, want[i].count) << "point " << i;
    EXPECT_EQ(got[i].min, want[i].min) << "point " << i;
    EXPECT_EQ(got[i].max, want[i].max) << "point " << i;
    EXPECT_EQ(got[i].mean, want[i].mean) << "point " << i;
    EXPECT_EQ(got[i].p90, want[i].p90) << "point " << i;
  }
}

class TsdbFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TsdbFuzz, MatchesNaiveVectorModel) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

  // Tiny tiers so eviction and window turnover happen constantly.
  TsdbConfig config;
  config.page_samples = static_cast<std::size_t>(rng.uniform_int(2, 5));
  config.tier0_max_pages = static_cast<std::size_t>(rng.uniform_int(0, 4));
  config.tier1_period_s = rng.uniform(1.0, 3.0);
  config.tier1_retention_points = static_cast<std::size_t>(rng.uniform_int(0, 6));
  config.tier2_period_s = config.tier1_period_s * 4.0;
  config.tier2_retention_points = static_cast<std::size_t>(rng.uniform_int(0, 3));

  Tsdb db(config);
  const MetricId id = db.declare("fuzz");
  NaiveModel model{config, {}};

  double t = 0.0;
  std::size_t expected_ooo = 0;
  std::size_t expected_nan = 0;
  for (int op = 0; op < 600; ++op) {
    const std::int64_t kind = rng.uniform_int(0, 9);
    if (kind < 6) {  // append (occasionally out of order or NaN)
      double sample_t = t + rng.uniform(0.0, 1.5);
      if (rng.bernoulli(0.08)) sample_t = t - rng.uniform(0.1, 2.0);
      // Out-of-order is relative to the last *accepted* sample; before the
      // first acceptance any timestamp is in order.
      const bool ok =
          model.accepted.empty() || sample_t >= model.accepted.back().time_s;
      double value = rng.uniform(-5.0, 5.0);
      if (rng.bernoulli(0.05)) {
        value = std::numeric_limits<double>::quiet_NaN();
        ++expected_nan;
        EXPECT_FALSE(db.append(id, sample_t, value));
        continue;
      }
      EXPECT_EQ(db.append(id, sample_t, value), ok);
      if (ok) {
        t = sample_t;
        model.accepted.push_back(RawSample{sample_t, value});
      } else {
        ++expected_ooo;
      }
    } else if (kind < 8) {  // raw range query (boundary-straddling ranges)
      const double t0 = rng.bernoulli(0.2) ? -kInf : rng.uniform(-1.0, t + 2.0);
      const double t1 = rng.bernoulli(0.2) ? kInf : t0 + rng.uniform(0.0, t + 2.0);
      EXPECT_EQ(db.raw(id, t0, t1), model.raw(t0, t1));
    } else if (kind == 8) {  // rollup query on a random tier
      const Tier tier = rng.bernoulli(0.5) ? Tier::kPeriod : Tier::kHourly;
      // Bias ranges toward tier-window boundaries to straddle them.
      const double period =
          tier == Tier::kPeriod ? config.tier1_period_s : config.tier2_period_s;
      const double edge =
          std::floor(rng.uniform(0.0, t + period) / period) * period;
      const double t0 = edge + rng.uniform(-0.5, 0.5) * period;
      const double t1 = t0 + rng.uniform(0.0, 3.0) * period;
      expect_same_points(db.rollups(id, tier, t0, t1), model.rollups(tier, t0, t1));
    } else {  // kAuto query: tier choice + payload must both match
      const double t0 = rng.uniform(-1.0, t + 1.0);
      const QueryResult got = db.query(id, t0, kInf);
      const Tier want_tier = model.auto_tier(t0);
      EXPECT_EQ(got.tier, want_tier);
      if (want_tier == Tier::kRaw) {
        EXPECT_EQ(got.raw, model.raw(t0, kInf));
      } else {
        expect_same_points(got.rollups, model.rollups(want_tier, t0, kInf));
      }
    }
  }

  EXPECT_EQ(db.samples_appended(id), model.accepted.size());
  EXPECT_EQ(db.rejected_out_of_order(id), expected_ooo);
  EXPECT_EQ(db.rejected_nan(id), expected_nan);
  // Final full sweep over every access path.
  EXPECT_EQ(db.raw(id, -kInf, kInf), model.raw(-kInf, kInf));
  for (const Tier tier : {Tier::kPeriod, Tier::kHourly}) {
    expect_same_points(db.rollups(id, tier, -kInf, kInf), model.rollups(tier, -kInf, kInf));
  }
  if (config.tier0_max_pages > 0) {
    EXPECT_LE(db.pages_live(id), config.tier0_max_pages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsdbFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace vdc::telemetry::tsdb
