#include <gtest/gtest.h>

#include "datacenter/arbitrator.hpp"
#include "datacenter/cpu_spec.hpp"
#include "datacenter/power_model.hpp"
#include "datacenter/server.hpp"

namespace vdc::datacenter {
namespace {

TEST(CpuSpec, CapacityScalesWithCores) {
  const CpuSpec quad = quad_core_3ghz();
  EXPECT_DOUBLE_EQ(quad.max_capacity_ghz(), 12.0);
  EXPECT_DOUBLE_EQ(quad.capacity_at_ghz(1.5), 6.0);
  EXPECT_NO_THROW(quad.validate());
}

TEST(CpuSpec, FrequencyForDemandPicksLowestSufficient) {
  const CpuSpec dual = dual_core_2ghz();  // ladder 1.0 .. 2.0, capacity x2
  EXPECT_DOUBLE_EQ(dual.frequency_for_demand_ghz(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dual.frequency_for_demand_ghz(2.0), 1.0);
  EXPECT_DOUBLE_EQ(dual.frequency_for_demand_ghz(2.5), 1.4);
  EXPECT_DOUBLE_EQ(dual.frequency_for_demand_ghz(3.9), 2.0);
  // Demand above max capacity still returns the max frequency.
  EXPECT_DOUBLE_EQ(dual.frequency_for_demand_ghz(100.0), 2.0);
}

TEST(CpuSpec, ValidateCatchesBadLadders) {
  CpuSpec spec = dual_core_2ghz();
  spec.dvfs_freqs_ghz = {2.0, 1.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.dvfs_freqs_ghz = {1.0, 1.5};
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // must end at max
  spec.dvfs_freqs_ghz.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = dual_core_2ghz();
  spec.cores = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(PowerModel, MonotoneInFrequencyAndLoad) {
  const PowerModel pm = power_model_quad_3ghz();
  EXPECT_NO_THROW(pm.validate());
  EXPECT_LT(pm.active_power_w(0.5, 0.5), pm.active_power_w(1.0, 0.5));
  EXPECT_LT(pm.active_power_w(1.0, 0.2), pm.active_power_w(1.0, 0.9));
  EXPECT_DOUBLE_EQ(pm.active_power_w(1.0, 1.0), pm.max_power_w());
}

TEST(PowerModel, DvfsSavesSuperlinearly) {
  const PowerModel pm = power_model_dual_2ghz();
  // Same work at half frequency and double utilization must cost less
  // (dynamic power scales with f^3 but only linearly with u).
  const double full_speed = pm.active_power_w(1.0, 0.4);
  const double half_speed = pm.active_power_w(0.5, 0.8);
  EXPECT_LT(half_speed, full_speed);
}

TEST(PowerModel, ClampsInputs) {
  const PowerModel pm = power_model_dual_1_5ghz();
  EXPECT_DOUBLE_EQ(pm.active_power_w(2.0, 2.0), pm.max_power_w());
  EXPECT_DOUBLE_EQ(pm.active_power_w(-1.0, -1.0), pm.base_w);
}

TEST(PowerModel, ValidationRejectsNonPhysical) {
  PowerModel pm = power_model_quad_3ghz();
  pm.sleep_w = pm.base_w + 1.0;
  EXPECT_THROW(pm.validate(), std::invalid_argument);
  pm = power_model_quad_3ghz();
  pm.base_w = -5.0;
  EXPECT_THROW(pm.validate(), std::invalid_argument);
  pm = power_model_quad_3ghz();
  pm.dyn_exponent = 7.0;
  EXPECT_THROW(pm.validate(), std::invalid_argument);
}

TEST(Server, SleepDropsCapacityAndPower) {
  Server s(dual_core_2ghz(), power_model_dual_2ghz(), 8192.0);
  EXPECT_TRUE(s.active());
  EXPECT_DOUBLE_EQ(s.capacity_ghz(), 4.0);
  s.set_state(ServerState::kSleeping);
  EXPECT_DOUBLE_EQ(s.capacity_ghz(), 0.0);
  EXPECT_DOUBLE_EQ(s.power_w(1.0), power_model_dual_2ghz().sleep_w);
  s.set_state(ServerState::kActive);
  EXPECT_GT(s.capacity_ghz(), 0.0);
}

TEST(Server, FrequencySnapsUpToLadder) {
  Server s(dual_core_2ghz(), power_model_dual_2ghz(), 8192.0);
  s.set_frequency(1.25);
  EXPECT_DOUBLE_EQ(s.frequency_ghz(), 1.4);
  s.set_frequency(0.1);
  EXPECT_DOUBLE_EQ(s.frequency_ghz(), 1.0);
  s.set_frequency(5.0);
  EXPECT_DOUBLE_EQ(s.frequency_ghz(), 2.0);
}

TEST(Server, PowerEfficiencyMetric) {
  const Server quad(quad_core_3ghz(), power_model_quad_3ghz(), 32768.0);
  const Server dual(dual_core_2ghz(), power_model_dual_2ghz(), 16384.0);
  const Server old(dual_core_1_5ghz(), power_model_dual_1_5ghz(), 12288.0);
  EXPECT_GT(quad.power_efficiency_ghz_per_w(), dual.power_efficiency_ghz_per_w());
  EXPECT_GT(dual.power_efficiency_ghz_per_w(), old.power_efficiency_ghz_per_w());
}

TEST(Server, RejectsNonPositiveMemory) {
  EXPECT_THROW(Server(dual_core_2ghz(), power_model_dual_2ghz(), 0.0), std::invalid_argument);
}

TEST(Arbitrator, PicksLowestSufficientFrequency) {
  const CpuResourceArbitrator arb(1.0);
  const std::vector<double> demands = {0.8, 0.9};  // total 1.7
  const ArbitrationResult r = arb.arbitrate(dual_core_2ghz(), demands);
  EXPECT_DOUBLE_EQ(r.frequency_ghz, 1.0);  // 2 GHz capacity covers 1.7
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.allocations_ghz, demands);  // grants equal demands
  EXPECT_NEAR(r.utilization(), 1.7 / 2.0, 1e-12);
}

TEST(Arbitrator, HeadroomRaisesFrequency) {
  const CpuResourceArbitrator arb(1.3);
  const ArbitrationResult r = arb.arbitrate(dual_core_2ghz(), std::vector<double>{1.7});
  // 1.7 * 1.3 = 2.21 > 2.0 -> needs the 1.2 GHz point (2.4 capacity).
  EXPECT_DOUBLE_EQ(r.frequency_ghz, 1.2);
}

TEST(Arbitrator, SaturationScalesProportionally) {
  const CpuResourceArbitrator arb(1.0);
  const std::vector<double> demands = {4.0, 2.0};  // total 6 > 4 GHz max
  const ArbitrationResult r = arb.arbitrate(dual_core_2ghz(), demands);
  EXPECT_TRUE(r.saturated);
  EXPECT_DOUBLE_EQ(r.frequency_ghz, 2.0);
  EXPECT_NEAR(r.allocations_ghz[0], 4.0 * 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(r.allocations_ghz[1], 2.0 * 4.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST(Arbitrator, ValidatesInput) {
  EXPECT_THROW(CpuResourceArbitrator(0.5), std::invalid_argument);
  const CpuResourceArbitrator arb(1.0);
  EXPECT_THROW(arb.arbitrate(dual_core_2ghz(), std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Arbitrator, EmptyDemandsIdleAtMinFrequency) {
  const CpuResourceArbitrator arb(1.0);
  const ArbitrationResult r = arb.arbitrate(dual_core_2ghz(), {});
  EXPECT_DOUBLE_EQ(r.frequency_ghz, 1.0);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
}

}  // namespace
}  // namespace vdc::datacenter
