#include "sim/ps_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdc::sim {
namespace {

struct Completions {
  std::vector<JobId> ids;
  std::vector<double> times;
};

TEST(PsQueue, SingleJobCompletesAtDemandOverCapacity) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 2.0, [&](JobId id) {
    done.ids.push_back(id);
    done.times.push_back(sim.now());
  });
  q.add_job(1.0);  // 1 Gcycle at 2 GHz -> 0.5 s
  sim.run();
  ASSERT_EQ(done.ids.size(), 1u);
  EXPECT_NEAR(done.times[0], 0.5, 1e-9);
}

TEST(PsQueue, TwoEqualJobsShareCapacity) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 1.0, [&](JobId) { done.times.push_back(sim.now()); });
  q.add_job(1.0);
  q.add_job(1.0);
  sim.run();
  ASSERT_EQ(done.times.size(), 2u);
  // Both receive 0.5 GHz until both finish at t = 2.
  EXPECT_NEAR(done.times[0], 2.0, 1e-9);
  EXPECT_NEAR(done.times[1], 2.0, 1e-9);
}

TEST(PsQueue, UnequalJobsFinishInDemandOrder) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 1.0, [&](JobId id) {
    done.ids.push_back(id);
    done.times.push_back(sim.now());
  });
  const JobId small = q.add_job(0.5);
  const JobId large = q.add_job(1.5);
  sim.run();
  ASSERT_EQ(done.ids.size(), 2u);
  EXPECT_EQ(done.ids[0], small);
  EXPECT_EQ(done.ids[1], large);
  // Shared until small finishes at t=1 (each got 0.5); large has 1.0 left,
  // then runs alone: finishes at t=2.
  EXPECT_NEAR(done.times[0], 1.0, 1e-9);
  EXPECT_NEAR(done.times[1], 2.0, 1e-9);
}

TEST(PsQueue, LateArrivalSharesRemainingWork) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 1.0, [&](JobId id) {
    done.ids.push_back(id);
    done.times.push_back(sim.now());
  });
  const JobId first = q.add_job(1.0);
  sim.schedule(0.5, [&] { q.add_job(1.0); });
  sim.run();
  ASSERT_EQ(done.ids.size(), 2u);
  EXPECT_EQ(done.ids[0], first);
  // First: 0.5 done alone, then shares: remaining 0.5 at rate 0.5 -> t=1.5.
  EXPECT_NEAR(done.times[0], 1.5, 1e-9);
  // Second: got 0.5 by t=1.5, then alone for 0.5 -> t=2.0.
  EXPECT_NEAR(done.times[1], 2.0, 1e-9);
}

TEST(PsQueue, CapacityChangePreservesWork) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 1.0, [&](JobId) { done.times.push_back(sim.now()); });
  q.add_job(2.0);
  sim.schedule(1.0, [&] { q.set_capacity(2.0); });  // halfway through
  sim.run();
  ASSERT_EQ(done.times.size(), 1u);
  // 1 Gcycle done at t=1; remaining 1 Gcycle at 2 GHz -> +0.5 s.
  EXPECT_NEAR(done.times[0], 1.5, 1e-9);
}

TEST(PsQueue, ZeroCapacityStallsUntilRestored) {
  Simulation sim;
  Completions done;
  PsQueue q(sim, 0.0, [&](JobId) { done.times.push_back(sim.now()); });
  q.add_job(1.0);
  sim.schedule(3.0, [&] { q.set_capacity(1.0); });
  sim.run();
  ASSERT_EQ(done.times.size(), 1u);
  EXPECT_NEAR(done.times[0], 4.0, 1e-9);
}

// Regression: sync() used to add elapsed time to busy_time_s_ BEFORE the
// capacity <= 0 early-return, so a starved queue (jobs resident, zero CPU)
// read as 100% busy. Stalled intervals must accrue to stalled_time_s() only.
TEST(PsQueue, StalledIntervalIsNotBusyTime) {
  Simulation sim;
  PsQueue q(sim, 0.0, [](JobId) {});
  q.add_job(1.0);
  sim.schedule(3.0, [&] { q.set_capacity(1.0); });
  sim.run();
  // [0, 3] stalled at zero capacity, [3, 4] actually serving.
  EXPECT_NEAR(q.stalled_time_s(), 3.0, 1e-12);
  EXPECT_NEAR(q.busy_time_s(), 1.0, 1e-12);
}

TEST(PsQueue, StallAfterPartialServiceSplitsAccounting) {
  Simulation sim;
  PsQueue q(sim, 2.0, [](JobId) {});
  q.add_job(4.0);                                    // would finish at t=2
  sim.schedule(1.0, [&] { q.set_capacity(0.0); });   // starve halfway
  sim.schedule(5.0, [&] { q.set_capacity(2.0); });   // resume, +1 s to finish
  sim.run();
  EXPECT_NEAR(q.busy_time_s(), 2.0, 1e-12);
  EXPECT_NEAR(q.stalled_time_s(), 4.0, 1e-12);
  EXPECT_NEAR(q.work_done_gcycles(), 4.0, 1e-12);
}

TEST(PsQueue, RemoveJobReturnsResidualWork) {
  Simulation sim;
  PsQueue q(sim, 1.0, [](JobId) {});
  const JobId id = q.add_job(2.0);
  sim.schedule(1.0, [&] {
    const double remaining = q.remove_job(id);
    EXPECT_NEAR(remaining, 1.0, 1e-9);
  });
  sim.run();
  EXPECT_EQ(q.jobs_in_service(), 0u);
  EXPECT_LT(q.remove_job(id), 0.0);  // unknown job
}

TEST(PsQueue, WorkDoneIsConserved) {
  Simulation sim;
  PsQueue q(sim, 1.5, [](JobId) {});
  q.add_job(1.0);
  q.add_job(0.5);
  q.add_job(0.25);
  sim.run();
  EXPECT_NEAR(q.work_done_gcycles(), 1.75, 1e-9);
}

TEST(PsQueue, BusyTimeTracksOccupancy) {
  Simulation sim;
  PsQueue q(sim, 1.0, [](JobId) {});
  q.add_job(1.0);  // busy [0, 1]
  sim.schedule(5.0, [&] { q.add_job(2.0); });  // busy [5, 7]
  sim.run();
  EXPECT_NEAR(q.busy_time_s(), 3.0, 1e-9);
}

TEST(PsQueue, RejectsInvalidArguments) {
  Simulation sim;
  EXPECT_THROW(PsQueue(sim, -1.0, nullptr), std::invalid_argument);
  PsQueue q(sim, 1.0, [](JobId) {});
  EXPECT_THROW(q.add_job(0.0), std::invalid_argument);
  EXPECT_THROW(q.add_job(-1.0), std::invalid_argument);
  EXPECT_THROW(q.set_capacity(-2.0), std::invalid_argument);
}

class PsQueueFairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(PsQueueFairnessSweep, NEqualJobsFinishTogetherAtNTimesDemand) {
  const int n = GetParam();
  Simulation sim;
  std::vector<double> times;
  PsQueue q(sim, 2.0, [&](JobId) { times.push_back(sim.now()); });
  for (int i = 0; i < n; ++i) q.add_job(1.0);
  sim.run();
  ASSERT_EQ(times.size(), static_cast<std::size_t>(n));
  // Processor sharing: n equal jobs all finish at n * (demand / capacity).
  for (const double t : times) EXPECT_NEAR(t, n * 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PsQueueFairnessSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace vdc::sim
