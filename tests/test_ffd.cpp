#include "consolidate/ffd.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vdc::consolidate {
namespace {

DataCenterSnapshot make_instance(std::vector<double> capacities,
                                 std::vector<double> demands,
                                 std::vector<double> efficiencies = {}) {
  DataCenterSnapshot snap;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = capacities[i];
    s.memory_mb = 1e6;
    s.max_power_w = 200.0;
    s.power_efficiency_ghz_per_w =
        efficiencies.empty() ? capacities[i] / 200.0 : efficiencies[i];
    s.active = true;
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    snap.vms.push_back(VmSnapshot{static_cast<VmId>(i), demands[i], 1.0});
  }
  return snap;
}

TEST(Ffd, PlacesLargestFirst) {
  const DataCenterSnapshot snap = make_instance({4.0}, {1.0, 3.0, 2.0});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const ServerId servers[] = {0};
  const std::vector<VmId> vms = {0, 1, 2};
  const FfdResult r = first_fit_decreasing(wp, servers, vms, constraints);
  // Largest (VM 1, 3.0) then VM 2 (2.0) does not fit... capacity 4: 3+1=4.
  EXPECT_EQ(r.placed.size(), 2u);
  EXPECT_EQ(r.unplaced, (std::vector<VmId>{2}));
  EXPECT_DOUBLE_EQ(wp.cpu_demand_ghz(0), 4.0);
}

TEST(Ffd, WalksServersInGivenOrder) {
  const DataCenterSnapshot snap = make_instance({2.0, 2.0}, {1.5, 1.5});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const ServerId servers[] = {1, 0};  // reversed preference
  const std::vector<VmId> vms = {0, 1};
  (void)first_fit_decreasing(wp, servers, vms, constraints);
  EXPECT_EQ(wp.hosted(1).size(), 1u);  // first VM lands on server 1
  EXPECT_EQ(wp.hosted(0).size(), 1u);
}

TEST(Ffd, AllUnplacedWhenNothingFits) {
  const DataCenterSnapshot snap = make_instance({1.0}, {2.0, 3.0});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const ServerId servers[] = {0};
  const std::vector<VmId> vms = {0, 1};
  const FfdResult r = first_fit_decreasing(wp, servers, vms, constraints);
  EXPECT_TRUE(r.placed.empty());
  EXPECT_EQ(r.unplaced.size(), 2u);
}

TEST(Ffd, TieBreaksById) {
  const DataCenterSnapshot snap = make_instance({1.0}, {0.5, 0.5, 0.5});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const ServerId servers[] = {0};
  const std::vector<VmId> vms = {2, 0, 1};
  const FfdResult r = first_fit_decreasing(wp, servers, vms, constraints);
  // Equal demands: deterministic id order, ids 0 and 1 placed.
  EXPECT_EQ(r.placed, (std::vector<VmId>{0, 1}));
}

TEST(ServersByPowerEfficiency, SortsDescendingWithIdTieBreak) {
  const DataCenterSnapshot snap =
      make_instance({1.0, 1.0, 1.0}, {}, {0.02, 0.04, 0.02});
  const std::vector<ServerId> order = servers_by_power_efficiency(snap);
  EXPECT_EQ(order, (std::vector<ServerId>{1, 0, 2}));
}

}  // namespace
}  // namespace vdc::consolidate
