#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

Matrix random_spd(std::size_t n, util::Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = b.transpose() * b;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

TEST(Cholesky, FactorReconstructs) {
  util::Rng rng(1);
  const Matrix a = random_spd(5, rng);
  const CholeskyDecomposition chol(a);
  const Matrix l = chol.lower();
  EXPECT_LT((l * l.transpose() - a).max_abs(), 1e-10);
}

TEST(Cholesky, SolveMatchesKnownSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Vector x = CholeskyDecomposition(a).solve(std::vector<double>{8.0, 7.0});
  // Solution of [[4,2],[2,3]] x = [8,7] is x = [1.25, 1.5].
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_THROW(CholeskyDecomposition{a}, std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, LogDeterminant) {
  const Matrix a{{2.0, 0.0}, {0.0, 8.0}};
  EXPECT_NEAR(CholeskyDecomposition(a).log_determinant(), std::log(16.0), 1e-12);
}

class CholeskyRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandomSweep, SolveResidualTiny) {
  util::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 7);
  const Matrix a = random_spd(n, rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-3.0, 3.0);
  const Vector x = CholeskyDecomposition(a).solve(b);
  const Vector ax = a * std::span<const double>(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomSweep, ::testing::Range(0, 10));

TEST(IsSpd, Classification) {
  util::Rng rng(4);
  EXPECT_TRUE(is_spd(random_spd(4, rng)));
  EXPECT_FALSE(is_spd(Matrix{{1.0, 2.0}, {2.0, 1.0}}));   // indefinite
  EXPECT_FALSE(is_spd(Matrix{{1.0, 0.5}, {0.4, 1.0}}));   // asymmetric
  EXPECT_FALSE(is_spd(Matrix(2, 3)));                     // not square
}

}  // namespace
}  // namespace vdc::linalg
