#include "linalg/qp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EqualityQp, UnconstrainedMinimizer) {
  const Matrix h{{2.0, 0.0}, {0.0, 4.0}};
  const std::vector<double> g = {-2.0, -8.0};  // minimizer (1, 2)
  const QpResult r = solve_equality_qp(h, g, Matrix(), {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 2.0, 1e-10);
}

TEST(EqualityQp, ProjectsOntoConstraint) {
  // min 1/2||x||^2 s.t. x1 + x2 = 2 -> (1, 1).
  const Matrix h = Matrix::identity(2);
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  const QpResult r = solve_equality_qp(h, std::vector<double>{0.0, 0.0}, a,
                                       std::vector<double>{2.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 1.0, 1e-10);
  EXPECT_NEAR(r.objective, 1.0, 1e-10);
}

TEST(EqualityQp, DimensionChecks) {
  const Matrix h = Matrix::identity(2);
  EXPECT_THROW(solve_equality_qp(h, std::vector<double>{0.0}, Matrix(), {}),
               std::invalid_argument);
  Matrix a(1, 3);
  EXPECT_THROW(solve_equality_qp(h, std::vector<double>{0.0, 0.0}, a,
                                 std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(InequalityQp, InactiveConstraintsGiveUnconstrainedPoint) {
  const Matrix h = Matrix::identity(2);
  const std::vector<double> g = {-1.0, -1.0};  // minimizer (1,1)
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  const QpResult r = solve_inequality_qp(h, g, m, std::vector<double>{5.0, 5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
}

TEST(InequalityQp, ActiveBoundClamps) {
  // min 1/2||x||^2 - [1,1]x s.t. x <= 0.2 -> (0.2, 0.2).
  const Matrix h = Matrix::identity(2);
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  const QpResult r = solve_inequality_qp(h, std::vector<double>{-1.0, -1.0}, m,
                                         std::vector<double>{0.2, 0.2});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.2, 1e-7);
  EXPECT_NEAR(r.x[1], 0.2, 1e-7);
}

TEST(InequalityQp, RedundantRowsHarmless) {
  const Matrix h = Matrix::identity(2);
  Matrix m(5, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  m(2, 0) = 1.0;  // duplicate of row 0
  m(3, 1) = 1.0;  // duplicate of row 1
  m(4, 0) = 1.0;
  m(4, 1) = 1.0;
  const QpResult r =
      solve_inequality_qp(h, std::vector<double>{-1.0, -1.0}, m,
                          std::vector<double>{0.2, 0.2, 0.2, 0.2, 0.4});
  EXPECT_NEAR(r.x[0], 0.2, 1e-6);
  EXPECT_NEAR(r.x[1], 0.2, 1e-6);
}

TEST(GeneralQp, EqualityPlusActiveInequality) {
  // min 1/2||x||^2 s.t. x1+x2 = 0.8, x1 <= 0.1 -> (0.1, 0.7).
  const Matrix h = Matrix::identity(2);
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  const QpResult r = solve_general_qp(h, std::vector<double>{0.0, 0.0}, a,
                                      std::vector<double>{0.8}, m,
                                      std::vector<double>{0.1, 2.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.1, 1e-6);
  EXPECT_NEAR(r.x[1], 0.7, 1e-6);
}

TEST(GeneralQp, DependentEqualityRowsThrow) {
  const Matrix h = Matrix::identity(3);
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;  // scalar multiple of row 0
  EXPECT_THROW(solve_general_qp(h, std::vector<double>(3, 0.0), a,
                                std::vector<double>{1.0, 2.0}, Matrix(), {}),
               std::runtime_error);
}

TEST(BoxQp, UnconstrainedInteriorSolution) {
  const Matrix h{{2.0, 0.0}, {0.0, 2.0}};
  const std::vector<double> g = {-1.0, 1.0};  // minimizer (0.5, -0.5)
  const QpResult r = solve_box_qp(h, g, std::vector<double>{-1.0, -1.0},
                                  std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-8);
  EXPECT_NEAR(r.x[1], -0.5, 1e-8);
}

TEST(BoxQp, ClampsAtBound) {
  const Matrix h{{2.0, 0.0}, {0.0, 0.1}};
  const std::vector<double> g = {1.0, -3.0};  // unconstrained (-0.5, 30)
  const QpResult r = solve_box_qp(h, g, std::vector<double>{-1.0, -1.0},
                                  std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(r.x[0], -0.5, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(BoxQp, InfiniteBoundsSkipRows) {
  const Matrix h = Matrix::identity(1);
  const QpResult r = solve_box_qp(h, std::vector<double>{-4.0},
                                  std::vector<double>{-kInf}, std::vector<double>{kInf});
  EXPECT_NEAR(r.x[0], 4.0, 1e-10);
}

TEST(BoxQp, EqualityPlusTightBox) {
  // min 1/2||x||^2 s.t. x1+x2 = 1.8, x1 <= 0.5, x2 <= 1.5 -> (0.5, 1.3).
  const Matrix h = Matrix::identity(2);
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  const QpResult r = solve_box_qp(h, std::vector<double>{0.0, 0.0},
                                  std::vector<double>{-kInf, -kInf},
                                  std::vector<double>{0.5, 1.5}, a,
                                  std::vector<double>{1.8});
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
  EXPECT_NEAR(r.x[1], 1.3, 1e-6);
}

TEST(BoxQp, RejectsInvertedBounds) {
  const Matrix h = Matrix::identity(1);
  EXPECT_THROW(solve_box_qp(h, std::vector<double>{0.0}, std::vector<double>{1.0},
                            std::vector<double>{-1.0}),
               std::invalid_argument);
}

class RandomBoxQpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomBoxQpSweep, SatisfiesKktConditions) {
  util::Rng rng(static_cast<std::uint64_t>(400 + GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 4;
  // SPD Hessian.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix h = b.transpose() * b;
  for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.5;
  std::vector<double> g(n);
  for (double& v : g) v = rng.uniform(-2.0, 2.0);
  const std::vector<double> lo(n, -0.4);
  const std::vector<double> hi(n, 0.4);

  const QpResult r = solve_box_qp(h, g, lo, hi);
  ASSERT_TRUE(r.converged);
  // Feasibility.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.x[i], lo[i] - 1e-8);
    EXPECT_LE(r.x[i], hi[i] + 1e-8);
  }
  // Stationarity: for interior coordinates the gradient must vanish; at an
  // active bound the gradient must point outward.
  const Vector hx = h * std::span<const double>(r.x);
  for (std::size_t i = 0; i < n; ++i) {
    const double grad = hx[i] + g[i];
    if (r.x[i] > lo[i] + 1e-6 && r.x[i] < hi[i] - 1e-6) {
      EXPECT_NEAR(grad, 0.0, 1e-5) << "interior coordinate " << i;
    } else if (r.x[i] <= lo[i] + 1e-6) {
      EXPECT_GE(grad, -1e-5) << "lower-bound coordinate " << i;
    } else {
      EXPECT_LE(grad, 1e-5) << "upper-bound coordinate " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBoxQpSweep, ::testing::Range(0, 16));

class RandomGeneralQpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomGeneralQpSweep, SatisfiesKktWithEqualityAndBoxConstraints) {
  util::Rng rng(static_cast<std::uint64_t>(800 + GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 4;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix h = b.transpose() * b;
  for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.5;
  std::vector<double> g(n);
  for (double& v : g) v = rng.uniform(-2.0, 2.0);

  // One equality row through a feasible interior point.
  Matrix a(1, n);
  for (std::size_t j = 0; j < n; ++j) a(0, j) = rng.uniform(0.5, 1.5);
  std::vector<double> interior(n);
  for (double& v : interior) v = rng.uniform(-0.2, 0.2);
  const Vector ax = a * std::span<const double>(interior);
  const std::vector<double> rhs = {ax[0]};
  const std::vector<double> lo(n, -0.5);
  const std::vector<double> hi(n, 0.5);

  const QpResult r = solve_box_qp(h, g, lo, hi, a, rhs);
  ASSERT_TRUE(r.converged);
  // Feasibility: equality within tolerance, bounds exactly.
  const Vector axr = a * std::span<const double>(r.x);
  EXPECT_NEAR(axr[0], rhs[0], 1e-5);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.x[i], lo[i] - 1e-8);
    EXPECT_LE(r.x[i], hi[i] + 1e-8);
  }
  // Optimality: the objective cannot be improved by feasible perturbations
  // inside the null space of A and the inactive box region.
  const double f0 = qp_objective(h, g, r.x);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<double> direction(n);
    for (double& v : direction) v = rng.uniform(-1.0, 1.0);
    // Project onto null(A).
    const Vector ad = a * std::span<const double>(direction);
    double norm_a2 = 0.0;
    for (std::size_t j = 0; j < n; ++j) norm_a2 += a(0, j) * a(0, j);
    for (std::size_t j = 0; j < n; ++j) direction[j] -= ad[0] * a(0, j) / norm_a2;
    for (const double eps : {1e-4, -1e-4}) {
      std::vector<double> candidate = r.x;
      bool feasible = true;
      for (std::size_t j = 0; j < n; ++j) {
        candidate[j] += eps * direction[j];
        if (candidate[j] < lo[j] || candidate[j] > hi[j]) feasible = false;
      }
      if (!feasible) continue;
      EXPECT_GE(qp_objective(h, g, candidate), f0 - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeneralQpSweep, ::testing::Range(0, 12));

TEST(QpObjective, EvaluatesQuadratic) {
  const Matrix h{{2.0, 0.0}, {0.0, 2.0}};
  const std::vector<double> g = {1.0, -1.0};
  const std::vector<double> x = {2.0, 3.0};
  // 1/2 x'Hx + g'x = (4 + 9) + (2 - 3) = 12.
  EXPECT_DOUBLE_EQ(qp_objective(h, g, x), 12.0);
}

}  // namespace
}  // namespace vdc::linalg
