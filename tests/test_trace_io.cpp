#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic.hpp"

namespace vdc::trace {
namespace {

TEST(TraceIo, RoundTripPreservesValuesAndLabels) {
  SyntheticTraceOptions o;
  o.servers = 10;
  o.samples = 48;
  o.seed = 3;
  const UtilizationTrace original = generate_synthetic_trace(o);

  std::ostringstream out;
  write_trace_csv(out, original);
  std::istringstream in(out.str());
  const UtilizationTrace restored = read_trace_csv(in);

  ASSERT_EQ(restored.server_count(), original.server_count());
  ASSERT_EQ(restored.sample_count(), original.sample_count());
  EXPECT_EQ(restored.labels, original.labels);
  for (std::size_t s = 0; s < original.server_count(); ++s) {
    for (std::size_t k = 0; k < original.sample_count(); ++k) {
      EXPECT_NEAR(restored.at(s, k), original.at(s, k), 1e-6);
    }
  }
}

TEST(TraceIo, ReadsHeaderlessLabelColumn) {
  std::istringstream in("server,label,u0,u1\n0,web,0.1,0.2\n1,db,0.3,0.4\n");
  const UtilizationTrace t = read_trace_csv(in);
  EXPECT_EQ(t.server_count(), 2u);
  EXPECT_EQ(t.sample_count(), 2u);
  EXPECT_EQ(t.labels[0], "web");
  EXPECT_DOUBLE_EQ(t.at(1, 1), 0.4);
}

TEST(TraceIo, CustomSamplePeriod) {
  std::istringstream in("server,label,u0\n0,,0.5\n");
  const UtilizationTrace t = read_trace_csv(in, 60.0);
  EXPECT_DOUBLE_EQ(t.sample_period_s(), 60.0);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(read_trace_csv(empty), std::runtime_error);
  std::istringstream no_samples("server,label\n");
  EXPECT_THROW(read_trace_csv(no_samples), std::runtime_error);
  std::istringstream ragged("server,label,u0,u1\n0,x,0.1\n");
  EXPECT_THROW(read_trace_csv(ragged), std::runtime_error);
  std::istringstream bad_cell("server,label,u0\n0,x,abc\n");
  EXPECT_THROW(read_trace_csv(bad_cell), std::runtime_error);
  std::istringstream header_only("server,label,u0\n");
  EXPECT_THROW(read_trace_csv(header_only), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  SyntheticTraceOptions o;
  o.servers = 4;
  o.samples = 8;
  const UtilizationTrace original = generate_synthetic_trace(o);
  const std::filesystem::path path = std::filesystem::temp_directory_path() /
                                     "vdc_trace_io_test.csv";
  write_trace_csv_file(path, original);
  const UtilizationTrace restored = read_trace_csv_file(path);
  EXPECT_EQ(restored.server_count(), 4u);
  std::filesystem::remove(path);
  EXPECT_THROW(read_trace_csv_file("/no/such/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace vdc::trace
