#include "core/testbed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace vdc::core {
namespace {

TestbedConfig fast_config() {
  TestbedConfig config;
  config.num_apps = 2;
  config.num_servers = 2;
  config.sysid.periods = 250;  // shorter identification for test speed
  return config;
}

TEST(Testbed, ValidatesConfiguration) {
  TestbedConfig config = fast_config();
  config.num_apps = 0;
  EXPECT_THROW(Testbed{config}, std::invalid_argument);
}

TEST(Testbed, IdentifiedModelIsPlausible) {
  const Testbed tb{fast_config()};
  EXPECT_GT(tb.model_r_squared(), 0.4);
  const control::ArxModel& m = tb.identified_model();
  EXPECT_EQ(m.nu, 2u);
  // More CPU must lower the response time: negative DC gains.
  for (const double g : m.dc_gain()) EXPECT_LT(g, 0.0);
}

TEST(Testbed, ControlLoopConvergesNearSetpoint) {
  Testbed tb{fast_config()};
  tb.run_until(600.0);
  for (std::size_t i = 0; i < tb.app_count(); ++i) {
    const util::RunningStats s = tb.response_stats_after(i, 200.0);
    EXPECT_NEAR(s.mean(), 1.0, 0.25) << "app " << i;
  }
}

TEST(Testbed, SeriesAreRecordedPerControlPeriod) {
  Testbed tb{fast_config()};
  tb.run_until(100.0);
  // 100 s at 4 s periods: 25 ticks, power recorded from the 2nd onward.
  EXPECT_EQ(tb.response_series(0).size(), 25u);
  EXPECT_EQ(tb.allocation_series(0).size(), 25u);
  EXPECT_GE(tb.power_series().size(), 24u);
  for (const double p : tb.power_series()) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 400.0);  // two dual-2GHz servers peak below 2x180 W
  }
}

TEST(Testbed, SetpointChangeIsTracked) {
  Testbed tb{fast_config()};
  tb.set_setpoint(0, 0.7);
  tb.run_until(600.0);
  const util::RunningStats s = tb.response_stats_after(0, 250.0);
  EXPECT_NEAR(s.mean(), 0.7, 0.2);
}

TEST(Testbed, SurgeRaisesThenRecovers) {
  Testbed tb{fast_config()};
  tb.run_until(300.0);
  tb.set_concurrency(0, 80);
  tb.run_until(700.0);
  // Late in the surge the controller has recovered to the set point.
  const util::RunningStats late = tb.response_stats_after(0, 500.0);
  EXPECT_NEAR(late.mean(), 1.0, 0.35);
  // And the allocations for app 0 have grown to absorb the doubled load.
  const auto& allocs = tb.allocation_series(0);
  const double before = allocs[70][0] + allocs[70][1];   // t = 280 s
  const double during = allocs.back()[0] + allocs.back()[1];
  EXPECT_GT(during, before);
}

TEST(Testbed, DvfsReducesPowerVersusFixedFrequency) {
  TestbedConfig with = fast_config();
  TestbedConfig without = fast_config();
  without.dvfs = false;
  Testbed a{with};
  Testbed b{without};
  a.run_until(300.0);
  b.run_until(300.0);
  double pa = 0.0;
  for (const double p : a.power_series()) pa += p;
  pa /= static_cast<double>(a.power_series().size());
  double pb = 0.0;
  for (const double p : b.power_series()) pb += p;
  pb /= static_cast<double>(b.power_series().size());
  EXPECT_LT(pa, pb);
}

TEST(Testbed, TwoLevelModeConsolidatesWithLiveMigrations) {
  TestbedConfig config = fast_config();
  config.num_apps = 3;
  config.num_servers = 6;  // oversized: 6 tier VMs over 6 servers
  config.enable_optimizer = true;
  config.optimizer_period_s = 120.0;
  Testbed tb{config};
  tb.run_until(700.0);
  EXPECT_GT(tb.optimizer_invocations(), 0u);
  EXPECT_GT(tb.completed_migrations(), 0u);
  EXPECT_LT(tb.cluster().active_server_count(), 6u);
  // SLAs survive the consolidation (skip the settling + first migrations).
  for (std::size_t i = 0; i < tb.app_count(); ++i) {
    EXPECT_NEAR(tb.response_stats_after(i, 300.0).mean(), 1.0, 0.3) << "app " << i;
  }
  // Power drops versus the scattered start.
  const auto& power = tb.power_series();
  double early = 0.0;
  double late = 0.0;
  for (std::size_t k = 5; k < 25; ++k) early += power[k];
  for (std::size_t k = power.size() - 20; k < power.size(); ++k) late += power[k];
  EXPECT_LT(late, early);
}

TEST(Testbed, TwoLevelModeWithPMapperAlsoWorks) {
  TestbedConfig config = fast_config();
  config.num_apps = 2;
  config.num_servers = 4;
  config.enable_optimizer = true;
  config.optimizer_period_s = 120.0;
  config.optimizer_algorithm = ConsolidationAlgorithm::kPMapper;
  Testbed tb{config};
  tb.run_until(500.0);
  EXPECT_LE(tb.cluster().active_server_count(), 4u);
  EXPECT_EQ(tb.cluster().overloaded_servers().size(), 0u);
}

TEST(Testbed, OptimizerDisabledKeepsMappingStatic) {
  TestbedConfig config = fast_config();
  Testbed tb{config};
  tb.run_until(300.0);
  EXPECT_EQ(tb.completed_migrations(), 0u);
  EXPECT_EQ(tb.optimizer_invocations(), 0u);
  EXPECT_EQ(tb.cluster().migration_log().count(), 0u);
}

TEST(Testbed, ParallelControlPlaneIsBitIdenticalToSerial) {
  // The decide phase of a control tick may fan the per-app MPC solves onto
  // ThreadPool::shared(); a barrier precedes per-server arbitration and
  // each app writes only its own slot, so the results are required to be
  // bit-identical to the serial path — scheduling order must not leak into
  // the simulation.
  struct Series {
    std::vector<std::vector<double>> responses;
    std::vector<std::vector<std::vector<double>>> allocations;
    std::vector<double> power;
  };
  auto run = [](std::size_t min_apps) {
    TestbedConfig config = fast_config();
    config.num_apps = 4;
    config.num_servers = 4;
    config.parallel_control_min_apps = min_apps;  // 0 forces the pool
    Testbed tb{config};
    tb.run_until(300.0);
    Series out;
    for (std::size_t i = 0; i < tb.app_count(); ++i) {
      out.responses.push_back(tb.response_series(i));
      out.allocations.push_back(tb.allocation_series(i));
    }
    out.power = tb.power_series();
    return out;
  };
  const Series serial = run(SIZE_MAX);
  const Series parallel = run(0);
  ASSERT_EQ(serial.responses.size(), parallel.responses.size());
  for (std::size_t i = 0; i < serial.responses.size(); ++i) {
    EXPECT_EQ(serial.responses[i], parallel.responses[i]) << "app " << i;
    EXPECT_EQ(serial.allocations[i], parallel.allocations[i]) << "app " << i;
  }
  EXPECT_EQ(serial.power, parallel.power);
}

TEST(Testbed, ClusterTopologyMatchesConfig) {
  const TestbedConfig config = fast_config();
  Testbed tb{config};
  EXPECT_EQ(tb.cluster().server_count(), config.num_servers);
  EXPECT_EQ(tb.cluster().vm_count(), config.num_apps * 2);  // two tiers each
  EXPECT_EQ(tb.app_count(), config.num_apps);
}

TEST(Testbed, InitialReplicasCreateOneVmPerReplica) {
  TestbedConfig config = fast_config();
  config.initial_replicas = 2;
  Testbed tb{config};
  // 2 apps x 2 tiers x 2 replicas.
  EXPECT_EQ(tb.cluster().vm_count(), 8u);
  EXPECT_EQ(tb.cluster().live_vm_count(), 8u);
  tb.run_until(300.0);
  for (std::size_t i = 0; i < tb.app_count(); ++i) {
    EXPECT_GT(tb.application(i).completed_requests(), 500u) << "app " << i;
    for (std::size_t j = 0; j < 2; ++j) {
      for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_GT(tb.application(i).replica_work_done_gcycles(j, r), 0.0)
            << "app " << i << " tier " << j << " replica " << r;
      }
    }
  }
}

TEST(Testbed, SupervisorScalesOutUnderSurgeAndCreatesVms) {
  TestbedConfig config = fast_config();
  config.supervisor.enabled = true;
  config.supervisor.max_replicas = 3;
  config.replica_boot_delay_s = 8.0;
  Testbed tb{config};
  const std::size_t vms_before = tb.cluster().vm_count();
  tb.run_until(200.0);
  tb.set_concurrency(0, 220);  // far beyond one replica per tier at c_max
  tb.run_until(900.0);
  EXPECT_GT(tb.scale_out_count(), 0u);
  // Every scale-out materialized a fresh VM in the cluster.
  EXPECT_EQ(tb.cluster().vm_count(), vms_before + tb.scale_out_count());
  EXPECT_EQ(tb.cluster().live_vm_count(),
            vms_before + tb.scale_out_count() - tb.scale_in_count());
  // Replica counts and live-VM totals are on the recorder when scaling is on.
  EXPECT_TRUE(tb.recorder().has(replica_series_name(0)));
  EXPECT_TRUE(tb.recorder().has(kLiveVmsSeries));
  // The surge is re-attained: settled response time back near the setpoint.
  const util::RunningStats late = tb.response_stats_after(0, 700.0);
  EXPECT_LT(late.mean(), 1.3);
}

TEST(Testbed, SingleReplicaConfigRecordsNoReplicaSeries) {
  // The replication machinery must be invisible when unused: no replica or
  // live-VM series, so healthy single-replica telemetry stays byte-identical
  // to the pre-replication format.
  Testbed tb{fast_config()};
  tb.run_until(100.0);
  EXPECT_FALSE(tb.recorder().has(replica_series_name(0)));
  EXPECT_FALSE(tb.recorder().has(kLiveVmsSeries));
  EXPECT_EQ(tb.scale_out_count(), 0u);
  EXPECT_EQ(tb.scale_in_count(), 0u);
}

}  // namespace
}  // namespace vdc::core
