#include "consolidate/constraints.hpp"

#include <gtest/gtest.h>

namespace vdc::consolidate {
namespace {

ServerSnapshot make_server(double capacity, double memory) {
  ServerSnapshot s;
  s.max_capacity_ghz = capacity;
  s.memory_mb = memory;
  return s;
}

TEST(CpuConstraint, AdmitsUpToTarget) {
  const CpuCapacityConstraint c(0.5);
  const ServerSnapshot server = make_server(4.0, 8192.0);
  const VmSnapshot a{0, 1.0, 512.0};
  const VmSnapshot b{1, 1.1, 512.0};
  const VmSnapshot* one[] = {&a};
  const VmSnapshot* two[] = {&a, &b};
  EXPECT_TRUE(c.admits(server, one));         // 1.0 <= 2.0
  EXPECT_FALSE(c.admits(server, two));        // 2.1 > 2.0
  EXPECT_EQ(c.name(), "cpu-capacity");
  EXPECT_DOUBLE_EQ(c.utilization_target(), 0.5);
}

TEST(CpuConstraint, ValidatesTarget) {
  EXPECT_THROW(CpuCapacityConstraint(0.0), std::invalid_argument);
  EXPECT_THROW(CpuCapacityConstraint(1.5), std::invalid_argument);
  EXPECT_NO_THROW(CpuCapacityConstraint(1.0));
}

TEST(MemoryConstraint, ChecksTotalFootprint) {
  const MemoryConstraint c;
  const ServerSnapshot server = make_server(4.0, 2048.0);
  const VmSnapshot a{0, 0.1, 1024.0};
  const VmSnapshot b{1, 0.1, 1025.0};
  const VmSnapshot* one[] = {&a};
  const VmSnapshot* two[] = {&a, &b};
  EXPECT_TRUE(c.admits(server, one));
  EXPECT_FALSE(c.admits(server, two));
}

TEST(CustomConstraint, DelegatesToCallable) {
  const CustomConstraint c("max-two-vms",
                           [](const ServerSnapshot&, std::span<const VmSnapshot* const> vms) {
                             return vms.size() <= 2;
                           });
  const ServerSnapshot server = make_server(4.0, 8192.0);
  const VmSnapshot vm{0, 0.1, 1.0};
  const VmSnapshot* two[] = {&vm, &vm};
  const VmSnapshot* three[] = {&vm, &vm, &vm};
  EXPECT_TRUE(c.admits(server, two));
  EXPECT_FALSE(c.admits(server, three));
  EXPECT_EQ(c.name(), "max-two-vms");
  EXPECT_THROW(CustomConstraint("x", nullptr), std::invalid_argument);
}

TEST(ConstraintSet, ConjunctionSemantics) {
  ConstraintSet set = ConstraintSet::standard(1.0);
  EXPECT_EQ(set.size(), 2u);
  const ServerSnapshot server = make_server(4.0, 1024.0);
  const VmSnapshot cpu_hog{0, 5.0, 100.0};
  const VmSnapshot mem_hog{1, 0.1, 2048.0};
  const VmSnapshot ok{2, 1.0, 512.0};
  const VmSnapshot* just_ok[] = {&ok};
  const VmSnapshot* with_cpu[] = {&cpu_hog};
  const VmSnapshot* with_mem[] = {&mem_hog};
  EXPECT_TRUE(set.admits(server, just_ok));
  EXPECT_FALSE(set.admits(server, with_cpu));
  EXPECT_FALSE(set.admits(server, with_mem));
}

TEST(ConstraintSet, EmptySetAdmitsEverything) {
  const ConstraintSet set;
  const ServerSnapshot server = make_server(0.1, 1.0);
  const VmSnapshot huge{0, 100.0, 1e9};
  const VmSnapshot* vms[] = {&huge};
  EXPECT_TRUE(set.admits(server, vms));
}

TEST(ConstraintSet, RejectsNull) {
  ConstraintSet set;
  EXPECT_THROW(set.add(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::consolidate
