#include "consolidate/pac.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "consolidate/ffd.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

struct ServerSpec {
  double capacity;
  double efficiency;
};

DataCenterSnapshot make_instance(std::vector<ServerSpec> servers,
                                 std::vector<double> demands) {
  DataCenterSnapshot snap;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = servers[i].capacity;
    s.memory_mb = 1e6;
    s.max_power_w = 200.0;
    s.idle_power_w = 100.0;
    s.sleep_power_w = 5.0;
    s.power_efficiency_ghz_per_w = servers[i].efficiency;
    s.active = true;
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    snap.vms.push_back(VmSnapshot{static_cast<VmId>(i), demands[i], 1.0});
  }
  return snap;
}

std::vector<VmId> all_vms(const DataCenterSnapshot& snap) {
  std::vector<VmId> ids(snap.vms.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(Pac, PrefersMostEfficientServer) {
  const DataCenterSnapshot snap = make_instance(
      {{4.0, 0.01}, {4.0, 0.05}}, {1.0, 1.0});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PacResult r = power_aware_consolidation(wp, all_vms(snap), constraints);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_EQ(wp.hosted(1).size(), 2u);  // the efficient one takes everything
  EXPECT_TRUE(wp.hosted(0).empty());
  EXPECT_EQ(r.servers_used, 1u);
}

TEST(Pac, SpillsToNextServerWhenFull) {
  const DataCenterSnapshot snap = make_instance(
      {{2.0, 0.05}, {2.0, 0.01}}, {1.5, 1.5});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PacResult r = power_aware_consolidation(wp, all_vms(snap), constraints);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_EQ(wp.hosted(0).size(), 1u);
  EXPECT_EQ(wp.hosted(1).size(), 1u);
  EXPECT_EQ(r.servers_used, 2u);
}

TEST(Pac, PacksBetterThanFfdOnSubsetSumInstance) {
  // One efficient 10 GHz server; FFD (5,4,...) strands capacity, Minimum
  // Slack fills it exactly: {5,3,2}.
  const DataCenterSnapshot snap = make_instance(
      {{10.0, 0.05}, {10.0, 0.01}}, {5.0, 4.0, 3.0, 2.0});
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  WorkingPlacement pac_wp(snap);
  (void)power_aware_consolidation(pac_wp, all_vms(snap), constraints);
  EXPECT_DOUBLE_EQ(pac_wp.cpu_demand_ghz(0), 10.0);

  WorkingPlacement ffd_wp(snap);
  const std::vector<ServerId> order = servers_by_power_efficiency(snap);
  (void)first_fit_decreasing(ffd_wp, order, all_vms(snap), constraints);
  EXPECT_LT(ffd_wp.cpu_demand_ghz(0), 10.0);  // 5 + 4 = 9
}

TEST(Pac, ReportsUnplacedWhenCapacityExhausted) {
  const DataCenterSnapshot snap = make_instance({{1.0, 0.05}}, {0.8, 0.8});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PacResult r = power_aware_consolidation(wp, all_vms(snap), constraints);
  EXPECT_EQ(r.placed.size(), 1u);
  EXPECT_EQ(r.unplaced.size(), 1u);
}

TEST(Pac, EmptyVmListIsNoop) {
  const DataCenterSnapshot snap = make_instance({{1.0, 0.05}}, {});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PacResult r = power_aware_consolidation(wp, {}, constraints);
  EXPECT_TRUE(r.placed.empty());
  EXPECT_EQ(r.servers_used, 0u);
}

TEST(Pac, ExplicitServerOrderRespected) {
  const DataCenterSnapshot snap = make_instance(
      {{4.0, 0.05}, {4.0, 0.01}}, {1.0});
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const ServerId order[] = {1};  // exclude the efficient server
  const PacResult r =
      power_aware_consolidation(wp, all_vms(snap), constraints, MinSlackOptions{}, order);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_EQ(wp.hosted(1).size(), 1u);
  EXPECT_TRUE(wp.hosted(0).empty());
}

TEST(Pac, AccountsForExistingResidents) {
  DataCenterSnapshot snap = make_instance({{4.0, 0.05}}, {3.0, 2.0});
  snap.servers[0].hosted = {0};  // VM 0 (3.0 GHz) already there
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<VmId> rest = {1};
  const PacResult r = power_aware_consolidation(wp, rest, constraints);
  // Only 1 GHz of room left: the 2 GHz VM cannot land.
  EXPECT_EQ(r.unplaced, (std::vector<VmId>{1}));
}

class PacRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacRandomSweep, NeverViolatesConstraintsAndPlacesAllWhenLoose) {
  util::Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  std::vector<ServerSpec> servers;
  for (int i = 0; i < 12; ++i) {
    servers.push_back({rng.uniform(2.0, 8.0), rng.uniform(0.01, 0.06)});
  }
  std::vector<double> demands;
  for (int i = 0; i < 25; ++i) demands.push_back(rng.uniform(0.1, 1.0));
  const DataCenterSnapshot snap = make_instance(servers, demands);
  WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PacResult r = power_aware_consolidation(wp, all_vms(snap), constraints);
  EXPECT_TRUE(r.unplaced.empty());  // 25 GHz total capacity >> 14 max demand
  for (ServerId s = 0; s < snap.servers.size(); ++s) {
    EXPECT_LE(wp.cpu_demand_ghz(s), snap.server(s).max_capacity_ghz + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacRandomSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace vdc::consolidate
