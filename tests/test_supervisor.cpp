// The supervisory horizontal-scaling layer: threshold/hysteresis decision
// logic, settling holds, and bounds. Pure unit tests — decide() is a pure
// function of the per-period inputs plus the streak counters.
#include <gtest/gtest.h>

#include <vector>

#include "core/supervisor.hpp"

namespace vdc::core {
namespace {

SupervisorConfig enabled_config() {
  SupervisorConfig config;
  config.enabled = true;
  config.scale_out_patience = 3;
  config.scale_in_patience = 4;
  return config;
}

app::ReplicaSetStatus serving(std::size_t n, std::size_t max = 8) {
  app::ReplicaSetStatus status;
  status.target = n;
  status.serving = n;
  status.max_replicas = max;
  return status;
}

// One-tier convenience wrapper.
std::vector<ScaleDecision> tick(ScalingSupervisor& sup, double measurement,
                                double demand, app::ReplicaSetStatus status) {
  const std::vector<double> demands = {demand};
  const std::vector<double> c_max = {1.5};
  const std::vector<app::ReplicaSetStatus> tiers = {status};
  return sup.decide(measurement, 1.0, demands, c_max, tiers);
}

TEST(Supervisor, ConfigValidation) {
  SupervisorConfig config = enabled_config();
  config.min_replicas = 0;
  EXPECT_THROW(ScalingSupervisor(config, 1), std::invalid_argument);
  config = enabled_config();
  config.max_replicas = 0;
  EXPECT_THROW(ScalingSupervisor(config, 1), std::invalid_argument);
  config = enabled_config();
  config.comfort_fraction = 1.0;
  EXPECT_THROW(ScalingSupervisor(config, 1), std::invalid_argument);
  config = enabled_config();
  config.scale_out_patience = 0;
  EXPECT_THROW(ScalingSupervisor(config, 1), std::invalid_argument);
}

TEST(Supervisor, DisabledDecidesNothing) {
  SupervisorConfig config;  // enabled = false
  ScalingSupervisor sup(config, 1);
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(tick(sup, 5.0, 1.5, serving(1)).empty());
  }
}

TEST(Supervisor, ScaleOutAfterPatience) {
  ScalingSupervisor sup(enabled_config(), 1);
  // Violated (1.2 > 1.05) and saturated (1.45 >= 0.9 * 1.5).
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  const auto decisions = tick(sup, 1.2, 1.45, serving(1));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].tier, 0u);
  EXPECT_EQ(decisions[0].delta, 1);
}

TEST(Supervisor, ViolationWithoutSaturationNeverScalesOut) {
  // SLA violated but the inner actuator still has headroom: the MPC can fix
  // this itself, adding a replica would be waste.
  ScalingSupervisor sup(enabled_config(), 1);
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(tick(sup, 2.0, 0.8, serving(1)).empty());
  }
}

TEST(Supervisor, StreakResetsOnRecovery) {
  ScalingSupervisor sup(enabled_config(), 1);
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  EXPECT_TRUE(tick(sup, 0.9, 1.45, serving(1)).empty());  // recovered: reset
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(1)).empty());
  EXPECT_EQ(tick(sup, 1.2, 1.45, serving(1)).size(), 1u);
}

TEST(Supervisor, HoldsWhileSettling) {
  ScalingSupervisor sup(enabled_config(), 1);
  app::ReplicaSetStatus booting = serving(2);
  booting.booting = 1;
  booting.serving = 1;
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(tick(sup, 1.2, 1.45, booting).empty()) << "must hold while booting";
  }
  app::ReplicaSetStatus draining = serving(1);
  draining.draining = 1;
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(tick(sup, 1.2, 1.45, draining).empty()) << "must hold while draining";
  }
}

TEST(Supervisor, RespectsReplicaCeiling) {
  SupervisorConfig config = enabled_config();
  config.max_replicas = 2;
  ScalingSupervisor sup(config, 1);
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(tick(sup, 1.2, 1.45, serving(2)).empty());  // at config cap
  }
  // The tier's own max_replicas caps too, even under the config cap.
  ScalingSupervisor sup2(enabled_config(), 1);
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(tick(sup2, 1.2, 1.45, serving(3, /*max=*/3)).empty());
  }
}

TEST(Supervisor, ScaleInNeedsComfortAndHeadroom) {
  ScalingSupervisor sup(enabled_config(), 1);
  // Comfortable (0.5 < 0.7) with headroom: 2 replicas at 0.3 GHz each;
  // one survivor would hold 0.6 <= 0.6 * 1.5.
  EXPECT_TRUE(tick(sup, 0.5, 0.3, serving(2)).empty());
  EXPECT_TRUE(tick(sup, 0.5, 0.3, serving(2)).empty());
  EXPECT_TRUE(tick(sup, 0.5, 0.3, serving(2)).empty());
  const auto decisions = tick(sup, 0.5, 0.3, serving(2));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].delta, -1);
}

TEST(Supervisor, NoScaleInWithoutHeadroom) {
  // Comfortable measurement but the survivor could not absorb the demand:
  // 2 replicas at 0.8 GHz -> survivor would hold 1.6 > 0.6 * 1.5.
  ScalingSupervisor sup(enabled_config(), 1);
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(tick(sup, 0.5, 0.8, serving(2)).empty());
  }
}

TEST(Supervisor, NeverScalesBelowMinReplicas) {
  SupervisorConfig config = enabled_config();
  config.min_replicas = 2;
  ScalingSupervisor sup(config, 1);
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(tick(sup, 0.5, 0.1, serving(2)).empty());
  }
}

TEST(Supervisor, TiersDecideIndependently) {
  ScalingSupervisor sup(enabled_config(), 2);
  const std::vector<double> c_max = {1.5, 1.5};
  // Tier 0 saturated, tier 1 relaxed, under a violated SLA.
  const std::vector<double> demands = {1.45, 0.4};
  const std::vector<app::ReplicaSetStatus> tiers = {serving(1), serving(1)};
  (void)sup.decide(1.2, 1.0, demands, c_max, tiers);
  (void)sup.decide(1.2, 1.0, demands, c_max, tiers);
  const auto decisions = sup.decide(1.2, 1.0, demands, c_max, tiers);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].tier, 0u);  // only the saturated tier scales
  EXPECT_EQ(decisions[0].delta, 1);
}

TEST(Supervisor, TierCountMismatchThrows) {
  ScalingSupervisor sup(enabled_config(), 2);
  const std::vector<double> one = {1.0};
  const std::vector<double> c_max = {1.5};
  const std::vector<app::ReplicaSetStatus> tiers = {serving(1)};
  EXPECT_THROW((void)sup.decide(1.0, 1.0, one, c_max, tiers), std::invalid_argument);
}

}  // namespace
}  // namespace vdc::core
