#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "util/rng.hpp"

namespace vdc::linalg {
namespace {

std::vector<std::complex<double>> sorted_by_real(std::vector<std::complex<double>> v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
  return v;
}

TEST(Hessenberg, PreservesShapeAndTrace) {
  util::Rng rng(1);
  Matrix a(6, 6);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  }
  const Matrix h = hessenberg(a);
  for (std::size_t r = 2; r < 6; ++r) {
    for (std::size_t c = 0; c + 1 < r; ++c) EXPECT_DOUBLE_EQ(h(r, c), 0.0);
  }
  // Similarity transform: trace is invariant.
  double tr_a = 0.0;
  double tr_h = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    tr_a += a(i, i);
    tr_h += h(i, i);
  }
  EXPECT_NEAR(tr_a, tr_h, 1e-10);
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a = Matrix::diag(std::vector<double>{3.0, -1.0, 0.5});
  const auto ev = sorted_by_real(eigenvalues(a));
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0].real(), -1.0, 1e-10);
  EXPECT_NEAR(ev[1].real(), 0.5, 1e-10);
  EXPECT_NEAR(ev[2].real(), 3.0, 1e-10);
  for (const auto& lambda : ev) EXPECT_NEAR(lambda.imag(), 0.0, 1e-10);
}

TEST(Eigen, RotationHasComplexPair) {
  // 0.8 * rotation(90deg): eigenvalues +-0.8i.
  const Matrix a{{0.0, -0.8}, {0.8, 0.0}};
  const auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(std::abs(ev[0]), 0.8, 1e-10);
  EXPECT_NEAR(std::abs(ev[1]), 0.8, 1e-10);
  EXPECT_NEAR(ev[0].real(), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(ev[0].imag()), 0.8, 1e-10);
}

TEST(Eigen, CompanionMatrixOfKnownPolynomial) {
  // p(z) = (z-1)(z-2)(z-3) = z^3 - 6z^2 + 11z - 6; companion eigenvalues
  // are the roots 1, 2, 3.
  Matrix c(3, 3);
  c(0, 0) = 6.0;
  c(0, 1) = -11.0;
  c(0, 2) = 6.0;
  c(1, 0) = 1.0;
  c(2, 1) = 1.0;
  const auto ev = sorted_by_real(eigenvalues(c));
  EXPECT_NEAR(ev[0].real(), 1.0, 1e-8);
  EXPECT_NEAR(ev[1].real(), 2.0, 1e-8);
  EXPECT_NEAR(ev[2].real(), 3.0, 1e-8);
}

TEST(Eigen, ComplexConjugateRootsOfCompanion) {
  // p(z) = z^2 - 2z + 5 -> roots 1 +- 2i.
  Matrix c(2, 2);
  c(0, 0) = 2.0;
  c(0, 1) = -5.0;
  c(1, 0) = 1.0;
  const auto ev = eigenvalues(c);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(ev[0].real(), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(ev[0].imag()), 2.0, 1e-10);
}

class EigenRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(EigenRandomSweep, TraceAndDeterminantIdentities) {
  util::Rng rng(static_cast<std::uint64_t>(1700 + GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 7;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  }
  const auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), n);

  std::complex<double> sum = 0.0;
  std::complex<double> prod = 1.0;
  for (const auto& lambda : ev) {
    sum += lambda;
    prod *= lambda;
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-7 * std::max(1.0, std::abs(trace)));
  EXPECT_NEAR(sum.imag(), 0.0, 1e-7);

  // Determinant via LU (may be near zero; compare absolutely then).
  double det = 0.0;
  try {
    det = LuDecomposition(a).determinant();
  } catch (const std::exception&) {
    GTEST_SKIP() << "singular sample";
  }
  EXPECT_NEAR(prod.real(), det, 1e-6 * std::max(1.0, std::abs(det)));
  EXPECT_NEAR(prod.imag(), 0.0, 1e-6 * std::max(1.0, std::abs(det)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenRandomSweep, ::testing::Range(0, 20));

class EigenVsPowerSweep : public ::testing::TestWithParam<int> {};

TEST_P(EigenVsPowerSweep, ExactRadiusMatchesSquaringEstimator) {
  util::Rng rng(static_cast<std::uint64_t>(1800 + GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 5;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  }
  const double exact = exact_spectral_radius(a);
  const double estimate = spectral_radius(a);
  EXPECT_NEAR(exact, estimate, 1e-4 * std::max(1.0, exact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenVsPowerSweep, ::testing::Range(0, 15));

TEST(Eigen, EdgeCases) {
  EXPECT_TRUE(eigenvalues(Matrix()).empty());
  const auto one = eigenvalues(Matrix{{4.2}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].real(), 4.2);
  EXPECT_THROW(eigenvalues(Matrix(2, 3)), std::invalid_argument);
}

TEST(Eigen, DefectiveMatrixJordanBlock) {
  // Jordan block: eigenvalue 2 with multiplicity 3 (defective).
  Matrix j(3, 3);
  for (std::size_t i = 0; i < 3; ++i) j(i, i) = 2.0;
  j(0, 1) = 1.0;
  j(1, 2) = 1.0;
  for (const auto& lambda : eigenvalues(j)) {
    EXPECT_NEAR(lambda.real(), 2.0, 1e-5);
    EXPECT_NEAR(lambda.imag(), 0.0, 1e-5);
  }
}

}  // namespace
}  // namespace vdc::linalg
