// The VDC_ASSERT/VDC_INVARIANT/VDC_UNREACHABLE macro mechanics: diagnostics
// carry source location, expression text and the streamed message; passing
// checks evaluate their condition exactly once; and a translation unit that
// opts out (VDC_CHECKS_ENABLED 0) gets true no-ops whose conditions are
// never evaluated.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using vdc::check::CheckFailure;

#if VDC_CHECKS_ENABLED

TEST(Check, PassingAssertDoesNotThrow) {
  EXPECT_NO_THROW(VDC_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(VDC_INVARIANT(true, "never shown"));
}

TEST(Check, FailingAssertThrowsCheckFailure) {
  EXPECT_THROW(VDC_ASSERT(false), CheckFailure);
  EXPECT_THROW(VDC_INVARIANT(2 > 3), CheckFailure);
}

TEST(Check, DiagnosticCarriesLocationExpressionAndMessage) {
  try {
    const int x = 42;
    VDC_INVARIANT(x < 0, "x=" << x << " should be negative");
    FAIL() << "VDC_INVARIANT did not throw";
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("x < 0"), std::string::npos) << what;
    EXPECT_NE(what.find("x=42 should be negative"), std::string::npos) << what;
    EXPECT_NE(what.find("invariant"), std::string::npos) << what;
  }
}

TEST(Check, AssertAndInvariantAreLabelledDistinctly) {
  try {
    VDC_ASSERT(false, "boom");
    FAIL();
  } catch (const CheckFailure& failure) {
    EXPECT_NE(std::string(failure.what()).find("assertion"), std::string::npos);
  }
}

TEST(Check, UnreachableThrowsWithMessage) {
  try {
    VDC_UNREACHABLE("impossible engine kind " << 7);
    FAIL() << "VDC_UNREACHABLE did not throw";
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find("unreachable"), std::string::npos) << what;
    EXPECT_NE(what.find("impossible engine kind 7"), std::string::npos) << what;
  }
}

TEST(Check, IsExactlyZeroMatchesOnlyTrueZero) {
  EXPECT_TRUE(vdc::check::is_exactly_zero(0.0));
  EXPECT_TRUE(vdc::check::is_exactly_zero(-0.0));  // same assigned-zero contract
  EXPECT_FALSE(vdc::check::is_exactly_zero(1e-300));
  EXPECT_FALSE(vdc::check::is_exactly_zero(-1e-300));
  static_assert(vdc::check::is_exactly_zero(0.0), "usable in constant expressions");
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  // vdc-lint: check-side-effect-ok this test exists to prove single evaluation; the mutation is the subject under test
  VDC_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

#else

TEST(Check, ChecksDisabledInThisBuild) {
  // The whole binary was built with VDC_CHECKS=OFF; the no-op behaviour is
  // covered by the CheckDisabled tests below, which force the off mode
  // regardless of the build flag.
  SUCCEED();
}

#endif  // VDC_CHECKS_ENABLED

}  // namespace
