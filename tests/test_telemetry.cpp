#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probe.hpp"

namespace vdc::telemetry {
namespace {

TEST(Recorder, ScalarSeriesAppendsInOrder) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("p90", 0.5);
  rec.append("p90", 2.0);
  EXPECT_TRUE(rec.has("p90"));
  EXPECT_FALSE(rec.is_vector("p90"));
  EXPECT_EQ(rec.values("p90"), (std::vector<double>{1.0, 0.5, 2.0}));
  EXPECT_EQ(rec.size("p90"), 3u);
}

TEST(Recorder, VectorSeriesKeepsRows) {
  Recorder rec;
  rec.append("alloc", std::vector<double>{0.3, 0.4});
  rec.append("alloc", std::vector<double>{0.5, 0.6});
  EXPECT_TRUE(rec.is_vector("alloc"));
  ASSERT_EQ(rec.rows("alloc").size(), 2u);
  EXPECT_EQ(rec.rows("alloc")[1], (std::vector<double>{0.5, 0.6}));
}

TEST(Recorder, DeclareCreatesEmptySeries) {
  Recorder rec;
  rec.declare_scalar("power");
  rec.declare_vector("alloc");
  EXPECT_TRUE(rec.has("power"));
  EXPECT_TRUE(rec.values("power").empty());
  EXPECT_TRUE(rec.rows("alloc").empty());
  EXPECT_EQ(rec.size("power"), 0u);
}

TEST(Recorder, SeriesNamesInCreationOrder) {
  Recorder rec;
  rec.append("z", 1.0);
  rec.append("a", 2.0);
  rec.append("m", std::vector<double>{3.0});
  EXPECT_EQ(rec.series_names(), (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_EQ(rec.series_count(), 3u);
}

TEST(Recorder, KindMismatchThrows) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("alloc", std::vector<double>{0.3});
  EXPECT_THROW(rec.append("p90", std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(rec.append("alloc", 1.0), std::invalid_argument);
  EXPECT_THROW((void)rec.values("alloc"), std::out_of_range);
  EXPECT_THROW((void)rec.rows("p90"), std::out_of_range);
  EXPECT_THROW((void)rec.values("unknown"), std::out_of_range);
}

TEST(Recorder, ReferencesStayValidAcrossNewSeries) {
  Recorder rec;
  rec.append("first", 1.0);
  const std::vector<double>& first = rec.values("first");
  for (int i = 0; i < 64; ++i) rec.append("series" + std::to_string(i), double(i));
  EXPECT_EQ(first, (std::vector<double>{1.0}));  // node-based storage
}

TEST(Recorder, EqualityIsExact) {
  Recorder a;
  Recorder b;
  a.append("p90", 1.0);
  a.append("alloc", std::vector<double>{0.3, 0.4});
  b.append("p90", 1.0);
  b.append("alloc", std::vector<double>{0.3, 0.4});
  EXPECT_TRUE(a == b);
  b.append("p90", 1.0 + 1e-15);
  EXPECT_FALSE(a == b);
}

TEST(Recorder, ClearRemovesEverything) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_FALSE(rec.has("p90"));
}

TEST(Probe, SetSamplesEveryGaugeIntoItsSeries) {
  Recorder rec;
  double power = 100.0;
  int servers = 4;
  ProbeSet probes;
  probes.add("power", [&] { return power; });
  probes.add("servers", [&] { return double(servers); });
  probes.sample(rec);
  power = 80.0;
  servers = 3;
  probes.sample(rec);
  EXPECT_EQ(rec.values("power"), (std::vector<double>{100.0, 80.0}));
  EXPECT_EQ(rec.values("servers"), (std::vector<double>{4.0, 3.0}));
}

TEST(Probe, RejectsEmptyNameAndNullGauge) {
  ProbeSet probes;
  EXPECT_THROW(probes.add("", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(probes.add("x", nullptr), std::invalid_argument);
}

TEST(PeriodicSampler, SamplesOncePerPeriodStartingAtFirstPeriod) {
  sim::Simulation sim;
  Recorder rec;
  ProbeSet probes;
  probes.add("clock", [&] { return sim.now(); });
  PeriodicSampler sampler(sim, std::move(probes), rec, 4.0);
  sampler.start();
  sim.run_until(20.0);  // samples at t = 4, 8, 12, 16, 20
  EXPECT_EQ(sampler.samples_taken(), 5u);
  EXPECT_EQ(rec.values("clock"), (std::vector<double>{4.0, 8.0, 12.0, 16.0, 20.0}));
}

TEST(Export, CsvRoundTripsExactly) {
  Recorder rec;
  rec.append("p90", 1.0 / 3.0);  // not representable in short decimal
  rec.append("p90", 0.125);
  rec.append("alloc", std::vector<double>{0.3, 0.7});
  rec.append("alloc", std::vector<double>{0.6, 1.4});
  rec.append("power", 123.456789);
  // power has 1 sample, p90 has 2: ragged lengths pad with empty cells.
  const Recorder back = from_csv(to_csv(rec));
  EXPECT_TRUE(back == rec);
}

TEST(Export, HeaderFlattensVectorSeries) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("alloc", std::vector<double>{0.3, 0.7});
  std::ostringstream out;
  write_csv(rec, out);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "p90,alloc[0],alloc[1]");
}

TEST(Export, FileRoundTrip) {
  Recorder rec;
  rec.append("p90", 0.987);
  rec.append("alloc", std::vector<double>{0.25, 0.5, 0.75});
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "vdc_telemetry_roundtrip.csv";
  write_csv_file(rec, path);
  const Recorder back = read_csv_file(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(back == rec);
}

TEST(Export, EmptyRecorderRejectedEmptyTextAccepted) {
  const Recorder rec;
  EXPECT_THROW((void)to_csv(rec), std::invalid_argument);
  EXPECT_TRUE(from_csv("") == rec);
}

}  // namespace
}  // namespace vdc::telemetry
