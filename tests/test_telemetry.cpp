#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probe.hpp"

namespace vdc::telemetry {
namespace {

TEST(Recorder, ScalarSeriesAppendsInOrder) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("p90", 0.5);
  rec.append("p90", 2.0);
  EXPECT_TRUE(rec.has("p90"));
  EXPECT_FALSE(rec.is_vector("p90"));
  EXPECT_EQ(rec.values("p90"), (std::vector<double>{1.0, 0.5, 2.0}));
  EXPECT_EQ(rec.size("p90"), 3u);
}

TEST(Recorder, VectorSeriesKeepsRows) {
  Recorder rec;
  rec.append("alloc", std::vector<double>{0.3, 0.4});
  rec.append("alloc", std::vector<double>{0.5, 0.6});
  EXPECT_TRUE(rec.is_vector("alloc"));
  ASSERT_EQ(rec.rows("alloc").size(), 2u);
  EXPECT_EQ(rec.rows("alloc")[1], (std::vector<double>{0.5, 0.6}));
}

TEST(Recorder, DeclareCreatesEmptySeries) {
  Recorder rec;
  rec.declare_scalar("power");
  rec.declare_vector("alloc");
  EXPECT_TRUE(rec.has("power"));
  EXPECT_TRUE(rec.values("power").empty());
  EXPECT_TRUE(rec.rows("alloc").empty());
  EXPECT_EQ(rec.size("power"), 0u);
}

TEST(Recorder, SeriesNamesInCreationOrder) {
  Recorder rec;
  rec.append("z", 1.0);
  rec.append("a", 2.0);
  rec.append("m", std::vector<double>{3.0});
  EXPECT_EQ(rec.series_names(), (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_EQ(rec.series_count(), 3u);
}

TEST(Recorder, KindMismatchThrows) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("alloc", std::vector<double>{0.3});
  EXPECT_THROW(rec.append("p90", std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(rec.append("alloc", 1.0), std::invalid_argument);
  EXPECT_THROW((void)rec.values("alloc"), std::out_of_range);
  EXPECT_THROW((void)rec.rows("p90"), std::out_of_range);
  EXPECT_THROW((void)rec.values("unknown"), std::out_of_range);
}

TEST(Recorder, ReferencesStayValidAcrossNewSeries) {
  Recorder rec;
  rec.append("first", 1.0);
  const std::vector<double>& first = rec.values("first");
  for (int i = 0; i < 64; ++i) rec.append("series" + std::to_string(i), double(i));
  EXPECT_EQ(first, (std::vector<double>{1.0}));  // node-based storage
}

TEST(Recorder, EqualityIsExact) {
  Recorder a;
  Recorder b;
  a.append("p90", 1.0);
  a.append("alloc", std::vector<double>{0.3, 0.4});
  b.append("p90", 1.0);
  b.append("alloc", std::vector<double>{0.3, 0.4});
  EXPECT_TRUE(a == b);
  b.append("p90", 1.0 + 1e-15);
  EXPECT_FALSE(a == b);
}

TEST(Recorder, ClearRemovesEverything) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_FALSE(rec.has("p90"));
}

// ---- tsdb backend -----------------------------------------------------------

RecorderConfig tsdb_config() {
  RecorderConfig config;
  config.backend = RecorderConfig::Backend::kTsdb;
  return config;
}

TEST(RecorderTsdb, ValuesIdenticalToRawBackend) {
  Recorder raw;
  Recorder tiered(tsdb_config());
  for (int i = 0; i < 300; ++i) {
    const double v = 1.0 / (1.0 + static_cast<double>(i));  // awkward decimals
    raw.append("p90", v);
    tiered.append("p90", v);
  }
  EXPECT_EQ(tiered.values("p90"), raw.values("p90"));
  EXPECT_EQ(tiered.size("p90"), raw.size("p90"));
  EXPECT_TRUE(tiered == raw);  // equality is backend-agnostic
  EXPECT_TRUE(raw == tiered);
}

TEST(RecorderTsdb, AppendAtTimestampsLandInTheStore) {
  Recorder rec(tsdb_config());
  rec.append_at("p90", 4.0, 1.0);
  rec.append_at("p90", 8.0, 2.0);
  EXPECT_EQ(rec.values("p90"), (std::vector<double>{1.0, 2.0}));
  const auto id = rec.tsdb().find("p90");
  ASSERT_TRUE(id.has_value());
  const std::vector<tsdb::RawSample> samples =
      rec.tsdb().raw(*id, 0.0, std::numeric_limits<double>::infinity());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].time_s, 4.0);
  EXPECT_EQ(samples[1].time_s, 8.0);
  // Raw backend ignores the timestamp entirely — same visible samples.
  Recorder raw;
  raw.append_at("p90", 4.0, 1.0);
  raw.append_at("p90", 8.0, 2.0);
  EXPECT_TRUE(raw == rec);
}

TEST(RecorderTsdb, VectorSeriesStayRawRows) {
  Recorder rec(tsdb_config());
  rec.append("alloc", std::vector<double>{0.3, 0.4});
  rec.append("alloc", std::vector<double>{0.5, 0.6});
  EXPECT_TRUE(rec.is_vector("alloc"));
  ASSERT_EQ(rec.rows("alloc").size(), 2u);
  EXPECT_FALSE(rec.tsdb().find("alloc").has_value());
}

TEST(RecorderTsdb, ReferencesStayValidAndRefreshInPlace) {
  Recorder rec(tsdb_config());
  rec.append("first", 1.0);
  const std::vector<double>& first = rec.values("first");
  for (int i = 0; i < 64; ++i) rec.append("series" + std::to_string(i), double(i));
  EXPECT_EQ(first, (std::vector<double>{1.0}));
  rec.append("first", 2.0);
  // The next values() call refreshes the materialization in place: the old
  // reference still points at the (same) cache vector.
  static_cast<void>(rec.values("first"));
  EXPECT_EQ(first, (std::vector<double>{1.0, 2.0}));
}

TEST(RecorderTsdb, NaNSamplesAreRejectedNotStored) {
  Recorder rec(tsdb_config());
  rec.append("p90", 1.0);
  rec.append("p90", std::numeric_limits<double>::quiet_NaN());
  rec.append("p90", 2.0);
  EXPECT_EQ(rec.values("p90"), (std::vector<double>{1.0, 2.0}));
  const auto id = rec.tsdb().find("p90");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(rec.tsdb().rejected_nan(*id), 1u);
}

TEST(RecorderTsdb, ClearResetsTheStore) {
  Recorder rec(tsdb_config());
  rec.append("p90", 1.0);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_FALSE(rec.has("p90"));
  EXPECT_EQ(rec.tsdb().metric_count(), 0u);
  rec.append("p90", 3.0);  // usable again after the reset
  EXPECT_EQ(rec.values("p90"), (std::vector<double>{3.0}));
}

TEST(RecorderTsdb, EvictionShrinksVisibleValues) {
  RecorderConfig config = tsdb_config();
  config.tsdb.page_samples = 4;
  config.tsdb.tier0_max_pages = 2;
  Recorder rec(config);
  for (int i = 0; i < 12; ++i) rec.append("p90", static_cast<double>(i));
  // Oldest page dropped: the visible window is the retained tail.
  EXPECT_EQ(rec.size("p90"), 8u);
  EXPECT_EQ(rec.values("p90").front(), 4.0);
  // The rollups still cover the whole stream.
  const auto id = rec.tsdb().find("p90");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(rec.tsdb()
                .rollups(*id, tsdb::Tier::kPeriod,
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::infinity())
                .front()
                .count,
            4u);  // window [0,4) at 1 s synthesized spacing, period 4 s
}

TEST(RecorderTsdb, PeriodicSamplerStampsSimulationTime) {
  sim::Simulation sim;
  Recorder rec(tsdb_config());
  ProbeSet probes;
  probes.add("clock", [&] { return sim.now(); });
  PeriodicSampler sampler(sim, std::move(probes), rec, 4.0);
  sampler.start();
  sim.run_until(20.0);
  EXPECT_EQ(rec.values("clock"), (std::vector<double>{4.0, 8.0, 12.0, 16.0, 20.0}));
  const auto id = rec.tsdb().find("clock");
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(rec.tsdb().last_time_s(*id).has_value());
  EXPECT_EQ(*rec.tsdb().last_time_s(*id), 20.0);  // real sim time, not index
}

TEST(RecorderTsdb, CsvExportByteIdenticalToRawBackend) {
  Recorder raw;
  Recorder tiered(tsdb_config());
  for (Recorder* rec : {&raw, &tiered}) {
    for (int i = 0; i < 100; ++i) {
      rec->append("p90", 0.9 + 0.01 * static_cast<double>(i % 7));
      rec->append("alloc", std::vector<double>{0.3, 0.4 + 0.001 * i});
    }
    rec->append("power", 123.456789);
  }
  EXPECT_EQ(to_csv(tiered), to_csv(raw));
}

TEST(Probe, SetSamplesEveryGaugeIntoItsSeries) {
  Recorder rec;
  double power = 100.0;
  int servers = 4;
  ProbeSet probes;
  probes.add("power", [&] { return power; });
  probes.add("servers", [&] { return double(servers); });
  probes.sample(rec);
  power = 80.0;
  servers = 3;
  probes.sample(rec);
  EXPECT_EQ(rec.values("power"), (std::vector<double>{100.0, 80.0}));
  EXPECT_EQ(rec.values("servers"), (std::vector<double>{4.0, 3.0}));
}

TEST(Probe, RejectsEmptyNameAndNullGauge) {
  ProbeSet probes;
  EXPECT_THROW(probes.add("", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(probes.add("x", nullptr), std::invalid_argument);
}

TEST(PeriodicSampler, SamplesOncePerPeriodStartingAtFirstPeriod) {
  sim::Simulation sim;
  Recorder rec;
  ProbeSet probes;
  probes.add("clock", [&] { return sim.now(); });
  PeriodicSampler sampler(sim, std::move(probes), rec, 4.0);
  sampler.start();
  sim.run_until(20.0);  // samples at t = 4, 8, 12, 16, 20
  EXPECT_EQ(sampler.samples_taken(), 5u);
  EXPECT_EQ(rec.values("clock"), (std::vector<double>{4.0, 8.0, 12.0, 16.0, 20.0}));
}

TEST(Export, CsvRoundTripsExactly) {
  Recorder rec;
  rec.append("p90", 1.0 / 3.0);  // not representable in short decimal
  rec.append("p90", 0.125);
  rec.append("alloc", std::vector<double>{0.3, 0.7});
  rec.append("alloc", std::vector<double>{0.6, 1.4});
  rec.append("power", 123.456789);
  // power has 1 sample, p90 has 2: ragged lengths pad with empty cells.
  const Recorder back = from_csv(to_csv(rec));
  EXPECT_TRUE(back == rec);
}

TEST(Export, HeaderFlattensVectorSeries) {
  Recorder rec;
  rec.append("p90", 1.0);
  rec.append("alloc", std::vector<double>{0.3, 0.7});
  std::ostringstream out;
  write_csv(rec, out);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "p90,alloc[0],alloc[1]");
}

TEST(Export, FileRoundTrip) {
  Recorder rec;
  rec.append("p90", 0.987);
  rec.append("alloc", std::vector<double>{0.25, 0.5, 0.75});
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "vdc_telemetry_roundtrip.csv";
  write_csv_file(rec, path);
  const Recorder back = read_csv_file(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(back == rec);
}

TEST(Export, EmptyRecorderRejectedEmptyTextAccepted) {
  const Recorder rec;
  EXPECT_THROW((void)to_csv(rec), std::invalid_argument);
  EXPECT_TRUE(from_csv("") == rec);
}

}  // namespace
}  // namespace vdc::telemetry
