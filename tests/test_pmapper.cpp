#include "consolidate/pmapper.hpp"

#include <gtest/gtest.h>

#include "datacenter/cluster.hpp"

namespace vdc::consolidate {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;

Cluster heterogeneous_cluster() {
  Cluster c;
  c.add_server(Server(datacenter::quad_core_3ghz(), datacenter::power_model_quad_3ghz(),
                      32768.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 12288.0));
  return c;
}

Vm make_vm(double demand, double memory = 512.0) {
  Vm vm;
  vm.cpu_demand_ghz = demand;
  vm.memory_mb = memory;
  return vm;
}

TEST(PMapper, Phase1TargetsPreferEfficientServers) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(1.0), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  // FFD by efficiency puts both targets on the quad.
  EXPECT_DOUBLE_EQ(report.target_demand_ghz[0], 2.0);
  EXPECT_DOUBLE_EQ(report.target_demand_ghz[1], 0.0);
  EXPECT_DOUBLE_EQ(report.target_demand_ghz[2], 0.0);
}

TEST(PMapper, MigratesDonorVmsToReceivers) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 1);
  (void)c.add_vm(make_vm(1.0), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  EXPECT_EQ(report.moves, 2u);
  Cluster live = heterogeneous_cluster();
  (void)live.add_vm(make_vm(1.0), 1);
  (void)live.add_vm(make_vm(1.0), 2);
  apply_plan(live, report.plan, 0.0);
  EXPECT_EQ(live.vms_on(0).size(), 2u);
  EXPECT_EQ(live.active_server_count(), 1u);
}

TEST(PMapper, QuiescentWhenAlreadyAtTarget) {
  Cluster c = heterogeneous_cluster();
  (void)c.add_vm(make_vm(1.0), 0);
  (void)c.add_vm(make_vm(0.5), 0);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  EXPECT_TRUE(report.plan.moves.empty());
}

TEST(PMapper, DonorShedsSmallestVmsFirst) {
  Cluster c = heterogeneous_cluster();
  // Quad holds a big and a small VM; also load the duals so the quad's
  // target is below its current demand.
  (void)c.add_vm(make_vm(8.0, 20000.0), 0);
  (void)c.add_vm(make_vm(0.5), 0);
  (void)c.add_vm(make_vm(3.5, 20000.0), 1);  // memory keeps it off the quad
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  // Whatever the plan, the 8 GHz VM must not be the one moved off the quad
  // while the 0.5 GHz VM stays.
  for (const Move& m : report.plan.moves) {
    EXPECT_NE(m.vm, 0u) << "largest VM should not move before the smallest";
  }
}

TEST(PMapper, ResolvesOverloadViaTargets) {
  Cluster c = heterogeneous_cluster();
  // Overload a dual-1.5 (3 GHz): 4 GHz demand.
  (void)c.add_vm(make_vm(2.0), 1);
  (void)c.add_vm(make_vm(2.0), 1);
  ASSERT_TRUE(c.overloaded(1));
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  apply_plan(c, report.plan, 0.0);
  EXPECT_TRUE(c.overloaded_servers().empty());
}

TEST(PMapper, UnabsorbableVmReturnsToOrigin) {
  Cluster c;
  c.add_server(Server(datacenter::dual_core_2ghz(), datacenter::power_model_dual_2ghz(),
                      1024.0));
  c.add_server(Server(datacenter::dual_core_1_5ghz(),
                      datacenter::power_model_dual_1_5ghz(), 1024.0));
  // Two VMs on the less efficient server; the efficient one lacks memory
  // for both, so at most one can move.
  (void)c.add_vm(make_vm(1.0, 700.0), 1);
  (void)c.add_vm(make_vm(1.0, 700.0), 1);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const PMapperReport report = pmapper(snap, constraints);
  EXPECT_TRUE(report.plan.unplaced.empty());  // nothing may be lost
  Cluster live;
  live.add_server(Server(datacenter::dual_core_2ghz(), datacenter::power_model_dual_2ghz(),
                         1024.0));
  live.add_server(Server(datacenter::dual_core_1_5ghz(),
                         datacenter::power_model_dual_1_5ghz(), 1024.0));
  (void)live.add_vm(make_vm(1.0, 700.0), 1);
  (void)live.add_vm(make_vm(1.0, 700.0), 1);
  apply_plan(live, report.plan, 0.0);
  EXPECT_EQ(live.vms_on(0).size() + live.vms_on(1).size(), 2u);
  EXPECT_TRUE(live.overloaded_servers().empty());
}

TEST(PMapper, BudgetGateVetoesMovesAndKeepsVmsOnOrigin) {
  // Same donors/receivers as MigratesDonorVmsToReceivers, but the cluster
  // is racked (quad alone in rack 0; donors in rack 1) and the migration
  // budget prices out the second cross-rack move: the gated VM stays on
  // its origin instead of landing on a worse receiver.
  Cluster c = heterogeneous_cluster();
  datacenter::Topology topo;
  const datacenter::PodId pod = topo.add_pod(0.0);
  const datacenter::RackId r0 = topo.add_rack(pod, 25.0);
  const datacenter::RackId r1 = topo.add_rack(pod, 25.0);
  topo.assign(0, r0);
  topo.assign(1, r1);
  topo.assign(2, r1);
  c.set_topology(std::move(topo));
  // Anchor the quad so each donor move is individually net-positive (the
  // first mover would otherwise pay the receiver's wake + shared draw and
  // the net-energy gate would rightly veto it).
  (void)c.add_vm(make_vm(1.0, 1024.0), 0);
  (void)c.add_vm(make_vm(1.0, 1024.0), 1);
  (void)c.add_vm(make_vm(1.0, 1024.0), 2);
  const DataCenterSnapshot snap = snapshot_of(c);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  RackAwareOptions rack;
  rack.enabled = true;
  rack.benefit_horizon_s = 3600.0;
  const PMapperReport unbounded = pmapper(snap, constraints, rack);
  ASSERT_EQ(unbounded.plan.moves.size(), 2u);
  EXPECT_EQ(unbounded.moves_rejected_by_budget, 0u);
  const double one_move_j = rack.cost.energy_j(1024.0, NetworkDistance::kSamePod);
  EXPECT_DOUBLE_EQ(unbounded.migration_energy_j, 2.0 * one_move_j);

  rack.migration_energy_budget_j = one_move_j;  // exactly one move affordable
  const PMapperReport capped = pmapper(snap, constraints, rack);
  EXPECT_EQ(capped.plan.moves.size(), 1u);
  EXPECT_EQ(capped.moves_rejected_by_budget, 1u);
  EXPECT_DOUBLE_EQ(capped.migration_energy_j, one_move_j);
}

}  // namespace
}  // namespace vdc::consolidate
