// Exhaustive packing properties on random small instances (<= 6 VMs,
// <= 4 servers) where brute force over all n_servers^n_vms assignments is
// affordable. For every instance:
//   * every planner's plan is feasible — applying it overloads nothing and
//     respects the utilization-target constraint;
//   * consolidation never makes power worse than the starting placement and
//     never spreads load over more servers than it started with;
//   * no heuristic beats the brute-force optimum, and across the sweep IPAC
//     actually *finds* the optimum on most instances.
// The instances are seeded, so the whole sweep is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "consolidate/constraints.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/pmapper.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/working_placement.hpp"
#include "datacenter/cluster.hpp"
#include "util/rng.hpp"

namespace vdc::consolidate {
namespace {

using datacenter::Cluster;
using datacenter::Server;
using datacenter::Vm;
using datacenter::kNoServer;

constexpr double kUtilizationTarget = 1.0;
constexpr double kEps = 1e-9;

Cluster random_cluster(util::Rng& rng, std::size_t n_servers, std::size_t n_vms) {
  Cluster c;
  for (std::size_t s = 0; s < n_servers; ++s) {
    switch (static_cast<int>(rng.uniform(0.0, 3.0))) {
      case 0:
        c.add_server(Server(datacenter::quad_core_3ghz(),
                            datacenter::power_model_quad_3ghz(), 32768.0));
        break;
      case 1:
        c.add_server(Server(datacenter::dual_core_2ghz(),
                            datacenter::power_model_dual_2ghz(), 8192.0));
        break;
      default:
        c.add_server(Server(datacenter::dual_core_1_5ghz(),
                            datacenter::power_model_dual_1_5ghz(), 12288.0));
        break;
    }
  }
  // Initial placement: first fit onto whatever still has room, so the
  // starting state is always feasible (and the instance non-degenerate).
  for (std::size_t v = 0; v < n_vms; ++v) {
    Vm vm;
    vm.cpu_demand_ghz = rng.uniform(0.2, 1.2);
    vm.memory_mb = rng.uniform(256.0, 1024.0);
    const auto start = static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(n_servers)));
    for (std::size_t k = 0; k < n_servers; ++k) {
      const auto s = static_cast<datacenter::ServerId>((start + k) % n_servers);
      double used = 0.0;
      for (const datacenter::VmId hosted : c.vms_on(s)) {
        used += c.vm(hosted).cpu_demand_ghz;
      }
      if (used + vm.cpu_demand_ghz <= c.server(s).cpu().max_capacity_ghz()) {
        (void)c.add_vm(vm, s);
        break;
      }
    }
  }
  return c;
}

/// Static power of an assignment under the linear utilization model the
/// snapshot carries: occupied servers draw idle + (max-idle) * utilization,
/// empty ones sleep. The same estimator scores every candidate, so the
/// comparisons are apples to apples.
double assignment_power(const DataCenterSnapshot& snap, const std::vector<ServerId>& host) {
  std::vector<double> demand(snap.servers.size(), 0.0);
  for (std::size_t v = 0; v < host.size(); ++v) {
    demand[host[v]] += snap.vms[v].cpu_demand_ghz;
  }
  double total = 0.0;
  for (const ServerSnapshot& s : snap.servers) {
    if (demand[s.id] > 0.0) {
      total += s.idle_power_w +
               (s.max_power_w - s.idle_power_w) * (demand[s.id] / s.max_capacity_ghz);
    } else {
      total += s.sleep_power_w;
    }
  }
  return total;
}

/// The assignment the snapshot starts from (every VM is placed).
std::vector<ServerId> initial_assignment(const DataCenterSnapshot& snap) {
  std::vector<ServerId> host(snap.vms.size(), kNoServer);
  for (const VmSnapshot& vm : snap.vms) host[vm.id] = snap.host_of(vm.id);
  return host;
}

/// The assignment after applying `plan` on top of the snapshot's placement.
std::vector<ServerId> assignment_after(const DataCenterSnapshot& snap,
                                       const PlacementPlan& plan) {
  std::vector<ServerId> host = initial_assignment(snap);
  for (const Move& move : plan.moves) host[move.vm] = move.to;
  return host;
}

std::size_t occupied_count(const std::vector<ServerId>& host) {
  std::vector<ServerId> used(host);
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used.size();
}

bool assignment_feasible(const DataCenterSnapshot& snap, const std::vector<ServerId>& host) {
  std::vector<double> demand(snap.servers.size(), 0.0);
  std::vector<double> memory(snap.servers.size(), 0.0);
  for (std::size_t v = 0; v < host.size(); ++v) {
    if (host[v] == kNoServer) return false;
    demand[host[v]] += snap.vms[v].cpu_demand_ghz;
    memory[host[v]] += snap.vms[v].memory_mb;
  }
  for (const ServerSnapshot& s : snap.servers) {
    if (demand[s.id] > s.max_capacity_ghz * kUtilizationTarget + kEps) return false;
    if (memory[s.id] > s.memory_mb + kEps) return false;
  }
  return true;
}

/// Brute force over every n_servers^n_vms assignment; returns the minimum
/// feasible power (infinity if the instance is infeasible, which the
/// generator precludes).
double brute_force_optimum(const DataCenterSnapshot& snap) {
  const std::size_t n_servers = snap.servers.size();
  const std::size_t n_vms = snap.vms.size();
  std::vector<ServerId> host(n_vms, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    if (assignment_feasible(snap, host)) {
      best = std::min(best, assignment_power(snap, host));
    }
    // Odometer increment over the assignment space.
    std::size_t digit = 0;
    while (digit < n_vms) {
      if (static_cast<std::size_t>(++host[digit]) < n_servers) break;
      host[digit] = 0;
      ++digit;
    }
    if (digit == n_vms) break;
  }
  return best;
}

/// FFD repack from scratch in power-efficiency order — the classic
/// baseline the incremental algorithms are measured against.
double ffd_repack_power(const DataCenterSnapshot& snap, const ConstraintSet& constraints) {
  WorkingPlacement placement(snap);
  std::vector<VmId> all;
  for (const VmSnapshot& vm : snap.vms) {
    placement.remove(vm.id);
    all.push_back(vm.id);
  }
  const std::vector<ServerId> order = servers_by_power_efficiency(snap);
  const FfdResult result = first_fit_decreasing(placement, order, all, constraints);
  EXPECT_TRUE(result.unplaced.empty());
  std::vector<ServerId> host(snap.vms.size(), kNoServer);
  for (const VmSnapshot& vm : snap.vms) host[vm.id] = placement.host_of(vm.id);
  return assignment_power(snap, host);
}

TEST(PackingExhaustive, RandomSmallInstancesSatisfyAllPackingProperties) {
  const ConstraintSet constraints = ConstraintSet::standard(kUtilizationTarget);
  std::size_t instances = 0;
  std::size_t instances_with_improvement = 0;
  std::size_t ipac_hits_optimum = 0;
  std::size_t ipac_no_worse_than_ffd = 0;

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const auto n_servers = static_cast<std::size_t>(rng.uniform(2.0, 5.0));  // 2..4
    const auto n_vms = static_cast<std::size_t>(rng.uniform(2.0, 7.0));      // 2..6
    Cluster cluster = random_cluster(rng, n_servers, n_vms);
    // Park empty servers before snapshotting, exactly as the testbed does
    // between optimizer passes. IPAC judges a round against the *active*
    // server count, and the power estimator assumes empty == sleeping; an
    // awake-but-empty server would let the two disagree.
    (void)cluster.sleep_idle_servers();
    const DataCenterSnapshot snap = snapshot_of(cluster);
    if (snap.vms.size() < 2) continue;  // capacity ran out during generation
    ++instances;

    const std::vector<ServerId> initial_host = initial_assignment(snap);
    const double initial = assignment_power(snap, initial_host);
    const double optimal = brute_force_optimum(snap);
    ASSERT_TRUE(std::isfinite(optimal)) << "seed " << seed;

    // Every planner must produce a complete, feasible plan.
    const IpacReport ipac_report = ipac(snap, constraints);
    EXPECT_TRUE(ipac_report.plan.complete()) << "seed " << seed;
    const std::vector<ServerId> ipac_host = assignment_after(snap, ipac_report.plan);
    EXPECT_TRUE(assignment_feasible(snap, ipac_host)) << "seed " << seed;

    const PMapperReport pmapper_report = pmapper(snap, constraints);
    EXPECT_TRUE(pmapper_report.plan.complete()) << "seed " << seed;
    EXPECT_TRUE(assignment_feasible(snap, assignment_after(snap, pmapper_report.plan)))
        << "seed " << seed;

    const double ipac_power = assignment_power(snap, ipac_host);
    const double ffd_power = ffd_repack_power(snap, constraints);

    // Consolidation never makes things worse — in power or in footprint —
    // and nobody beats brute force.
    EXPECT_LE(ipac_power, initial + kEps) << "seed " << seed;
    EXPECT_LE(occupied_count(ipac_host), occupied_count(initial_host)) << "seed " << seed;
    EXPECT_GE(ipac_power, optimal - kEps) << "seed " << seed;
    EXPECT_GE(ffd_power, optimal - kEps) << "seed " << seed;

    if (ipac_power < initial - kEps) ++instances_with_improvement;
    if (ipac_power <= optimal + kEps) ++ipac_hits_optimum;
    if (ipac_power <= ffd_power + kEps) ++ipac_no_worse_than_ffd;
  }
  // The sweep must actually exercise consolidation, not just no-ops, and
  // IPAC must be a *good* heuristic on tiny instances, not merely a safe
  // one: it lands on the brute-force optimum for most seeds and only
  // rarely loses to a from-scratch FFD repack (it is incremental — it can
  // get stuck in a local packing the repack is free to ignore).
  EXPECT_EQ(instances, 40u);
  EXPECT_GT(instances_with_improvement, 10u);
  EXPECT_GE(ipac_hits_optimum, 28u);
  EXPECT_GE(ipac_no_worse_than_ffd, 35u);
}

// ---- net-energy optimality on racked fleets ---------------------------------

/// Stationary power of an assignment INCLUDING shared infrastructure: the
/// per-server linear model above, plus each rack's (and pod's) shared draw
/// while >= 1 member is occupied — the same estimator the rack-aware
/// engines optimize, reimplemented independently.
double assignment_power_racked(const DataCenterSnapshot& snap,
                               const std::vector<ServerId>& host) {
  double total = assignment_power(snap, host);
  std::vector<std::size_t> occupancy(snap.servers.size(), 0);
  for (std::size_t v = 0; v < host.size(); ++v) ++occupancy[host[v]];
  std::vector<char> pod_lit(snap.pods.size(), 0);
  for (const RackSnapshot& rack : snap.racks) {
    bool lit = false;
    for (const ServerId s : rack.members) lit = lit || occupancy[s] > 0;
    if (lit) {
      total += rack.shared_power_w;
      if (rack.pod < snap.pods.size()) pod_lit[rack.pod] = 1;
    }
  }
  for (const PodSnapshot& pod : snap.pods) {
    if (pod_lit[pod.id] != 0) total += pod.shared_power_w;
  }
  return total;
}

/// Migration energy (J) to reach `host` from the snapshot's placement.
double assignment_migration_cost_j(const DataCenterSnapshot& snap,
                                   const std::vector<ServerId>& host,
                                   const RackAwareOptions& rack) {
  double total = 0.0;
  for (std::size_t v = 0; v < host.size(); ++v) {
    const ServerId origin = snap.host_of(static_cast<VmId>(v));
    if (origin == host[v]) continue;
    total += rack.cost.energy_j(snap.vms[v].memory_mb, snap.distance(origin, host[v]));
  }
  return total;
}

TEST(PackingExhaustive, RackAwareIpacNeverLosesNetEnergyOnTinyRackedFleets) {
  // Tiny 2-rack fleets where brute force over every assignment is cheap.
  // Objective: total energy over the horizon = stationary power (shared
  // draws included) * horizon + migration energy, minimized subject to the
  // plan budget. The budgeted pass must (a) never end up above the do-
  // nothing baseline, (b) never beat the brute-force optimum, and (c) stay
  // within its migration budget (no overload => no exempt relief moves).
  const ConstraintSet constraints = ConstraintSet::standard(kUtilizationTarget);
  RackAwareOptions rack;
  rack.enabled = true;
  rack.cost.transfer.cross_rack_bandwidth_factor = 0.5;
  rack.migration_energy_budget_j = 400.0;
  rack.benefit_horizon_s = 30.0;

  std::size_t instances = 0;
  std::size_t instances_improved = 0;
  std::size_t gates_fired = 0;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    util::Rng rng(seed);
    const auto n_servers = static_cast<std::size_t>(rng.uniform(4.0, 7.0));  // 4..6
    const auto n_vms = static_cast<std::size_t>(rng.uniform(3.0, 7.0));      // 3..6
    Cluster cluster = random_cluster(rng, n_servers, n_vms);
    // Two racks in one pod, first half of the servers in rack 0.
    datacenter::Topology topo;
    const datacenter::PodId pod = topo.add_pod(0.0);
    const datacenter::RackId r0 = topo.add_rack(pod, 20.0);
    const datacenter::RackId r1 = topo.add_rack(pod, 20.0);
    for (std::size_t s = 0; s < n_servers; ++s) {
      topo.assign(static_cast<ServerId>(s), s < (n_servers + 1) / 2 ? r0 : r1);
    }
    cluster.set_topology(std::move(topo));
    (void)cluster.sleep_idle_servers();
    const DataCenterSnapshot snap = snapshot_of(cluster);
    if (snap.vms.size() < 2) continue;
    ++instances;

    const std::vector<ServerId> initial_host = initial_assignment(snap);
    const double horizon = rack.benefit_horizon_s;
    const double baseline_j = assignment_power_racked(snap, initial_host) * horizon;

    // Brute force the budget-feasible net-energy optimum.
    std::vector<ServerId> host(snap.vms.size(), 0);
    double optimal_j = std::numeric_limits<double>::infinity();
    while (true) {
      if (assignment_feasible(snap, host)) {
        const double cost = assignment_migration_cost_j(snap, host, rack);
        if (cost <= rack.migration_energy_budget_j + kEps) {
          optimal_j = std::min(optimal_j, assignment_power_racked(snap, host) * horizon + cost);
        }
      }
      std::size_t digit = 0;
      while (digit < snap.vms.size()) {
        if (static_cast<std::size_t>(++host[digit]) < snap.servers.size()) break;
        host[digit] = 0;
        ++digit;
      }
      if (digit == snap.vms.size()) break;
    }
    ASSERT_LE(optimal_j, baseline_j + kEps) << "seed " << seed;  // no-move is feasible

    const IpacReport report = ipac(snap, constraints, FreeMigrationPolicy(), {}, rack);
    EXPECT_TRUE(report.plan.complete()) << "seed " << seed;
    const std::vector<ServerId> after = assignment_after(snap, report.plan);
    EXPECT_TRUE(assignment_feasible(snap, after)) << "seed " << seed;
    const double spent_j = assignment_migration_cost_j(snap, after, rack);
    EXPECT_LE(spent_j, rack.migration_energy_budget_j + kEps) << "seed " << seed;
    const double achieved_j = assignment_power_racked(snap, after) * horizon + spent_j;
    EXPECT_LE(achieved_j, baseline_j + 1e-6) << "seed " << seed;
    EXPECT_GE(achieved_j, optimal_j - 1e-6) << "seed " << seed;
    if (achieved_j < baseline_j - kEps) ++instances_improved;
    gates_fired += report.rounds_rejected_by_cost + report.rounds_rejected_by_budget;
  }
  // The sweep must exercise both the improvement path and the gates.
  EXPECT_EQ(instances, 30u);
  EXPECT_GT(instances_improved, 5u);
  EXPECT_GT(gates_fired, 0u);
}

TEST(PackingExhaustive, PlannersAgreeOnSingleServerInstances) {
  // Degenerate case: one server — nothing can move, plans must be empty.
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    util::Rng rng(seed);
    const Cluster cluster = random_cluster(rng, 1, 3);
    const DataCenterSnapshot snap = snapshot_of(cluster);
    const ConstraintSet constraints = ConstraintSet::standard(kUtilizationTarget);
    EXPECT_TRUE(ipac(snap, constraints).plan.moves.empty()) << "seed " << seed;
    EXPECT_TRUE(pmapper(snap, constraints).plan.moves.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vdc::consolidate
