#include "datacenter/cluster.hpp"

#include <gtest/gtest.h>

namespace vdc::datacenter {
namespace {

Cluster two_server_cluster() {
  Cluster c;
  c.add_server(Server(dual_core_2ghz(), power_model_dual_2ghz(), 4096.0));
  c.add_server(Server(dual_core_1_5ghz(), power_model_dual_1_5ghz(), 4096.0));
  return c;
}

Vm make_vm(double demand, double memory = 1024.0) {
  Vm vm;
  vm.cpu_demand_ghz = demand;
  vm.memory_mb = memory;
  return vm;
}

TEST(Cluster, TopologyBookkeeping) {
  Cluster c = two_server_cluster();
  EXPECT_EQ(c.server_count(), 2u);
  const VmId v0 = c.add_vm(make_vm(1.0), 0);
  const VmId v1 = c.add_vm(make_vm(0.5), 0);
  const VmId v2 = c.add_vm(make_vm(0.2));
  EXPECT_EQ(c.vm_count(), 3u);
  EXPECT_EQ(c.host_of(v0), 0u);
  EXPECT_EQ(c.host_of(v2), kNoServer);
  EXPECT_EQ(c.vms_on(0).size(), 2u);
  EXPECT_DOUBLE_EQ(c.server_cpu_demand_ghz(0), 1.5);
  EXPECT_DOUBLE_EQ(c.server_memory_used_mb(0), 2048.0);
  c.place(v2, 1);
  EXPECT_EQ(c.host_of(v2), 1u);
  EXPECT_THROW(c.place(v1, 1), std::logic_error);  // already placed
  (void)v1;
}

TEST(Cluster, BadIdsThrow) {
  Cluster c = two_server_cluster();
  EXPECT_THROW(static_cast<void>(c.server(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(c.vm(0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(c.vms_on(9)), std::out_of_range);
}

TEST(Cluster, MigrationMovesVmAndLogs) {
  Cluster c = two_server_cluster();
  const VmId v = c.add_vm(make_vm(1.0, 2048.0), 0);
  c.migrate(v, 1, 100.0);
  EXPECT_EQ(c.host_of(v), 1u);
  EXPECT_TRUE(c.vms_on(0).empty());
  ASSERT_EQ(c.migration_log().count(), 1u);
  const MigrationRecord& rec = c.migration_log().records()[0];
  EXPECT_EQ(rec.from, 0u);
  EXPECT_EQ(rec.to, 1u);
  EXPECT_DOUBLE_EQ(rec.time_s, 100.0);
  EXPECT_GT(rec.duration_s, 0.0);
  EXPECT_DOUBLE_EQ(rec.bytes, c.migration_model().bytes_moved(2048.0));
}

TEST(Cluster, SelfMigrationIsNoop) {
  Cluster c = two_server_cluster();
  const VmId v = c.add_vm(make_vm(1.0), 0);
  c.migrate(v, 0);
  EXPECT_EQ(c.migration_log().count(), 0u);
}

TEST(Cluster, MigrateUnplacedThrows) {
  Cluster c = two_server_cluster();
  const VmId v = c.add_vm(make_vm(1.0));
  EXPECT_THROW(c.migrate(v, 1), std::logic_error);
}

TEST(Cluster, OverloadDetection) {
  Cluster c = two_server_cluster();
  const VmId v = c.add_vm(make_vm(3.0), 0);  // demand 3 < 4 GHz capacity
  EXPECT_FALSE(c.overloaded(0));
  c.vm(v).cpu_demand_ghz = 4.5;
  EXPECT_TRUE(c.overloaded(0));
  EXPECT_EQ(c.overloaded_servers(), (std::vector<ServerId>{0}));
}

TEST(Cluster, MemoryOverloadDetected) {
  Cluster c = two_server_cluster();
  (void)c.add_vm(make_vm(0.1, 5000.0), 0);  // 5 GB on a 4 GB server
  EXPECT_TRUE(c.overloaded(0));
}

TEST(Cluster, SleepingHostWithVmsIsOverloaded) {
  Cluster c = two_server_cluster();
  (void)c.add_vm(make_vm(0.1), 0);
  c.server(0).set_state(ServerState::kSleeping);
  EXPECT_TRUE(c.overloaded(0));
}

TEST(Cluster, SleepIdleServersOnlyAffectsEmptyOnes) {
  Cluster c = two_server_cluster();
  (void)c.add_vm(make_vm(1.0), 0);
  EXPECT_EQ(c.active_server_count(), 2u);
  EXPECT_EQ(c.sleep_idle_servers(), 1u);
  EXPECT_EQ(c.active_server_count(), 1u);
  EXPECT_TRUE(c.server(0).active());
  c.wake(1);
  EXPECT_EQ(c.active_server_count(), 2u);
}

TEST(Cluster, ArbitrateAndPowerWithDvfs) {
  Cluster c = two_server_cluster();
  (void)c.add_vm(make_vm(1.0), 0);
  c.sleep_idle_servers();
  const double with_dvfs = c.arbitrate_and_power_w(true);
  // Server 0 runs at 1.0 GHz (capacity 2.0 >= demand 1.0); server 1 sleeps.
  EXPECT_DOUBLE_EQ(c.server(0).frequency_ghz(), 1.0);
  const double without_dvfs = c.arbitrate_and_power_w(false);
  EXPECT_DOUBLE_EQ(c.server(0).frequency_ghz(), 2.0);
  EXPECT_LT(with_dvfs, without_dvfs);
  // Both include the sleeping server's sleep power.
  EXPECT_GT(with_dvfs, power_model_dual_1_5ghz().sleep_w);
}

TEST(MigrationModel, DurationAndBytes) {
  const MigrationModel m{.network_bandwidth_mbps = 1000.0, .overhead_factor = 1.0,
                         .downtime_s = 0.0};
  // 1024 MB * 8 bits = 8192 Mb at 1000 Mbps -> 8.192 s.
  EXPECT_NEAR(m.duration_s(1024.0), 8.192, 1e-9);
  EXPECT_DOUBLE_EQ(m.bytes_moved(1024.0), 1024.0 * 1e6);
}

TEST(MigrationLog, Aggregates) {
  MigrationLog log;
  log.add(MigrationRecord{.vm = 0, .from = 0, .to = 1, .time_s = 0.0, .duration_s = 2.0,
                          .bytes = 100.0});
  log.add(MigrationRecord{.vm = 1, .from = 1, .to = 0, .time_s = 1.0, .duration_s = 3.0,
                          .bytes = 200.0});
  EXPECT_EQ(log.count(), 2u);
  EXPECT_DOUBLE_EQ(log.total_bytes(), 300.0);
  EXPECT_DOUBLE_EQ(log.total_duration_s(), 5.0);
  log.clear();
  EXPECT_EQ(log.count(), 0u);
  EXPECT_DOUBLE_EQ(log.total_bytes(), 0.0);
}

// ---- server failure / repair (fault injection) ------------------------------

TEST(Cluster, FailServerEvictsVmsAndZeroesThePowerDraw) {
  Cluster c = two_server_cluster();
  const VmId v0 = c.add_vm(make_vm(1.0), 0);
  const VmId v1 = c.add_vm(make_vm(0.5), 0);
  const VmId v2 = c.add_vm(make_vm(0.5), 1);

  const std::vector<VmId> evicted = c.fail_server(0);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(c.host_of(v0), kNoServer);
  EXPECT_EQ(c.host_of(v1), kNoServer);
  EXPECT_EQ(c.host_of(v2), 1u);  // the other server is untouched
  EXPECT_TRUE(c.server(0).failed());
  EXPECT_TRUE(c.vms_on(0).empty());
  EXPECT_DOUBLE_EQ(c.server(0).power_w(0.0), 0.0);  // dead iron draws nothing

  const std::vector<VmId> homeless = c.unplaced_vms();
  ASSERT_EQ(homeless.size(), 2u);
  EXPECT_EQ(homeless[0], v0);
  EXPECT_EQ(homeless[1], v1);
}

TEST(Cluster, FailedServerRefusesWakeUntilRepaired) {
  Cluster c = two_server_cluster();
  (void)c.fail_server(0);
  EXPECT_FALSE(c.wake(0));
  EXPECT_TRUE(c.server(0).failed());

  c.repair_server(0);
  EXPECT_FALSE(c.server(0).failed());
  EXPECT_FALSE(c.server(0).active());  // comes back sleeping, not serving
  EXPECT_TRUE(c.wake(0));
  EXPECT_TRUE(c.server(0).active());
}

TEST(Cluster, WakeSucceedsOnHealthyServers) {
  Cluster c = two_server_cluster();
  c.sleep_idle_servers();
  EXPECT_FALSE(c.server(1).active());
  EXPECT_TRUE(c.wake(1));
  EXPECT_TRUE(c.server(1).active());
  EXPECT_TRUE(c.wake(1));  // waking an active server is a harmless no-op
}

TEST(Cluster, RepairOnHealthyServerIsNoop) {
  Cluster c = two_server_cluster();
  c.repair_server(0);  // never failed
  EXPECT_TRUE(c.server(0).active());
  EXPECT_TRUE(c.unplaced_vms().empty());
}

}  // namespace
}  // namespace vdc::datacenter
