# Build-time clang-format driver for the `format` / `format-check` targets.
#
#   cmake -DMODE=check -DSOURCES_FILE=<list> -P run_clang_format.cmake
#   cmake -DMODE=fix   -DSOURCES_FILE=<list> -P run_clang_format.cmake
#
# Looked up here (at build time) rather than at configure time so installing
# clang-format does not require re-running cmake — and so a container without
# it degrades to a *visible* skip instead of a hard failure: formatting is a
# hygiene gate, not a build prerequisite. SOURCES_FILE holds one path per
# line (written at configure time; the list is too long for a command line
# on some platforms).

if(NOT DEFINED MODE OR NOT DEFINED SOURCES_FILE)
  message(FATAL_ERROR "usage: cmake -DMODE=check|fix -DSOURCES_FILE=<file> -P run_clang_format.cmake")
endif()

find_program(VDC_CLANG_FORMAT_BIN clang-format)
if(NOT VDC_CLANG_FORMAT_BIN)
  message(WARNING
    "clang-format not found in PATH - skipping format ${MODE}. "
    "Formatting was NOT verified; install clang-format to enable this gate.")
  return()
endif()

file(STRINGS "${SOURCES_FILE}" VDC_FORMAT_SOURCES)
if(MODE STREQUAL "fix")
  execute_process(COMMAND "${VDC_CLANG_FORMAT_BIN}" -i ${VDC_FORMAT_SOURCES}
                  RESULT_VARIABLE VDC_FORMAT_RC)
else()
  execute_process(COMMAND "${VDC_CLANG_FORMAT_BIN}" --dry-run -Werror ${VDC_FORMAT_SOURCES}
                  RESULT_VARIABLE VDC_FORMAT_RC)
endif()
if(NOT VDC_FORMAT_RC EQUAL 0)
  message(FATAL_ERROR "clang-format ${MODE} found violations (exit ${VDC_FORMAT_RC})")
endif()
