// Actuator ablation: what horizontal scaling and the robust control plane
// buy when DVFS alone runs out of headroom.
//
// Three scenario families, one committed JSON (BENCH_actuators.json):
//
//  1. Surge (standalone AppStack): the workload jumps from 40 to 240
//     concurrent clients mid-run. The MPC's continuous actuator saturates
//     at c_max per tier — 240 clients need more cycles than one replica
//     can be given — so DVFS-only stays infeasible while the supervisory
//     layer scales the tiers out and re-attains the SLA.
//       dvfs_only          MPC alone (the paper's controller)
//       horizontal         MPC + scaling supervisor
//       robust_horizontal  robust MPC variant + scaling supervisor
//
//  2. Chaos (same surge plus sensor faults): response samples dropped,
//     spiked 4x, and whole periods wedged stale while the surge response
//     is in flight. The nominal pipeline feeds the raw garbage to the MPC
//     and supervisor; the robust variant (spike filter, derated gain,
//     setpoint margin, release slew) must still re-attain the SLA — the
//     CI soft gate (--require-robust-slo) checks exactly that.
//
//  3. Testbed (full co-simulation): two apps on two servers with the
//     supervisor creating/retiring real cluster VMs, plus a DVFS-pin
//     actuator fault on server 0 while app 0 surges. Exercises replica
//     VM placement, per-server arbitration over replicas, and scale-in
//     retirement end to end.
//
// Flags:
//   --quick               shorter runs (CI smoke)
//   --out PATH            where to write the JSON (default BENCH_actuators.json)
//   --require-robust-slo  exit non-zero unless robust_horizontal re-attains
//                         the SLA under chaos (soft CI gate: the claim the
//                         robust layer exists to make)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace {

using namespace vdc;
using namespace vdc::core;

constexpr double kSetpointS = 1.0;
constexpr double kPeriodS = 4.0;
constexpr std::size_t kBaseClients = 40;
constexpr std::size_t kSurgeClients = 240;

control::MpcConfig mpc_config() {
  return control::MpcConfig{
      .prediction_horizon = 12,
      .control_horizon = 3,
      .q_weight = 1.0,
      .r_weight = {1.0},
      .period_s = kPeriodS,
      .tref_s = 16.0,
      .setpoint = kSetpointS,
      .c_min = {0.15},
      .c_max = {1.5},
      .delta_max = 0.3,
      .terminal = control::MpcConfig::Terminal::kSoft,
      .terminal_weight = 50.0,
      .disturbance_gain = 0.5,
  };
}

SupervisorConfig supervisor_config() {
  SupervisorConfig sup;
  sup.enabled = true;
  sup.max_replicas = 4;
  return sup;
}

control::RobustConfig robust_config() {
  return control::RobustConfig{};  // defaults: 30% gain margin, 0.9 setpoint
                                   // margin, 0.1 GHz release slew, 3-sample
                                   // spike filter
}

struct VariantMetrics {
  std::string name;
  double settled_p90_s = 0.0;  ///< mean recorded p90 over the settled window
  bool slo_ok = false;
  double reattain_s = -1.0;    ///< surge -> first sustained return under SLA
  double mean_alloc_ghz = 0.0; ///< post-surge sum of alloc x replicas (power proxy)
  double peak_replicas = 0.0;  ///< max total replicas across tiers
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::size_t stale_holds = 0;
};

/// Scores one scenario result. `surge_s` is when the surge hit, `settled_s`
/// where the steady-state window starts.
VariantMetrics analyze(const char* name, const ScenarioResult& result, double surge_s,
                       double settled_s) {
  VariantMetrics m;
  m.name = name;
  m.scale_outs = result.scale_outs;
  m.scale_ins = result.scale_ins;
  m.stale_holds = result.stale_holds;

  const util::RunningStats settled = result.response_stats_after(0, settled_s);
  m.settled_p90_s = settled.mean();
  m.slo_ok = settled.count() > 0 && m.settled_p90_s <= kSetpointS * 1.1;

  // Re-attain time: first period after the surge where the recorded p90
  // stays at or under 1.05 x setpoint for three consecutive periods.
  const std::vector<double>& resp = result.response_series(0);
  const auto first = static_cast<std::size_t>(surge_s / result.control_period_s);
  std::size_t streak = 0;
  for (std::size_t k = first; k < resp.size(); ++k) {
    streak = resp[k] <= kSetpointS * 1.05 ? streak + 1 : 0;
    if (streak == 3) {
      m.reattain_s = static_cast<double>(k - 2 + 1) * result.control_period_s - surge_s;
      break;
    }
  }

  // Power proxy: total granted capacity = per-replica allocation x replica
  // count, summed over tiers, averaged over the post-surge window. The
  // replica series exists only when replication is active (1 otherwise).
  const std::vector<std::vector<double>>& alloc = result.allocation_series(0);
  const bool replicated = result.recorder.has(replica_series_name(0));
  const std::vector<std::vector<double>>* replicas =
      replicated ? &result.recorder.rows(replica_series_name(0)) : nullptr;
  util::RunningStats alloc_stats;
  double peak = 0.0;
  for (std::size_t k = 0; k < alloc.size(); ++k) {
    double total_ghz = 0.0;
    double total_replicas = 0.0;
    for (std::size_t j = 0; j < alloc[k].size(); ++j) {
      const double n = replicas != nullptr && k < replicas->size() ? (*replicas)[k][j] : 1.0;
      total_ghz += alloc[k][j] * n;
      total_replicas += n;
    }
    if (total_replicas > peak) peak = total_replicas;
    if (static_cast<double>(k) * result.control_period_s >= surge_s) {
      alloc_stats.add(total_ghz);
    }
  }
  m.mean_alloc_ghz = alloc_stats.count() > 0 ? alloc_stats.mean() : 0.0;
  m.peak_replicas = peak;
  return m;
}

void append_metrics_json(std::string& json, const VariantMetrics& m) {
  char buf[400];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"settled_p90_s\": %.4f, \"slo_ok\": %s, "
                "\"reattain_s\": %.1f, \"mean_alloc_ghz\": %.3f, "
                "\"peak_replicas\": %.0f, \"scale_outs\": %llu, \"scale_ins\": %llu, "
                "\"stale_holds\": %zu}",
                m.name.c_str(), m.settled_p90_s, m.slo_ok ? "true" : "false", m.reattain_s,
                m.mean_alloc_ghz, m.peak_replicas,
                static_cast<unsigned long long>(m.scale_outs),
                static_cast<unsigned long long>(m.scale_ins), m.stale_holds);
  json += buf;
}

void print_metrics(const VariantMetrics& m) {
  std::printf("%-20s %12.3f %6s %11.1f %12.3f %9.0f %6llu/%llu\n", m.name.c_str(),
              m.settled_p90_s, m.slo_ok ? "yes" : "NO", m.reattain_s, m.mean_alloc_ghz,
              m.peak_replicas, static_cast<unsigned long long>(m.scale_outs),
              static_cast<unsigned long long>(m.scale_ins));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool require_robust_slo = false;
  std::string out_path = "BENCH_actuators.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--require-robust-slo") == 0) {
      require_robust_slo = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const double surge_s = quick ? 300.0 : 400.0;
  const double duration_s = quick ? 1100.0 : 1600.0;
  const double settled_s = duration_s - (quick ? 300.0 : 400.0);

  // One shared plant/model across every variant: identical workload, seed,
  // and ARX model, so the ONLY difference between rows is the control plane.
  AppStackConfig base;
  base.app = app::default_two_tier_app("surge", /*seed=*/11, kBaseClients);
  base.mpc = mpc_config();

  SysIdExperimentConfig sysid;
  const SysIdExperimentResult identified = identify_app_model(base.app, sysid);
  std::printf("# ablation_actuators: shared ARX model R^2 = %.3f\n", identified.r_squared);

  const auto make_spec = [&](const char* name, bool supervised, bool robust,
                             bool chaos) {
    ScenarioSpec spec;
    spec.name = name;
    spec.engine = ScenarioSpec::Engine::kAppStack;
    spec.stack = base;
    if (supervised) spec.stack.supervisor = supervisor_config();
    if (robust) spec.stack.robust = robust_config();
    spec.model = identified.model;
    spec.duration_s = duration_s;
    spec.concurrency_schedule = {{surge_s, 0, kSurgeClients}};
    if (chaos) {
      // Sensor faults land while the surge response is in flight: dropped
      // samples, 4x spikes, then a wedged (stale) monitor pipeline.
      spec.faults.sensor_dropout(surge_s + 100.0, surge_s + 180.0, 0.6, 0)
          .sensor_spikes(surge_s + 180.0, surge_s + 260.0, 4.0, 0.4, 0)
          .sensor_stale(surge_s + 260.0, surge_s + 308.0, 0);
    }
    return spec;
  };

  const std::vector<ScenarioSpec> specs = {
      make_spec("surge/dvfs_only", false, false, false),
      make_spec("surge/horizontal", true, false, false),
      make_spec("surge/robust_horizontal", true, true, false),
      make_spec("chaos/horizontal", true, false, true),
      make_spec("chaos/robust_horizontal", true, true, true),
  };
  const ScenarioRunner runner;
  const std::vector<ScenarioResult> results = runner.run_all(specs);

  std::printf("%-20s %12s %6s %11s %12s %9s %9s\n", "variant", "settled_p90", "slo",
              "reattain_s", "alloc_ghz", "peak_rep", "out/in");
  std::vector<VariantMetrics> metrics;
  metrics.reserve(results.size());
  for (const ScenarioResult& result : results) {
    metrics.push_back(analyze(result.name.c_str(), result, surge_s, settled_s));
    print_metrics(metrics.back());
  }

  // ---- testbed leg: replica VMs + DVFS-pin actuator fault -----------------
  ScenarioSpec tb;
  tb.name = "testbed/robust_horizontal";
  tb.engine = ScenarioSpec::Engine::kTestbed;
  tb.testbed.num_apps = 2;
  tb.testbed.num_servers = 2;
  tb.testbed.concurrency = kBaseClients;
  tb.testbed.supervisor = supervisor_config();
  tb.testbed.robust = robust_config();
  tb.testbed.replica_boot_delay_s = 30.0;
  tb.model = identified.model;
  tb.duration_s = quick ? 800.0 : 1200.0;
  const double tb_surge_s = quick ? 250.0 : 400.0;
  tb.concurrency_schedule = {{tb_surge_s, 0, quick ? std::size_t{200} : std::size_t{220}}};
  // Actuator fault: server 0 pinned to its lowest DVFS step mid-surge.
  tb.faults.dvfs_pin(0, 1.0, tb_surge_s + 100.0, tb_surge_s + 300.0);
  const ScenarioResult tb_result = runner.run(tb);
  const VariantMetrics tb_metrics = analyze("testbed/robust_horizontal", tb_result,
                                            tb_surge_s, tb.duration_s - 300.0);
  print_metrics(tb_metrics);
  std::printf("testbed: %zu migrations, %llu scale-outs, %llu scale-ins\n",
              tb_result.completed_migrations,
              static_cast<unsigned long long>(tb_result.scale_outs),
              static_cast<unsigned long long>(tb_result.scale_ins));

  const VariantMetrics& dvfs_only = metrics[0];
  const VariantMetrics& robust_chaos = metrics[4];
  const bool dvfs_only_infeasible = !dvfs_only.slo_ok;
  const bool robust_reattains = robust_chaos.slo_ok && robust_chaos.reattain_s >= 0.0;

  std::string json = "{\n  \"bench\": \"ablation_actuators\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"setpoint_s\": %.2f,\n  \"surge\": {\"time_s\": %.0f, \"from\": %zu, "
                "\"to\": %zu},\n  \"model_r_squared\": %.4f,\n  \"variants\": {\n",
                kSetpointS, surge_s, kBaseClients, kSurgeClients, identified.r_squared);
  json += line;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    append_metrics_json(json, metrics[i]);
    json += ",\n";
  }
  append_metrics_json(json, tb_metrics);
  json += "\n  },\n";
  std::snprintf(line, sizeof(line),
                "  \"testbed\": {\"migrations\": %zu, \"scale_outs\": %llu, "
                "\"scale_ins\": %llu},\n",
                tb_result.completed_migrations,
                static_cast<unsigned long long>(tb_result.scale_outs),
                static_cast<unsigned long long>(tb_result.scale_ins));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"dvfs_only_infeasible\": %s,\n  \"robust_reattains_under_chaos\": %s\n}\n",
                dvfs_only_infeasible ? "true" : "false",
                robust_reattains ? "true" : "false");
  json += line;

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (require_robust_slo && !robust_reattains) {
    std::fprintf(stderr,
                 "FAIL: robust_horizontal did not re-attain the SLA under chaos "
                 "(settled p90 %.3f s, reattain %.1f s)\n",
                 robust_chaos.settled_p90_s, robust_chaos.reattain_s);
    return 1;
  }
  return 0;
}
