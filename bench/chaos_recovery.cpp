// Chaos-recovery demonstration: the two-level controller under a scripted
// fault campaign. Three fault windows open and close over a 1200 s run:
//
//   [  0, 300)  every live migration aborts at end-of-copy — the optimizer
//               notes each failure, backs the VM off, and re-plans against
//               the realized placement once the window clears;
//   [150, 350)  server 0 crashes (while the abort window still pins its
//               VMs in place) — its VMs are evicted, the optimizer
//               restarts them elsewhere, and the box is repaired cold;
//   [700, 800)  app 0's sensor pipeline goes stale — its MPC degrades to a
//               hold (frozen allocation) instead of chasing ghost data.
//
// Expected shape: consolidation is *delayed*, not prevented; every SLA is
// re-attained after the last window clears; the whole story is legible in
// the telemetry annotations.
#include <cmath>
#include <cstdio>

#include "core/testbed.hpp"
#include "telemetry/export.hpp"

int main() {
  using namespace vdc;

  core::TestbedConfig config;
  config.num_apps = 4;
  config.num_servers = 6;  // oversized so consolidation has work to do
  config.enable_optimizer = true;
  config.optimizer_period_s = 120.0;
  config.optimizer_migration_backoff_s = 150.0;
  config.faults.migration_aborts(0.0, 300.0, 1.0)
      .server_crash(0, 150.0, 350.0)
      .sensor_stale(700.0, 800.0, 0);
  core::Testbed testbed(config);

  std::printf("# Chaos recovery: 4 apps x 2 tiers on 6 servers, IPAC every 120 s\n");
  std::printf("# faults: migration aborts [0,300), srv0 crash [150,350), "
              "app0 sensor stale [700,800)\n\n");
  testbed.run_until(1200.0);

  const auto& power = testbed.power_series();
  const auto& active = testbed.recorder().values(core::kActiveServersSeries);
  const auto& migrated = testbed.recorder().values(core::kMigrationsCompletedSeries);
  const auto& failed = testbed.recorder().values(core::kFailedMigrationsSeries);
  std::printf("%-10s %12s %12s %12s %12s\n", "time(s)", "power (W)", "active srv",
              "migrations", "failed migr");
  for (double t = 100.0; t <= 1200.0; t += 100.0) {
    // One probe sample per 4 s control period; the tick at `t` is index t/4-1.
    const auto k = static_cast<std::size_t>(t / config.control_period_s) - 1;
    std::printf("%-10.0f %12.1f %12.0f %12.0f %12.0f\n", t,
                power[std::min(k, power.size() - 1)], active[k], migrated[k], failed[k]);
  }

  std::printf("\n# fault annotations (the recovery story, verbatim):\n");
  for (const telemetry::Annotation& a : testbed.recorder().annotations()) {
    std::printf("#   @%6.0f s  %s\n", a.time_s, a.label.c_str());
  }

  const fault::FaultCounters& counters = testbed.fault_injector().counters();
  std::size_t stale_holds = 0;
  for (std::size_t i = 0; i < testbed.app_count(); ++i) {
    if (const core::ResponseTimeController* c = testbed.app_stack(i).controller()) {
      stale_holds += c->stale_holds();
    }
  }

  std::printf("\n# response times after the last fault window clears (t > 900 s):\n");
  bool all_tracked = true;
  for (std::size_t i = 0; i < testbed.app_count(); ++i) {
    const util::RunningStats s = testbed.response_stats_after(i, 900.0);
    std::printf("#   app%zu: mean p90 = %4.0f ms (std %3.0f)\n", i + 1,
                s.mean() * 1000.0, s.stddev() * 1000.0);
    all_tracked = all_tracked && std::abs(s.mean() - 1.0) < 0.3;
  }

  const bool optimizer_replanned =
      testbed.failed_migrations() > 0 && testbed.completed_migrations() > 0;
  const bool crash_recovered = counters.server_crashes == 1 && testbed.vm_restarts() > 0;
  const bool mpc_held = stale_holds > 0;
  const bool consolidated = !active.empty() && active.back() < static_cast<double>(config.num_servers);

  std::printf("\n# %zu migrations aborted, %zu completed after retry -> %s\n",
              testbed.failed_migrations(), testbed.completed_migrations(),
              optimizer_replanned ? "OPTIMIZER RE-PLANNED" : "MISMATCH");
  std::printf("# srv0 crash evicted VMs, %zu restarted elsewhere -> %s\n",
              testbed.vm_restarts(), crash_recovered ? "RECOVERED" : "MISMATCH");
  std::printf("# app0 stale sensor: %zu MPC hold periods -> %s\n", stale_holds,
              mpc_held ? "GRACEFUL DEGRADATION" : "MISMATCH");
  std::printf("# %.0f of %zu servers active at the end -> %s\n", active.back(),
              config.num_servers, consolidated ? "STILL CONSOLIDATED" : "MISMATCH");
  std::printf("# SLAs re-attained after the chaos -> %s\n",
              all_tracked ? "REPRODUCED" : "MISMATCH");
  return optimizer_replanned && crash_recovered && mpc_held && consolidated && all_tracked
             ? 0
             : 1;
}
