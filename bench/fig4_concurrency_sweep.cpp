// Figure 4 reproduction: response time of App5 under different workloads.
// The controller was designed (identified) at concurrency 40; the sweep
// runs it at concurrency 30..80 to test robustness off the design point.
//
// Paper's observation: the controller achieves the desired response time
// for all the concurrency levels.
//
// The sweep is a declarative ScenarioSpec table: one standalone AppStack
// scenario per concurrency level, all sharing the once-identified model,
// executed in parallel by the ScenarioRunner.
#include <cstdio>

#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "telemetry_footprint.hpp"

namespace {

using namespace vdc;

control::MpcConfig tuned_mpc() {
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;
  return mpc;
}

}  // namespace

int main() {
  using namespace vdc;

  std::printf("# Figure 4: response time of App5 under different workloads\n");
  std::printf("# model identified ONCE at concurrency 40, then applied to all levels\n");
  const app::AppConfig staging = app::default_two_tier_app("staging", 1001, 40);
  const core::SysIdExperimentResult identified = core::identify_app_model(staging);
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);

  const std::vector<std::size_t> levels = {30, 40, 50, 60, 70, 80};
  std::vector<core::ScenarioSpec> specs;
  for (const std::size_t level : levels) {
    core::ScenarioSpec spec;
    spec.name = "concurrency-" + std::to_string(level);
    spec.model = identified.model;
    spec.stack.app = app::default_two_tier_app("a", 2000 + level, level);
    spec.stack.mpc = tuned_mpc();
    spec.duration_s = 1200.0;  // 300 control periods
    specs.push_back(std::move(spec));
  }
  const std::vector<core::ScenarioResult> results = core::ScenarioRunner().run_all(specs);

  std::printf("%-14s %14s %12s\n", "concurrency", "mean p90 (ms)", "std (ms)");
  double worst = 0.0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    // Discard the first 75 periods (300 s) of settling, as before.
    const util::RunningStats tail = results[i].response_stats_after(0, 300.0);
    std::printf("%-14zu %14.0f %12.0f\n", levels[i], tail.mean() * 1000.0,
                tail.stddev() * 1000.0);
    worst = std::max(worst, std::abs(tail.mean() - 1.0));
  }
  vdc::bench::print_telemetry_footprint(results.front().recorder);
  std::printf("\n# paper: desired response time achieved at every level (set point 1000 ms)\n");
  std::printf("# measured: worst |mean - setpoint| = %.0f ms -> %s\n", worst * 1000.0,
              worst < 0.15 ? "REPRODUCED" : "MISMATCH");
  return worst < 0.15 ? 0 : 1;
}
