// Figure 4 reproduction: response time of App5 under different workloads.
// The controller was designed (identified) at concurrency 40; the sweep
// runs it at concurrency 30..80 to test robustness off the design point.
//
// Paper's observation: the controller achieves the desired response time
// for all the concurrency levels.
#include <cstdio>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace vdc;

control::MpcConfig tuned_mpc() {
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;
  return mpc;
}

util::RunningStats run_at_concurrency(const control::ArxModel& model,
                                      std::size_t concurrency, std::uint64_t seed) {
  sim::Simulation sim;
  app::MultiTierApp live(sim, app::default_two_tier_app("a", seed, concurrency));
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.6);
  live.set_allocations(initial);
  live.start();
  core::ResponseTimeController controller(model, tuned_mpc(), initial);
  util::RunningStats tail;
  for (int k = 1; k <= 300; ++k) {
    sim.run_until(4.0 * k);
    live.set_allocations(controller.control(monitor.harvest()));
    if (k > 75) tail.add(controller.last_measurement());
  }
  return tail;
}

}  // namespace

int main() {
  using namespace vdc;

  std::printf("# Figure 4: response time of App5 under different workloads\n");
  std::printf("# model identified ONCE at concurrency 40, then applied to all levels\n");
  const app::AppConfig staging = app::default_two_tier_app("staging", 1001, 40);
  const core::SysIdExperimentResult identified = core::identify_app_model(staging);
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);

  const std::vector<std::size_t> levels = {30, 40, 50, 60, 70, 80};
  std::vector<util::RunningStats> results(levels.size());
  util::parallel_for(levels.size(), [&](std::size_t i) {
    results[i] = run_at_concurrency(identified.model, levels[i], 2000 + levels[i]);
  });

  std::printf("%-14s %14s %12s\n", "concurrency", "mean p90 (ms)", "std (ms)");
  double worst = 0.0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("%-14zu %14.0f %12.0f\n", levels[i], results[i].mean() * 1000.0,
                results[i].stddev() * 1000.0);
    worst = std::max(worst, std::abs(results[i].mean() - 1.0));
  }
  std::printf("\n# paper: desired response time achieved at every level (set point 1000 ms)\n");
  std::printf("# measured: worst |mean - setpoint| = %.0f ms -> %s\n", worst * 1000.0,
              worst < 0.15 ? "REPRODUCED" : "MISMATCH");
  return worst < 0.15 ? 0 : 1;
}
