// Ablation: Minimum Slack vs First-Fit Decreasing packing quality.
//
// The paper's claim (Section VII): "Typically, Minimum Slack provides a
// better solution in terms of power consumption", especially with extra
// constraints (memory). This ablation packs random VM sets onto a
// heterogeneous server pool with both heuristics and compares servers
// used, residual slack, and run time.
#include <chrono>
#include <cstdio>
#include <numeric>

#include "consolidate/ffd.hpp"
#include "consolidate/pac.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace {

using namespace vdc;
using namespace vdc::consolidate;

DataCenterSnapshot random_instance(std::size_t servers, std::size_t vms, util::Rng& rng,
                                   bool tight_memory) {
  DataCenterSnapshot snap;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = tight_memory ? rng.uniform(3000.0, 8000.0) : 1e9;
    s.max_power_w = 150.0 + s.max_capacity_ghz * rng.uniform(10.0, 25.0);
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = true;
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.2, 2.0);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
  }
  return snap;
}

struct Outcome {
  double servers_used = 0.0;
  double unplaced = 0.0;
  double occupied_slack_ghz = 0.0;
  double micros = 0.0;
};

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  std::printf("# Ablation: Minimum Slack (PAC) vs First-Fit Decreasing packing\n");
  std::printf("# 30 random instances each; 40 servers; memory constraint toggled\n\n");

  for (const bool tight_memory : {false, true}) {
    for (const std::size_t vms : {60ul, 120ul}) {
      util::RunningStats pac_used;
      util::RunningStats ffd_used;
      util::RunningStats pac_us;
      util::RunningStats ffd_us;
      util::RunningStats pac_unplaced;
      util::RunningStats ffd_unplaced;
      for (int trial = 0; trial < 30; ++trial) {
        util::Rng rng(static_cast<std::uint64_t>(trial * 7919 + vms));
        const DataCenterSnapshot snap = random_instance(40, vms, rng, tight_memory);
        const ConstraintSet constraints = ConstraintSet::standard(1.0);
        std::vector<VmId> all(snap.vms.size());
        std::iota(all.begin(), all.end(), 0);

        WorkingPlacement pac_wp(snap);
        auto t0 = Clock::now();
        const PacResult pac = power_aware_consolidation(pac_wp, all, constraints);
        auto t1 = Clock::now();
        pac_used.add(static_cast<double>(pac_wp.occupied_server_count()));
        pac_unplaced.add(static_cast<double>(pac.unplaced.size()));
        pac_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());

        WorkingPlacement ffd_wp(snap);
        const std::vector<ServerId> order = servers_by_power_efficiency(snap);
        t0 = Clock::now();
        const FfdResult ffd = first_fit_decreasing(ffd_wp, order, all, constraints);
        t1 = Clock::now();
        ffd_used.add(static_cast<double>(ffd_wp.occupied_server_count()));
        ffd_unplaced.add(static_cast<double>(ffd.unplaced.size()));
        ffd_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      std::printf("memory=%-5s vms=%-4zu | servers used: MinSlack %5.2f  FFD %5.2f | "
                  "unplaced: %4.2f vs %4.2f | time: %7.0fus vs %5.0fus\n",
                  tight_memory ? "tight" : "ample", vms, pac_used.mean(), ffd_used.mean(),
                  pac_unplaced.mean(), ffd_unplaced.mean(), pac_us.mean(), ffd_us.mean());
    }
  }
  std::printf("\n# paper: Minimum Slack packs better (fewer/fuller servers), at higher cost;\n");
  std::printf("# IPAC amortizes that cost by consolidating only small migration lists.\n");
  return 0;
}
