// Figure 6 reproduction: energy consumption per VM over 7 days under
// different data-center sizes (30 .. 5,415 VMs), IPAC vs pMapper.
//
// Paper's observations:
//   * IPAC consumes less energy per VM than pMapper at every size
//     (40.7% average saving in the paper's setup);
//   * per-VM energy grows with the number of VMs for both schemes, because
//     the limited supply of power-efficient servers is used up first.
//
// The paper sweeps 54 sizes; this harness uses a representative subset so
// the run finishes in about a minute (pass --full for a denser sweep).
#include <cstdio>
#include <cstring>
#include <mutex>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace vdc;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::printf("# Figure 6: energy per VM in 7 days vs number of VMs (IPAC vs pMapper)\n");
  std::printf("# generating synthetic 5,415-server utilization trace ...\n");
  const trace::UtilizationTrace trace = trace::generate_synthetic_trace();
  std::printf("# trace: %zu series x %zu samples, mean utilization %.1f%%\n\n",
              trace.server_count(), trace.sample_count(), 100.0 * trace.global_mean());

  std::vector<std::size_t> sizes = {30, 100, 330, 630, 1030, 1530, 2030,
                                    2530, 3030, 3530, 4030, 4530, 5030, 5415};
  if (full) {
    sizes.clear();
    for (std::size_t n = 30; n < 5415; n += 100) sizes.push_back(n);
    sizes.push_back(5415);
  }

  const core::TraceDrivenSimulator simulator(trace);
  struct Row {
    core::TraceSimResult ipac;
    core::TraceSimResult pmapper;
  };
  std::vector<Row> rows(sizes.size());
  // Jobs are independent and deterministic; parallelize over (size, algo).
  util::parallel_for(sizes.size() * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool ipac = job % 2 == 0;
    core::TraceSimConfig config;
    config.num_vms = sizes[i];
    config.algorithm =
        ipac ? core::ConsolidationAlgorithm::kIpac : core::ConsolidationAlgorithm::kPMapper;
    // The paper couples IPAC with the DVFS-capable controller; pMapper's
    // performance management relies on DVFS-less placement.
    config.dvfs = ipac;
    (ipac ? rows[i].ipac : rows[i].pmapper) = simulator.run(config);
  });

  std::printf("%-8s %16s %20s %10s %14s %14s\n", "#VMs", "IPAC (Wh/VM)",
              "pMapper (Wh/VM)", "saving", "IPAC migr.", "pMapper migr.");
  double saving_sum = 0.0;
  bool ipac_always_wins = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double a = rows[i].ipac.energy_wh_per_vm;
    const double b = rows[i].pmapper.energy_wh_per_vm;
    const double saving = 1.0 - a / b;
    saving_sum += saving;
    ipac_always_wins = ipac_always_wins && a < b;
    std::printf("%-8zu %16.1f %20.1f %9.1f%% %14zu %14zu\n", sizes[i], a, b,
                100.0 * saving, rows[i].ipac.migrations, rows[i].pmapper.migrations);
  }
  const double avg_saving = saving_sum / static_cast<double>(sizes.size());
  const bool grows = rows.back().ipac.energy_wh_per_vm >
                     1.2 * rows.front().ipac.energy_wh_per_vm;

  std::printf("\n# paper: IPAC below pMapper at every size (40.7%% average saving there)\n");
  std::printf("# measured: IPAC wins everywhere -> %s; average saving = %.1f%%\n",
              ipac_always_wins ? "REPRODUCED" : "MISMATCH", 100.0 * avg_saving);
  std::printf("# paper: per-VM energy grows with #VMs (efficient servers deplete)\n");
  std::printf("# measured: %.0f Wh/VM at %zu VMs vs %.0f Wh/VM at %zu VMs -> %s\n",
              rows.front().ipac.energy_wh_per_vm, sizes.front(),
              rows.back().ipac.energy_wh_per_vm, sizes.back(),
              grows ? "REPRODUCED" : "MISMATCH");
  return ipac_always_wins && grows ? 0 : 1;
}
