// Event-loop performance regression harness.
//
// Drives an identical closed-loop workload — N clients cycling through a
// processor-sharing queue with heavy-tailed demands and exponential think
// times — through both the optimized engine (sim::Simulation slab +
// dual-mode sim::PsQueue) and the retained naive reference
// (sim::naive::*), and reports throughput for each at 1k / 10k / 100k
// resident jobs. Results are written as machine-readable JSON
// (BENCH_eventloop.json) so CI can gate on regressions.
//
// Flags:
//   --quick            smaller completion targets, skip the 100k size
//                      (CI smoke mode)
//   --full-naive       also run the naive engine at 100k jobs (minutes)
//   --out PATH         where to write the JSON (default BENCH_eventloop.json)
//   --min-speedup X    exit non-zero if optimized/naive events-per-second
//                      at 10k jobs falls below X (CI gate; 0 disables)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/naive.hpp"
#include "sim/ps_queue.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t completions = 0;
  double wall_s = 0.0;

  [[nodiscard]] double events_per_sec() const { return static_cast<double>(events) / wall_s; }
  [[nodiscard]] double ns_per_event() const {
    return wall_s * 1e9 / static_cast<double>(events);
  }
  [[nodiscard]] double requests_per_sec() const {
    return static_cast<double>(completions) / wall_s;
  }
};

/// Runs the closed-loop workload on any engine exposing the shared
/// Simulation/PsQueue API. The Rng draw sequence is a pure function of the
/// completion order, which both engines reproduce identically, so the two
/// measurements execute the same logical event sequence.
template <typename Sim, typename Queue>
RunResult run_closed_loop(std::size_t n_jobs, std::uint64_t target_completions) {
  Sim sim;
  vdc::util::Rng rng(0xbadc0ffee0ddf00dull);
  std::uint64_t completions = 0;

  auto demand = [&rng]() { return rng.bounded_pareto(1.5, 0.05, 5.0); };

  Queue* queue_ptr = nullptr;
  Queue queue(sim, 2.4, [&](std::uint64_t /*job*/) {
    ++completions;
    if (completions >= target_completions) return;
    const double think = rng.exponential(0.01);
    sim.schedule_after(think, [&] { queue_ptr->add_job(demand()); });
  });
  queue_ptr = &queue;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_jobs; ++i) queue.add_job(demand());
  while (completions < target_completions && sim.step()) {
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.events = sim.events_executed();
  out.completions = completions;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (out.wall_s <= 0.0) out.wall_s = 1e-9;  // clock granularity floor
  return out;
}

void append_run_json(std::string& json, const char* key, const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"events\": %llu, \"completions\": %llu, \"wall_s\": %.6f, "
                "\"events_per_sec\": %.1f, \"ns_per_event\": %.1f, \"requests_per_sec\": %.1f}",
                key, static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.completions), r.wall_s, r.events_per_sec(),
                r.ns_per_event(), r.requests_per_sec());
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full_naive = false;
  std::string out_path = "BENCH_eventloop.json";
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full-naive") == 0) {
      full_naive = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  if (quick) sizes.pop_back();

  std::printf("# perf_eventloop: optimized engine vs retained naive reference\n");
  std::printf("%-8s %-10s %14s %12s %14s\n", "jobs", "engine", "events/sec", "ns/event",
              "requests/sec");

  std::string json = "{\n  \"bench\": \"perf_eventloop\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  json += "  \"sizes\": [\n";

  double speedup_at_10k = 0.0;
  bool first = true;
  for (const std::size_t n : sizes) {
    // Enough completions to amortize warm-up but bounded so the naive
    // engine's O(n)-per-event sync stays tolerable at 10k jobs.
    const std::uint64_t target = quick ? n : 2 * n;
    const RunResult opt = run_closed_loop<vdc::sim::Simulation, vdc::sim::PsQueue>(n, target);
    std::printf("%-8zu %-10s %14.0f %12.1f %14.1f\n", n, "optimized", opt.events_per_sec(),
                opt.ns_per_event(), opt.requests_per_sec());

    // The naive engine at 100k jobs walks 100k residuals per event; that run
    // takes minutes and is opt-in.
    const bool run_naive = n < 100000 || full_naive;
    RunResult naive;
    if (run_naive) {
      naive =
          run_closed_loop<vdc::sim::naive::Simulation, vdc::sim::naive::PsQueue>(n, target);
      std::printf("%-8zu %-10s %14.0f %12.1f %14.1f\n", n, "naive", naive.events_per_sec(),
                  naive.ns_per_event(), naive.requests_per_sec());
    }

    const double speedup = run_naive ? opt.events_per_sec() / naive.events_per_sec() : 0.0;
    if (run_naive) std::printf("%-8zu %-10s %13.2fx\n", n, "speedup", speedup);
    if (n == 10000) speedup_at_10k = speedup;

    if (!first) json += ",\n";
    first = false;
    char head[64];
    std::snprintf(head, sizeof(head), "    {\"jobs\": %zu,\n", n);
    json += head;
    append_run_json(json, "optimized", opt);
    json += ",\n";
    if (run_naive) {
      append_run_json(json, "naive", naive);
      char tail[64];
      std::snprintf(tail, sizeof(tail), ",\n      \"speedup\": %.2f}", speedup);
      json += tail;
    } else {
      json += "      \"naive\": null}";
    }
  }
  json += "\n  ],\n";
  char tail[64];
  std::snprintf(tail, sizeof(tail), "  \"speedup_at_10k\": %.2f\n}\n", speedup_at_10k);
  json += tail;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (min_speedup > 0.0 && speedup_at_10k < min_speedup) {
    std::fprintf(stderr, "REGRESSION: speedup at 10k jobs %.2fx < required %.2fx\n",
                 speedup_at_10k, min_speedup);
    return 1;
  }
  return 0;
}
