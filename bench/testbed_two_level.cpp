// Two-level integration on the testbed scale (Section VII-A's second half:
// "We first evaluate the response time controller and examine the power
// optimizer on the hardware testbed").
//
// Eight two-tier applications start scattered across eight servers (twice
// the paper's four) — deliberately wasteful. The data-center-level
// optimizer consolidates the sixteen tier VMs onto fewer machines with
// live-migration semantics (copy + stop-and-copy downtime) while every
// application's MPC keeps its 90-percentile response time at 1000 ms.
//
// Expected shape: cluster power drops sharply after the first optimizer
// invocation; response times stay at the set point apart from sub-second
// migration blips.
//
// The timeline table is reconstructed post-run from the telemetry probes
// (active servers, completed migrations) sampled every control period.
#include <cstdio>

#include "core/testbed.hpp"

int main() {
  using namespace vdc;

  core::TestbedConfig config;
  config.num_servers = 8;  // oversized on purpose
  config.enable_optimizer = true;
  config.optimizer_period_s = 300.0;
  config.optimizer_algorithm = core::ConsolidationAlgorithm::kIpac;
  core::Testbed testbed(config);

  std::printf("# Two-level testbed: 8 apps x 2 tiers on 8 servers, IPAC every 300 s\n");
  std::printf("# model R^2 = %.2f\n\n", testbed.model_r_squared());
  testbed.run_until(1200.0);

  const auto& power = testbed.power_series();
  const auto& active = testbed.recorder().values(core::kActiveServersSeries);
  const auto& migrated = testbed.recorder().values(core::kMigrationsCompletedSeries);
  std::printf("%-10s %12s %14s %14s\n", "time(s)", "power (W)", "active srv",
              "migrations");
  for (double t = 100.0; t <= 1200.0; t += 100.0) {
    // One probe sample per 4 s control period; the tick at `t` is index t/4-1.
    const auto k = static_cast<std::size_t>(t / config.control_period_s) - 1;
    std::printf("%-10.0f %12.1f %14.0f %14.0f\n", t, power[std::min(k, power.size() - 1)],
                active[k], migrated[k]);
  }

  // Power before vs after consolidation.
  const auto avg = [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t k = lo; k < hi && k < power.size(); ++k) s += power[k];
    return s / static_cast<double>(hi - lo);
  };
  const double before = avg(10, 70);    // 40-280 s: pre-consolidation
  const double after = avg(150, 290);   // 600-1160 s: consolidated steady state

  std::printf("\n# response times with the optimizer active (after 400 s settling):\n");
  bool all_tracked = true;
  for (std::size_t i = 0; i < testbed.app_count(); ++i) {
    const util::RunningStats s = testbed.response_stats_after(i, 400.0);
    std::printf("#   app%zu: mean p90 = %4.0f ms (std %3.0f)\n", i + 1,
                s.mean() * 1000.0, s.stddev() * 1000.0);
    all_tracked = all_tracked && std::abs(s.mean() - 1.0) < 0.25;
  }
  const bool power_drops = after < 0.8 * before;
  std::printf("\n# power: %.1f W scattered -> %.1f W consolidated (%.0f%% saving) -> %s\n",
              before, after, 100.0 * (1.0 - after / before),
              power_drops ? "REPRODUCED" : "MISMATCH");
  std::printf("# SLAs maintained through consolidation -> %s\n",
              all_tracked ? "REPRODUCED" : "MISMATCH");
  std::printf("# %zu live migrations, %zu optimizer invocations\n",
              testbed.completed_migrations(), testbed.optimizer_invocations());
  return power_drops && all_tracked ? 0 : 1;
}
