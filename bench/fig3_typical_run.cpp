// Figure 3 reproduction: typical runs of the response time controller and
// a no-control baseline under a workload increase. App5's concurrency
// doubles from 40 to 80 between t=600 s and t=1200 s.
//
// Paper's observations:
//   (a) the controller settles to the 1000 ms set point, the surge causes
//       a transient violation, and the response time converges back;
//   (b) cluster power rises slightly during the surge (more CPU allocated);
//   the pMapper baseline, which manages placement but not response time,
//   leaves the violation standing for the whole surge.
//
// Both runs — the controlled testbed and the static-allocation baseline —
// are ScenarioSpecs executed in parallel by the ScenarioRunner.
#include <cstdio>

#include "core/scenario.hpp"
#include "telemetry_footprint.hpp"

int main() {
  using namespace vdc;

  constexpr std::size_t kApp5 = 4;
  std::vector<core::ScenarioSpec> specs(2);

  // (1) The controlled testbed with the paper's surge schedule.
  specs[0].name = "controlled";
  specs[0].engine = core::ScenarioSpec::Engine::kTestbed;
  specs[0].duration_s = 1500.0;
  specs[0].concurrency_schedule = {{.time_s = 600.0, .app = kApp5, .concurrency = 80},
                                   {.time_s = 1200.0, .app = kApp5, .concurrency = 40}};

  // (2) The same surge with NO response-time control: allocations stay at
  // values sized for the nominal load (what a placement-only manager like
  // pMapper provides).
  specs[1].name = "uncontrolled-baseline";
  specs[1].engine = core::ScenarioSpec::Engine::kAppStack;
  specs[1].stack.app = app::default_two_tier_app("baseline", 77, 40);
  specs[1].policy = [](const std::optional<app::PeriodStats>&) {
    return std::vector<double>{0.35, 0.45};  // sized for ~1000 ms at concurrency 40
  };
  specs[1].duration_s = 1500.0;
  specs[1].concurrency_schedule = {{.time_s = 600.0, .app = 0, .concurrency = 80},
                                   {.time_s = 1200.0, .app = 0, .concurrency = 40}};

  const std::vector<core::ScenarioResult> runs = core::ScenarioRunner().run_all(specs);
  const core::ScenarioResult& controlled = runs[0];

  std::printf("# Figure 3: typical run; App5 concurrency 40 -> 80 during [600, 1200) s\n");

  // (a) response time of App5 and (b) cluster power, one row per 20 s.
  const auto& rt = controlled.response_series(kApp5);
  const auto& power = controlled.power_series();
  std::printf("\n%-10s %16s %14s\n", "time(s)", "App5 p90 (ms)", "power (W)");
  const double period = controlled.control_period_s;
  for (std::size_t k = 4; k < rt.size(); k += 5) {
    std::printf("%-10.0f %16.0f %14.1f\n", (static_cast<double>(k) + 1.0) * period,
                rt[k] * 1000.0, power[std::min(k, power.size() - 1)]);
  }

  // Phase summaries.
  const auto phase = [&](std::size_t lo_s, std::size_t hi_s) {
    util::RunningStats rt_stats;
    util::RunningStats p_stats;
    for (std::size_t k = lo_s / 4; k < hi_s / 4 && k < rt.size(); ++k) {
      rt_stats.add(rt[k]);
      if (k < power.size()) p_stats.add(power[k]);
    }
    return std::make_pair(rt_stats, p_stats);
  };
  const auto [pre_rt, pre_p] = phase(200, 600);
  const auto [mid_rt, mid_p] = phase(800, 1200);  // late surge, post-recovery
  const auto [post_rt, post_p] = phase(1300, 1500);

  std::printf("\n# phase summary\n");
  std::printf("%-26s %14s %12s\n", "phase", "mean p90 (ms)", "power (W)");
  std::printf("%-26s %14.0f %12.1f\n", "before surge [200,600)", pre_rt.mean() * 1000.0,
              pre_p.mean());
  std::printf("%-26s %14.0f %12.1f\n", "surge, adapted [800,1200)",
              mid_rt.mean() * 1000.0, mid_p.mean());
  std::printf("%-26s %14.0f %12.1f\n", "after surge [1300,1500)",
              post_rt.mean() * 1000.0, post_p.mean());

  // The no-control baseline over the late-surge window (800, 1200] s.
  util::RunningStats baseline;
  const auto& baseline_rt = runs[1].response_series(0);
  for (std::size_t k = 200; k < 300 && k < baseline_rt.size(); ++k) {
    baseline.add(baseline_rt[k]);
  }
  std::printf("%-26s %14.0f %12s\n", "no-control baseline, surge",
              baseline.mean() * 1000.0, "-");

  vdc::bench::print_telemetry_footprint(controlled.recorder);
  const bool rt_recovers = std::abs(mid_rt.mean() - 1.0) < 0.25;
  const bool power_rises = mid_p.mean() > pre_p.mean();
  const bool baseline_violates = baseline.mean() > 1.5;
  std::printf("\n# paper: controller reconverges to 1000 ms during the surge  -> %s\n",
              rt_recovers ? "REPRODUCED" : "MISMATCH");
  std::printf("# paper: power increases slightly under the surge            -> %s"
              " (+%.1f W)\n",
              power_rises ? "REPRODUCED" : "MISMATCH", mid_p.mean() - pre_p.mean());
  std::printf("# paper: without response-time control the violation persists -> %s"
              " (baseline %.0f ms)\n",
              baseline_violates ? "REPRODUCED" : "MISMATCH", baseline.mean() * 1000.0);
  return rt_recovers && power_rises && baseline_violates ? 0 : 1;
}
