// Streaming-telemetry performance harness.
//
// Measures the tiered tsdb store against the retained raw-vector recorder
// backend: append throughput, storage cost (bytes/sample from the engine's
// deterministic storage model) at 1-hour and 1-week horizons, a week-long
// fleet-scale stream across many metrics with ops-style retention, and
// range-query latency per tier. Results are written as machine-readable
// JSON (BENCH_telemetry.json) so CI can gate on storage regressions.
//
// Flags:
//   --quick                    smaller metric counts / shorter streams
//                              (CI smoke mode)
//   --out PATH                 where to write the JSON
//                              (default BENCH_telemetry.json)
//   --max-bytes-per-sample X   exit non-zero if the week-horizon storage
//                              cost exceeds X bytes/sample (CI soft gate;
//                              0 disables)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/recorder.hpp"
#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace {

using vdc::telemetry::Recorder;
using vdc::telemetry::RecorderConfig;
using vdc::telemetry::tsdb::MetricId;
using vdc::telemetry::tsdb::Tier;
using vdc::telemetry::tsdb::Tsdb;
using vdc::telemetry::tsdb::TsdbConfig;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return s > 0.0 ? s : 1e-9;  // clock granularity floor
}

/// Appends `n` samples into a recorder backend and reports appends/sec.
double recorder_append_rate(RecorderConfig config, std::size_t n) {
  Recorder rec(config);
  vdc::util::Rng rng(1);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) rec.append("m", rng.uniform(0.0, 2.0));
  return static_cast<double>(n) / seconds_since(t0);
}

struct HorizonResult {
  std::size_t metrics = 0;
  std::size_t samples_per_metric = 0;
  double appends_per_sec = 0.0;
  std::size_t memory_bytes = 0;
  std::size_t pages_live = 0;
  double bytes_per_sample = 0.0;
  bool within_budget = false;
};

/// Deterministic per-metric storage budget implied by the config: the full
/// page ring (+1 recycling spare), full rollup retention rings, and the
/// open-window accumulators of both tiers at one sample per period.
std::size_t budget_bytes_per_metric(const TsdbConfig& c, double sample_period_s) {
  const std::size_t page_bytes = c.page_samples * sizeof(vdc::telemetry::tsdb::RawSample);
  const std::size_t pages = (c.tier0_max_pages == 0 ? 1 : c.tier0_max_pages) + 1;
  const auto acc_samples =
      static_cast<std::size_t>((c.tier1_period_s + c.tier2_period_s) / sample_period_s) + 2;
  return pages * page_bytes +
         (c.tier1_retention_points + c.tier2_retention_points + 2) *
             sizeof(vdc::telemetry::tsdb::RollupPoint) +
         acc_samples * 40;
}

/// Streams `samples_per_metric` samples at `period_s` into `metrics`
/// metrics and reports the storage model's verdict.
HorizonResult run_horizon(const TsdbConfig& config, std::size_t metrics,
                          std::size_t samples_per_metric, double period_s) {
  Tsdb db(config);
  std::vector<MetricId> ids;
  ids.reserve(metrics);
  for (std::size_t m = 0; m < metrics; ++m) {
    std::string name = "m";
    name += std::to_string(m);
    ids.push_back(db.declare(name));
  }
  vdc::util::Rng rng(7);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < samples_per_metric; ++k) {
    const double t = static_cast<double>(k) * period_s;
    for (const MetricId id : ids) db.append(id, t, rng.uniform(0.0, 2.0));
  }
  const double wall_s = seconds_since(t0);

  HorizonResult out;
  out.metrics = metrics;
  out.samples_per_metric = samples_per_metric;
  out.appends_per_sec = static_cast<double>(metrics * samples_per_metric) / wall_s;
  out.memory_bytes = db.approx_memory_bytes();
  out.pages_live = db.pages_live();
  out.bytes_per_sample = static_cast<double>(out.memory_bytes) /
                         static_cast<double>(metrics * samples_per_metric);
  out.within_budget =
      out.memory_bytes <= budget_bytes_per_metric(config, period_s) * metrics;
  return out;
}

struct QueryLatency {
  double raw_us = 0.0;
  double rollup_us = 0.0;
  double auto_us = 0.0;
};

/// Random range queries against a week-long single-metric store.
QueryLatency run_queries(const Tsdb& db, MetricId id, double horizon_s, std::size_t n) {
  vdc::util::Rng rng(13);
  QueryLatency out;
  double sink = 0.0;
  auto time_loop = [&](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) body();
    return seconds_since(t0) * 1e6 / static_cast<double>(n);
  };
  out.raw_us = time_loop([&] {
    const double t0 = rng.uniform(0.0, horizon_s);
    sink += static_cast<double>(db.raw(id, t0, t0 + 400.0).size());
  });
  out.rollup_us = time_loop([&] {
    const double t0 = rng.uniform(0.0, horizon_s);
    sink += static_cast<double>(db.rollups(id, Tier::kPeriod, t0, t0 + 4000.0).size());
  });
  out.auto_us = time_loop([&] {
    const double t0 = rng.uniform(0.0, horizon_s);
    sink += static_cast<double>(db.query(id, t0, horizon_s).size());
  });
  if (sink < 0.0) std::printf("# impossible\n");  // keep the loops observable
  return out;
}

void append_horizon_json(std::string& json, const char* name, const HorizonResult& h) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"metrics\": %zu, \"samples_per_metric\": %zu, "
                "\"appends_per_sec\": %.0f, \"memory_bytes\": %zu, \"pages_live\": %zu, "
                "\"bytes_per_sample\": %.2f, \"within_budget\": %s}",
                name, h.metrics, h.samples_per_metric, h.appends_per_sec, h.memory_bytes,
                h.pages_live, h.bytes_per_sample, h.within_budget ? "true" : "false");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_telemetry.json";
  double max_bytes_per_sample = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-bytes-per-sample") == 0 && i + 1 < argc) {
      max_bytes_per_sample = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  constexpr double kHourS = 3600.0;
  constexpr double kWeekS = 7.0 * 24.0 * 3600.0;
  constexpr double kControlPeriodS = 4.0;

  std::printf("# perf_telemetry: tiered tsdb store vs raw-vector recorder backend\n");

  // ---- append throughput through the Recorder front door -------------------
  const std::size_t n_appends = quick ? 200'000 : 2'000'000;
  RecorderConfig tsdb_backend;
  tsdb_backend.backend = RecorderConfig::Backend::kTsdb;
  const double tsdb_rate = recorder_append_rate(tsdb_backend, n_appends);
  const double raw_rate = recorder_append_rate(RecorderConfig{}, n_appends);
  std::printf("\n%-28s %16s\n", "backend", "appends/sec");
  std::printf("%-28s %16.0f\n", "recorder/tsdb", tsdb_rate);
  std::printf("%-28s %16.0f\n", "recorder/raw-vectors", raw_rate);
  std::printf("%-28s %15.2fx\n", "tsdb/raw ratio", tsdb_rate / raw_rate);

  // ---- storage at 1-hour and 1-week horizons (default config) --------------
  // One sample per 4 s control period, default retention: the week horizon
  // runs far past tier-0 retention, so raw pages recycle while the rollup
  // tiers keep the whole history's statistics.
  const std::size_t horizon_metrics = quick ? 8 : 64;
  const TsdbConfig default_config;
  const auto hour_samples = static_cast<std::size_t>(kHourS / kControlPeriodS);
  const auto week_samples = static_cast<std::size_t>(kWeekS / kControlPeriodS);
  const HorizonResult hour =
      run_horizon(default_config, horizon_metrics, hour_samples, kControlPeriodS);
  const HorizonResult week =
      run_horizon(default_config, horizon_metrics, week_samples, kControlPeriodS);
  std::printf("\n%-8s %8s %10s %14s %12s %10s %8s\n", "horizon", "metrics", "samples/m",
              "appends/sec", "mem (KiB)", "B/sample", "bounded");
  for (const auto& [name, h] : {std::pair{"1h", &hour}, std::pair{"1week", &week}}) {
    std::printf("%-8s %8zu %10zu %14.0f %12.1f %10.2f %8s\n", name, h->metrics,
                h->samples_per_metric, h->appends_per_sec,
                static_cast<double>(h->memory_bytes) / 1024.0, h->bytes_per_sample,
                h->within_budget ? "yes" : "NO");
  }

  // ---- week-long fleet-scale stream (ops retention, many metrics) ----------
  // 10k metrics for a simulated week at a 240 s sampling period, with the
  // kind of retention an operator would configure at that scale: a small
  // raw ring per metric, a day of per-period rollups, a week of hourly.
  TsdbConfig fleet_config;
  fleet_config.page_samples = 64;
  fleet_config.tier0_max_pages = 8;
  fleet_config.tier1_period_s = 240.0;
  fleet_config.tier1_retention_points = 360;  // a day at 240 s
  fleet_config.tier2_retention_points = 168;  // a week of hours
  const std::size_t fleet_metrics = quick ? 500 : 10'000;
  const double fleet_period_s = 240.0;
  const auto fleet_samples = static_cast<std::size_t>(kWeekS / fleet_period_s);
  const HorizonResult fleet =
      run_horizon(fleet_config, fleet_metrics, fleet_samples, fleet_period_s);
  const double raw_backend_bytes =
      static_cast<double>(fleet_metrics * fleet_samples) * static_cast<double>(sizeof(double));
  std::printf("\n# fleet week: %zu metrics x %zu samples -> %.1f MiB (raw vectors: %.1f "
              "MiB), %.2f bytes/sample, %s\n",
              fleet.metrics, fleet.samples_per_metric,
              static_cast<double>(fleet.memory_bytes) / (1024.0 * 1024.0),
              raw_backend_bytes / (1024.0 * 1024.0), fleet.bytes_per_sample,
              fleet.within_budget ? "within page budget" : "OVER PAGE BUDGET");

  // ---- query latency against a week-long stream ----------------------------
  Tsdb query_db(default_config);
  const MetricId qid = query_db.declare("q");
  {
    vdc::util::Rng rng(21);
    for (std::size_t k = 0; k < week_samples; ++k) {
      query_db.append(qid, static_cast<double>(k) * kControlPeriodS, rng.uniform(0.0, 2.0));
    }
  }
  const std::size_t n_queries = quick ? 2'000 : 20'000;
  const QueryLatency q = run_queries(query_db, qid, kWeekS, n_queries);
  std::printf("\n%-28s %14s\n", "query", "us/query");
  std::printf("%-28s %14.2f\n", "raw 400 s range", q.raw_us);
  std::printf("%-28s %14.2f\n", "tier-1 4000 s range", q.rollup_us);
  std::printf("%-28s %14.2f\n", "auto, range to horizon", q.auto_us);

  // ---- JSON ----------------------------------------------------------------
  std::string json = "{\n  \"bench\": \"perf_telemetry\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"append\": {\"tsdb_appends_per_sec\": %.0f, \"raw_appends_per_sec\": "
                "%.0f, \"tsdb_vs_raw\": %.3f},\n",
                tsdb_rate, raw_rate, tsdb_rate / raw_rate);
  json += buf;
  json += "  \"horizons\": {\n";
  append_horizon_json(json, "1h", hour);
  json += ",\n";
  append_horizon_json(json, "1week", week);
  json += ",\n";
  append_horizon_json(json, "fleet_week", fleet);
  json += "\n  },\n";
  std::snprintf(buf, sizeof(buf),
                "  \"queries_us\": {\"raw\": %.2f, \"rollup\": %.2f, \"auto\": %.2f},\n",
                q.raw_us, q.rollup_us, q.auto_us);
  json += buf;
  std::snprintf(buf, sizeof(buf), "  \"week_bytes_per_sample\": %.2f\n}\n",
                week.bytes_per_sample > fleet.bytes_per_sample ? week.bytes_per_sample
                                                               : fleet.bytes_per_sample);
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!hour.within_budget || !week.within_budget || !fleet.within_budget) {
    std::fprintf(stderr, "REGRESSION: storage model exceeded the configured page budget\n");
    return 1;
  }
  const double worst_bytes_per_sample = week.bytes_per_sample > fleet.bytes_per_sample
                                            ? week.bytes_per_sample
                                            : fleet.bytes_per_sample;
  if (max_bytes_per_sample > 0.0 && worst_bytes_per_sample > max_bytes_per_sample) {
    std::fprintf(stderr, "REGRESSION: %.2f bytes/sample at the week horizon > allowed %.2f\n",
                 worst_bytes_per_sample, max_bytes_per_sample);
    return 1;
  }
  return 0;
}
