// Sharded-engine performance and bit-identity harness.
//
// Three presets, mirroring bench/perf_consolidation's JSON contract
// (BENCH_sharding.json, machine-readable for CI gates):
//
//   identity   small two-level testbed run at shard counts {0,1,2,8}: every
//              sharded telemetry export must be byte-identical to the
//              unsharded oracle. This is the hard gate — a perf bench that
//              drifts from the oracle measures a different program.
//   speedup    a wider testbed (64 apps) at a fixed shard count, advanced
//              with 1 worker thread vs more: SELF-speedup of the identical
//              workload, so the ratio isolates the parallel shard advance
//              (results are verified equal to the oracle first). The JSON
//              records hardware_concurrency — on a single-core runner the
//              honest answer is ~1x and the number documents exactly that.
//   fleet      bounded-memory completion at fleet scale (default 100k
//              servers hosting 500k VMs = 50k two-tier apps x 5 replicas,
//              low per-app concurrency, a few control periods): the gate is
//              that the run completes and peak RSS stays under the bound,
//              scaling knobs exposed for larger machines.
//
// Flags:
//   --quick               identity preset only (CI smoke; soft perf gate)
//   --out PATH            JSON path (default BENCH_sharding.json)
//   --min-speedup X       exit non-zero if the best self-speedup falls
//                         below X (0 disables; meaningless on 1 core)
//   --fleet-apps N        fleet preset application count (default 50000)
//   --fleet-servers N     fleet preset server count (default 100000)
//   --fleet-duration S    fleet preset simulated seconds (default 12)
//   --fleet-memory-gb X   fleet peak-RSS bound in GiB (default 32)
//   --skip-fleet          omit the fleet preset
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "app/multi_tier_app.hpp"
#include "core/sysid_experiment.hpp"
#include "core/testbed.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace vdc;

double peak_rss_gb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // KiB -> GiB
}

const control::ArxModel& shared_model() {
  static const core::SysIdExperimentResult identified = [] {
    core::SysIdExperimentConfig sysid;
    sysid.periods = 120;
    return core::identify_app_model(app::default_two_tier_app("bench", 4242, 40), sysid);
  }();
  return identified.model;
}

core::TestbedConfig base_config(std::size_t apps, std::size_t servers, std::size_t shards,
                                std::size_t threads) {
  core::TestbedConfig config;
  config.num_apps = apps;
  config.num_servers = servers;
  config.seed = 7;
  config.model = shared_model();
  config.shards = shards;
  config.shard_threads = threads;
  return config;
}

struct RunOutcome {
  std::string csv;
  double construct_s = 0.0;
  double run_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t barriers = 0;
  std::size_t migrations = 0;

  [[nodiscard]] double events_per_sec() const {
    return run_s <= 0.0 ? 0.0 : static_cast<double>(events) / run_s;
  }
};

RunOutcome run_testbed(const core::TestbedConfig& config, double duration_s,
                       bool want_csv = true) {
  RunOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  core::Testbed testbed(config);
  const auto t1 = std::chrono::steady_clock::now();
  testbed.run_until(duration_s);
  const auto t2 = std::chrono::steady_clock::now();
  out.construct_s = std::chrono::duration<double>(t1 - t0).count();
  out.run_s = std::chrono::duration<double>(t2 - t1).count();
  out.events = testbed.engine().events_executed();
  out.barriers = testbed.engine().barriers();
  out.migrations = testbed.completed_migrations();
  if (want_csv) out.csv = telemetry::to_csv(testbed.take_recorder());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool skip_fleet = false;
  std::string out_path = "BENCH_sharding.json";
  double min_speedup = 0.0;
  std::size_t fleet_apps = 50000;
  std::size_t fleet_servers = 100000;
  double fleet_duration_s = 12.0;
  double fleet_memory_gb = 32.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--skip-fleet") == 0) {
      skip_fleet = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--fleet-apps") == 0 && i + 1 < argc) {
      fleet_apps = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--fleet-servers") == 0 && i + 1 < argc) {
      fleet_servers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--fleet-duration") == 0 && i + 1 < argc) {
      fleet_duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--fleet-memory-gb") == 0 && i + 1 < argc) {
      fleet_memory_gb = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("# perf_sharding: parallel shard advance vs the single-loop oracle "
              "(hardware_concurrency=%u)\n", hw);

  std::string json = "{\n  \"bench\": \"perf_sharding\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  \"hardware_concurrency\": %u,\n", hw);
  json += line;

  bool identity_ok = true;

  // ---- identity preset ------------------------------------------------------
  {
    core::TestbedConfig oracle_config = base_config(8, 4, 0, 0);
    oracle_config.enable_optimizer = true;
    oracle_config.optimizer_period_s = 120.0;
    const double duration_s = 400.0;
    const RunOutcome oracle = run_testbed(oracle_config, duration_s);
    std::printf("%-10s %-12s %10.3fs %12llu events %8zu migrations\n", "identity",
                "oracle", oracle.run_s, static_cast<unsigned long long>(oracle.events),
                oracle.migrations);
    json += "  \"identity\": {\"duration_s\": 400.0, \"shard_counts\": [1, 2, 8], "
            "\"matches\": [";
    bool first = true;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      core::TestbedConfig config = oracle_config;
      config.shards = shards;
      config.shard_threads = std::min<std::size_t>(hw, shards);
      const RunOutcome sharded = run_testbed(config, duration_s);
      const bool match = sharded.csv == oracle.csv;
      identity_ok = identity_ok && match;
      std::printf("%-10s shards=%-5zu %10.3fs %12llu events   identical=%s\n", "identity",
                  shards, sharded.run_s, static_cast<unsigned long long>(sharded.events),
                  match ? "yes" : "NO");
      if (!first) json += ", ";
      first = false;
      json += match ? "true" : "false";
    }
    json += "]},\n";
  }

  // ---- self-speedup preset --------------------------------------------------
  double best_speedup = 0.0;
  if (!quick) {
    core::TestbedConfig spec = base_config(64, 16, 8, 1);
    spec.enable_optimizer = true;
    spec.optimizer_period_s = 60.0;
    const double duration_s = 120.0;

    core::TestbedConfig oracle_config = spec;
    oracle_config.shards = 0;
    oracle_config.shard_threads = 0;
    const RunOutcome oracle = run_testbed(oracle_config, duration_s);

    std::vector<std::size_t> thread_counts = {1, 2, hw};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                        thread_counts.end());

    json += "  \"speedup\": {\"apps\": 64, \"servers\": 16, \"shards\": 8, "
            "\"duration_s\": 120.0,\n    \"runs\": [";
    double wall_at_1 = 0.0;
    bool first = true;
    for (const std::size_t threads : thread_counts) {
      core::TestbedConfig config = spec;
      config.shard_threads = threads;
      const RunOutcome run = run_testbed(config, duration_s);
      const bool match = run.csv == oracle.csv;
      identity_ok = identity_ok && match;
      if (threads == 1) wall_at_1 = run.run_s;
      const double self_speedup = run.run_s <= 0.0 ? 0.0 : wall_at_1 / run.run_s;
      best_speedup = std::max(best_speedup, self_speedup);
      std::printf("%-10s threads=%-4zu %10.3fs %12.0f events/s  self-speedup=%5.2fx  "
                  "identical=%s\n", "speedup", threads, run.run_s, run.events_per_sec(),
                  self_speedup, match ? "yes" : "NO");
      if (!first) json += ", ";
      first = false;
      std::snprintf(line, sizeof(line),
                    "{\"threads\": %zu, \"run_s\": %.3f, \"events_per_sec\": %.0f, "
                    "\"self_speedup\": %.3f, \"identical\": %s}",
                    threads, run.run_s, run.events_per_sec(), self_speedup,
                    match ? "true" : "false");
      json += line;
    }
    std::snprintf(line, sizeof(line), "],\n    \"best_self_speedup\": %.3f},\n",
                  best_speedup);
    json += line;
  }

  // ---- fleet preset ---------------------------------------------------------
  bool fleet_ok = true;
  if (!quick && !skip_fleet) {
    core::TestbedConfig config = base_config(fleet_apps, fleet_servers, 256, 0);
    config.concurrency = 2;       // light per-app load: scale stresses counts, not queues
    config.initial_replicas = 5;  // 2 tiers x 5 replicas x apps = the VM fleet
    const RunOutcome fleet = run_testbed(config, fleet_duration_s, /*want_csv=*/false);
    const double rss_gb = peak_rss_gb();
    const std::size_t vms = fleet_apps * 2 * 5;
    fleet_ok = rss_gb <= fleet_memory_gb;
    std::printf("%-10s %zu servers / %zu VMs: construct %.1fs, run %.1fs, "
                "%llu events, peak RSS %.2f GiB (bound %.0f)\n", "fleet", fleet_servers,
                vms, fleet.construct_s, fleet.run_s,
                static_cast<unsigned long long>(fleet.events), rss_gb, fleet_memory_gb);
    std::snprintf(line, sizeof(line),
                  "  \"fleet\": {\"servers\": %zu, \"apps\": %zu, \"vms\": %zu, "
                  "\"duration_s\": %.1f,\n", fleet_servers, fleet_apps, vms,
                  fleet_duration_s);
    json += line;
    std::snprintf(line, sizeof(line),
                  "    \"construct_s\": %.2f, \"run_s\": %.2f, \"events\": %llu, "
                  "\"events_per_sec\": %.0f,\n", fleet.construct_s, fleet.run_s,
                  static_cast<unsigned long long>(fleet.events), fleet.events_per_sec());
    json += line;
    std::snprintf(line, sizeof(line),
                  "    \"peak_rss_gb\": %.2f, \"rss_bound_gb\": %.1f, "
                  "\"within_memory_bound\": %s},\n", rss_gb, fleet_memory_gb,
                  fleet_ok ? "true" : "false");
    json += line;
  }

  std::snprintf(line, sizeof(line), "  \"identity_ok\": %s\n}\n",
                identity_ok ? "true" : "false");
  json += line;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!identity_ok) {
    std::fprintf(stderr, "REGRESSION: sharded telemetry diverged from the unsharded "
                 "oracle\n");
    return 1;
  }
  if (!fleet_ok) {
    std::fprintf(stderr, "REGRESSION: fleet preset exceeded the peak-RSS bound\n");
    return 1;
  }
  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr, "REGRESSION: best self-speedup %.2fx < required %.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  return 0;
}
