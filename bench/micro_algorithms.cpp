// Micro-benchmarks (google-benchmark) for the hot algorithmic kernels:
// Minimum Slack, PAC, IPAC, pMapper, the MPC step, the PS-queue event
// path, and trace generation. These quantify the paper's overhead claims
// ("Minimum Slack generally has a greater overhead compared with FFD;
// the IPAC algorithm considers only a very small number of VMs").
#include <benchmark/benchmark.h>

#include <numeric>

#include "app/multi_tier_app.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/pac.hpp"
#include "consolidate/pmapper.hpp"
#include "control/mpc.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/ps_queue.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace vdc;
using namespace vdc::consolidate;

DataCenterSnapshot random_snapshot(std::size_t servers, std::size_t vms, bool placed,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = true;
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
  }
  if (placed) {
    // Scatter the VMs round-robin so consolidation has work to do.
    for (std::size_t i = 0; i < vms; ++i) {
      snap.servers[i % servers].hosted.push_back(static_cast<VmId>(i));
    }
  }
  return snap;
}

void BM_MinimumSlack(benchmark::State& state) {
  const auto vms = static_cast<std::size_t>(state.range(0));
  const DataCenterSnapshot snap = random_snapshot(1, vms, false, 1);
  const WorkingPlacement wp(snap);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  std::vector<VmId> ids(vms);
  std::iota(ids.begin(), ids.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_slack(wp, 0, ids, constraints));
  }
}
BENCHMARK(BM_MinimumSlack)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PacFullPlacement(benchmark::State& state) {
  const auto vms = static_cast<std::size_t>(state.range(0));
  const DataCenterSnapshot snap = random_snapshot(vms / 2 + 4, vms, false, 2);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  std::vector<VmId> ids(vms);
  std::iota(ids.begin(), ids.end(), 0);
  for (auto _ : state) {
    WorkingPlacement wp(snap);
    benchmark::DoNotOptimize(power_aware_consolidation(wp, ids, constraints));
  }
}
BENCHMARK(BM_PacFullPlacement)->Arg(32)->Arg(128)->Arg(512);

void BM_FfdFullPlacement(benchmark::State& state) {
  const auto vms = static_cast<std::size_t>(state.range(0));
  const DataCenterSnapshot snap = random_snapshot(vms / 2 + 4, vms, false, 2);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const std::vector<ServerId> order = servers_by_power_efficiency(snap);
  std::vector<VmId> ids(vms);
  std::iota(ids.begin(), ids.end(), 0);
  for (auto _ : state) {
    WorkingPlacement wp(snap);
    benchmark::DoNotOptimize(first_fit_decreasing(wp, order, ids, constraints));
  }
}
BENCHMARK(BM_FfdFullPlacement)->Arg(32)->Arg(128)->Arg(512);

void BM_IpacInvocation(benchmark::State& state) {
  const auto vms = static_cast<std::size_t>(state.range(0));
  const DataCenterSnapshot snap = random_snapshot(vms / 2 + 4, vms, true, 3);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  const FreeMigrationPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipac(snap, constraints, policy));
  }
}
BENCHMARK(BM_IpacInvocation)->Arg(64)->Arg(256)->Arg(1024);

void BM_PMapperInvocation(benchmark::State& state) {
  const auto vms = static_cast<std::size_t>(state.range(0));
  const DataCenterSnapshot snap = random_snapshot(vms / 2 + 4, vms, true, 3);
  const ConstraintSet constraints = ConstraintSet::standard(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmapper(snap, constraints));
  }
}
BENCHMARK(BM_PMapperInvocation)->Arg(64)->Arg(256)->Arg(1024);

void BM_MpcStep(benchmark::State& state) {
  control::ArxModel model;
  model.na = 2;
  model.nb = 2;
  model.nu = static_cast<std::size_t>(state.range(0));
  model.a = {0.5, 0.1};
  model.b = linalg::Matrix(2, model.nu);
  for (std::size_t m = 0; m < model.nu; ++m) {
    model.b(0, m) = -0.5 - 0.1 * static_cast<double>(m);
    model.b(1, m) = 0.1;
  }
  model.bias = 1.5;
  control::MpcConfig config;
  config.prediction_horizon = 12;
  config.control_horizon = 3;
  config.r_weight = {1.0};
  config.c_min = {0.1};
  config.c_max = {2.0};
  control::MpcController controller(model, config);
  controller.reset(1.0, std::vector<double>(model.nu, 0.5));
  double t = 1.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.step(t));
    t = t > 1.0 ? 0.8 : 1.3;  // keep the QP active
  }
}
BENCHMARK(BM_MpcStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PsQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsQueue queue(sim, 2.0, [](sim::JobId) {});
    for (int i = 0; i < 64; ++i) queue.add_job(0.01 * (1 + i % 7));
    sim.run();
    benchmark::DoNotOptimize(queue.work_done_gcycles());
  }
}
BENCHMARK(BM_PsQueueThroughput);

void BM_MultiTierAppSimulatedMinute(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    app::MultiTierApp app(sim, app::default_two_tier_app("bench", 1, 40));
    app.start();
    sim.run_until(60.0);
    benchmark::DoNotOptimize(app.completed_requests());
  }
}
BENCHMARK(BM_MultiTierAppSimulatedMinute);

void BM_SyntheticTraceGeneration(benchmark::State& state) {
  trace::SyntheticTraceOptions options;
  options.servers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::generate_synthetic_trace(options));
  }
}
BENCHMARK(BM_SyntheticTraceGeneration)->Arg(100)->Arg(1000);

}  // namespace
