// Shared by the figure benches: one summary line about how the scenario's
// telemetry was stored. With the tsdb backend (the default) this shows the
// bounded footprint — ring pages, rollup points, and the storage-model
// bytes/sample — next to the figure's own output; under the raw-vector
// oracle backend it stays silent.
#pragma once

#include <cstdio>

#include "telemetry/recorder.hpp"

namespace vdc::bench {

inline void print_telemetry_footprint(const telemetry::Recorder& recorder) {
  if (recorder.backend() != telemetry::RecorderConfig::Backend::kTsdb) return;
  const telemetry::tsdb::Tsdb& db = recorder.tsdb();
  std::size_t samples = 0;
  std::size_t tier1_points = 0;
  std::size_t tier2_points = 0;
  for (std::size_t m = 0; m < db.metric_count(); ++m) {
    const auto id = static_cast<telemetry::tsdb::MetricId>(m);
    samples += db.samples_appended(id);
    tier1_points += db.finalized(id, telemetry::tsdb::Tier::kPeriod).size();
    tier2_points += db.finalized(id, telemetry::tsdb::Tier::kHourly).size();
  }
  const std::size_t bytes = db.approx_memory_bytes();
  std::printf(
      "# telemetry: tsdb backend — %zu metrics, %zu samples in %zu pages, "
      "%zu tier-1 + %zu tier-2 points, ~%.1f KiB (%.1f bytes/sample)\n",
      db.metric_count(), samples, db.pages_live(), tier1_points, tier2_points,
      static_cast<double>(bytes) / 1024.0,
      samples > 0 ? static_cast<double>(bytes) / static_cast<double>(samples) : 0.0);
}

}  // namespace vdc::bench
