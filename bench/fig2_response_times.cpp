// Figure 2 reproduction: response time of all 8 applications in the data
// center, each controlled to the 1000 ms set point (power optimizer
// disabled — response-time controllers only).
//
// Paper's observation: every application sits at the set point; the figure
// shows means around 1000 ms with moderate standard deviations.
#include <cstdio>

#include "core/scenario.hpp"
#include "telemetry_footprint.hpp"

int main() {
  using namespace vdc;

  core::ScenarioSpec spec;  // 8 apps, 4 servers, setpoint 1000 ms
  spec.name = "fig2";
  spec.engine = core::ScenarioSpec::Engine::kTestbed;
  spec.duration_s = 1200.0;
  const core::ScenarioResult run = core::ScenarioRunner().run(spec);

  std::printf("# Figure 2: response time of all 8 applications (set point 1000 ms)\n");
  std::printf("# identified model R^2 = %.2f\n", run.model_r_squared);

  std::printf("\n%-8s %14s %12s %12s %12s\n", "app", "mean p90 (ms)", "std (ms)",
              "min (ms)", "max (ms)");
  double worst_relative_error = 0.0;
  for (std::size_t i = 0; i < run.app_count; ++i) {
    // Skip the first 100 s of settling, as a steady-state figure would.
    const util::RunningStats s = run.response_stats_after(i, 100.0);
    std::printf("App%-5zu %14.0f %12.0f %12.0f %12.0f\n", i + 1, s.mean() * 1000.0,
                s.stddev() * 1000.0, s.min() * 1000.0, s.max() * 1000.0);
    worst_relative_error =
        std::max(worst_relative_error, std::abs(s.mean() - 1.0));
  }
  vdc::bench::print_telemetry_footprint(run.recorder);
  std::printf("\n# paper: all 8 applications controlled to ~1000 ms\n");
  std::printf("# measured: worst |mean - setpoint| = %.0f ms (%s)\n",
              worst_relative_error * 1000.0,
              worst_relative_error < 0.15 ? "SHAPE OK" : "SHAPE MISMATCH");
  return worst_relative_error < 0.15 ? 0 : 1;
}
