// Ablation: how much of IPAC's advantage comes from DVFS vs consolidation?
//
// The paper attributes IPAC's Figure-6 savings to two sources: better
// packing (Minimum Slack vs FFD) and DVFS between optimizer invocations.
// This ablation runs the 2x2 grid {IPAC, pMapper} x {DVFS on, off} plus a
// no-consolidation baseline on a 1,000-VM data center.
#include <cstdio>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace vdc;

  std::printf("# Ablation: consolidation algorithm x DVFS (1,000 VMs, 7 days)\n");
  trace::SyntheticTraceOptions topt;
  topt.servers = 1000;
  const trace::UtilizationTrace trace = trace::generate_synthetic_trace(topt);
  const core::TraceDrivenSimulator simulator(trace);

  struct Cell {
    const char* name;
    core::ConsolidationAlgorithm algorithm;
    bool dvfs;
    core::TraceSimResult result;
  };
  std::vector<Cell> cells = {
      {"IPAC + DVFS", core::ConsolidationAlgorithm::kIpac, true, {}},
      {"IPAC, no DVFS", core::ConsolidationAlgorithm::kIpac, false, {}},
      {"pMapper + DVFS", core::ConsolidationAlgorithm::kPMapper, true, {}},
      {"pMapper, no DVFS", core::ConsolidationAlgorithm::kPMapper, false, {}},
      {"no consolidation + DVFS", core::ConsolidationAlgorithm::kNone, true, {}},
      {"static, no DVFS", core::ConsolidationAlgorithm::kNone, false, {}},
  };
  util::parallel_for(cells.size(), [&](std::size_t i) {
    core::TraceSimConfig config;
    config.num_vms = 1000;
    config.algorithm = cells[i].algorithm;
    config.dvfs = cells[i].dvfs;
    cells[i].result = simulator.run(config);
  });

  std::printf("\n%-26s %16s %12s %12s %10s\n", "configuration", "energy/VM (Wh)",
              "migrations", "peak srv", "overload");
  for (const Cell& cell : cells) {
    std::printf("%-26s %16.1f %12zu %12zu %9.2f%%\n", cell.name,
                cell.result.energy_wh_per_vm, cell.result.migrations,
                cell.result.peak_active_servers, 100.0 * cell.result.overload_fraction);
  }

  const double ipac_dvfs = cells[0].result.energy_wh_per_vm;
  const double ipac_plain = cells[1].result.energy_wh_per_vm;
  const double pmapper_plain = cells[3].result.energy_wh_per_vm;
  std::printf("\n# decomposition of the IPAC-vs-pMapper(no DVFS) gap:\n");
  std::printf("#   packing quality alone (IPAC no-DVFS vs pMapper no-DVFS): %5.1f%%\n",
              100.0 * (1.0 - ipac_plain / pmapper_plain));
  std::printf("#   DVFS on top of IPAC:                                     %5.1f%%\n",
              100.0 * (1.0 - ipac_dvfs / ipac_plain));
  std::printf("#   combined (the paper's Figure-6 pairing):                 %5.1f%%\n",
              100.0 * (1.0 - ipac_dvfs / pmapper_plain));
  return 0;
}
