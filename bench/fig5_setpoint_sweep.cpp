// Figure 5 reproduction: response time of App5 under different set points
// (600..1300 ms) at the design concurrency of 40.
//
// Paper's observation: the controller achieves the desired response time
// for every set point — the measured averages lie on the y=x line.
#include <cstdio>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace vdc;

util::RunningStats run_at_setpoint(const control::ArxModel& model, double setpoint_s,
                                   std::uint64_t seed) {
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = setpoint_s;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.disturbance_gain = 0.5;

  sim::Simulation sim;
  app::MultiTierApp live(sim, app::default_two_tier_app("a", seed, 40));
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  const std::vector<double> initial(live.tier_count(), 0.6);
  live.set_allocations(initial);
  live.start();
  core::ResponseTimeController controller(model, mpc, initial);
  util::RunningStats tail;
  for (int k = 1; k <= 300; ++k) {
    sim.run_until(4.0 * k);
    live.set_allocations(controller.control(monitor.harvest()));
    if (k > 75) tail.add(controller.last_measurement());
  }
  return tail;
}

}  // namespace

int main() {
  using namespace vdc;

  std::printf("# Figure 5: response time of App5 under different set points\n");
  const app::AppConfig staging = app::default_two_tier_app("staging", 1001, 40);
  const core::SysIdExperimentResult identified = core::identify_app_model(staging);
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);

  const std::vector<double> setpoints = {0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3};
  std::vector<util::RunningStats> results(setpoints.size());
  util::parallel_for(setpoints.size(), [&](std::size_t i) {
    results[i] = run_at_setpoint(identified.model, setpoints[i], 3000 + i);
  });

  std::printf("%-14s %18s %12s %12s\n", "setpoint (ms)", "avg resp time (ms)", "std (ms)",
              "error (%)");
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < setpoints.size(); ++i) {
    const double rel = (results[i].mean() - setpoints[i]) / setpoints[i];
    std::printf("%-14.0f %18.0f %12.0f %11.1f%%\n", setpoints[i] * 1000.0,
                results[i].mean() * 1000.0, results[i].stddev() * 1000.0, 100.0 * rel);
    worst_rel = std::max(worst_rel, std::abs(rel));
  }
  std::printf("\n# paper: measured average tracks the set point across 600-1300 ms\n");
  std::printf("# measured: worst relative error = %.1f%% -> %s\n", 100.0 * worst_rel,
              worst_rel < 0.12 ? "REPRODUCED" : "MISMATCH");
  return worst_rel < 0.12 ? 0 : 1;
}
