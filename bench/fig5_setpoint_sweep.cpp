// Figure 5 reproduction: response time of App5 under different set points
// (600..1300 ms) at the design concurrency of 40.
//
// Paper's observation: the controller achieves the desired response time
// for every set point — the measured averages lie on the y=x line.
//
// One standalone AppStack scenario per set point, sharing the identified
// model; the ScenarioRunner executes the spec table in parallel.
#include <cstdio>

#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"
#include "telemetry_footprint.hpp"

int main() {
  using namespace vdc;

  std::printf("# Figure 5: response time of App5 under different set points\n");
  const app::AppConfig staging = app::default_two_tier_app("staging", 1001, 40);
  const core::SysIdExperimentResult identified = core::identify_app_model(staging);
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);

  const std::vector<double> setpoints = {0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3};
  std::vector<core::ScenarioSpec> specs;
  for (std::size_t i = 0; i < setpoints.size(); ++i) {
    core::ScenarioSpec spec;
    spec.name = "setpoint-" + std::to_string(i);
    spec.model = identified.model;
    spec.stack.app = app::default_two_tier_app("a", 3000 + i, 40);
    spec.stack.mpc.prediction_horizon = 12;
    spec.stack.mpc.control_horizon = 3;
    spec.stack.mpc.r_weight = {1.0};
    spec.stack.mpc.period_s = 4.0;
    spec.stack.mpc.tref_s = 16.0;
    spec.stack.mpc.setpoint = setpoints[i];
    spec.stack.mpc.c_min = {0.15};
    spec.stack.mpc.c_max = {1.5};
    spec.stack.mpc.delta_max = 0.3;
    spec.stack.mpc.disturbance_gain = 0.5;
    spec.duration_s = 1200.0;  // 300 control periods
    specs.push_back(std::move(spec));
  }
  const std::vector<core::ScenarioResult> results = core::ScenarioRunner().run_all(specs);

  std::printf("%-14s %18s %12s %12s\n", "setpoint (ms)", "avg resp time (ms)", "std (ms)",
              "error (%)");
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < setpoints.size(); ++i) {
    const util::RunningStats tail = results[i].response_stats_after(0, 300.0);
    const double rel = (tail.mean() - setpoints[i]) / setpoints[i];
    std::printf("%-14.0f %18.0f %12.0f %11.1f%%\n", setpoints[i] * 1000.0,
                tail.mean() * 1000.0, tail.stddev() * 1000.0, 100.0 * rel);
    worst_rel = std::max(worst_rel, std::abs(rel));
  }
  vdc::bench::print_telemetry_footprint(results.front().recorder);
  std::printf("\n# paper: measured average tracks the set point across 600-1300 ms\n");
  std::printf("# measured: worst relative error = %.1f%% -> %s\n", 100.0 * worst_rel,
              worst_rel < 0.12 ? "REPRODUCED" : "MISMATCH");
  return worst_rel < 0.12 ? 0 : 1;
}
