// Ablation: optimizer invocation period and on-demand overload relief.
//
// Section III argues the optimizer "should not be invoked too frequently"
// (migration overhead) while infrequent invocation risks overloads between
// runs — which the paper proposes to mitigate with on-demand relief (the
// Co-Con integration). This ablation sweeps the invocation period and
// toggles the OverloadGuard to quantify both effects on a 500-VM center.
#include <cstdio>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace vdc;

  std::printf("# Ablation: consolidation period x on-demand overload guard (500 VMs)\n");
  trace::SyntheticTraceOptions topt;
  topt.servers = 500;
  const trace::UtilizationTrace trace = trace::generate_synthetic_trace(topt);
  const core::TraceDrivenSimulator simulator(trace);

  struct Cell {
    double period_h;
    bool guard;
    core::TraceSimResult result;
  };
  std::vector<Cell> cells;
  for (const double period_h : {1.0, 2.0, 4.0, 8.0, 24.0}) {
    cells.push_back({period_h, false, {}});
    cells.push_back({period_h, true, {}});
  }
  util::parallel_for(cells.size(), [&](std::size_t i) {
    core::TraceSimConfig config;
    config.num_vms = 500;
    config.algorithm = core::ConsolidationAlgorithm::kIpac;
    config.consolidation_period_s = cells[i].period_h * 3600.0;
    config.on_demand_overload_guard = cells[i].guard;
    cells[i].result = simulator.run(config);
  });

  std::printf("\n%-12s %-7s %16s %12s %12s %12s %10s\n", "period (h)", "guard",
              "energy/VM (Wh)", "opt. migr.", "guard migr.", "wakes", "overload");
  for (const Cell& cell : cells) {
    std::printf("%-12.0f %-7s %16.1f %12zu %12zu %12zu %9.2f%%\n", cell.period_h,
                cell.guard ? "on" : "off", cell.result.energy_wh_per_vm,
                cell.result.migrations, cell.result.guard_migrations,
                cell.result.server_wakes, 100.0 * cell.result.overload_fraction);
  }

  std::printf("\n# expected: shorter periods track the load better (lower overload)\n");
  std::printf("# at the cost of more migrations; the on-demand guard recovers most of\n");
  std::printf("# the SLA protection of frequent invocation at a fraction of the churn,\n");
  std::printf("# which is exactly why the paper separates the two time scales.\n");
  return 0;
}
