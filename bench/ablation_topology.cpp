// Topology ablation: what the physical rack/pod layer buys and costs.
//
// Two questions, one committed JSON (BENCH_topology.json):
//
//  1. Economics (fig6-style steady-state fleet, 2 pods x 4 racks x 8
//     servers): does the rack-aware budgeted optimizer beat the flat
//     planner on NET energy — stationary power including shared rack/pod
//     draw over one benefit horizon, PLUS the distance-dependent migration
//     energy the plan spends? The fleet is the shape a fleet has BETWEEN
//     consolidation passes: six racks densely packed by earlier passes,
//     two racks holding post-churn stragglers. The flat engine's
//     efficiency-ordered evacuation stalls on the first dense donor (its
//     VMs fit nowhere without waking a server); the occupancy-ordered
//     rack-aware walk drains the straggler racks into dense slack and
//     switches their shared draw off. Three planners run over the same
//     racked world — flat (blind to the topology), rack-aware with an
//     effectively infinite budget, rack-aware with a per-plan budget —
//     and every plan is scored by the same independent assignment
//     evaluator.
//
//  2. Scale (10k servers / 50k VMs, 2 pods x 50 racks x 100 servers): does
//     the fast engine's incremental per-rack aggregate bookkeeping keep a
//     rack-aware plan inside the optimizer's 300 s invocation period?
//
// Flags:
//   --quick         shrink the scale fleet to 1k servers (CI smoke)
//   --out PATH      where to write the JSON (default BENCH_topology.json)
//   --require-win   exit non-zero unless the budgeted rack-aware planner's
//                   net energy is strictly below the flat planner's (soft
//                   CI gate; economics, not timing, so runner noise-free)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "consolidate/ipac.hpp"
#include "util/rng.hpp"

namespace {

using namespace vdc;
using namespace vdc::consolidate;

constexpr double kBudgetS = 300.0;       ///< optimizer invocation period
constexpr double kHorizonS = 300.0;      ///< placement expected to stand one period
constexpr double kRackSharedW = 150.0;   ///< ToR switch + PDU + rack fans
constexpr double kPodSharedW = 400.0;    ///< aggregation switch + CRAC share

/// Builds the rack/pod overlay for `pods` x `racks_per_pod` x `per_rack`
/// rack-major server ids and stamps the coordinates onto the servers.
void attach_topology(DataCenterSnapshot& snap, std::size_t pods, std::size_t racks_per_pod,
                     std::size_t per_rack) {
  for (ServerSnapshot& s : snap.servers) {
    s.rack = static_cast<RackId>(s.id / per_rack);
    s.pod = static_cast<PodId>(s.rack / racks_per_pod);
  }
  for (RackId r = 0; r < pods * racks_per_pod; ++r) {
    RackSnapshot rack;
    rack.id = r;
    rack.pod = static_cast<PodId>(r / racks_per_pod);
    rack.shared_power_w = kRackSharedW;
    for (std::size_t k = 0; k < per_rack; ++k) {
      rack.members.push_back(static_cast<ServerId>(r * per_rack + k));
    }
    snap.racks.push_back(rack);
  }
  for (PodId p = 0; p < pods; ++p) {
    snap.pods.push_back(PodSnapshot{.id = p, .shared_power_w = kPodSharedW});
  }
}

ServerSnapshot make_server(ServerId id, double capacity_ghz, bool active) {
  ServerSnapshot s;
  s.id = id;
  s.max_capacity_ghz = capacity_ghz;
  s.memory_mb = 16384.0;
  s.max_power_w = 150.0 + capacity_ghz * 15.0;
  s.idle_power_w = 0.55 * s.max_power_w;
  s.sleep_power_w = 6.0;
  s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
  s.active = active;
  return s;
}

void add_vm(DataCenterSnapshot& snap, ServerId host, double demand_ghz, double memory_mb) {
  VmSnapshot vm;
  vm.id = static_cast<VmId>(snap.vms.size());
  vm.cpu_demand_ghz = demand_ghz;
  vm.memory_mb = memory_mb;
  snap.vms.push_back(vm);
  snap.servers.at(host).hosted.push_back(vm.id);
}

/// The fleet between consolidation passes: 2 pods x 4 racks x 8 servers.
/// Racks 0-5 are dense — packed to ~85% CPU by earlier passes, so no dense
/// server's VMs fit anywhere without waking a machine. Two of the dense
/// racks also hold a "loose" inefficient server with one small VM (the
/// drainable work every planner finds). Racks 6-7 hold post-churn
/// stragglers: two awake servers with one small VM each, six sleepers.
/// Only a planner that orders donors by rack occupancy reaches the
/// stragglers (the flat engine stalls on its first dense donor first) —
/// and draining them switches two rack shared draws off.
DataCenterSnapshot steady_state_fleet(std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  constexpr std::size_t kPerRack = 8;
  constexpr double kDenseCaps[] = {6.0, 7.0, 8.0, 9.0, 10.0, 8.0, 9.0, 7.0};
  for (RackId r = 0; r < 6; ++r) {  // dense racks
    for (std::size_t k = 0; k < kPerRack; ++k) {
      const ServerId id = static_cast<ServerId>(r * kPerRack + k);
      // Loose servers: least-efficient cap so they head the flat donor walk.
      const bool loose = (r == 0 || r == 3) && k == kPerRack - 1;
      const double cap = loose ? 5.0 : kDenseCaps[k];
      snap.servers.push_back(make_server(id, cap, /*active=*/true));
      if (loose) {
        add_vm(snap, id, 0.5, 2048.0);
      } else {
        // Three VMs totalling ~85% utilization: each is far larger than any
        // other dense server's slack, so evacuating a dense donor forces a
        // wake-up.
        for (int v = 0; v < 3; ++v) {
          add_vm(snap, id, cap * 0.283 * rng.uniform(0.95, 1.05), 4096.0);
        }
      }
    }
  }
  for (RackId r = 6; r < 8; ++r) {  // straggler racks
    for (std::size_t k = 0; k < kPerRack; ++k) {
      const ServerId id = static_cast<ServerId>(r * kPerRack + k);
      const bool occupied = k < 2;
      // Occupied stragglers are mid-tier machines: dense cap-10 servers
      // outrank them in PAC's efficiency-ordered target walk, so a drained
      // VM lands in dense slack instead of ping-ponging onto the other
      // straggler. The sleepers are big cap-12 boxes — waking one is the
      // wrong call here, and both engines must correctly refuse to.
      snap.servers.push_back(make_server(id, occupied ? 8.0 : 12.0, /*active=*/occupied));
      if (occupied) add_vm(snap, id, 0.4, 3072.0);
    }
  }
  attach_topology(snap, 2, 4, kPerRack);
  return snap;
}

/// Heterogeneous fleet in the perf_consolidation mold, with the rack/pod
/// overlay attached: capacities 3-12 GHz, VMs 0.1-1.5 GHz round-robin over
/// the awake servers, every 10th server asleep. Used for the plan-time
/// measurement at scale.
DataCenterSnapshot random_racked_fleet(std::size_t pods, std::size_t racks_per_pod,
                                       std::size_t per_rack, std::size_t vms,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  const std::size_t servers = pods * racks_per_pod * per_rack;
  std::vector<ServerId> awake;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = i % 10 != 9;
    if (s.active) awake.push_back(s.id);
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
    snap.servers[awake[i % awake.size()]].hosted.push_back(vm.id);
  }
  attach_topology(snap, pods, racks_per_pod, per_rack);
  return snap;
}

RackAwareOptions rack_options(double budget_j) {
  RackAwareOptions rack;
  rack.enabled = true;
  rack.cost.transfer.cross_rack_bandwidth_factor = 0.5;
  rack.cost.transfer.cross_pod_bandwidth_factor = 0.25;
  rack.migration_energy_budget_j = budget_j;
  rack.benefit_horizon_s = kHorizonS;
  return rack;
}

/// Stationary power (W) of the fleet after applying `plan`, shared rack and
/// pod draws included — the independent scorer all three planners share.
double power_after_w(const DataCenterSnapshot& snap, const PlacementPlan& plan) {
  std::vector<ServerId> host(snap.vms.size(), datacenter::kNoServer);
  for (const ServerSnapshot& s : snap.servers) {
    for (const VmId vm : s.hosted) host[vm] = s.id;
  }
  for (const Move& move : plan.moves) host[move.vm] = move.to;
  std::vector<double> demand(snap.servers.size(), 0.0);
  std::vector<std::size_t> count(snap.servers.size(), 0);
  for (std::size_t v = 0; v < host.size(); ++v) {
    if (host[v] == datacenter::kNoServer) continue;
    demand[host[v]] += snap.vms[v].cpu_demand_ghz;
    ++count[host[v]];
  }
  double total = 0.0;
  for (const ServerSnapshot& s : snap.servers) {
    if (count[s.id] > 0) {
      const double util = demand[s.id] / s.max_capacity_ghz;
      total += s.idle_power_w + (s.max_power_w - s.idle_power_w) * (util < 1.0 ? util : 1.0);
    } else {
      total += s.sleep_power_w;
    }
  }
  std::vector<char> pod_lit(snap.pods.size(), 0);
  for (const RackSnapshot& rack : snap.racks) {
    bool lit = false;
    for (const ServerId s : rack.members) lit = lit || count[s] > 0;
    if (lit) {
      total += rack.shared_power_w;
      pod_lit[rack.pod] = 1;
    }
  }
  for (const PodSnapshot& pod : snap.pods) {
    if (pod_lit[pod.id] != 0) total += pod.shared_power_w;
  }
  return total;
}

/// Migration energy (J) of a plan under the bench's cost model, charged by
/// the network tier each move actually crosses.
double plan_cost_j(const DataCenterSnapshot& snap, const PlacementPlan& plan,
                   const MigrationCostModel& cost) {
  double total = 0.0;
  for (const Move& move : plan.moves) {
    if (move.from == datacenter::kNoServer) continue;
    total += cost.energy_j(snap.vm(move.vm).memory_mb, snap.distance(move.from, move.to));
  }
  return total;
}

struct EngineScore {
  std::string name;
  double net_energy_j = 0.0;       ///< power_after * horizon + migration energy
  double power_after_w = 0.0;
  double migration_energy_j = 0.0;
  std::size_t moves = 0;
  std::size_t racks_emptied = 0;
  double rack_switch_off_j = 0.0;  ///< shared draw the emptied racks stop burning
  std::size_t rounds_accepted = 0;
  std::size_t rejected_by_cost = 0;
  std::size_t rejected_by_budget = 0;
};

EngineScore score(const char* name, const DataCenterSnapshot& snap, const IpacReport& report,
                  const MigrationCostModel& cost) {
  EngineScore s;
  s.name = name;
  s.power_after_w = power_after_w(snap, report.plan);
  s.migration_energy_j = plan_cost_j(snap, report.plan, cost);
  s.net_energy_j = s.power_after_w * kHorizonS + s.migration_energy_j;
  s.moves = report.plan.moves.size();
  s.racks_emptied = report.racks_emptied;
  s.rack_switch_off_j = static_cast<double>(report.racks_emptied) * kRackSharedW * kHorizonS;
  s.rounds_accepted = report.rounds_accepted;
  s.rejected_by_cost = report.rounds_rejected_by_cost;
  s.rejected_by_budget = report.rounds_rejected_by_budget;
  return s;
}

void append_score_json(std::string& json, const EngineScore& s) {
  char buf[400];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"net_energy_j\": %.1f, \"power_after_w\": %.1f, "
                "\"migration_energy_j\": %.1f, \"moves\": %zu, \"racks_emptied\": %zu, "
                "\"rack_switch_off_j\": %.1f, \"rounds_accepted\": %zu, "
                "\"rounds_rejected_by_cost\": %zu, \"rounds_rejected_by_budget\": %zu}",
                s.name.c_str(), s.net_energy_j, s.power_after_w, s.migration_energy_j,
                s.moves, s.racks_emptied, s.rack_switch_off_j, s.rounds_accepted,
                s.rejected_by_cost, s.rejected_by_budget);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool require_win = false;
  std::string out_path = "BENCH_topology.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--require-win") == 0) {
      require_win = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  // ---- economics: 2 pods x 4 racks x 8 servers, steady-state shape -------
  const DataCenterSnapshot fig = steady_state_fleet(/*seed=*/42);
  DataCenterSnapshot flat_world = fig;
  flat_world.racks.clear();
  flat_world.pods.clear();

  const MigrationCostModel cost_model = rack_options(0.0).cost;
  const double initial_w = power_after_w(fig, PlacementPlan{});

  // Flat planner: blind to racks; its plan is still scored on the racked
  // world (the shared draws exist whether or not the planner models them).
  const IpacReport flat_report = ipac(flat_world, constraints);
  const EngineScore flat = score("flat", fig, flat_report, cost_model);
  // Rack-aware, effectively unbudgeted.
  const IpacReport aware_report =
      ipac(fig, constraints, FreeMigrationPolicy(), {}, rack_options(1e18));
  const EngineScore aware = score("rack_aware", fig, aware_report, cost_model);
  // Rack-aware under a BINDING per-plan migration energy budget: enough
  // for the four straggler drains (both rack switch-offs land), not for
  // the loose-server rounds after them — the report shows the budget
  // rejections.
  const IpacReport budgeted_report =
      ipac(fig, constraints, FreeMigrationPolicy(), {}, rack_options(14500.0));
  const EngineScore budgeted = score("rack_aware_budgeted", fig, budgeted_report, cost_model);

  std::printf("# ablation_topology: net energy over one %gs horizon (racked world)\n",
              kHorizonS);
  std::printf("%-22s %14s %12s %14s %8s %8s %12s\n", "planner", "net_energy_j", "power_w",
              "migration_j", "moves", "racks", "rej c/b");
  for (const EngineScore* s : {&flat, &aware, &budgeted}) {
    std::printf("%-22s %14.1f %12.1f %14.1f %8zu %8zu %7zu/%zu\n", s->name.c_str(),
                s->net_energy_j, s->power_after_w, s->migration_energy_j, s->moves,
                s->racks_emptied, s->rejected_by_cost, s->rejected_by_budget);
  }

  // ---- scale: rack-aware plan time at 10k servers -------------------------
  const std::size_t racks_per_pod = quick ? 5 : 50;
  const DataCenterSnapshot big =
      random_racked_fleet(2, racks_per_pod, 100, quick ? 5000 : 50000, /*seed=*/7);
  const RackAwareOptions big_rack = rack_options(1e18);
  (void)ipac(big, constraints, FreeMigrationPolicy(), {}, big_rack);  // warmup
  const std::size_t reps = quick ? 2 : 3;
  const auto t0 = std::chrono::steady_clock::now();
  IpacReport big_report;
  for (std::size_t r = 0; r < reps; ++r) {
    big_report = ipac(big, constraints, FreeMigrationPolicy(), {}, big_rack);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s_per_plan =
      std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(reps);
  std::printf("rack-aware plan at %zu servers: %.3f s/plan (budget %.0f s), %zu moves\n",
              big.servers.size(), wall_s_per_plan, kBudgetS, big_report.plan.moves.size());

  const bool budgeted_beats_flat = budgeted.net_energy_j < flat.net_energy_j;
  const bool within_budget = wall_s_per_plan <= kBudgetS;

  std::string json = "{\n  \"bench\": \"ablation_topology\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"fig6_fleet\": {\"pods\": 2, \"racks\": 8, \"servers\": %zu, \"vms\": %zu},\n"
                "  \"horizon_s\": %.1f,\n  \"initial_power_w\": %.1f,\n  \"planners\": {\n",
                fig.servers.size(), fig.vms.size(), kHorizonS, initial_w);
  json += line;
  append_score_json(json, flat);
  json += ",\n";
  append_score_json(json, aware);
  json += ",\n";
  append_score_json(json, budgeted);
  json += "\n  },\n";
  std::snprintf(line, sizeof(line),
                "  \"budgeted_savings_vs_flat_j\": %.1f,\n"
                "  \"budgeted_beats_flat\": %s,\n",
                flat.net_energy_j - budgeted.net_energy_j,
                budgeted_beats_flat ? "true" : "false");
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"scale\": {\"servers\": %zu, \"vms\": %zu, \"wall_s_per_plan\": %.6f, "
                "\"budget_s\": %.1f, \"within_budget\": %s}\n}\n",
                big.servers.size(), big.vms.size(), wall_s_per_plan, kBudgetS,
                within_budget ? "true" : "false");
  json += line;

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (require_win && !budgeted_beats_flat) {
    std::fprintf(stderr,
                 "FAIL: budgeted rack-aware net energy %.1f J >= flat %.1f J\n",
                 budgeted.net_energy_j, flat.net_energy_j);
    return 1;
  }
  return 0;
}
