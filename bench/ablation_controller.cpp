// Ablation: controller design choices.
//
//   * MPC vs static allocation (the DESIGN.md question "why feedback?"):
//     static provisioning either violates the SLA under surge or wastes
//     CPU permanently.
//   * terminal-constraint mode (hard equation-(4) vs soft penalty vs off).
//   * disturbance (bias) correction gain.
//
// Metrics: tracking quality (mean |p90 - setpoint|), SLA violations
// (fraction of periods > 1.2x setpoint), and mean CPU allocated (the power
// proxy at the application level).
//
// Every variant is one standalone AppStack ScenarioSpec — the MPC rows
// configure the controller, the static rows install a fixed-allocation
// policy — and the whole grid runs in parallel.
#include <cstdio>

#include "core/scenario.hpp"
#include "core/sysid_experiment.hpp"

namespace {

using namespace vdc;

struct Metrics {
  double mean_abs_error_ms = 0.0;
  double violation_fraction = 0.0;
  double mean_cpu_ghz = 0.0;
};

control::MpcConfig tuned(control::MpcConfig::Terminal terminal, double dist_gain) {
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.terminal = terminal;
  mpc.disturbance_gain = dist_gain;
  return mpc;
}

/// The shared 1,200 s scenario: a surge doubles the concurrency during
/// [400, 800) s. Controller/policy specifics are filled in by the caller.
core::ScenarioSpec surge_spec(const char* name) {
  core::ScenarioSpec spec;
  spec.name = name;
  spec.stack.app = app::default_two_tier_app("a", 42, 40);
  spec.duration_s = 1200.0;  // 300 control periods
  spec.concurrency_schedule = {{.time_s = 400.0, .app = 0, .concurrency = 80},
                               {.time_s = 800.0, .app = 0, .concurrency = 40}};
  return spec;
}

/// Tracking/violation/CPU metrics over the periods after the 200 s warmup.
Metrics evaluate(const core::ScenarioResult& run) {
  const auto& response = run.response_series(0);
  const auto& allocations = run.allocation_series(0);
  util::RunningStats abs_error;
  util::RunningStats cpu;
  std::size_t violations = 0;
  std::size_t periods = 0;
  for (std::size_t k = 50; k < response.size(); ++k) {
    abs_error.add(std::abs(response[k] - 1.0));
    cpu.add(allocations[k][0] + allocations[k][1]);
    ++periods;
    if (response[k] > 1.2) ++violations;
  }
  Metrics metrics;
  metrics.mean_abs_error_ms = abs_error.mean() * 1000.0;
  metrics.violation_fraction = static_cast<double>(violations) / static_cast<double>(periods);
  metrics.mean_cpu_ghz = cpu.mean();
  return metrics;
}

}  // namespace

int main() {
  using namespace vdc;
  std::printf("# Ablation: controller design choices (surge 40->80 clients at t=400-800 s)\n");
  const core::SysIdExperimentResult identified =
      core::identify_app_model(app::default_two_tier_app("staging", 1001, 40));
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);

  std::vector<core::ScenarioSpec> specs;
  const auto mpc_spec = [&](const char* name, control::MpcConfig::Terminal terminal,
                            double dist_gain) {
    core::ScenarioSpec spec = surge_spec(name);
    spec.model = identified.model;
    spec.stack.mpc = tuned(terminal, dist_gain);
    specs.push_back(std::move(spec));
  };
  mpc_spec("MPC soft terminal (default)", control::MpcConfig::Terminal::kSoft, 0.5);
  mpc_spec("MPC hard terminal (eq. 4)", control::MpcConfig::Terminal::kHard, 0.5);
  mpc_spec("MPC no terminal constraint", control::MpcConfig::Terminal::kOff, 0.5);
  mpc_spec("MPC no disturbance correction", control::MpcConfig::Terminal::kSoft, 0.0);

  for (const double alloc : {0.35, 0.6, 1.2}) {
    char name[64];
    std::snprintf(name, sizeof(name), "static %.2f GHz per tier", alloc);
    core::ScenarioSpec spec = surge_spec(name);
    spec.policy = [alloc](const std::optional<app::PeriodStats>&) {
      return std::vector<double>(2, alloc);
    };
    specs.push_back(std::move(spec));
  }

  const std::vector<core::ScenarioResult> runs = core::ScenarioRunner().run_all(specs);

  std::printf("%-34s %18s %14s %14s\n", "controller", "mean |err| (ms)", "violations",
              "mean CPU (GHz)");
  for (const core::ScenarioResult& run : runs) {
    const Metrics m = evaluate(run);
    std::printf("%-34s %18.0f %13.1f%% %14.2f\n", run.name.c_str(), m.mean_abs_error_ms,
                100.0 * m.violation_fraction, m.mean_cpu_ghz);
  }

  std::printf("\n# expected: MPC tracks through the surge with bounded CPU; small static\n");
  std::printf("# allocations violate the SLA badly, large ones waste CPU permanently,\n");
  std::printf("# and disabling the disturbance correction leaves a tracking offset.\n");
  return 0;
}
