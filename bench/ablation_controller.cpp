// Ablation: controller design choices.
//
//   * MPC vs static allocation (the DESIGN.md question "why feedback?"):
//     static provisioning either violates the SLA under surge or wastes
//     CPU permanently.
//   * terminal-constraint mode (hard equation-(4) vs soft penalty vs off).
//   * disturbance (bias) correction gain.
//
// Metrics: tracking quality (mean |p90 - setpoint|), SLA violations
// (fraction of periods > 1.2x setpoint), and mean CPU allocated (the power
// proxy at the application level).
#include <cstdio>
#include <functional>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "app/workload.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "sim/simulation.hpp"
#include "util/statistics.hpp"

namespace {

using namespace vdc;

struct Metrics {
  double mean_abs_error_ms = 0.0;
  double violation_fraction = 0.0;
  double mean_cpu_ghz = 0.0;
};

control::MpcConfig tuned(control::MpcConfig::Terminal terminal, double dist_gain) {
  control::MpcConfig mpc;
  mpc.prediction_horizon = 12;
  mpc.control_horizon = 3;
  mpc.r_weight = {1.0};
  mpc.period_s = 4.0;
  mpc.tref_s = 16.0;
  mpc.setpoint = 1.0;
  mpc.c_min = {0.15};
  mpc.c_max = {1.5};
  mpc.delta_max = 0.3;
  mpc.terminal = terminal;
  mpc.disturbance_gain = dist_gain;
  return mpc;
}

/// Runs a 1,200 s scenario with a surge in the middle; `decide` maps the
/// period's monitor harvest to the allocations to apply.
Metrics run_scenario(
    const std::function<std::vector<double>(const std::optional<app::PeriodStats>&)>& decide,
    std::uint64_t seed) {
  sim::Simulation sim;
  app::MultiTierApp live(sim, app::default_two_tier_app("a", seed, 40));
  app::ResponseTimeMonitor monitor(0.9);
  live.set_response_callback([&](double, double rt) { monitor.record(rt); });
  live.set_allocations(std::vector<double>(2, 0.6));
  live.start();
  apply_schedule(sim, live, app::surge_schedule(40, 400.0, 800.0));

  Metrics metrics;
  util::RunningStats abs_error;
  util::RunningStats cpu;
  std::size_t violations = 0;
  std::size_t periods = 0;
  double last = 1.0;
  for (int k = 1; k <= 300; ++k) {
    sim.run_until(4.0 * k);
    const auto stats = monitor.harvest();
    if (stats && stats->count > 0) last = stats->quantile;
    const std::vector<double> c = decide(stats);
    live.set_allocations(c);
    if (k > 50) {
      abs_error.add(std::abs(last - 1.0));
      cpu.add(c[0] + c[1]);
      ++periods;
      if (last > 1.2) ++violations;
    }
  }
  metrics.mean_abs_error_ms = abs_error.mean() * 1000.0;
  metrics.violation_fraction = static_cast<double>(violations) / static_cast<double>(periods);
  metrics.mean_cpu_ghz = cpu.mean();
  return metrics;
}

}  // namespace

int main() {
  using namespace vdc;
  std::printf("# Ablation: controller design choices (surge 40->80 clients at t=400-800 s)\n");
  const core::SysIdExperimentResult identified =
      core::identify_app_model(app::default_two_tier_app("staging", 1001, 40));
  std::printf("# model R^2 = %.2f\n\n", identified.r_squared);
  std::printf("%-34s %18s %14s %14s\n", "controller", "mean |err| (ms)", "violations",
              "mean CPU (GHz)");

  const auto mpc_row = [&](const char* name, control::MpcConfig::Terminal terminal,
                           double dist_gain) {
    core::ResponseTimeController controller(identified.model, tuned(terminal, dist_gain),
                                            std::vector<double>(2, 0.6));
    const Metrics m = run_scenario(
        [&](const std::optional<app::PeriodStats>& stats) { return controller.control(stats); },
        42);
    std::printf("%-34s %18.0f %13.1f%% %14.2f\n", name, m.mean_abs_error_ms,
                100.0 * m.violation_fraction, m.mean_cpu_ghz);
  };
  mpc_row("MPC soft terminal (default)", control::MpcConfig::Terminal::kSoft, 0.5);
  mpc_row("MPC hard terminal (eq. 4)", control::MpcConfig::Terminal::kHard, 0.5);
  mpc_row("MPC no terminal constraint", control::MpcConfig::Terminal::kOff, 0.5);
  mpc_row("MPC no disturbance correction", control::MpcConfig::Terminal::kSoft, 0.0);

  for (const double alloc : {0.35, 0.6, 1.2}) {
    const Metrics m = run_scenario(
        [&](const std::optional<app::PeriodStats>&) {
          return std::vector<double>(2, alloc);
        },
        42);
    char name[64];
    std::snprintf(name, sizeof(name), "static %.2f GHz per tier", alloc);
    std::printf("%-34s %18.0f %13.1f%% %14.2f\n", name, m.mean_abs_error_ms,
                100.0 * m.violation_fraction, m.mean_cpu_ghz);
  }

  std::printf("\n# expected: MPC tracks through the surge with bounded CPU; small static\n");
  std::printf("# allocations violate the SLA badly, large ones waste CPU permanently,\n");
  std::printf("# and disabling the disturbance correction leaves a tracking offset.\n");
  return 0;
}
