// Fleet-scale consolidation performance regression harness.
//
// Runs a full IPAC pass (overload relief + consolidation rounds, Minimum
// Slack inside) over seeded synthetic fleets through both the fast engine
// (incremental WorkingPlacement aggregates, SlackIndex target selection,
// branch-and-bound Minimum Slack) and the retained naive reference
// (consolidate::naive), and reports plans/sec and ns per DFS step at
// 1k servers / 5k VMs and 10k servers / 50k VMs. Results are written as
// machine-readable JSON (BENCH_consolidation.json) so CI can gate on
// regressions, mirroring bench/perf_eventloop.
//
// The acceptance context: a 10k-server / 50k-VM pass must complete well
// inside one consolidation period (the optimizer's default 300 s) — the
// JSON records the measured wall time per plan against that budget.
//
// Flags:
//   --quick            1k-server size only, fewer repetitions (CI smoke)
//   --full-naive       also run the naive engine at 10k servers (slow)
//   --out PATH         where to write the JSON (default BENCH_consolidation.json)
//   --min-speedup X    exit non-zero if fast/naive plans-per-second at 1k
//                      servers falls below X (CI gate; 0 disables)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "consolidate/ipac.hpp"
#include "consolidate/naive.hpp"
#include "util/rng.hpp"

namespace {

using namespace vdc;
using namespace vdc::consolidate;

/// Consolidation period the fleet pass must fit inside (the optimizer's
/// default invocation period in the two-level testbed).
constexpr double kBudgetS = 300.0;

/// Heterogeneous fleet in the micro_algorithms mold: capacities 3-12 GHz,
/// VMs 0.1-1.5 GHz round-robin over the awake servers. Every 10th server
/// starts asleep and empty (a wake target), which exercises IPAC's
/// active-first ordering; small servers can start overloaded, which
/// exercises relief.
DataCenterSnapshot random_fleet(std::size_t servers, std::size_t vms, std::uint64_t seed) {
  util::Rng rng(seed);
  DataCenterSnapshot snap;
  std::vector<ServerId> awake;
  for (std::size_t i = 0; i < servers; ++i) {
    ServerSnapshot s;
    s.id = static_cast<ServerId>(i);
    s.max_capacity_ghz = rng.uniform(3.0, 12.0);
    s.memory_mb = rng.uniform(8000.0, 32000.0);
    s.max_power_w = 150.0 + s.max_capacity_ghz * 15.0;
    s.idle_power_w = 0.55 * s.max_power_w;
    s.sleep_power_w = 6.0;
    s.power_efficiency_ghz_per_w = s.max_capacity_ghz / s.max_power_w;
    s.active = i % 10 != 9;
    if (s.active) awake.push_back(s.id);
    snap.servers.push_back(s);
  }
  for (std::size_t i = 0; i < vms; ++i) {
    VmSnapshot vm;
    vm.id = static_cast<VmId>(i);
    vm.cpu_demand_ghz = rng.uniform(0.1, 1.5);
    vm.memory_mb = rng.uniform(400.0, 2000.0);
    snap.vms.push_back(vm);
    snap.servers[awake[i % awake.size()]].hosted.push_back(vm.id);
  }
  return snap;
}

struct RunResult {
  std::size_t plans = 0;
  std::size_t steps = 0;        ///< total Minimum Slack DFS steps
  std::size_t moves = 0;        ///< migrations in the final plan
  std::size_t occupied_after = 0;
  double wall_s = 0.0;

  [[nodiscard]] double plans_per_sec() const { return static_cast<double>(plans) / wall_s; }
  [[nodiscard]] double wall_s_per_plan() const {
    return wall_s / static_cast<double>(plans);
  }
  [[nodiscard]] double ns_per_step() const {
    return steps == 0 ? 0.0 : wall_s * 1e9 / static_cast<double>(steps);
  }
};

template <typename Engine>
RunResult run_engine(const DataCenterSnapshot& snap, const ConstraintSet& constraints,
                     Engine&& engine, std::size_t reps) {
  RunResult out;
  // One untimed warmup plan: both engines allocate scratch and fault pages
  // on their first pass, and at a handful of reps that cold cost would
  // otherwise dominate the steady-state figure the bench reports.
  (void)engine(snap, constraints);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    const IpacReport report = engine(snap, constraints);
    out.steps += report.min_slack_steps;
    out.moves = report.plan.moves.size();
    out.occupied_after = report.occupied_after;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.plans = reps;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (out.wall_s <= 0.0) out.wall_s = 1e-9;  // clock granularity floor
  return out;
}

void append_run_json(std::string& json, const char* key, const RunResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"plans\": %zu, \"wall_s\": %.6f, \"plans_per_sec\": %.3f, "
                "\"wall_s_per_plan\": %.6f, \"dfs_steps\": %zu, \"ns_per_dfs_step\": %.1f, "
                "\"moves\": %zu, \"occupied_after\": %zu}",
                key, r.plans, r.wall_s, r.plans_per_sec(), r.wall_s_per_plan(), r.steps,
                r.ns_per_step(), r.moves, r.occupied_after);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full_naive = false;
  std::string out_path = "BENCH_consolidation.json";
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full-naive") == 0) {
      full_naive = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  struct Size {
    std::size_t servers;
    std::size_t vms;
  };
  std::vector<Size> sizes = {{1000, 5000}, {10000, 50000}};
  if (quick) sizes.pop_back();

  const ConstraintSet constraints = ConstraintSet::standard(1.0);

  std::printf("# perf_consolidation: fast IPAC engine vs retained naive reference\n");
  std::printf("%-14s %-8s %14s %16s %14s %10s\n", "fleet", "engine", "plans/sec",
              "wall_s/plan", "ns/DFS-step", "moves");

  std::string json = "{\n  \"bench\": \"perf_consolidation\",\n";
  json += quick ? "  \"mode\": \"quick\",\n" : "  \"mode\": \"full\",\n";
  char line[96];
  std::snprintf(line, sizeof(line), "  \"budget_s\": %.1f,\n", kBudgetS);
  json += line;
  json += "  \"sizes\": [\n";

  double speedup_at_1k = 0.0;
  double wall_at_largest = 0.0;
  bool first = true;
  for (const Size size : sizes) {
    const DataCenterSnapshot snap = random_fleet(size.servers, size.vms, /*seed=*/42);
    char label[32];
    std::snprintf(label, sizeof(label), "%zus/%zuv", size.servers, size.vms);

    // Repetitions: enough to smooth timer noise on the fast engine; the
    // naive engine is run fewer times (it is the thing being amortized).
    const std::size_t fast_reps = quick ? 3 : (size.servers <= 1000 ? 10 : 3);
    const RunResult fast = run_engine(
        snap, constraints,
        [](const DataCenterSnapshot& s, const ConstraintSet& c) {
          return consolidate::ipac(s, c);
        },
        fast_reps);
    std::printf("%-14s %-8s %14.3f %16.6f %14.1f %10zu\n", label, "fast",
                fast.plans_per_sec(), fast.wall_s_per_plan(), fast.ns_per_step(), fast.moves);
    wall_at_largest = fast.wall_s_per_plan();

    // The naive engine at 10k servers rescans the fleet per round and walks
    // every server per Minimum Slack call; that run is minutes and opt-in.
    const bool run_naive = size.servers <= 1000 || full_naive;
    RunResult naive;
    if (run_naive) {
      naive = run_engine(
          snap, constraints,
          [](const DataCenterSnapshot& s, const ConstraintSet& c) {
            return consolidate::naive::ipac(s, c);
          },
          quick ? 1 : 2);
      std::printf("%-14s %-8s %14.3f %16.6f %14.1f %10zu\n", label, "naive",
                  naive.plans_per_sec(), naive.wall_s_per_plan(), naive.ns_per_step(),
                  naive.moves);
    }

    const double speedup = run_naive ? fast.plans_per_sec() / naive.plans_per_sec() : 0.0;
    if (run_naive) std::printf("%-14s %-8s %13.2fx\n", label, "speedup", speedup);
    if (size.servers == 1000) speedup_at_1k = speedup;

    if (!first) json += ",\n";
    first = false;
    char head[96];
    std::snprintf(head, sizeof(head), "    {\"servers\": %zu, \"vms\": %zu,\n", size.servers,
                  size.vms);
    json += head;
    append_run_json(json, "fast", fast);
    json += ",\n";
    if (run_naive) {
      append_run_json(json, "naive", naive);
      char tail[64];
      std::snprintf(tail, sizeof(tail), ",\n      \"speedup\": %.2f}", speedup);
      json += tail;
    } else {
      json += "      \"naive\": null}";
    }
  }
  json += "\n  ],\n";
  const bool within_budget = wall_at_largest <= kBudgetS;
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "  \"speedup_at_1k\": %.2f,\n  \"wall_s_per_plan_at_largest\": %.6f,\n"
                "  \"within_budget\": %s\n}\n",
                speedup_at_1k, wall_at_largest, within_budget ? "true" : "false");
  json += tail;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!within_budget) {
    std::fprintf(stderr, "REGRESSION: %.1f s per plan at the largest fleet exceeds the %.0f s "
                 "consolidation period\n", wall_at_largest, kBudgetS);
    return 1;
  }
  if (min_speedup > 0.0 && speedup_at_1k < min_speedup) {
    std::fprintf(stderr, "REGRESSION: speedup at 1k servers %.2fx < required %.2fx\n",
                 speedup_at_1k, min_speedup);
    return 1;
  }
  return 0;
}
