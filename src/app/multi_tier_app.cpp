#include "app/multi_tier_app.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "check/app_audit.hpp"

namespace vdc::app {

AppConfig default_two_tier_app(std::string name, std::uint64_t seed, std::size_t concurrency) {
  AppConfig config;
  config.name = std::move(name);
  config.seed = seed;
  config.concurrency = concurrency;
  config.think_time_s = 1.0;
  // Web tier: PHP script execution; DB tier: MySQL query processing. The
  // demands are sized so that a ~1000 ms 90-percentile response time at
  // concurrency 40 needs roughly 0.3-0.6 GHz per tier — comfortably inside
  // one core of the simulated servers, as on the paper's testbed.
  config.tiers = {
      TierConfig{.name = "web",
                 .mean_demand_gcycles = 0.008,
                 .pareto_alpha = 2.2,
                 .initial_allocation_ghz = 1.0},
      TierConfig{.name = "db",
                 .mean_demand_gcycles = 0.012,
                 .pareto_alpha = 2.2,
                 .initial_allocation_ghz = 1.0},
  };
  return config;
}

namespace {

/// Distinct stream for the dispatcher tie-break RNG, derived from the app
/// seed. Any fixed odd constant works; this is splitmix64's increment.
constexpr std::uint64_t kDispatchStream = 0x9e3779b97f4a7c15ull;

/// Mean of a bounded Pareto on [lo, hi] with shape alpha. Requires
/// alpha > 1: at alpha == 1 the closed form divides by zero, and at or
/// below 1 the finite-mean rescale in issue_request is meaningless — the
/// constructor rejects such configs up front.
double bounded_pareto_mean(double alpha, double lo, double hi) {
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return la / (1.0 - la / ha) * alpha / (alpha - 1.0) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
}

void validate_config(const AppConfig& config) {
  if (config.tiers.empty()) throw std::invalid_argument("MultiTierApp: no tiers configured");
  for (const TierConfig& tier : config.tiers) {
    if (!(tier.mean_demand_gcycles > 0.0) || !std::isfinite(tier.mean_demand_gcycles)) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': mean_demand_gcycles must be positive and finite");
    }
    if (!(tier.pareto_alpha > 1.0) || !std::isfinite(tier.pareto_alpha)) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': pareto_alpha must be > 1 (finite-mean rescale)");
    }
    if (tier.initial_allocation_ghz < 0.0 || !std::isfinite(tier.initial_allocation_ghz)) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': initial_allocation_ghz must be >= 0 and finite");
    }
    if (tier.initial_replicas == 0) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': initial_replicas must be >= 1");
    }
    if (tier.max_replicas < tier.initial_replicas) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': max_replicas < initial_replicas");
    }
    if (tier.boot_delay_s < 0.0 || !std::isfinite(tier.boot_delay_s)) {
      throw std::invalid_argument("MultiTierApp: tier '" + tier.name +
                                  "': boot_delay_s must be >= 0 and finite");
    }
  }
  const bool open = config.open_arrival_rate_rps > 0.0;
  if (config.open_arrival_rate_rps < 0.0 || !std::isfinite(config.open_arrival_rate_rps)) {
    throw std::invalid_argument("MultiTierApp: open_arrival_rate_rps must be >= 0 and finite");
  }
  if (!open) {
    if (!(config.think_time_s > 0.0) || !std::isfinite(config.think_time_s)) {
      throw std::invalid_argument("MultiTierApp: think_time_s must be positive and finite");
    }
    if (config.concurrency == 0) {
      throw std::invalid_argument(
          "MultiTierApp: empty workload (concurrency 0 and no open arrival rate)");
    }
  }
}

}  // namespace

MultiTierApp::MultiTierApp(sim::Simulation& sim, AppConfig config)
    : sim_(sim),
      config_(std::move(config)),
      rng_(config_.seed),
      dispatch_rng_(config_.seed ^ kDispatchStream) {
  validate_config(config_);
  tiers_.resize(config_.tiers.size());
  tier_resident_.assign(config_.tiers.size(), 0);
  for (std::size_t j = 0; j < config_.tiers.size(); ++j) {
    const TierConfig& tc = config_.tiers[j];
    tiers_[j].replicas.resize(tc.initial_replicas);
    for (std::size_t r = 0; r < tc.initial_replicas; ++r) {
      Replica& rep = tiers_[j].replicas[r];
      rep.queue = std::make_unique<sim::PsQueue>(
          sim_, tc.initial_allocation_ghz,
          [this, j, r](sim::JobId job) { on_replica_complete(j, r, job); });
      rep.state = Replica::State::kServing;  // initial replicas skip boot
      rep.allocation_ghz = tc.initial_allocation_ghz;
    }
  }
  target_clients_ = config_.concurrency;
  open_mode_ = config_.open_arrival_rate_rps > 0.0;
}

void MultiTierApp::start() {
  if (started_) throw std::logic_error("MultiTierApp: already started");
  started_ = true;
  if (open_workload()) {
    schedule_next_arrival();
  } else {
    while (active_clients_ < target_clients_) spawn_client();
  }
}

void MultiTierApp::set_allocation(std::size_t tier, double ghz) {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  for (std::size_t r = 0; r < tiers_[tier].replicas.size(); ++r) {
    if (tiers_[tier].replicas[r].state != Replica::State::kFree) {
      set_replica_allocation(tier, r, ghz);
    }
  }
}

void MultiTierApp::set_allocations(std::span<const double> ghz) {
  if (ghz.size() != tiers_.size()) throw std::invalid_argument("MultiTierApp: allocation size");
  for (std::size_t j = 0; j < ghz.size(); ++j) set_allocation(j, ghz[j]);
}

std::vector<double> MultiTierApp::allocations() const {
  // Per-replica view: the controller reasons about one replica's capacity;
  // the supervisor multiplies by the replica count.
  std::vector<double> out;
  out.reserve(tiers_.size());
  for (std::size_t j = 0; j < tiers_.size(); ++j) {
    double alloc = 0.0;
    for (const Replica& rep : tiers_[j].replicas) {
      if (rep.state == Replica::State::kServing || rep.state == Replica::State::kBooting) {
        alloc = rep.allocation_ghz;
        break;
      }
    }
    out.push_back(alloc);
  }
  return out;
}

void MultiTierApp::set_concurrency(std::size_t n) {
  if (open_workload()) return;  // population is meaningless under open arrivals
  target_clients_ = n;
  if (!started_) return;
  while (active_clients_ < target_clients_) spawn_client();
  // Shrinkage is lazy: clients retire at their next decision point.
}

void MultiTierApp::set_arrival_rate(double requests_per_second) {
  if (!open_workload()) {
    throw std::logic_error("MultiTierApp: set_arrival_rate requires open-workload mode");
  }
  if (requests_per_second < 0.0 || !std::isfinite(requests_per_second)) {
    throw std::invalid_argument("MultiTierApp: arrival rate must be >= 0 and finite");
  }
  config_.open_arrival_rate_rps = requests_per_second;
  if (!started_) return;
  // Cancel the pending arrival and resample the gap at the new rate. The
  // exponential is memoryless, so resampling is exact — and a pause (rate
  // 0) leaves no pending event, letting an idle simulation go quiescent.
  if (arrival_event_ != sim::kNoEvent) {
    sim_.cancel(arrival_event_);
    arrival_event_ = sim::kNoEvent;
  }
  schedule_next_arrival();
}

void MultiTierApp::schedule_next_arrival() {
  const double rate = config_.open_arrival_rate_rps;
  if (rate <= 0.0) return;  // paused: set_arrival_rate(>0) reschedules
  arrival_event_ = sim_.schedule_after(rng_.exponential(1.0 / rate), [this] {
    arrival_event_ = sim::kNoEvent;
    issue_request();
    schedule_next_arrival();
  });
}

double MultiTierApp::tier_work_done_gcycles(std::size_t tier) const {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  double total = 0.0;
  for (const Replica& rep : tiers_[tier].replicas) {
    if (rep.queue) total += rep.queue->work_done_gcycles();
  }
  return total;
}

// ---- horizontal scaling ----------------------------------------------------

MultiTierApp::Replica& MultiTierApp::replica_at(std::size_t tier, std::size_t slot) {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  if (slot >= tiers_[tier].replicas.size()) throw std::out_of_range("MultiTierApp: replica slot");
  return tiers_[tier].replicas[slot];
}

const MultiTierApp::Replica& MultiTierApp::replica_at(std::size_t tier, std::size_t slot) const {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  if (slot >= tiers_[tier].replicas.size()) throw std::out_of_range("MultiTierApp: replica slot");
  return tiers_[tier].replicas[slot];
}

ReplicaSetStatus MultiTierApp::replica_status(std::size_t tier) const {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  ReplicaSetStatus status;
  status.serving = 0;
  status.booting = 0;
  status.draining = 0;
  for (const Replica& rep : tiers_[tier].replicas) {
    switch (rep.state) {
      case Replica::State::kServing: ++status.serving; break;
      case Replica::State::kBooting: ++status.booting; break;
      case Replica::State::kDraining: ++status.draining; break;
      case Replica::State::kFree: break;
    }
  }
  status.target = status.serving + status.booting;
  status.max_replicas = config_.tiers[tier].max_replicas;
  return status;
}

std::size_t MultiTierApp::replica_slots(std::size_t tier) const {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  return tiers_[tier].replicas.size();
}

bool MultiTierApp::replica_active(std::size_t tier, std::size_t slot) const {
  return replica_at(tier, slot).state != Replica::State::kFree;
}

void MultiTierApp::set_replica_allocation(std::size_t tier, std::size_t slot, double ghz) {
  Replica& rep = replica_at(tier, slot);
  if (rep.state == Replica::State::kFree) {
    throw std::logic_error("MultiTierApp: allocation on a free replica slot");
  }
  rep.allocation_ghz = ghz;
  // A booting replica consumes the allocation (the VM is up and billed) but
  // serves nothing: its queue stays at capacity 0 until boot completes.
  if (rep.state != Replica::State::kBooting) rep.queue->set_capacity(ghz);
}

double MultiTierApp::replica_allocation(std::size_t tier, std::size_t slot) const {
  return replica_at(tier, slot).allocation_ghz;
}

double MultiTierApp::replica_work_done_gcycles(std::size_t tier, std::size_t slot) const {
  const Replica& rep = replica_at(tier, slot);
  return rep.queue ? rep.queue->work_done_gcycles() : 0.0;
}

std::size_t MultiTierApp::replica_outstanding(std::size_t tier, std::size_t slot) const {
  return replica_at(tier, slot).jobs.size();
}

std::size_t MultiTierApp::scale_out(std::size_t tier) {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  const ReplicaSetStatus status = replica_status(tier);
  if (status.target >= config_.tiers[tier].max_replicas) {
    throw std::logic_error("MultiTierApp: tier '" + config_.tiers[tier].name +
                           "' is at max_replicas");
  }
  audit_tier(tier);
  std::vector<Replica>& replicas = tiers_[tier].replicas;
  // Reuse the lowest free slot; append only when none is free.
  std::size_t slot = replicas.size();
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    if (replicas[r].state == Replica::State::kFree) {
      slot = r;
      break;
    }
  }
  if (slot == replicas.size()) replicas.emplace_back();
  Replica& rep = replicas[slot];
  if (!rep.queue) {
    rep.queue = std::make_unique<sim::PsQueue>(
        sim_, 0.0, [this, tier, slot](sim::JobId job) { on_replica_complete(tier, slot, job); });
  }
  // Inherit the tier's current per-replica allocation (what the inner MPC
  // decided for this tier); the queue stays at 0 capacity while booting.
  double alloc_ghz = config_.tiers[tier].initial_allocation_ghz;
  for (const Replica& peer : replicas) {
    if (peer.state == Replica::State::kServing || peer.state == Replica::State::kBooting) {
      alloc_ghz = peer.allocation_ghz;
      break;
    }
  }
  rep.allocation_ghz = alloc_ghz;
  ++scale_outs_;
  const double boot_delay_s = config_.tiers[tier].boot_delay_s;
  if (boot_delay_s > 0.0) {
    rep.state = Replica::State::kBooting;
    rep.queue->set_capacity(0.0);
    rep.boot_event =
        sim_.schedule_after(boot_delay_s, [this, tier, slot] { finish_boot(tier, slot); });
  } else {
    rep.state = Replica::State::kServing;
    rep.queue->set_capacity(alloc_ghz);
  }
  return slot;
}

std::size_t MultiTierApp::scale_in(std::size_t tier) {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  const ReplicaSetStatus status = replica_status(tier);
  if (status.target <= 1) {
    throw std::logic_error("MultiTierApp: tier '" + config_.tiers[tier].name +
                           "' cannot scale below one replica");
  }
  audit_tier(tier);
  std::vector<Replica>& replicas = tiers_[tier].replicas;
  // Prefer cancelling a booting replica (highest slot: newest first) — it
  // holds no work and retires immediately.
  for (std::size_t r = replicas.size(); r-- > 0;) {
    if (replicas[r].state == Replica::State::kBooting) {
      sim_.cancel(replicas[r].boot_event);
      replicas[r].boot_event = sim::kNoEvent;
      ++scale_ins_;
      retire_replica(tier, r);
      return r;
    }
  }
  // Otherwise drain the serving replica with the fewest outstanding jobs
  // (fastest to empty); ties break to the highest slot so slot 0 — the
  // original replica — is the last to go.
  std::size_t victim = replicas.size();
  std::size_t fewest = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = replicas.size(); r-- > 0;) {
    if (replicas[r].state != Replica::State::kServing) continue;
    if (replicas[r].jobs.size() < fewest) {
      fewest = replicas[r].jobs.size();
      victim = r;
    }
  }
  if (victim == replicas.size()) {
    throw std::logic_error("MultiTierApp: no serving replica to scale in");
  }
  ++scale_ins_;
  Replica& rep = replicas[victim];
  if (rep.jobs.empty()) {
    retire_replica(tier, victim);
  } else {
    rep.state = Replica::State::kDraining;  // keeps capacity to finish residue
  }
  return victim;
}

void MultiTierApp::set_replicas(std::size_t tier, std::size_t n) {
  if (n == 0) throw std::invalid_argument("MultiTierApp: replica count must be >= 1");
  while (replica_status(tier).target < n) scale_out(tier);
  while (replica_status(tier).target > n) scale_in(tier);
}

void MultiTierApp::finish_boot(std::size_t tier, std::size_t slot) {
  Replica& rep = tiers_[tier].replicas[slot];
  if (rep.state != Replica::State::kBooting) return;  // cancelled meanwhile
  rep.boot_event = sim::kNoEvent;
  rep.state = Replica::State::kServing;
  rep.queue->set_capacity(rep.allocation_ghz);
}

void MultiTierApp::retire_replica(std::size_t tier, std::size_t slot) {
  Replica& rep = tiers_[tier].replicas[slot];
  audit::replica_retire_clean(rep.jobs.size(), tier, slot);
  rep.state = Replica::State::kFree;
  rep.allocation_ghz = 0.0;
  rep.queue->set_capacity(0.0);
  audit_tier(tier);
  if (on_replica_retired_) on_replica_retired_(tier, slot);
}

void MultiTierApp::audit_tier([[maybe_unused]] std::size_t tier) const {
#if VDC_CHECKS_ENABLED
  std::size_t mapped = 0;
  for (const Replica& rep : tiers_[tier].replicas) mapped += rep.jobs.size();
  audit::tier_job_conservation(mapped, tier_resident_[tier], tier);
#endif
}

std::size_t MultiTierApp::pick_replica(std::size_t tier) {
  // Least outstanding jobs over serving replicas; the seeded tie-break
  // stream makes routing deterministic. With one serving replica the RNG is
  // never consulted (single-replica bit-identity).
  const std::vector<Replica>& replicas = tiers_[tier].replicas;
  std::size_t fewest = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> tied;
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    if (replicas[r].state != Replica::State::kServing) continue;
    const std::size_t outstanding = replicas[r].jobs.size();
    if (outstanding < fewest) {
      fewest = outstanding;
      tied.assign(1, r);
    } else if (outstanding == fewest) {
      tied.push_back(r);
    }
  }
  if (tied.empty()) {
    // Unreachable by construction: scale_in never removes the last
    // committed replica and draining keeps residue flowing.
    throw std::logic_error("MultiTierApp: no serving replica in tier");
  }
  if (tied.size() == 1) return tied.front();
  return tied[dispatch_rng_.index(tied.size())];
}

void MultiTierApp::route_to_tier(Request& req, std::size_t tier) {
  const std::size_t slot = pick_replica(tier);
  Replica& rep = tiers_[tier].replicas[slot];
  audit::dispatch_target_serving(rep.state == Replica::State::kServing, tier, slot);
  req.current_tier = tier;
  req.current_replica = slot;
  const sim::JobId job = rep.queue->add_job(req.demands[tier]);
  rep.jobs.emplace(job, req.id);
  ++tier_resident_[tier];
}

void MultiTierApp::spawn_client() {
  ++active_clients_;
  client_think();
}

void MultiTierApp::client_think() {
  if (active_clients_ > target_clients_) {
    --active_clients_;  // retire this client
    return;
  }
  const double think = rng_.exponential(config_.think_time_s);
  sim_.schedule_after(think, [this] { issue_request(); });
}

void MultiTierApp::issue_request() {
  if (!open_workload() && active_clients_ > target_clients_) {
    --active_clients_;  // retire instead of issuing
    return;
  }
  Request req;
  req.id = next_request_id_++;
  req.start_time_s = sim_.now();
  req.current_tier = 0;
  req.current_replica = 0;
  req.demands.reserve(config_.tiers.size());
  for (const TierConfig& tier : config_.tiers) {
    // Bounded Pareto spanning [mean/4, mean*12]: heavy-tailed but with
    // finite variance; rescale so the realized mean matches the config.
    const double lo = tier.mean_demand_gcycles / 4.0;
    const double hi = tier.mean_demand_gcycles * 12.0;
    const double raw = rng_.bounded_pareto(tier.pareto_alpha, lo, hi);
    const double mean = bounded_pareto_mean(tier.pareto_alpha, lo, hi);
    req.demands.push_back(raw * tier.mean_demand_gcycles / mean);
  }
  const std::uint64_t req_id = req.id;
  ++issued_;
  auto [it, inserted] = requests_.emplace(req_id, std::move(req));
  static_cast<void>(inserted);
  route_to_tier(it->second, 0);
}

void MultiTierApp::on_replica_complete(std::size_t tier, std::size_t slot, sim::JobId job) {
  Replica& rep = tiers_[tier].replicas[slot];
  const auto it = rep.jobs.find(job);
  if (it == rep.jobs.end()) return;  // job was abandoned
  const std::uint64_t req_id = it->second;
  rep.jobs.erase(it);
  --tier_resident_[tier];
  if (rep.state == Replica::State::kDraining && rep.jobs.empty()) {
    retire_replica(tier, slot);
  }

  auto req_it = requests_.find(req_id);
  if (req_it == requests_.end()) return;
  Request& req = req_it->second;
  const std::size_t next_tier = req.current_tier + 1;
  if (next_tier < tiers_.size()) {
    route_to_tier(req, next_tier);
    return;
  }
  Request done = std::move(req);
  requests_.erase(req_it);
  finish_request(std::move(done));
}

void MultiTierApp::finish_request(Request req) {
  ++completed_;
  audit::request_conservation(issued_, completed_, requests_.size());
  const double now = sim_.now();
  if (on_response_) on_response_(now, now - req.start_time_s);
  if (!open_workload()) client_think();
}

}  // namespace vdc::app
