#include "app/multi_tier_app.hpp"

#include <cmath>
#include <stdexcept>

#include "check/app_audit.hpp"

namespace vdc::app {

AppConfig default_two_tier_app(std::string name, std::uint64_t seed, std::size_t concurrency) {
  AppConfig config;
  config.name = std::move(name);
  config.seed = seed;
  config.concurrency = concurrency;
  config.think_time_s = 1.0;
  // Web tier: PHP script execution; DB tier: MySQL query processing. The
  // demands are sized so that a ~1000 ms 90-percentile response time at
  // concurrency 40 needs roughly 0.3-0.6 GHz per tier — comfortably inside
  // one core of the simulated servers, as on the paper's testbed.
  config.tiers = {
      TierConfig{.name = "web",
                 .mean_demand_gcycles = 0.008,
                 .pareto_alpha = 2.2,
                 .initial_allocation_ghz = 1.0},
      TierConfig{.name = "db",
                 .mean_demand_gcycles = 0.012,
                 .pareto_alpha = 2.2,
                 .initial_allocation_ghz = 1.0},
  };
  return config;
}

namespace {

/// Mean of a bounded Pareto on [lo, hi] with shape alpha (alpha != 1).
double bounded_pareto_mean(double alpha, double lo, double hi) {
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return la / (1.0 - la / ha) * alpha / (alpha - 1.0) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
}

}  // namespace

MultiTierApp::MultiTierApp(sim::Simulation& sim, AppConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  if (config_.tiers.empty()) throw std::invalid_argument("MultiTierApp: no tiers configured");
  tiers_.reserve(config_.tiers.size());
  tier_jobs_.resize(config_.tiers.size());
  for (std::size_t j = 0; j < config_.tiers.size(); ++j) {
    tiers_.push_back(std::make_unique<sim::PsQueue>(
        sim_, config_.tiers[j].initial_allocation_ghz,
        [this, j](sim::JobId job) { on_tier_complete(j, job); }));
  }
  target_clients_ = config_.concurrency;
  open_mode_ = config_.open_arrival_rate_rps > 0.0;
}

void MultiTierApp::start() {
  if (started_) throw std::logic_error("MultiTierApp: already started");
  started_ = true;
  if (open_workload()) {
    schedule_next_arrival();
  } else {
    while (active_clients_ < target_clients_) spawn_client();
  }
}

void MultiTierApp::set_allocation(std::size_t tier, double ghz) {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  tiers_[tier]->set_capacity(ghz);
}

void MultiTierApp::set_allocations(std::span<const double> ghz) {
  if (ghz.size() != tiers_.size()) throw std::invalid_argument("MultiTierApp: allocation size");
  for (std::size_t j = 0; j < ghz.size(); ++j) tiers_[j]->set_capacity(ghz[j]);
}

std::vector<double> MultiTierApp::allocations() const {
  std::vector<double> out;
  out.reserve(tiers_.size());
  for (const auto& tier : tiers_) out.push_back(tier->capacity_ghz());
  return out;
}

void MultiTierApp::set_concurrency(std::size_t n) {
  if (open_workload()) return;  // population is meaningless under open arrivals
  target_clients_ = n;
  if (!started_) return;
  while (active_clients_ < target_clients_) spawn_client();
  // Shrinkage is lazy: clients retire at their next decision point.
}

void MultiTierApp::set_arrival_rate(double requests_per_second) {
  if (!open_workload()) {
    throw std::logic_error("MultiTierApp: set_arrival_rate requires open-workload mode");
  }
  if (requests_per_second < 0.0) {
    throw std::invalid_argument("MultiTierApp: negative arrival rate");
  }
  config_.open_arrival_rate_rps = requests_per_second;
  // The pending inter-arrival event keeps its old schedule; subsequent
  // arrivals use the new rate. (Exact enough for rate steps.)
}

void MultiTierApp::schedule_next_arrival() {
  const double rate = config_.open_arrival_rate_rps;
  if (rate <= 0.0) {
    // Poll again shortly in case the rate is raised later.
    sim_.schedule_after(1.0, [this] { schedule_next_arrival(); });
    return;
  }
  sim_.schedule_after(rng_.exponential(1.0 / rate), [this] {
    issue_request();
    schedule_next_arrival();
  });
}

double MultiTierApp::tier_work_done_gcycles(std::size_t tier) const {
  if (tier >= tiers_.size()) throw std::out_of_range("MultiTierApp: tier index");
  return tiers_[tier]->work_done_gcycles();
}

void MultiTierApp::spawn_client() {
  ++active_clients_;
  client_think();
}

void MultiTierApp::client_think() {
  if (active_clients_ > target_clients_) {
    --active_clients_;  // retire this client
    return;
  }
  const double think = rng_.exponential(config_.think_time_s);
  sim_.schedule_after(think, [this] { issue_request(); });
}

void MultiTierApp::issue_request() {
  if (!open_workload() && active_clients_ > target_clients_) {
    --active_clients_;  // retire instead of issuing
    return;
  }
  Request req;
  req.id = next_request_id_++;
  req.start_time_s = sim_.now();
  req.current_tier = 0;
  req.demands.reserve(config_.tiers.size());
  for (const TierConfig& tier : config_.tiers) {
    // Bounded Pareto spanning [mean/4, mean*12]: heavy-tailed but with
    // finite variance; rescale so the realized mean matches the config.
    const double lo = tier.mean_demand_gcycles / 4.0;
    const double hi = tier.mean_demand_gcycles * 12.0;
    const double raw = rng_.bounded_pareto(tier.pareto_alpha, lo, hi);
    const double mean = bounded_pareto_mean(tier.pareto_alpha, lo, hi);
    req.demands.push_back(raw * tier.mean_demand_gcycles / mean);
  }
  const double first_demand = req.demands[0];
  const std::uint64_t req_id = req.id;
  ++issued_;
  requests_.emplace(req_id, std::move(req));
  const sim::JobId job = tiers_[0]->add_job(first_demand);
  tier_jobs_[0].emplace(job, req_id);
}

void MultiTierApp::on_tier_complete(std::size_t tier, sim::JobId job) {
  const auto it = tier_jobs_[tier].find(job);
  if (it == tier_jobs_[tier].end()) return;  // job was abandoned
  const std::uint64_t req_id = it->second;
  tier_jobs_[tier].erase(it);

  auto req_it = requests_.find(req_id);
  if (req_it == requests_.end()) return;
  Request& req = req_it->second;
  ++req.current_tier;
  if (req.current_tier < tiers_.size()) {
    const sim::JobId next_job = tiers_[req.current_tier]->add_job(req.demands[req.current_tier]);
    tier_jobs_[req.current_tier].emplace(next_job, req_id);
    return;
  }
  Request done = std::move(req);
  requests_.erase(req_it);
  finish_request(std::move(done));
}

void MultiTierApp::finish_request(Request req) {
  ++completed_;
  audit::request_conservation(issued_, completed_, requests_.size());
  const double now = sim_.now();
  if (on_response_) on_response_(now, now - req.start_time_s);
  if (!open_workload()) client_think();
}

}  // namespace vdc::app
