#include "app/workload.hpp"

#include <stdexcept>

namespace vdc::app {

void apply_schedule(sim::Simulation& sim, MultiTierApp& target,
                    std::vector<ConcurrencyStep> steps) {
  for (const ConcurrencyStep& step : steps) {
    if (step.time_s < sim.now()) {
      throw std::invalid_argument("apply_schedule: step in the past");
    }
    sim.schedule(step.time_s,
                 [&target, n = step.concurrency] { target.set_concurrency(n); });
  }
}

std::vector<ConcurrencyStep> surge_schedule(std::size_t baseline, double surge_start_s,
                                            double surge_end_s, double surge_factor) {
  if (!(surge_end_s > surge_start_s)) {
    throw std::invalid_argument("surge_schedule: end must follow start");
  }
  const auto surged =
      static_cast<std::size_t>(static_cast<double>(baseline) * surge_factor + 0.5);
  return {
      ConcurrencyStep{surge_start_s, surged},
      ConcurrencyStep{surge_end_s, baseline},
  };
}

std::vector<ConcurrencyStep> random_walk_schedule(util::Rng& rng, std::size_t lo,
                                                  std::size_t hi, double interval_s,
                                                  double duration_s) {
  if (lo > hi) throw std::invalid_argument("random_walk_schedule: lo > hi");
  if (!(interval_s > 0.0)) throw std::invalid_argument("random_walk_schedule: interval");
  std::vector<ConcurrencyStep> steps;
  for (double t = interval_s; t < duration_s; t += interval_s) {
    steps.push_back(ConcurrencyStep{
        t, static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                                    static_cast<std::int64_t>(hi)))});
  }
  return steps;
}

}  // namespace vdc::app
