// Analytic queueing models for multi-tier applications.
//
// The simulated testbed is a closed network of processor-sharing stations
// (one per tier) with an exponential think-time terminal. That is a BCMP
// product-form network, so exact Mean Value Analysis applies — and because
// PS stations are insensitive to the service-time distribution beyond its
// mean, MVA predicts the DES's *mean* response time even under the
// heavy-tailed demands the simulator draws. Used for capacity planning
// (how much CPU does a target response time need?) and as an independent
// oracle in the test suite.
#pragma once

#include <cstddef>
#include <vector>

namespace vdc::app {

/// A closed queueing network: N clients with exponential think time cycle
/// through processor-sharing stations in series.
struct ClosedNetwork {
  double think_time_s = 1.0;
  /// Mean service demand per visit at each station (seconds at the
  /// station's current capacity): demand_gcycles / allocation_ghz.
  std::vector<double> service_demands_s;
};

struct MvaStation {
  double residence_time_s = 0.0;  ///< mean time per visit (queueing included)
  double queue_length = 0.0;      ///< mean number of requests at the station
  double utilization = 0.0;       ///< fraction of time busy
};

struct MvaResult {
  double throughput_rps = 0.0;       ///< X(N)
  double response_time_s = 0.0;      ///< sum of residence times (think excluded)
  std::vector<MvaStation> stations;  ///< per-station detail
};

/// Exact MVA for the closed PS network with `clients` customers.
/// Throws std::invalid_argument on empty/negative inputs.
[[nodiscard]] MvaResult exact_mva(const ClosedNetwork& network, std::size_t clients);

/// Asymptotic bounds (Denning & Buzen): X(N) <= min(N/(Z+sum D), 1/max D).
[[nodiscard]] double throughput_upper_bound(const ClosedNetwork& network,
                                            std::size_t clients);

/// Capacity planning: the uniform scale factor s >= 1 on all station
/// capacities (i.e. demands divided by s) needed for the mean response
/// time to reach `target_s` with `clients` customers. Returns 1.0 when the
/// target is already met; throws std::invalid_argument when the target is
/// not achievable (<= 0) or inputs are invalid.
[[nodiscard]] double response_time_capacity_scale(const ClosedNetwork& network,
                                                      std::size_t clients,
                                                      double target_s);

/// Mean response time of an open M/G/1-PS queue with arrival rate lambda
/// and mean service time s (insensitive to the service distribution):
/// R = s / (1 - lambda*s). Throws when the queue is unstable (rho >= 1).
[[nodiscard]] double mg1_ps_response_time_s(double arrival_rate_rps, double service_time_s);

}  // namespace vdc::app
