// Response-time monitor: the sensor of the paper's control loop. Collects
// per-request response times and reports the controlled SLA value once per
// control period. The paper controls the 90-percentile response time "as an
// example SLA metric, but our management solution can be extended to
// control other SLAs such as average or maximum response times" — hence
// the metric selector.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/statistics.hpp"

namespace vdc::app {

/// Which SLA statistic the controller tracks.
enum class SlaMetric {
  kQuantile,  ///< a percentile of the period's response times (default p90)
  kMean,      ///< average response time
  kMax,       ///< maximum response time
};

[[nodiscard]] std::string to_string(SlaMetric metric);

struct PeriodStats {
  double mean = 0.0;
  double quantile = 0.0;  ///< the configured percentile (default 90th)
  double min = 0.0;
  double max = 0.0;
  /// The value of the configured SLA metric — what the controller tracks.
  double controlled = 0.0;
  std::size_t count = 0;
  /// Samples lost to sensor faults this period. A period with count == 0 but
  /// dropped > 0 means the interval elapsed and all its data was lost — a
  /// different situation from "no requests completed" (harvest -> nullopt).
  std::size_t dropped = 0;
  /// The monitor pipeline was wedged this period: the numbers above are the
  /// last values it managed to compute, not fresh measurements. Controllers
  /// must not treat them as new feedback.
  bool stale = false;
};

class ResponseTimeMonitor {
 public:
  /// `q` is the reported quantile (0.9 = the paper's 90-percentile SLA);
  /// `metric` selects which statistic lands in PeriodStats::controlled.
  explicit ResponseTimeMonitor(double q = 0.9, SlaMetric metric = SlaMetric::kQuantile);

  /// Records one completed request's response time (seconds). NaN samples
  /// are rejected with an exception — they would corrupt the incremental
  /// order-statistic index the percentile path is built on.
  void record(double response_time_s);

  /// Records that a sample existed but was lost before reaching the monitor
  /// (sensor dropout). Counted per period so an all-dropped interval is
  /// distinguishable from an idle one.
  void note_dropped() noexcept { ++period_dropped_; }

  /// Marks the current period's pipeline as wedged: the next harvest is
  /// flagged stale so the controller holds instead of acting on old data.
  void mark_stale() noexcept { period_stale_ = true; }

  /// Returns statistics over the samples recorded since the last harvest
  /// and clears the buffer. Truly empty period (no samples, no drops, not
  /// stale) -> nullopt (the controller then holds its previous measurement).
  /// All-dropped or stale periods DO return stats (count == 0 / stale set)
  /// so callers can tell sensor failure apart from idleness.
  [[nodiscard]] std::optional<PeriodStats> harvest();

  /// Statistics over everything recorded since construction (all periods).
  [[nodiscard]] PeriodStats lifetime() const;

  [[nodiscard]] std::size_t pending_samples() const noexcept { return period_.count(); }
  [[nodiscard]] SlaMetric metric() const noexcept { return metric_; }
  [[nodiscard]] double quantile_level() const noexcept { return q_; }

 private:
  double q_;
  SlaMetric metric_;
  // Per-period statistics are maintained incrementally by the shared
  // util::WindowStats accumulator (Welford moments + an order-statistic
  // index), so harvest() reads the period's quantile in O(log n) instead of
  // copying and sorting every sample. The values are identical to the
  // historical copy+sort (same Welford add order, same type-7 interpolation
  // over the same order statistics) — and bit-identical to the telemetry
  // tsdb's tier rollups, which run the same accumulator.
  util::WindowStats period_;
  std::vector<double> lifetime_samples_;
  std::size_t period_dropped_ = 0;
  bool period_stale_ = false;
};

}  // namespace vdc::app
