#include "app/monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/statistics.hpp"

namespace vdc::app {

std::string to_string(SlaMetric metric) {
  switch (metric) {
    case SlaMetric::kQuantile: return "quantile";
    case SlaMetric::kMean: return "mean";
    case SlaMetric::kMax: return "max";
  }
  return "?";
}

namespace {

PeriodStats stats_of(std::vector<double> samples, double q, SlaMetric metric) {
  PeriodStats out;
  out.count = samples.size();
  if (samples.empty()) return out;
  util::RunningStats rs;
  for (double s : samples) rs.add(s);
  out.mean = rs.mean();
  out.min = rs.min();
  out.max = rs.max();
  out.quantile = util::quantile(std::move(samples), q);
  switch (metric) {
    case SlaMetric::kQuantile: out.controlled = out.quantile; break;
    case SlaMetric::kMean: out.controlled = out.mean; break;
    case SlaMetric::kMax: out.controlled = out.max; break;
  }
  return out;
}

}  // namespace

ResponseTimeMonitor::ResponseTimeMonitor(double q, SlaMetric metric) : q_(q), metric_(metric) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("ResponseTimeMonitor: q outside [0,1]");
}

void ResponseTimeMonitor::record(double response_time_s) {
  period_.add(response_time_s);  // throws on NaN before any state mutates
  lifetime_samples_.push_back(response_time_s);
}

std::optional<PeriodStats> ResponseTimeMonitor::harvest() {
  const std::size_t dropped = period_dropped_;
  const bool stale = period_stale_;
  period_dropped_ = 0;
  period_stale_ = false;
  if (period_.empty() && dropped == 0 && !stale) return std::nullopt;
  PeriodStats out;
  out.count = period_.count();
  if (out.count > 0) {
    out.mean = period_.mean();
    out.min = period_.min();
    out.max = period_.max();
    out.quantile = period_.quantile(q_);
    switch (metric_) {
      case SlaMetric::kQuantile: out.controlled = out.quantile; break;
      case SlaMetric::kMean: out.controlled = out.mean; break;
      case SlaMetric::kMax: out.controlled = out.max; break;
    }
  }
  period_.reset();
  out.dropped = dropped;
  out.stale = stale;
  return out;
}

PeriodStats ResponseTimeMonitor::lifetime() const {
  return stats_of(lifetime_samples_, q_, metric_);
}

}  // namespace vdc::app
