#include "app/queueing.hpp"

#include <cmath>
#include <stdexcept>

#include "check/app_audit.hpp"

namespace vdc::app {

namespace {

void validate(const ClosedNetwork& network) {
  if (network.service_demands_s.empty()) {
    throw std::invalid_argument("ClosedNetwork: no stations");
  }
  if (network.think_time_s < 0.0) {
    throw std::invalid_argument("ClosedNetwork: negative think time");
  }
  for (const double d : network.service_demands_s) {
    if (!(d > 0.0)) throw std::invalid_argument("ClosedNetwork: demands must be positive");
  }
}

}  // namespace

MvaResult exact_mva(const ClosedNetwork& network, std::size_t clients) {
  validate(network);
  const std::size_t m = network.service_demands_s.size();
  MvaResult result;
  result.stations.assign(m, MvaStation{});
  if (clients == 0) return result;

  // Exact MVA recursion over the population (Reiser & Lavenberg):
  //   R_i(n) = D_i (1 + Q_i(n-1))     [PS station]
  //   X(n)   = n / (Z + sum R_i(n))
  //   Q_i(n) = X(n) R_i(n)
  std::vector<double> queue(m, 0.0);
  double throughput = 0.0;
  std::vector<double> residence(m, 0.0);
  for (std::size_t n = 1; n <= clients; ++n) {
    double total = network.think_time_s;
    for (std::size_t i = 0; i < m; ++i) {
      residence[i] = network.service_demands_s[i] * (1.0 + queue[i]);
      total += residence[i];
    }
    throughput = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < m; ++i) queue[i] = throughput * residence[i];
  }

  result.throughput_rps = throughput;
  for (std::size_t i = 0; i < m; ++i) {
    result.stations[i].residence_time_s = residence[i];
    result.stations[i].queue_length = queue[i];
    result.stations[i].utilization = throughput * network.service_demands_s[i];
    result.response_time_s += residence[i];
  }
  audit::mva_result(result, clients, network.think_time_s);
  return result;
}

double throughput_upper_bound(const ClosedNetwork& network, std::size_t clients) {
  validate(network);
  double sum = network.think_time_s;
  double bottleneck = 0.0;
  for (const double d : network.service_demands_s) {
    sum += d;
    bottleneck = std::max(bottleneck, d);
  }
  return std::min(static_cast<double>(clients) / sum, 1.0 / bottleneck);
}

double response_time_capacity_scale(const ClosedNetwork& network, std::size_t clients,
                                        double target_s) {
  validate(network);
  if (!(target_s > 0.0)) {
    throw std::invalid_argument("response_time_capacity_scale: target must be positive");
  }
  if (exact_mva(network, clients).response_time_s <= target_s) return 1.0;

  // Response time is monotone decreasing in the scale factor; bisect.
  const auto response_at = [&](double scale) {
    ClosedNetwork scaled = network;
    for (double& d : scaled.service_demands_s) d /= scale;
    return exact_mva(scaled, clients).response_time_s;
  };
  double lo = 1.0;
  double hi = 2.0;
  while (response_at(hi) > target_s) {
    hi *= 2.0;
    if (hi > 1e9) {
      throw std::invalid_argument("response_time_capacity_scale: target unreachable");
    }
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (response_at(mid) > target_s ? lo : hi) = mid;
  }
  return hi;
}

double mg1_ps_response_time_s(double arrival_rate_rps, double service_time_s) {
  if (arrival_rate_rps < 0.0 || !(service_time_s > 0.0)) {
    throw std::invalid_argument("mg1_ps_response_time_s: invalid inputs");
  }
  const double rho = arrival_rate_rps * service_time_s;
  if (rho >= 1.0) {
    throw std::invalid_argument("mg1_ps_response_time_s: unstable queue (rho >= 1)");
  }
  return service_time_s / (1.0 - rho);
}

}  // namespace vdc::app
