// Workload schedules: scripted concurrency-level changes applied to an
// application over simulated time — e.g. the paper's "breaking news" surge
// that doubles App5's concurrency between t=600 s and t=1200 s.
#pragma once

#include <cstddef>
#include <vector>

#include "app/multi_tier_app.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace vdc::app {

struct ConcurrencyStep {
  double time_s;
  std::size_t concurrency;
};

/// Installs the steps as simulation events against `target`.
void apply_schedule(sim::Simulation& sim, MultiTierApp& target,
                    std::vector<ConcurrencyStep> steps);

/// The paper's Figure-3 scenario: baseline concurrency until `surge_start`,
/// `surge_factor`x concurrency until `surge_end`, baseline afterwards.
[[nodiscard]] std::vector<ConcurrencyStep> surge_schedule(std::size_t baseline,
                                                          double surge_start_s,
                                                          double surge_end_s,
                                                          double surge_factor = 2.0);

/// A pseudo-random-walk schedule for robustness experiments: concurrency
/// re-drawn uniformly in [lo, hi] every `interval_s`, for `duration_s`.
[[nodiscard]] std::vector<ConcurrencyStep> random_walk_schedule(
    util::Rng& rng, std::size_t lo, std::size_t hi, double interval_s, double duration_s);

}  // namespace vdc::app
