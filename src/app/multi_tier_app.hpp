// A simulated multi-tier web application — the RUBBoS-testbed equivalent.
//
// Each tier runs as a replica set of one or more VMs; every replica is
// modelled as a processor-sharing queue whose capacity equals that VM's CPU
// allocation (GHz). A closed population of clients (the `ab` workload
// generator's concurrency level) issues requests that traverse the tiers in
// order; per-tier service demands are heavy-tailed. A deterministic
// dispatcher (least outstanding jobs, seeded tie-break) spreads requests
// across a tier's serving replicas. Response time emerges from queueing, so
// it reacts to CPU allocation exactly the way the paper's controller
// expects: nonlinear, noisy, saturating.
//
// Horizontal scaling contract:
//  * `scale_out` adds a replica in the kBooting state: it consumes its CPU
//    allocation (the VM is up and billed) but serves nothing until the boot
//    delay elapses and it flips to kServing.
//  * `scale_in` drains-then-retires: the victim replica stops receiving new
//    requests (kDraining) and retires once its resident jobs complete. A
//    still-booting replica is the preferred victim and retires immediately.
//  * Replica slots are stable indices; retired slots are reused
//    lowest-free-first, and their `PsQueue` objects are kept alive (capacity
//    0) so no pending simulation event can dangle.
//  * With exactly one serving replica per tier the dispatcher never touches
//    its tie-break RNG and routing is identical to the pre-replication
//    build, bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ps_queue.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace vdc::app {

/// Service-demand distribution of one tier (bounded Pareto, the classic
/// web-request model). Units: Gcycles per request.
struct TierConfig {
  std::string name = "tier";
  double mean_demand_gcycles = 0.010;  ///< ~10 ms at 1 GHz
  double pareto_alpha = 2.2;           ///< tail index; > 2 keeps variance finite
  double initial_allocation_ghz = 1.0;
  // ---- horizontal scaling -------------------------------------------------
  std::size_t initial_replicas = 1;  ///< replicas serving at start()
  std::size_t max_replicas = 8;      ///< hard cap for scale_out
  double boot_delay_s = 30.0;        ///< kBooting -> kServing latency
};

struct AppConfig {
  std::string name = "app";
  std::vector<TierConfig> tiers;
  std::size_t concurrency = 40;   ///< closed-loop client population
  double think_time_s = 1.0;      ///< exponential think time mean
  /// > 0 switches to an OPEN workload: requests arrive as a Poisson
  /// process at this rate (requests/second) regardless of completions —
  /// the load-balanced-front-end scenario. `concurrency` is ignored.
  double open_arrival_rate_rps = 0.0;
  std::uint64_t seed = 1;
};

/// Returns the paper's testbed default: a two-tier (web + db) application.
[[nodiscard]] AppConfig default_two_tier_app(std::string name, std::uint64_t seed,
                                             std::size_t concurrency = 40);

/// Aggregate replica-set state of one tier, as the supervisory controller
/// sees it. `target` counts replicas committed to serve (serving + booting);
/// draining replicas are already on their way out.
struct ReplicaSetStatus {
  std::size_t target = 1;
  std::size_t serving = 1;
  std::size_t booting = 0;
  std::size_t draining = 0;
  std::size_t max_replicas = 1;
};

class MultiTierApp {
 public:
  /// (completion_time_s, response_time_s) for every finished request.
  using ResponseCallback = std::function<void(double, double)>;
  /// Fires when a drained (or cancelled-while-booting) replica retires.
  using ReplicaRetiredCallback = std::function<void(std::size_t tier, std::size_t slot)>;

  /// Validates the whole config (throws std::invalid_argument): tiers
  /// non-empty, demands positive, pareto_alpha > 1 (the finite-mean rescale
  /// is meaningless at or below 1), think time positive in closed mode, a
  /// non-empty workload (concurrency and arrival rate not both zero), and
  /// sane replica bounds.
  MultiTierApp(sim::Simulation& sim, AppConfig config);

  MultiTierApp(const MultiTierApp&) = delete;
  MultiTierApp& operator=(const MultiTierApp&) = delete;

  /// Starts the client population (call once before running the simulation).
  void start();

  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] std::size_t tier_count() const noexcept { return tiers_.size(); }

  /// Per-replica CPU allocation of tier `j` in GHz: every active replica of
  /// the tier gets this capacity. This is the controller's actuator.
  void set_allocation(std::size_t tier, double ghz);
  void set_allocations(std::span<const double> ghz);
  [[nodiscard]] std::vector<double> allocations() const;

  /// Changes the client population (the `ab` concurrency level). Growth
  /// spawns clients immediately; shrinkage retires clients as they finish.
  /// No-op in open-workload mode.
  void set_concurrency(std::size_t n);
  [[nodiscard]] std::size_t concurrency() const noexcept { return target_clients_; }
  /// Clients currently alive (retirement is lazy, so this can briefly
  /// exceed `concurrency()` after a shrink).
  [[nodiscard]] std::size_t active_clients() const noexcept { return active_clients_; }

  /// Changes the Poisson arrival rate (open-workload mode only; throws in
  /// closed mode). 0 pauses new arrivals (resumable); a paused app holds no
  /// pending arrival event, so an otherwise-idle simulation goes quiescent.
  /// A rate change resamples the pending inter-arrival gap at the new rate
  /// (exponential gaps are memoryless, so this is exact).
  void set_arrival_rate(double requests_per_second);
  /// Mode is fixed at construction: open iff open_arrival_rate_rps > 0.
  [[nodiscard]] bool open_workload() const noexcept { return open_mode_; }

  void set_response_callback(ResponseCallback cb) { on_response_ = std::move(cb); }
  void set_replica_retired_callback(ReplicaRetiredCallback cb) {
    on_replica_retired_ = std::move(cb);
  }

  // ---- horizontal scaling -------------------------------------------------

  /// Adds a booting replica to tier `j`; returns its slot index. The new
  /// replica inherits the tier's current per-replica allocation and starts
  /// serving after the tier's boot delay. Throws at max_replicas.
  std::size_t scale_out(std::size_t tier);
  /// Removes one replica from tier `j` (drain-then-retire); returns the
  /// victim slot. Prefers a still-booting replica (retires immediately),
  /// else the serving replica with the fewest outstanding jobs. Throws if
  /// it would leave the tier without any committed replica.
  std::size_t scale_in(std::size_t tier);
  /// Drives the committed replica count (serving + booting) of tier `j`
  /// to `n` via scale_out/scale_in calls. n must be >= 1.
  void set_replicas(std::size_t tier, std::size_t n);

  [[nodiscard]] ReplicaSetStatus replica_status(std::size_t tier) const;
  /// Stable slot count of tier `j` (including free slots).
  [[nodiscard]] std::size_t replica_slots(std::size_t tier) const;
  /// True if slot holds a booting/serving/draining replica.
  [[nodiscard]] bool replica_active(std::size_t tier, std::size_t slot) const;
  /// Allocation of one replica slot (GHz). Booting replicas store it and
  /// apply it when they come up.
  void set_replica_allocation(std::size_t tier, std::size_t slot, double ghz);
  [[nodiscard]] double replica_allocation(std::size_t tier, std::size_t slot) const;
  /// Work completed by one replica slot so far (Gcycles, cumulative across
  /// slot reuse).
  [[nodiscard]] double replica_work_done_gcycles(std::size_t tier, std::size_t slot) const;
  /// Requests currently resident in one replica slot.
  [[nodiscard]] std::size_t replica_outstanding(std::size_t tier, std::size_t slot) const;
  [[nodiscard]] std::uint64_t scale_out_count() const noexcept { return scale_outs_; }
  [[nodiscard]] std::uint64_t scale_in_count() const noexcept { return scale_ins_; }

  [[nodiscard]] std::uint64_t completed_requests() const noexcept { return completed_; }
  /// Requests issued since construction (= completed + in flight).
  [[nodiscard]] std::uint64_t issued_requests() const noexcept { return issued_; }
  /// Requests currently inside some tier (not thinking).
  [[nodiscard]] std::size_t requests_in_flight() const noexcept { return requests_.size(); }
  /// Work completed by tier `j` so far (Gcycles, summed over replicas).
  [[nodiscard]] double tier_work_done_gcycles(std::size_t tier) const;

 private:
  struct Request {
    std::uint64_t id;
    double start_time_s;
    std::size_t current_tier;
    std::size_t current_replica;  // slot within current_tier
    std::vector<double> demands;  // per-tier Gcycles, drawn at issue time
  };

  /// One replica slot. Slots are never destroyed once created: a retired
  /// slot goes back to kFree with its queue alive at capacity 0, so stale
  /// simulation events can never reference a dead queue.
  struct Replica {
    enum class State : std::uint8_t { kFree, kBooting, kServing, kDraining };
    std::unique_ptr<sim::PsQueue> queue;
    State state = State::kFree;
    double allocation_ghz = 0.0;
    std::unordered_map<sim::JobId, std::uint64_t> jobs;  // job id -> request id
    sim::EventId boot_event = sim::kNoEvent;
  };

  struct Tier {
    std::vector<Replica> replicas;
  };

  void spawn_client();
  void client_think();
  void issue_request();
  void schedule_next_arrival();
  void route_to_tier(Request& req, std::size_t tier);
  [[nodiscard]] std::size_t pick_replica(std::size_t tier);
  void on_replica_complete(std::size_t tier, std::size_t slot, sim::JobId job);
  void finish_request(Request req);
  void finish_boot(std::size_t tier, std::size_t slot);
  void retire_replica(std::size_t tier, std::size_t slot);
  void audit_tier(std::size_t tier) const;
  [[nodiscard]] Replica& replica_at(std::size_t tier, std::size_t slot);
  [[nodiscard]] const Replica& replica_at(std::size_t tier, std::size_t slot) const;

  sim::Simulation& sim_;
  AppConfig config_;
  util::Rng rng_;
  /// Tie-break stream for the dispatcher, separate from the workload RNG so
  /// that a single-replica app draws exactly the same workload sequence as
  /// the pre-replication build (the dispatcher stream is untouched then).
  util::Rng dispatch_rng_;
  std::vector<Tier> tiers_;
  /// Requests resident per tier, maintained by route/complete; audited
  /// against the per-replica job maps at every scaling event.
  std::vector<std::size_t> tier_resident_;
  std::unordered_map<std::uint64_t, Request> requests_;
  std::uint64_t next_request_id_ = 1;
  std::size_t active_clients_ = 0;
  std::size_t target_clients_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;
  bool started_ = false;
  bool open_mode_ = false;
  sim::EventId arrival_event_ = sim::kNoEvent;
  ResponseCallback on_response_;
  ReplicaRetiredCallback on_replica_retired_;
};

}  // namespace vdc::app
