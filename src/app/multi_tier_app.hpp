// A simulated multi-tier web application — the RUBBoS-testbed equivalent.
//
// Each tier runs in one VM and is modelled as a processor-sharing queue
// whose capacity equals the VM's CPU allocation (GHz). A closed population
// of clients (the `ab` workload generator's concurrency level) issues
// requests that traverse the tiers in order; per-tier service demands are
// heavy-tailed. Response time emerges from queueing, so it reacts to CPU
// allocation exactly the way the paper's controller expects: nonlinear,
// noisy, saturating.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ps_queue.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace vdc::app {

/// Service-demand distribution of one tier (bounded Pareto, the classic
/// web-request model). Units: Gcycles per request.
struct TierConfig {
  std::string name = "tier";
  double mean_demand_gcycles = 0.010;  ///< ~10 ms at 1 GHz
  double pareto_alpha = 2.2;           ///< tail index; > 2 keeps variance finite
  double initial_allocation_ghz = 1.0;
};

struct AppConfig {
  std::string name = "app";
  std::vector<TierConfig> tiers;
  std::size_t concurrency = 40;   ///< closed-loop client population
  double think_time_s = 1.0;      ///< exponential think time mean
  /// > 0 switches to an OPEN workload: requests arrive as a Poisson
  /// process at this rate (requests/second) regardless of completions —
  /// the load-balanced-front-end scenario. `concurrency` is ignored.
  double open_arrival_rate_rps = 0.0;
  std::uint64_t seed = 1;
};

/// Returns the paper's testbed default: a two-tier (web + db) application.
[[nodiscard]] AppConfig default_two_tier_app(std::string name, std::uint64_t seed,
                                             std::size_t concurrency = 40);

class MultiTierApp {
 public:
  /// (completion_time_s, response_time_s) for every finished request.
  using ResponseCallback = std::function<void(double, double)>;

  MultiTierApp(sim::Simulation& sim, AppConfig config);

  MultiTierApp(const MultiTierApp&) = delete;
  MultiTierApp& operator=(const MultiTierApp&) = delete;

  /// Starts the client population (call once before running the simulation).
  void start();

  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] std::size_t tier_count() const noexcept { return tiers_.size(); }

  /// CPU allocation of tier `j` in GHz. This is the controller's actuator.
  void set_allocation(std::size_t tier, double ghz);
  void set_allocations(std::span<const double> ghz);
  [[nodiscard]] std::vector<double> allocations() const;

  /// Changes the client population (the `ab` concurrency level). Growth
  /// spawns clients immediately; shrinkage retires clients as they finish.
  /// No-op in open-workload mode.
  void set_concurrency(std::size_t n);
  [[nodiscard]] std::size_t concurrency() const noexcept { return target_clients_; }

  /// Changes the Poisson arrival rate (open-workload mode only; throws in
  /// closed mode). 0 pauses new arrivals (resumable).
  void set_arrival_rate(double requests_per_second);
  /// Mode is fixed at construction: open iff open_arrival_rate_rps > 0.
  [[nodiscard]] bool open_workload() const noexcept { return open_mode_; }

  void set_response_callback(ResponseCallback cb) { on_response_ = std::move(cb); }

  [[nodiscard]] std::uint64_t completed_requests() const noexcept { return completed_; }
  /// Requests issued since construction (= completed + in flight).
  [[nodiscard]] std::uint64_t issued_requests() const noexcept { return issued_; }
  /// Requests currently inside some tier (not thinking).
  [[nodiscard]] std::size_t requests_in_flight() const noexcept { return requests_.size(); }
  /// Work completed by tier `j` so far (Gcycles).
  [[nodiscard]] double tier_work_done_gcycles(std::size_t tier) const;

 private:
  struct Request {
    std::uint64_t id;
    double start_time_s;
    std::size_t current_tier;
    std::vector<double> demands;  // per-tier Gcycles, drawn at issue time
  };

  void spawn_client();
  void client_think();
  void issue_request();
  void schedule_next_arrival();
  void on_tier_complete(std::size_t tier, sim::JobId job);
  void finish_request(Request req);

  sim::Simulation& sim_;
  AppConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<sim::PsQueue>> tiers_;
  /// job id within tier -> request id, one map per tier.
  std::vector<std::unordered_map<sim::JobId, std::uint64_t>> tier_jobs_;
  std::unordered_map<std::uint64_t, Request> requests_;
  std::uint64_t next_request_id_ = 1;
  std::size_t active_clients_ = 0;
  std::size_t target_clients_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  bool started_ = false;
  bool open_mode_ = false;
  ResponseCallback on_response_;
};

}  // namespace vdc::app
