// Uniformly-sampled time series: the currency of the trace library (CPU
// utilization every 15 minutes) and of benchmark outputs (response time /
// power per control period).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/statistics.hpp"

namespace vdc::util {

class TimeSeries {
 public:
  TimeSeries() = default;
  /// `dt` is the sampling period in seconds.
  explicit TimeSeries(double dt) : dt_(dt) {
    if (!(dt > 0.0)) throw std::invalid_argument("TimeSeries: dt must be positive");
  }
  TimeSeries(double dt, std::vector<double> values) : TimeSeries(dt) {
    values_ = std::move(values);
  }

  void append(double value) { values_.push_back(value); }

  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double duration() const noexcept {
    return dt_ * static_cast<double>(values_.size());
  }

  [[nodiscard]] double operator[](std::size_t i) const { return values_.at(i); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Value at absolute time t (seconds), clamped to the series range and
  /// piecewise-constant between samples — matches 15-minute trace semantics.
  [[nodiscard]] double at_time(double t) const;

  /// Mean/min/max/std over the whole series.
  [[nodiscard]] RunningStats stats() const;

  /// Integral over time (e.g. power [W] series -> energy [J]).
  [[nodiscard]] double integral() const noexcept;

 private:
  double dt_ = 1.0;
  std::vector<double> values_;
};

}  // namespace vdc::util
