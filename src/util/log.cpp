#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vdc::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level()) && level != LogLevel::kOff;
}

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (!log_enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace vdc::util
