// Seeded random-number utilities. Every stochastic component in the library
// takes an explicit `Rng` (or a seed) so simulations are reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>

namespace vdc::util {

/// SplitMix64 finalizer: maps a seed to a well-mixed 64-bit value in one
/// shot. Used to derive independent per-target RNG stream seeds from one
/// plan seed (seed + k*gamma for target k) — nearby inputs land on
/// uncorrelated outputs, so per-app/per-shard streams derived this way are
/// statistically independent AND stable: a target's stream depends only on
/// (base seed, target id), never on how many other streams exist or in
/// which order they drew. That is the property that makes fault sequences
/// shard-count-invariant.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The SplitMix64 golden-ratio increment: the canonical stride for deriving
/// the k-th stream seed as splitmix64(base + k * kSplitMix64Gamma).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ull;

/// Thin wrapper around std::mt19937_64 with the distributions the simulator
/// needs. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Index into a container of the given size.
  std::size_t index(std::size_t size) {
    if (size == 0) throw std::invalid_argument("Rng::index: empty range");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given mean (not rate). The mean must be positive
  /// and finite: 0 would build an infinite-rate distribution (1/0) and a
  /// negative or NaN mean a meaningless one, all silently.
  double exponential(double mean) {
    if (!(mean > 0.0) || !std::isfinite(mean)) {
      throw std::invalid_argument("Rng::exponential: mean must be positive and finite");
    }
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Bounded Pareto on [lo, hi] with shape alpha — the classic heavy-tailed
  /// service-demand distribution for web requests. alpha must be positive
  /// and finite; alpha <= 0 inverts the CDF's tail and used to be accepted
  /// silently, producing samples outside [lo, hi].
  double bounded_pareto(double alpha, double lo, double hi) {
    if (!(alpha > 0.0) || !std::isfinite(alpha)) {
      throw std::invalid_argument("bounded_pareto: alpha must be positive and finite");
    }
    if (!(lo > 0.0) || !(hi > lo)) throw std::invalid_argument("bounded_pareto: bad bounds");
    const double u = uniform(0.0, 1.0);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Splits off an independently seeded child generator (for components that
  /// must not perturb each other's streams).
  Rng split() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vdc::util
