#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vdc::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double exact_quantile(std::span<const double> sorted_values, double q) {
  if (sorted_values.empty()) throw std::invalid_argument("exact_quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("exact_quantile: q outside [0,1]");
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return exact_quantile(values, q);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("P2Quantile: q outside [0,1]");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    for (std::size_t i = 1; i < 5; ++i) {
      if (x < heights_[i]) {
        k = i - 1;
        break;
      }
    }
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions with parabolic
  // (or, if non-monotone, linear) interpolation.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double slope_up = (heights_[i + 1] - heights_[i]) / dp;
      const double slope_dn = (heights_[i] - heights_[i - 1]) / (-dm);
      const double candidate =
          heights_[i] + sign / (positions_[i + 1] - positions_[i - 1]) *
                            ((positions_[i] - positions_[i - 1] + sign) * slope_up +
                             (positions_[i + 1] - positions_[i] - sign) * slope_dn);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Linear fallback keeps the marker heights monotone.
        const std::size_t j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
  }
  return heights_[2];
}

void WindowStats::add(double x) {
  if (std::isnan(x)) throw std::invalid_argument("WindowStats: NaN sample");
  moments_.add(x);
  order_.insert(x);
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow: capacity must be positive");
}

void SlidingWindow::add(double x) {
  if (std::isnan(x)) throw std::invalid_argument("SlidingWindow: NaN sample");
  samples_.push_back(x);
  order_.insert(x);
  if (samples_.size() > capacity_) {
    order_.erase_one(samples_.front());
    samples_.pop_front();
  }
}

double SlidingWindow::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SlidingWindow::quantile(double q) const {
  if (samples_.empty()) return 0.0;  // consistent with mean(): empty window reads as 0
  return order_.quantile(q);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x) noexcept {
  if (std::isnan(x)) {
    // NaN belongs to no bin; casting it to an integer is undefined
    // behaviour, so it is counted separately instead of clamped.
    ++invalid_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  // Clamp in floating point BEFORE the integer cast: a cast of ±inf or any
  // value beyond ±2^63 is UB, and (x - lo_) / width reaches both for
  // perfectly reasonable out-of-range samples.
  const double pos = std::clamp((x - lo_) / width, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string Histogram::to_string() const {
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "[%8.2f, %8.2f): %zu\n", bin_lo(i), bin_hi(i), counts_[i]);
    out += buf;
  }
  return out;
}

}  // namespace vdc::util
