// Statistics primitives used throughout the simulator and benchmarks:
// running moments (Welford), exact and streaming (P^2) percentile
// estimation, fixed-bin histograms and sliding-window samplers.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "util/order_stats.hpp"

namespace vdc::util {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the samples seen so far; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample set (linear interpolation between order
/// statistics, the "type 7" definition used by numpy/R). q in [0,1].
[[nodiscard]] double exact_quantile(std::span<const double> sorted_values, double q);

/// Convenience: copies, sorts, and evaluates `exact_quantile`.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Streaming quantile estimator (Jain & Chlamtac's P^2 algorithm).
/// Uses O(1) memory; converges to the true quantile for stationary inputs.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  /// Current estimate. Exact while fewer than 5 samples have been seen.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

/// Streaming accumulator for one bounded window of samples: Welford moments
/// plus an incremental order-statistic index, so count/min/mean/max and any
/// exact type-7 quantile are available at every point of the stream without
/// a copy+sort. This is the hoisted "order-statistic glue" shared by the
/// response-time monitor's per-control-period statistics and the telemetry
/// tsdb's tier rollup accumulators — both must produce bit-identical values
/// for the same sample order, which sharing one implementation guarantees.
///
/// NaN samples are rejected with an exception (they would silently corrupt
/// the ordered index); ±infinity is accepted. `reset()` recycles the
/// accumulator for the next window without releasing the tree's node pool.
class WindowStats {
 public:
  /// Appends one sample; throws std::invalid_argument on NaN.
  void add(double x);
  /// Clears for the next window (the order index keeps its node pool).
  void reset() noexcept {
    moments_.reset();
    order_.clear();
  }

  [[nodiscard]] std::size_t count() const noexcept { return moments_.count(); }
  [[nodiscard]] bool empty() const noexcept { return moments_.empty(); }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double min() const noexcept { return moments_.min(); }
  [[nodiscard]] double max() const noexcept { return moments_.max(); }
  [[nodiscard]] const RunningStats& moments() const noexcept { return moments_; }
  /// Exact quantile (type-7 interpolation, identical to util::quantile on
  /// the same samples), O(log n). Throws on empty or q outside [0,1].
  [[nodiscard]] double quantile(double q) const { return order_.quantile(q); }

 private:
  RunningStats moments_;
  OrderStatisticTree order_;
};

/// Keeps the most recent `capacity` samples; answers mean and quantiles over
/// the window. Used by the response-time monitor.
///
/// Samples are mirrored into an incremental order-statistic index, so
/// `quantile` is O(log n) instead of the historical copy+sort (O(n log n))
/// per query. NaN samples are rejected (they would corrupt the ordered
/// index); ±infinity is accepted.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  void clear() noexcept {
    samples_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact windowed quantile (type-7 interpolation), O(log n).
  [[nodiscard]] double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::deque<double> samples_;      // insertion order, for eviction
  OrderStatisticTree order_;        // value order, for quantiles
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples (including
/// ±infinity) are clamped into the first/last bin so totals are conserved.
/// NaN samples are counted separately in `invalid()` — they belong to no bin
/// and previously invoked undefined behaviour via a float->int cast.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// NaN samples seen by add(); never binned, never part of total().
  [[nodiscard]] std::size_t invalid() const noexcept { return invalid_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Render a short textual summary (for example binaries / debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t invalid_ = 0;
};

}  // namespace vdc::util
