#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vdc::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double value : cells) {
    std::ostringstream ss;
    ss << value;
    text.push_back(ss.str());
  }
  row(text);
}

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + std::string(name) + "'");
}

double CsvTable::as_double(std::size_t row, std::size_t col) const {
  const std::string& cell = rows.at(row).at(col);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw std::runtime_error("CsvTable: cell '" + cell + "' is not numeric");
  }
  return value;
}

namespace {

std::vector<std::string> parse_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

CsvTable parse_csv(std::string_view text, bool has_header) {
  CsvTable table;
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = end + 1;
    if (line.empty() && start > text.size()) break;
    if (line.empty()) continue;
    auto cells = parse_line(line);
    if (first && has_header) {
      table.header = std::move(cells);
    } else {
      table.rows.push_back(std::move(cells));
    }
    first = false;
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str(), has_header);
}

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace vdc::util
