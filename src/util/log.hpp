// Leveled logging with a process-global threshold. Intentionally small: the
// simulator is the hot path, so callers guard expensive message construction
// with `enabled(...)`.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace vdc::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the process-global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Writes one line to stderr: "[LEVEL] component: message".
void log_message(LogLevel level, std::string_view component, std::string_view message);

/// Convenience stream-style logger:
///   Log(LogLevel::kInfo, "ipac") << "migrations=" << n;
class Log {
 public:
  Log(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (log_enabled(level_)) log_message(level_, component_, stream_.str());
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (log_enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace vdc::util
