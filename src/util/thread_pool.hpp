// Fixed-size thread pool used to parallelize independent simulations
// (figure-6 sweeps over 54 data centers, parameter studies). Each simulation
// is single-threaded and deterministic; the pool only distributes whole jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vdc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide pool (hardware-concurrency workers), created on first use
  /// (thread-safe) and intentionally leaked: it must outlive every static
  /// whose destructor might still run a `parallel_for`, and a leaked pool
  /// stays reachable so leak checkers don't report it. `parallel_for` draws
  /// its helpers from here instead of spawning and joining fresh threads on
  /// every call, which dominated the cost of short sweeps.
  [[nodiscard]] static ThreadPool& shared();

  /// Enqueues a task; the returned future delivers its result or exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.push([packaged]() { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) and waits for all iterations. Work is
/// claimed dynamically from a shared atomic counter by the caller plus up to
/// `threads - 1` helpers borrowed from `ThreadPool::shared()` — no threads
/// are created or joined per call. Because the caller itself drains the
/// counter, the call makes progress (and nested `parallel_for` inside `body`
/// cannot deadlock) even when every pool worker is busy. Exceptions from the
/// body are rethrown (the first one encountered). `threads == 0` means
/// hardware concurrency.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace vdc::util
