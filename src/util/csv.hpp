// Minimal CSV reading/writing used by the trace library and the benchmark
// harness to emit figure data.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vdc::util {

/// Streams rows of a CSV table. The header is written on construction.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one row; the cell count must match the header width.
  void row(const std::vector<std::string>& cells);
  void row(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Fully-parsed CSV table (small files only; traces fit comfortably).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t column_index(std::string_view name) const;
  [[nodiscard]] double as_double(std::size_t row, std::size_t col) const;
};

/// Parses CSV text. Handles quoted cells with embedded commas and quotes.
[[nodiscard]] CsvTable parse_csv(std::string_view text, bool has_header = true);

/// Reads and parses a CSV file; throws std::runtime_error when unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::filesystem::path& path, bool has_header = true);

/// Escapes a cell for CSV output (quotes when it contains , " or newline).
[[nodiscard]] std::string csv_escape(std::string_view cell);

}  // namespace vdc::util
