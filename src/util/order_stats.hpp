// Order-statistic multiset: insert / erase-one / k-th smallest in O(log n).
//
// Implemented as a treap (randomized BST) over a contiguous node pool with
// subtree sizes, using deterministic splitmix64 priorities so simulations
// stay reproducible. This is the incremental index behind
// util::SlidingWindow::quantile and the response-time monitor's
// per-control-period 90-percentile — replacing the copy+sort that made every
// quantile query O(n log n).
//
// Values must not be NaN (comparisons would silently corrupt the tree);
// ±infinity is fine. Callers that can see NaN must reject it first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace vdc::util {

class OrderStatisticTree {
 public:
  void insert(double value) {
    const std::uint32_t node = allocate(value);
    std::uint32_t less, rest;
    split_less(root_, value, less, rest);
    root_ = merge(merge(less, node), rest);
  }

  /// Removes one element equal to `value`; returns whether one was found.
  bool erase_one(double value) {
    std::uint32_t less, rest, equal, greater;
    split_less(root_, value, less, rest);
    split_leq(rest, value, equal, greater);
    bool erased = false;
    if (equal != kNil) {
      const std::uint32_t victim = equal;
      equal = merge(nodes_[victim].left, nodes_[victim].right);
      free_.push_back(victim);
      erased = true;
    }
    root_ = merge(less, merge(equal, greater));
    return erased;
  }

  /// k-th smallest element, 0-based. Throws when k >= size().
  [[nodiscard]] double kth(std::size_t k) const {
    if (k >= size()) throw std::out_of_range("OrderStatisticTree::kth: index out of range");
    std::uint32_t node = root_;
    for (;;) {
      const std::size_t left_size = subtree_size(nodes_[node].left);
      if (k < left_size) {
        node = nodes_[node].left;
      } else if (k == left_size) {
        return nodes_[node].value;
      } else {
        k -= left_size + 1;
        node = nodes_[node].right;
      }
    }
  }

  /// Number of elements strictly less than `value`.
  [[nodiscard]] std::size_t rank(double value) const {
    std::size_t below = 0;
    std::uint32_t node = root_;
    while (node != kNil) {
      if (nodes_[node].value < value) {
        below += subtree_size(nodes_[node].left) + 1;
        node = nodes_[node].right;
      } else {
        node = nodes_[node].left;
      }
    }
    return below;
  }

  /// Exact quantile with linear interpolation between order statistics (the
  /// "type 7" definition used by numpy/R — identical to util::exact_quantile
  /// on the sorted sample). q in [0,1]; throws on empty.
  [[nodiscard]] double quantile(double q) const {
    if (empty()) throw std::invalid_argument("OrderStatisticTree::quantile: empty");
    if (q < 0.0 || q > 1.0) {
      throw std::invalid_argument("OrderStatisticTree::quantile: q outside [0,1]");
    }
    const double pos = q * static_cast<double>(size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < size() ? lo + 1 : size() - 1;
    const double frac = pos - static_cast<double>(lo);
    return kth(lo) * (1.0 - frac) + kth(hi) * frac;
  }

  [[nodiscard]] std::size_t size() const noexcept { return subtree_size(root_); }
  [[nodiscard]] bool empty() const noexcept { return root_ == kNil; }

  void clear() noexcept {
    nodes_.clear();
    free_.clear();
    root_ = kNil;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    double value;
    std::uint64_t priority;
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::uint32_t size = 1;
  };

  [[nodiscard]] std::size_t subtree_size(std::uint32_t node) const noexcept {
    return node == kNil ? 0 : nodes_[node].size;
  }

  void pull(std::uint32_t node) noexcept {
    nodes_[node].size = static_cast<std::uint32_t>(subtree_size(nodes_[node].left) +
                                                   subtree_size(nodes_[node].right) + 1);
  }

  /// Deterministic pseudo-random priority (splitmix64 of an insertion
  /// counter): heap-balanced in expectation, reproducible across runs.
  [[nodiscard]] std::uint64_t next_priority() noexcept {
    std::uint64_t z = (priority_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  [[nodiscard]] std::uint32_t allocate(double value) {
    std::uint32_t node;
    if (!free_.empty()) {
      node = free_.back();
      free_.pop_back();
      nodes_[node] = Node{value, next_priority()};
    } else {
      node = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{value, next_priority()});
    }
    return node;
  }

  /// left := {v < key}, right := {v >= key}
  void split_less(std::uint32_t node, double key, std::uint32_t& left, std::uint32_t& right) {
    if (node == kNil) {
      left = kNil;
      right = kNil;
      return;
    }
    if (nodes_[node].value < key) {
      split_less(nodes_[node].right, key, nodes_[node].right, right);
      left = node;
    } else {
      split_less(nodes_[node].left, key, left, nodes_[node].left);
      right = node;
    }
    pull(node);
  }

  /// left := {v <= key}, right := {v > key}
  void split_leq(std::uint32_t node, double key, std::uint32_t& left, std::uint32_t& right) {
    if (node == kNil) {
      left = kNil;
      right = kNil;
      return;
    }
    if (!(nodes_[node].value > key)) {
      split_leq(nodes_[node].right, key, nodes_[node].right, right);
      left = node;
    } else {
      split_leq(nodes_[node].left, key, left, nodes_[node].left);
      right = node;
    }
    pull(node);
  }

  std::uint32_t merge(std::uint32_t a, std::uint32_t b) {
    if (a == kNil) return b;
    if (b == kNil) return a;
    if (nodes_[a].priority >= nodes_[b].priority) {
      nodes_[a].right = merge(nodes_[a].right, b);
      pull(a);
      return a;
    }
    nodes_[b].left = merge(a, nodes_[b].left);
    pull(b);
    return b;
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNil;
  std::uint64_t priority_state_ = 0;
};

}  // namespace vdc::util
