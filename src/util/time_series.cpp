#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

namespace vdc::util {

double TimeSeries::at_time(double t) const {
  if (values_.empty()) throw std::out_of_range("TimeSeries::at_time: empty series");
  if (t <= 0.0) return values_.front();
  auto idx = static_cast<std::size_t>(t / dt_);
  idx = std::min(idx, values_.size() - 1);
  return values_[idx];
}

RunningStats TimeSeries::stats() const {
  RunningStats stats;
  for (double v : values_) stats.add(v);
  return stats;
}

double TimeSeries::integral() const noexcept {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum * dt_;
}

}  // namespace vdc::util
