#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace vdc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  // Construction is thread-safe (magic static); the pool is intentionally
  // leaked rather than destroyed at static teardown. Joining the workers
  // from a static destructor raced late helpers submitted by other statics'
  // destructors (a `submit` after `stopping_` throws into code that never
  // expected it) — and a leaked pool stays reachable through this pointer,
  // so leak checkers are clean.
  static ThreadPool* pool = new ThreadPool;
  return *pool;
}

namespace {

/// Shared between the parallel_for caller and its pool helpers. Helpers hold
/// the state (and a copy of the body) via shared_ptr, so one that is dequeued
/// long after the call returned finds `next >= n`, touches nothing else, and
/// exits — the caller never has to wait for helpers that were never needed.
struct ParallelForState {
  std::function<void(std::size_t)> body;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception thrown by body; guarded by mutex

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        // Last iteration finished; the caller may be asleep in wait().
        const std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->body = body;
  state->n = n;

  // The caller participates, so only threads - 1 helpers are requested. The
  // pool may be saturated (including by an enclosing parallel_for) — that
  // only costs parallelism, never progress, because every iteration left
  // unclaimed by helpers is claimed by the caller's own drain().
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    ThreadPool::shared().submit([state] { state->drain(); });
  }
  state->drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace vdc::util
