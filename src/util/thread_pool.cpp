#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace vdc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace vdc::util
