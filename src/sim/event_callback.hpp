// Small-buffer-optimized, move-only callable used for simulation events.
//
// The event loop schedules millions of short-lived callbacks whose captures
// are almost always tiny (a `this` pointer plus a couple of indices). A
// `std::function` pays a heap allocation whenever the callable outgrows its
// implementation-defined SSO buffer (16 bytes on libstdc++), and its copyable
// contract forbids move-only captures. EventCallback gives the event slab a
// guaranteed 48-byte inline buffer, falls back to the heap only for oversized
// callables, and is move-only so records can be relocated inside the slab
// without touching the allocator.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace vdc::sim {

class EventCallback {
 public:
  /// Callables up to this size (and max_align_t alignment) are stored inline.
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(&storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap allocation).
  [[nodiscard]] bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    bool inline_storage;
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
      [](void* p) { std::launder(static_cast<D*>(p))->~D(); },
      [](void* dst, void* src) {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
      [](void* p) { delete *std::launder(static_cast<D**>(p)); },
      [](void* dst, void* src) { ::new (dst) D*(*std::launder(static_cast<D**>(src))); },
      false,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace vdc::sim
