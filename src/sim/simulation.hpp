// Discrete-event simulation kernel. Single-threaded, deterministic: events
// with equal timestamps fire in scheduling order. This is the substrate on
// which the multi-tier application testbed (RUBBoS-equivalent) runs.
//
// Event storage is a slab: callbacks live in a contiguous vector of records
// addressed by a 32-bit slot index, and an EventId packs that slot with a
// 32-bit generation counter so a recycled slot invalidates stale handles in
// O(1) without a hash lookup. The heap carries only plain (time, seq, slot,
// generation) entries; cancellation is lazy — a popped entry whose generation
// no longer matches its slot is skipped. FIFO order among equal timestamps is
// preserved by a monotonic sequence number, independent of slot reuse.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event_callback.hpp"

namespace vdc::sim {

/// Opaque event handle: (generation << 32) | slot. Never 0 for a live event,
/// so 0 can be used as a "no event" sentinel by callers.
using EventId = std::uint64_t;

/// The "no event pending" sentinel (generations start at 1, so no live
/// event ever has this id; `cancel(kNoEvent)` is a harmless no-op).
inline constexpr EventId kNoEvent = 0;

class Simulation {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `time_s` (>= now). Returns a
  /// handle usable with `cancel`.
  EventId schedule(double time_s, EventCallback callback);

  /// Schedules `callback` after a relative delay (>= 0).
  EventId schedule_after(double delay_s, EventCallback callback) {
    return schedule(now_ + delay_s, std::move(callback));
  }

  /// Schedules a bracketed interval: `on_start` fires at absolute time
  /// `start_s`, `on_end` at `end_s` (> start_s). Convenience for windowed
  /// state changes (fault windows, load phases); returns both handles so
  /// either edge can still be cancelled.
  std::pair<EventId, EventId> schedule_window(double start_s, double end_s,
                                              EventCallback on_start, EventCallback on_end) {
    EventId begin = schedule(start_s, std::move(on_start));
    EventId end = schedule(end_s, std::move(on_end));
    return {begin, end};
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op; returns whether an event was actually cancelled.
  bool cancel(EventId id);

  /// Executes the next pending event. Returns false when the queue is empty.
  bool step();

  /// Processes all events with time <= t, then advances the clock to t.
  void run_until(double t);

  /// Processes all events with time <= t but leaves the clock at the last
  /// executed event instead of fast-forwarding it to t. Returns the number
  /// of events executed. The ScenarioRunner uses this to flush the final
  /// control period of a scenario without inventing idle time past it.
  std::size_t drain_until(double t);

  /// Runs until no events remain.
  void run();

  /// Timestamp of the next live event, or nullopt when the queue is empty.
  /// Prunes cancelled entries off the heap top so the answer is exact; the
  /// sharded engine peeks this to pick the next barrier time.
  [[nodiscard]] std::optional<double> next_event_time();

  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Capacity of the event slab (high-water mark of simultaneously pending
  /// events) — exposed for tests and the perf bench.
  [[nodiscard]] std::size_t slab_size() const noexcept { return slab_.size(); }

 private:
  struct Entry {
    double time_s;
    std::uint64_t seq;  // monotonic scheduling order: FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
    // min-heap on (time_s, seq)
    bool operator>(const Entry& other) const noexcept {
      // vdc-lint: float-eq-ok exact heap ordering; equal keys defer to seq for FIFO
      if (time_s != other.time_s) return time_s > other.time_s;
      return seq > other.seq;
    }
  };

  struct Record {
    EventCallback callback;
    std::uint32_t generation = 1;
    bool armed = false;
  };

  static constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffull);
  }
  static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] bool entry_live(const Entry& entry) const noexcept {
    const Record& rec = slab_[entry.slot];
    return rec.armed && rec.generation == entry.generation;
  }

  /// Disarms a record and recycles its slot; the generation bump invalidates
  /// every outstanding handle and heap entry referring to it.
  void release_slot(std::uint32_t slot) {
    Record& rec = slab_[slot];
    rec.armed = false;
    rec.callback.reset();
    ++rec.generation;
    free_slots_.push_back(slot);
    --live_;
  }

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<Record> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace vdc::sim
