// Discrete-event simulation kernel. Single-threaded, deterministic: events
// with equal timestamps fire in scheduling order. This is the substrate on
// which the multi-tier application testbed (RUBBoS-equivalent) runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace vdc::sim {

using EventId = std::uint64_t;

class Simulation {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `time` (>= now). Returns a handle
  /// usable with `cancel`.
  EventId schedule(double time, std::function<void()> callback);

  /// Schedules `callback` after a relative delay (>= 0).
  EventId schedule_after(double delay, std::function<void()> callback) {
    return schedule(now_ + delay, std::move(callback));
  }

  /// Schedules a bracketed interval: `on_start` fires at absolute time
  /// `start_s`, `on_end` at `end_s` (> start_s). Convenience for windowed
  /// state changes (fault windows, load phases); returns both handles so
  /// either edge can still be cancelled.
  std::pair<EventId, EventId> schedule_window(double start_s, double end_s,
                                              std::function<void()> on_start,
                                              std::function<void()> on_end) {
    EventId begin = schedule(start_s, std::move(on_start));
    EventId end = schedule(end_s, std::move(on_end));
    return {begin, end};
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op; returns whether an event was actually cancelled.
  bool cancel(EventId id);

  /// Executes the next pending event. Returns false when the queue is empty.
  bool step();

  /// Processes all events with time <= t, then advances the clock to t.
  void run_until(double t);

  /// Processes all events with time <= t but leaves the clock at the last
  /// executed event instead of fast-forwarding it to t. Returns the number
  /// of events executed. The ScenarioRunner uses this to flush the final
  /// control period of a scenario without inventing idle time past it.
  std::size_t drain_until(double t);

  /// Runs until no events remain.
  void run();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time;
    EventId id;  // doubles as tie-break sequence number (monotonic)
    // min-heap on (time, id)
    bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace vdc::sim
