#include "sim/simulation.hpp"

#include <limits>
#include <stdexcept>

#include "check/sim_audit.hpp"

namespace vdc::sim {

EventId Simulation::schedule(double time_s, EventCallback callback) {
  if (time_s < now_) throw std::invalid_argument("Simulation::schedule: time is in the past");
  if (!callback) throw std::invalid_argument("Simulation::schedule: empty callback");
  audit::event_time(now_, time_s);  // catches NaN, which the < above lets through

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slab_.size() >= std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("Simulation::schedule: event slab exhausted");
    }
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Record& rec = slab_[slot];
  rec.callback = std::move(callback);
  rec.armed = true;
  heap_.push(Entry{time_s, next_seq_++, slot, rec.generation});
  ++live_;
  audit::event_slab(live_, slab_.size(), free_slots_.size());
  return make_id(rec.generation, slot);
}

bool Simulation::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slab_.size()) return false;
  Record& rec = slab_[slot];
  if (!rec.armed || rec.generation != generation_of(id)) return false;
  release_slot(slot);  // the heap entry goes stale and is skipped when popped
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (!entry_live(top)) continue;  // cancelled (or recycled) since scheduling
    // Move the callback out and recycle the slot *before* invoking, so the
    // callback can freely schedule new events (possibly into this slot).
    EventCallback callback = std::move(slab_[top.slot].callback);
    release_slot(top.slot);
    audit::clock_monotonic(now_, top.time_s);
    now_ = top.time_s;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

std::size_t Simulation::drain_until(double t) {
  if (t < now_) throw std::invalid_argument("Simulation::drain_until: time is in the past");
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Skim stale entries off the top so the peeked time is live.
    while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
    if (heap_.empty() || heap_.top().time_s > t) break;
    step();
    ++executed;
  }
  return executed;
}

void Simulation::run_until(double t) {
  drain_until(t);
  now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

std::optional<double> Simulation::next_event_time() {
  while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time_s;
}

}  // namespace vdc::sim
