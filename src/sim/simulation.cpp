#include "sim/simulation.hpp"

#include <stdexcept>

#include "check/sim_audit.hpp"

namespace vdc::sim {

EventId Simulation::schedule(double time, std::function<void()> callback) {
  if (time < now_) throw std::invalid_argument("Simulation::schedule: time is in the past");
  if (!callback) throw std::invalid_argument("Simulation::schedule: empty callback");
  audit::event_time(now_, time);  // catches NaN, which the < above lets through
  const EventId id = next_id_++;
  heap_.push(Entry{time, id});
  callbacks_.emplace(id, std::move(callback));
  return id;
}

bool Simulation::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);  // lazy deletion; popped entries are skipped
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    if (cb_it == callbacks_.end()) continue;  // defensive; should not happen
    std::function<void()> callback = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    audit::clock_monotonic(now_, top.time);
    now_ = top.time;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

std::size_t Simulation::drain_until(double t) {
  if (t < now_) throw std::invalid_argument("Simulation::drain_until: time is in the past");
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Skim cancelled entries off the top so the peeked time is live.
    while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > t) break;
    step();
    ++executed;
  }
  return executed;
}

void Simulation::run_until(double t) {
  drain_until(t);
  now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace vdc::sim
