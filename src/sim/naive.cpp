#include "sim/naive.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vdc::sim::naive {

namespace {
constexpr double kEps = 1e-12;
}

EventId Simulation::schedule(double time_s, std::function<void()> callback) {
  if (time_s < now_) throw std::invalid_argument("naive::Simulation: time is in the past");
  if (!callback) throw std::invalid_argument("naive::Simulation: empty callback");
  const EventId id = next_id_++;
  heap_.push(Entry{time_s, id});
  callbacks_.emplace(id, std::move(callback));
  return id;
}

bool Simulation::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);  // lazy deletion; popped entries are skipped
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    if (cb_it == callbacks_.end()) continue;  // defensive; should not happen
    std::function<void()> callback = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = top.time_s;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

void Simulation::run_until(double t) {
  if (t < now_) throw std::invalid_argument("naive::Simulation: time is in the past");
  while (!heap_.empty()) {
    while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time_s > t) break;
    step();
  }
  now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

PsQueue::PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete)
    : sim_(sim), capacity_ghz_(capacity_ghz), on_complete_(std::move(on_complete)) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("naive::PsQueue: negative capacity");
  last_sync_ = sim_.now();
}

JobId PsQueue::add_job(double demand_gcycles) {
  if (!(demand_gcycles > 0.0)) {
    throw std::invalid_argument("naive::PsQueue: demand must be positive");
  }
  sync();
  const JobId id = next_job_id_++;
  jobs_.emplace(id, demand_gcycles);
  schedule_next_completion();
  return id;
}

double PsQueue::remove_job(JobId id) {
  sync();
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return -1.0;
  const double remaining = it->second;
  jobs_.erase(it);
  schedule_next_completion();
  return remaining;
}

void PsQueue::set_capacity(double capacity_ghz) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("naive::PsQueue: negative capacity");
  sync();
  capacity_ghz_ = capacity_ghz;
  schedule_next_completion();
}

double PsQueue::busy_time_s() const {
  if (jobs_.empty() || capacity_ghz_ <= 0.0) return busy_time_s_;
  return busy_time_s_ + (sim_.now() - last_sync_);
}

double PsQueue::stalled_time_s() const {
  if (jobs_.empty() || capacity_ghz_ > 0.0) return stalled_time_s_;
  return stalled_time_s_ + (sim_.now() - last_sync_);
}

void PsQueue::sync() {
  const double now = sim_.now();
  const double elapsed_s = now - last_sync_;
  last_sync_ = now;
  if (elapsed_s <= 0.0 || jobs_.empty()) return;

  if (capacity_ghz_ <= 0.0) {
    stalled_time_s_ += elapsed_s;
    return;
  }
  busy_time_s_ += elapsed_s;

  const double per_job = elapsed_s * capacity_ghz_ / static_cast<double>(jobs_.size());
  std::vector<JobId> finished;
  // vdc-lint: unordered-iter-ok every job gets the same per_job decrement; completions are delivered in sorted id order below, and the equivalence suite compares this oracle to the optimized queue with a tolerance, not bitwise
  for (auto& [id, remaining] : jobs_) {
    remaining -= per_job;
    work_done_gcycles_ += per_job;
    if (remaining <= kEps) {
      work_done_gcycles_ += remaining;  // don't over-count the overshoot
      finished.push_back(id);
    }
  }
  std::sort(finished.begin(), finished.end());
  for (const JobId id : finished) jobs_.erase(id);
  for (const JobId id : finished) {
    if (on_complete_) on_complete_(id);
  }
}

void PsQueue::schedule_next_completion() {
  if (pending_completion_ != 0) {
    sim_.cancel(pending_completion_);
    pending_completion_ = 0;
  }
  if (jobs_.empty() || capacity_ghz_ <= 0.0) return;

  double min_remaining = std::numeric_limits<double>::infinity();
  // vdc-lint: unordered-iter-ok min over all values is commutative; order cannot change the result
  for (const auto& [id, remaining] : jobs_) min_remaining = std::min(min_remaining, remaining);
  const double dt =
      std::max(0.0, min_remaining) * static_cast<double>(jobs_.size()) / capacity_ghz_;
  pending_completion_ = sim_.schedule_after(dt, [this] {
    pending_completion_ = 0;
    sync();
    schedule_next_completion();
  });
}

}  // namespace vdc::sim::naive
