// Processor-sharing queue with dynamically adjustable capacity.
//
// This models one VM (one application tier) under a credit-scheduler cap:
// the queue's capacity is the CPU allocation in GHz (cycles/second), each
// job carries a service demand in cycles, and all resident jobs share the
// capacity equally — the behaviour of a CPU-bound tier under Xen's
// work-conserving-off cap, which is what the paper's arbitrator enforces.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulation.hpp"

namespace vdc::sim {

using JobId = std::uint64_t;

class PsQueue {
 public:
  /// Called when a job finishes; runs inside the simulation event.
  using CompletionHandler = std::function<void(JobId)>;

  /// `capacity_ghz` is the initial processing rate in 1e9 cycles/second.
  PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete);

  PsQueue(const PsQueue&) = delete;
  PsQueue& operator=(const PsQueue&) = delete;

  /// Admits a job with the given service demand (unit: Gcycles, i.e. the
  /// job takes demand/capacity seconds when running alone). Returns its id.
  JobId add_job(double demand_gcycles);

  /// Removes a job before completion (e.g. client abandoned). Returns the
  /// remaining demand, or a negative value if the job is unknown.
  double remove_job(JobId id);

  /// Changes the capacity (DVFS / new CPU allocation). Takes effect
  /// immediately; in-flight work is preserved.
  void set_capacity(double capacity_ghz);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t jobs_in_service() const noexcept { return jobs_.size(); }

  /// Total work completed since construction (Gcycles) — used for
  /// utilization accounting.
  [[nodiscard]] double work_done() const noexcept { return work_done_; }

  /// Busy time (seconds with >= 1 job) since construction.
  [[nodiscard]] double busy_time() const;

 private:
  /// Advances all job residuals to sim.now() and reschedules the next
  /// completion event.
  void sync();
  void schedule_next_completion();

  Simulation& sim_;
  double capacity_;
  CompletionHandler on_complete_;
  std::unordered_map<JobId, double> jobs_;  // id -> remaining Gcycles
  JobId next_job_id_ = 1;
  double last_sync_ = 0.0;
  EventId pending_completion_ = 0;  // 0 = none
  double work_done_ = 0.0;
  double busy_time_ = 0.0;
};

}  // namespace vdc::sim
