// Processor-sharing queue with dynamically adjustable capacity.
//
// This models one VM (one application tier) under a credit-scheduler cap:
// the queue's capacity is the CPU allocation in GHz (cycles/second), each
// job carries a service demand in cycles, and all resident jobs share the
// capacity equally — the behaviour of a CPU-bound tier under Xen's
// work-conserving-off cap, which is what the paper's arbitrator enforces.
//
// The queue is dual-mode:
//
// * Below kFastUpThreshold resident jobs it runs the classic per-job-residual
//   formulation: every sync subtracts the shared quantum from each residual.
//   That is O(jobs) per event, which is fine when jobs is a few hundred, and
//   it reproduces the historical floating-point summation order bit-for-bit —
//   the figure benches (<= 80 concurrent requests per tier) produce
//   byte-identical output across this rewrite.
//
// * At kFastUpThreshold jobs it converts to the virtual-time (attained-
//   service) formulation: `vtime_` tracks the cumulative service every
//   resident job has received, and a job with demand d is stored once as a
//   finish mark `vtime_ + d` in an ordered index. Advancing by wall time dt
//   moves vtime_ by dt * capacity / n — one addition instead of n
//   subtractions — so sync() costs O(completions * log n) and the next
//   completion is an O(1) read of the smallest mark. The up-conversion is
//   exact (vtime_ rebases to 0, marks == residuals); the down-conversion at
//   kFastDownThreshold rounds once per job (<= 1 ulp of vtime_).
//
// The naive formulation is additionally retained in sim/naive.hpp as the
// oracle for differential replay tests and the perf-bench baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"

namespace vdc::sim {

using JobId = std::uint64_t;

class PsQueue {
 public:
  /// Called when a job finishes; runs inside the simulation event.
  using CompletionHandler = std::function<void(JobId)>;

  /// Resident-job count at which the queue switches to the O(log n)
  /// virtual-time index (and back, with hysteresis to prevent thrashing).
  static constexpr std::size_t kFastUpThreshold = 512;
  static constexpr std::size_t kFastDownThreshold = 256;

  /// `capacity_ghz` is the initial processing rate in 1e9 cycles/second.
  PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete);

  PsQueue(const PsQueue&) = delete;
  PsQueue& operator=(const PsQueue&) = delete;

  /// Admits a job with the given service demand (unit: Gcycles, i.e. the
  /// job takes demand/capacity seconds when running alone). Returns its id.
  JobId add_job(double demand_gcycles);

  /// Removes a job before completion (e.g. client abandoned). Returns the
  /// remaining demand, or a negative value if the job is unknown.
  double remove_job(JobId id);

  /// Changes the capacity (DVFS / new CPU allocation). Takes effect
  /// immediately; in-flight work is preserved.
  void set_capacity(double capacity_ghz);

  [[nodiscard]] double capacity_ghz() const noexcept { return capacity_ghz_; }
  [[nodiscard]] std::size_t jobs_in_service() const noexcept {
    return fast_ ? marks_.size() : residuals_.size();
  }

  /// Total work completed since construction (Gcycles) — used for
  /// utilization accounting.
  [[nodiscard]] double work_done_gcycles() const noexcept { return work_done_gcycles_; }

  /// Busy time (seconds with >= 1 job AND capacity > 0) since construction.
  /// Time spent holding jobs while allocated zero CPU is NOT busy time — it
  /// accrues to stalled_time_s() instead, so a starved VM no longer reads as
  /// 100% utilized.
  [[nodiscard]] double busy_time_s() const;

  /// Seconds spent with >= 1 resident job but zero capacity (work stalled).
  [[nodiscard]] double stalled_time_s() const;

  /// True while the queue is in the O(log n) virtual-time mode (exposed for
  /// tests and the perf bench).
  [[nodiscard]] bool fast_mode() const noexcept { return fast_; }

 private:
  /// Advances all job state to sim.now(), delivering any completions.
  void sync();
  void naive_sync(double elapsed_s);
  void fast_sync(double elapsed_s);
  void schedule_next_completion();
  void convert_to_fast();
  void convert_to_naive();
  void deliver(std::vector<JobId>& finished);

  Simulation& sim_;
  double capacity_ghz_;
  CompletionHandler on_complete_;

  bool fast_ = false;
  /// Naive mode: job id -> remaining Gcycles (historical summation order).
  std::unordered_map<JobId, double> residuals_;
  /// Fast mode: cumulative per-job attained service (Gcycles), rebased to 0
  /// whenever the queue empties to bound floating-point drift.
  double vtime_ = 0.0;
  /// Fast mode: finish marks in virtual time -> job id; the next completion
  /// is the first element. Ties (equal marks) are delivered in id order.
  std::multimap<double, JobId> by_mark_;
  /// Fast mode: job id -> its node in by_mark_, for O(log n) removal.
  std::unordered_map<JobId, std::multimap<double, JobId>::iterator> marks_;

  JobId next_job_id_ = 1;
  double last_sync_ = 0.0;
  EventId pending_completion_ = 0;  // 0 = none
  double work_done_gcycles_ = 0.0;
  double busy_time_s_ = 0.0;
  double stalled_time_s_ = 0.0;
};

}  // namespace vdc::sim
