// Sharded discrete-event engine: one serial "spine" event loop for the
// control plane plus N per-shard event loops for application workload
// events, advanced concurrently between control-period barriers.
//
// The partitioning rule exploits the structure of the co-simulation: within
// one control period every application's workload events (arrivals, service
// completions, replica boots) touch only that application's own state — its
// PS queues, its RNG streams, its response-time monitor. ALL cross-app
// coupling (MPC decisions, per-server arbitration, consolidation plans,
// migrations, rack power aggregation, supervisor decisions, fault windows)
// is mediated by control-plane events. So applications are partitioned
// across shard loops, every control-plane event lives on the spine, and the
// engine alternates two phases:
//
//   1. Barrier pick: t* = time of the spine's next event (a control tick,
//      optimizer tick, migration phase edge, crash window edge, or external
//      schedule entry).
//   2. Parallel advance: every shard runs its own events up to and
//      including t* on ThreadPool::shared() — no shared state, no locks on
//      the hot path. Then the spine executes its events at t* serially,
//      observing every shard at exactly time t*.
//
// Determinism: shard loops never interact below a barrier, so their
// interleaving is irrelevant; the serial spine phase sees identical state
// regardless of thread count or shard count. Results are bit-identical
// across shard counts and thread counts (test-enforced against the
// single-loop engine). Tie-break policy at a barrier: shard events
// timestamped exactly t* run BEFORE spine events at t*. The single-loop
// engine orders equal timestamps by global scheduling sequence instead;
// the two orders can differ only when a continuous-time workload event
// lands exactly on the periodic tick grid, which the double-precision
// event times make a measure-zero coincidence (see DESIGN.md "Sharded
// engine").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"

namespace vdc::sim {

class ShardedEngine {
 public:
  /// `shard_count` == 0 is the single-loop legacy mode: no shard loops
  /// exist and `shard(i)` aliases the spine, so every event shares one
  /// `Simulation` exactly as before sharding. `threads` caps the workers
  /// used for the parallel shard advance (0 = hardware concurrency).
  explicit ShardedEngine(std::size_t shard_count = 0, std::size_t threads = 0)
      : threads_(threads), shards_(shard_count) {}

  /// The control-plane loop. External schedule events (setpoint changes,
  /// load steps) must be scheduled here so they execute in the serial phase.
  [[nodiscard]] Simulation& spine() noexcept { return spine_; }
  [[nodiscard]] const Simulation& spine() const noexcept { return spine_; }

  /// The loop owning shard `i`'s workload events. In single-loop mode this
  /// is the spine for every `i`.
  [[nodiscard]] Simulation& shard(std::size_t i) noexcept {
    return shards_.empty() ? spine_ : shards_[i];
  }

  /// Number of shard loops (0 in single-loop mode).
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Current time. Clocks are in lockstep at every barrier; between
  /// barriers only shard-local callbacks observe their own shard clock.
  [[nodiscard]] double now() const noexcept { return spine_.now(); }

  /// Advances the co-simulation to absolute time `t`: alternates parallel
  /// shard advances with serial spine phases at every spine event time,
  /// then fast-forwards all clocks to `t`.
  void run_until(double t);

  /// Events executed across the spine and every shard.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;
  /// Events still pending across the spine and every shard.
  [[nodiscard]] std::size_t pending_events() const noexcept;
  /// Barrier synchronizations performed (serial spine phases), for tests
  /// and the perf bench.
  [[nodiscard]] std::uint64_t barriers() const noexcept { return barriers_; }

 private:
  void advance_shards(double t);

  std::size_t threads_;
  std::uint64_t barriers_ = 0;
  Simulation spine_;
  std::vector<Simulation> shards_;
};

}  // namespace vdc::sim
