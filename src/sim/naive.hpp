// Retained naive reference implementations of the discrete-event kernel and
// the processor-sharing queue — the pre-optimization formulations, kept as
// the oracle for differential replay tests (tests/test_eventloop_equivalence)
// and as the baseline the perf bench (bench/perf_eventloop) measures against.
//
// naive::Simulation stores callbacks in an unordered_map with a lazy-cancel
// set (a hash lookup and heap-allocated std::function per event).
// naive::PsQueue keeps one residual per job and walks all of them on every
// sync — O(jobs) per event versus the optimized queue's O(log jobs).
//
// Semantics are identical to the optimized engine (including the
// stalled-vs-busy accounting fix); only the data structures and the
// floating-point summation order differ. Do not "optimize" this file — its
// slowness is the point.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vdc::sim::naive {

using EventId = std::uint64_t;
using JobId = std::uint64_t;

class Simulation {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }

  EventId schedule(double time_s, std::function<void()> callback);
  EventId schedule_after(double delay_s, std::function<void()> callback) {
    return schedule(now_ + delay_s, std::move(callback));
  }

  bool cancel(EventId id);
  bool step();
  void run_until(double t);
  void run();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time_s;
    EventId id;  // doubles as tie-break sequence number (monotonic)
    bool operator>(const Entry& other) const noexcept {
      // vdc-lint: float-eq-ok exact heap ordering; equal keys defer to id for FIFO
      if (time_s != other.time_s) return time_s > other.time_s;
      return id > other.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

class PsQueue {
 public:
  using CompletionHandler = std::function<void(JobId)>;

  PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete);

  PsQueue(const PsQueue&) = delete;
  PsQueue& operator=(const PsQueue&) = delete;

  JobId add_job(double demand_gcycles);
  double remove_job(JobId id);
  void set_capacity(double capacity_ghz);

  [[nodiscard]] double capacity_ghz() const noexcept { return capacity_ghz_; }
  [[nodiscard]] std::size_t jobs_in_service() const noexcept { return jobs_.size(); }
  [[nodiscard]] double work_done_gcycles() const noexcept { return work_done_gcycles_; }
  [[nodiscard]] double busy_time_s() const;
  [[nodiscard]] double stalled_time_s() const;

 private:
  void sync();
  void schedule_next_completion();

  Simulation& sim_;
  double capacity_ghz_;
  CompletionHandler on_complete_;
  std::unordered_map<JobId, double> jobs_;  // id -> remaining Gcycles
  JobId next_job_id_ = 1;
  double last_sync_ = 0.0;
  EventId pending_completion_ = 0;  // 0 = none
  double work_done_gcycles_ = 0.0;
  double busy_time_s_ = 0.0;
  double stalled_time_s_ = 0.0;
};

}  // namespace vdc::sim::naive
