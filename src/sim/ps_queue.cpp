#include "sim/ps_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/sim_audit.hpp"

namespace vdc::sim {

namespace {
constexpr double kEps = 1e-12;
}

PsQueue::PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete)
    : sim_(sim), capacity_(capacity_ghz), on_complete_(std::move(on_complete)) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("PsQueue: negative capacity");
  last_sync_ = sim_.now();
}

JobId PsQueue::add_job(double demand_gcycles) {
  if (!(demand_gcycles > 0.0)) throw std::invalid_argument("PsQueue: demand must be positive");
  sync();
  const JobId id = next_job_id_++;
  jobs_.emplace(id, demand_gcycles);
  schedule_next_completion();
  return id;
}

double PsQueue::remove_job(JobId id) {
  sync();
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return -1.0;
  const double remaining = it->second;
  jobs_.erase(it);
  schedule_next_completion();
  return remaining;
}

void PsQueue::set_capacity(double capacity_ghz) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("PsQueue: negative capacity");
  sync();
  capacity_ = capacity_ghz;
  schedule_next_completion();
}

double PsQueue::busy_time() const {
  // busy_time_ is advanced in sync(); add the open interval since then.
  if (jobs_.empty()) return busy_time_;
  return busy_time_ + (sim_.now() - last_sync_);
}

void PsQueue::sync() {
  const double now = sim_.now();
  const double elapsed = now - last_sync_;
  last_sync_ = now;
  if (elapsed <= 0.0 || jobs_.empty()) return;

  busy_time_ += elapsed;
  if (capacity_ <= 0.0) return;  // VM is allocated nothing: work stalls

  const double per_job = elapsed * capacity_ / static_cast<double>(jobs_.size());
  // Jobs whose residual hits zero here complete "now"; deliver them in id
  // order for determinism.
  std::vector<JobId> finished;
  for (auto& [id, remaining] : jobs_) {
    remaining -= per_job;
    work_done_ += per_job;
    if (remaining <= kEps) {
      audit::ps_residual(remaining);
      work_done_ += remaining;  // don't over-count the overshoot
      finished.push_back(id);
    }
  }
  audit::ps_accounting(work_done_, busy_time_);
  std::sort(finished.begin(), finished.end());
  for (const JobId id : finished) jobs_.erase(id);
  for (const JobId id : finished) {
    if (on_complete_) on_complete_(id);
  }
}

void PsQueue::schedule_next_completion() {
  if (pending_completion_ != 0) {
    sim_.cancel(pending_completion_);
    pending_completion_ = 0;
  }
  if (jobs_.empty() || capacity_ <= 0.0) return;

  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, remaining] : jobs_) min_remaining = std::min(min_remaining, remaining);
  const double dt =
      std::max(0.0, min_remaining) * static_cast<double>(jobs_.size()) / capacity_;
  pending_completion_ = sim_.schedule_after(dt, [this] {
    pending_completion_ = 0;
    sync();
    schedule_next_completion();
  });
}

}  // namespace vdc::sim
