#include "sim/ps_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/sim_audit.hpp"

namespace vdc::sim {

namespace {
constexpr double kEps = 1e-12;
}

PsQueue::PsQueue(Simulation& sim, double capacity_ghz, CompletionHandler on_complete)
    : sim_(sim), capacity_ghz_(capacity_ghz), on_complete_(std::move(on_complete)) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("PsQueue: negative capacity");
  last_sync_ = sim_.now();
}

JobId PsQueue::add_job(double demand_gcycles) {
  if (!(demand_gcycles > 0.0)) throw std::invalid_argument("PsQueue: demand must be positive");
  sync();
  if (!fast_ && residuals_.size() + 1 >= kFastUpThreshold) convert_to_fast();
  const JobId id = next_job_id_++;
  if (fast_) {
    const double mark = vtime_ + demand_gcycles;
    audit::ps_finish_mark(vtime_, mark);
    marks_.emplace(id, by_mark_.emplace(mark, id));
  } else {
    residuals_.emplace(id, demand_gcycles);
  }
  schedule_next_completion();
  return id;
}

double PsQueue::remove_job(JobId id) {
  sync();
  double remaining = -1.0;
  if (fast_) {
    const auto it = marks_.find(id);
    if (it == marks_.end()) return -1.0;
    remaining = it->second->first - vtime_;
    by_mark_.erase(it->second);
    marks_.erase(it);
    if (marks_.empty()) {
      vtime_ = 0.0;
      fast_ = false;
    } else if (marks_.size() <= kFastDownThreshold) {
      convert_to_naive();
    }
  } else {
    const auto it = residuals_.find(id);
    if (it == residuals_.end()) return -1.0;
    remaining = it->second;
    residuals_.erase(it);
  }
  schedule_next_completion();
  return remaining;
}

void PsQueue::set_capacity(double capacity_ghz) {
  if (capacity_ghz < 0.0) throw std::invalid_argument("PsQueue: negative capacity");
  sync();
  capacity_ghz_ = capacity_ghz;
  schedule_next_completion();
}

double PsQueue::busy_time_s() const {
  // busy_time_s_ is advanced in sync(); add the open interval since then.
  if (jobs_in_service() == 0 || capacity_ghz_ <= 0.0) return busy_time_s_;
  return busy_time_s_ + (sim_.now() - last_sync_);
}

double PsQueue::stalled_time_s() const {
  if (jobs_in_service() == 0 || capacity_ghz_ > 0.0) return stalled_time_s_;
  return stalled_time_s_ + (sim_.now() - last_sync_);
}

void PsQueue::sync() {
  const double now = sim_.now();
  const double elapsed_s = now - last_sync_;
  last_sync_ = now;
  if (elapsed_s <= 0.0 || jobs_in_service() == 0) return;

  if (capacity_ghz_ <= 0.0) {
    // VM is allocated nothing: work stalls. This is starvation, not load —
    // it must not inflate the monitor's utilization signal.
    stalled_time_s_ += elapsed_s;
    audit::ps_stall_accounting(busy_time_s_, stalled_time_s_);
    return;
  }
  busy_time_s_ += elapsed_s;

  if (fast_) {
    fast_sync(elapsed_s);
  } else {
    naive_sync(elapsed_s);
  }
}

// The historical formulation, preserved operation-for-operation so that the
// per-job summation order (and therefore every downstream trajectory) is
// bit-identical to the pre-optimization engine at bench concurrency levels.
void PsQueue::naive_sync(double elapsed_s) {
  const double per_job = elapsed_s * capacity_ghz_ / static_cast<double>(residuals_.size());
  // Jobs whose residual hits zero here complete "now"; deliver them in id
  // order for determinism.
  std::vector<JobId> finished;
  // vdc-lint: unordered-iter-ok every job gets the same per_job decrement and completions are sorted by id before delivery; only the work_done accumulation order varies, which the accounting audit bounds with a tolerance
  for (auto& [id, remaining] : residuals_) {
    remaining -= per_job;
    work_done_gcycles_ += per_job;
    if (remaining <= kEps) {
      audit::ps_residual(remaining);
      work_done_gcycles_ += remaining;  // don't over-count the overshoot
      finished.push_back(id);
    }
  }
  audit::ps_accounting(work_done_gcycles_, busy_time_s_);
  std::sort(finished.begin(), finished.end());
  for (const JobId id : finished) residuals_.erase(id);
  deliver(finished);
}

void PsQueue::fast_sync(double elapsed_s) {
  const double per_job = elapsed_s * capacity_ghz_ / static_cast<double>(marks_.size());
  work_done_gcycles_ += per_job * static_cast<double>(marks_.size());
  vtime_ += per_job;

  // Jobs whose finish mark is reached complete "now"; deliver them in id
  // order for determinism.
  std::vector<JobId> finished;
  while (!by_mark_.empty()) {
    const auto first = by_mark_.begin();
    const double remaining = first->first - vtime_;
    if (remaining > kEps) break;
    audit::ps_residual(remaining);
    work_done_gcycles_ += remaining;  // don't over-count the overshoot
    finished.push_back(first->second);
    marks_.erase(first->second);
    by_mark_.erase(first);
  }
  audit::ps_accounting(work_done_gcycles_, busy_time_s_);
  if (marks_.empty()) {
    vtime_ = 0.0;
    fast_ = false;
  } else if (marks_.size() <= kFastDownThreshold) {
    convert_to_naive();
  }
  std::sort(finished.begin(), finished.end());
  deliver(finished);
}

void PsQueue::deliver(std::vector<JobId>& finished) {
  for (const JobId id : finished) {
    if (on_complete_) on_complete_(id);
  }
}

/// Exact: rebasing vtime_ to 0 makes each finish mark equal the residual
/// (0 + r == r, no rounding), so the switch itself never perturbs state.
void PsQueue::convert_to_fast() {
  vtime_ = 0.0;
  // vdc-lint: unordered-iter-ok destination containers are keyed (by_mark_ orders by mark value, marks_ by id); the rebuilt state is identical for any visit order, and equal-mark completions are re-sorted by id on delivery
  for (const auto& [id, remaining] : residuals_) {
    marks_.emplace(id, by_mark_.emplace(remaining, id));
  }
  residuals_.clear();
  fast_ = true;
}

/// Rounds once per job: remaining = mark - vtime_ (<= 1 ulp of vtime_).
void PsQueue::convert_to_naive() {
  for (const auto& [mark, id] : by_mark_) {
    residuals_.emplace(id, mark - vtime_);
  }
  by_mark_.clear();
  marks_.clear();
  vtime_ = 0.0;
  fast_ = false;
}

void PsQueue::schedule_next_completion() {
  if (pending_completion_ != 0) {
    sim_.cancel(pending_completion_);
    pending_completion_ = 0;
  }
  if (jobs_in_service() == 0 || capacity_ghz_ <= 0.0) return;

  double min_remaining;
  if (fast_) {
    min_remaining = by_mark_.begin()->first - vtime_;
  } else {
    min_remaining = std::numeric_limits<double>::infinity();
    // vdc-lint: unordered-iter-ok min over all values is commutative; order cannot change the result
    for (const auto& [id, remaining] : residuals_) {
      min_remaining = std::min(min_remaining, remaining);
    }
  }
  const double dt =
      std::max(0.0, min_remaining) * static_cast<double>(jobs_in_service()) / capacity_ghz_;
  pending_completion_ = sim_.schedule_after(dt, [this] {
    pending_completion_ = 0;
    sync();
    schedule_next_completion();
  });
}

}  // namespace vdc::sim
