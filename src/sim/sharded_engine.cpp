#include "sim/sharded_engine.hpp"

#include <optional>

#include "util/thread_pool.hpp"

namespace vdc::sim {

void ShardedEngine::advance_shards(double t) {
  // Shard loops share no state below a barrier, so the advance is a plain
  // parallel_for; the caller participates, so this works on one core too.
  if (shards_.size() == 1) {
    shards_[0].run_until(t);
    return;
  }
  util::parallel_for(
      shards_.size(), [this, t](std::size_t i) { shards_[i].run_until(t); }, threads_);
}

void ShardedEngine::run_until(double t) {
  if (shards_.empty()) {  // single-loop mode: the spine is the whole engine
    spine_.run_until(t);
    return;
  }
  for (;;) {
    const std::optional<double> next = spine_.next_event_time();
    if (!next || *next > t) break;
    const double barrier = *next;
    // Shard events at exactly `barrier` run before the spine phase — the
    // spine observes every shard at time `barrier`, post workload.
    advance_shards(barrier);
    ++barriers_;
    // Serial control-plane phase. Spine callbacks may schedule into shard
    // loops (allocations, replica boots); those land at >= barrier and run
    // in a later advance.
    spine_.run_until(barrier);
  }
  advance_shards(t);
  spine_.run_until(t);  // no spine events remain <= t; advances the clock
}

std::uint64_t ShardedEngine::events_executed() const noexcept {
  std::uint64_t total = spine_.events_executed();
  for (const Simulation& shard : shards_) total += shard.events_executed();
  return total;
}

std::size_t ShardedEngine::pending_events() const noexcept {
  std::size_t total = spine_.pending_events();
  for (const Simulation& shard : shards_) total += shard.pending_events();
  return total;
}

}  // namespace vdc::sim
