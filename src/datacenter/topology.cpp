#include "datacenter/topology.hpp"

#include <stdexcept>

namespace vdc::datacenter {

std::string to_string(NetworkDistance distance) {
  switch (distance) {
    case NetworkDistance::kSameHost:
      return "same-host";
    case NetworkDistance::kSameRack:
      return "same-rack";
    case NetworkDistance::kSamePod:
      return "same-pod";
    case NetworkDistance::kCrossPod:
      return "cross-pod";
  }
  return "unknown";
}

PodId Topology::add_pod(double shared_power_w) {
  if (shared_power_w < 0.0) throw std::invalid_argument("Topology::add_pod: negative shared power");
  pods_.push_back(Pod{.shared_power_w = shared_power_w, .racks = {}});
  return static_cast<PodId>(pods_.size() - 1);
}

RackId Topology::add_rack(PodId pod, double shared_power_w) {
  if (pod >= pods_.size()) throw std::out_of_range("Topology::add_rack: unknown pod");
  if (shared_power_w < 0.0) throw std::invalid_argument("Topology::add_rack: negative shared power");
  racks_.push_back(Rack{.pod = pod, .shared_power_w = shared_power_w, .servers = {}});
  const RackId id = static_cast<RackId>(racks_.size() - 1);
  pods_[pod].racks.push_back(id);
  return id;
}

void Topology::assign(ServerId server, RackId rack) {
  if (server == kNoServer) throw std::invalid_argument("Topology::assign: invalid server id");
  if (rack >= racks_.size()) throw std::out_of_range("Topology::assign: unknown rack");
  if (server >= rack_of_.size()) {
    rack_of_.resize(static_cast<std::size_t>(server) + 1, kNoRack);
  }
  if (rack_of_[server] != kNoRack) {
    throw std::logic_error("Topology::assign: server already assigned to a rack");
  }
  rack_of_[server] = rack;
  racks_[rack].servers.push_back(server);
}

RackId Topology::rack_of(ServerId server) const noexcept {
  if (server == kNoServer || server >= rack_of_.size()) {
    return kNoRack;
  }
  return rack_of_[server];
}

PodId Topology::pod_of(ServerId server) const noexcept {
  const RackId rack = rack_of(server);
  return rack == kNoRack ? kNoPod : racks_[rack].pod;
}

PodId Topology::pod_of_rack(RackId rack) const {
  if (rack >= racks_.size()) throw std::out_of_range("Topology::pod_of_rack: unknown rack");
  return racks_[rack].pod;
}

double Topology::rack_shared_power_w(RackId rack) const {
  if (rack >= racks_.size()) throw std::out_of_range("Topology::rack_shared_power_w: unknown rack");
  return racks_[rack].shared_power_w;
}

double Topology::pod_shared_power_w(PodId pod) const {
  if (pod >= pods_.size()) throw std::out_of_range("Topology::pod_shared_power_w: unknown pod");
  return pods_[pod].shared_power_w;
}

std::span<const ServerId> Topology::servers_in(RackId rack) const {
  if (rack >= racks_.size()) throw std::out_of_range("Topology::servers_in: unknown rack");
  return racks_[rack].servers;
}

std::span<const RackId> Topology::racks_in(PodId pod) const {
  if (pod >= pods_.size()) throw std::out_of_range("Topology::racks_in: unknown pod");
  return pods_[pod].racks;
}

NetworkDistance Topology::distance(ServerId a, ServerId b) const noexcept {
  if (a == b) {
    return NetworkDistance::kSameHost;
  }
  const RackId rack_a = rack_of(a);
  const RackId rack_b = rack_of(b);
  if (rack_a == kNoRack || rack_b == kNoRack) {
    return NetworkDistance::kCrossPod;
  }
  if (rack_a == rack_b) {
    return NetworkDistance::kSameRack;
  }
  if (racks_[rack_a].pod == racks_[rack_b].pod) {
    return NetworkDistance::kSamePod;
  }
  return NetworkDistance::kCrossPod;
}

Topology Topology::uniform(std::size_t pods, std::size_t racks_per_pod,
                           std::size_t servers_per_rack, double rack_shared_power_w,
                           double pod_shared_power_w) {
  if (pods == 0 || racks_per_pod == 0 || servers_per_rack == 0) {
    throw std::invalid_argument("Topology::uniform: dimensions must be positive");
  }
  Topology topo;
  ServerId next = 0;
  for (std::size_t p = 0; p < pods; ++p) {
    const PodId pod = topo.add_pod(pod_shared_power_w);
    for (std::size_t r = 0; r < racks_per_pod; ++r) {
      const RackId rack = topo.add_rack(pod, rack_shared_power_w);
      for (std::size_t s = 0; s < servers_per_rack; ++s) {
        topo.assign(next++, rack);
      }
    }
  }
  return topo;
}

}  // namespace vdc::datacenter
