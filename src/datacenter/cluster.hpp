// The data center: servers, VMs, and the VM->server mapping (single source
// of truth). Provides the demand/capacity/overload queries the consolidators
// need and the power/energy accounting the benchmarks report.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "datacenter/arbitrator.hpp"
#include "datacenter/migration.hpp"
#include "datacenter/server.hpp"
#include "datacenter/topology.hpp"

namespace vdc::datacenter {

class Cluster {
 public:
  explicit Cluster(MigrationModel migration_model = {},
                   CpuResourceArbitrator arbitrator = CpuResourceArbitrator(1.0));

  // ---- topology -----------------------------------------------------------
  ServerId add_server(Server server);
  /// Adds a VM, optionally placing it immediately. Unplaced VMs must be
  /// placed before power accounting.
  VmId add_vm(Vm vm, std::optional<ServerId> host = std::nullopt);

  /// Installs the physical rack/pod layout. Shared-infrastructure power is
  /// then charged per rack/pod with >= 1 awake member by
  /// arbitrate_and_power_w, and migrations pay the network tier the
  /// topology says they cross. An empty topology (the default) is the flat
  /// pre-topology world and changes nothing.
  void set_topology(Topology topology) { topology_ = std::move(topology); }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_.size(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] const Server& server(ServerId id) const;
  [[nodiscard]] Server& server(ServerId id);
  [[nodiscard]] const Vm& vm(VmId id) const;
  [[nodiscard]] Vm& vm(VmId id);
  [[nodiscard]] ServerId host_of(VmId id) const;
  [[nodiscard]] std::span<const VmId> vms_on(ServerId id) const;

  // ---- placement ----------------------------------------------------------
  /// Places an unplaced VM (no migration cost).
  void place(VmId vm, ServerId host);
  /// Re-maps a placed VM, logging the migration at simulated time `now_s`.
  /// A no-op (not logged) when the VM is already on `host`.
  void migrate(VmId vm, ServerId host, double now_s = 0.0);
  [[nodiscard]] const MigrationLog& migration_log() const noexcept { return migrations_; }
  [[nodiscard]] const MigrationModel& migration_model() const noexcept { return migration_model_; }

  // ---- aggregate queries --------------------------------------------------
  [[nodiscard]] double server_cpu_demand_ghz(ServerId id) const;
  [[nodiscard]] double server_memory_used_mb(ServerId id) const;
  /// Demand exceeds the server's capacity at max frequency (or the server
  /// sleeps while hosting VMs).
  [[nodiscard]] bool overloaded(ServerId id) const;
  [[nodiscard]] std::vector<ServerId> overloaded_servers() const;
  [[nodiscard]] std::size_t active_server_count() const;

  // ---- power --------------------------------------------------------------
  /// Applies the arbitrator to every active server: sets the DVFS frequency
  /// for the current demands (when `dvfs` is true; max frequency otherwise)
  /// and returns total power. Sleeping servers contribute sleep power.
  double arbitrate_and_power_w(bool dvfs = true);

  /// Puts every active server hosting no VMs to sleep; returns how many
  /// were transitioned.
  std::size_t sleep_idle_servers();
  /// Wakes a sleeping server (consolidators call this before placing VMs).
  /// Counted in wake_count() when the server was actually asleep — waking
  /// is a slow, energy-costly transition the optimizer should minimize.
  /// Returns false (and does nothing) when the server has failed: a crashed
  /// box cannot be powered on until repaired.
  bool wake(ServerId id);
  [[nodiscard]] std::size_t wake_count() const noexcept { return wake_count_; }

  // ---- faults -------------------------------------------------------------
  /// Crashes a server: every hosted VM is evicted (left unplaced) and the
  /// server enters kFailed. Returns the evicted VMs so the caller can
  /// re-place them — until it does, they receive no CPU at all.
  std::vector<VmId> fail_server(ServerId id);
  /// Ends a crash: the server leaves kFailed into kSleeping (it reboots
  /// powered down; the optimizer wakes it when it wants the capacity).
  void repair_server(ServerId id);
  /// Crashes every server in a rack (correlated failure: a PDU or ToR
  /// switch loss takes the whole rack down). Returns all evicted VMs.
  std::vector<VmId> fail_rack(RackId rack);
  /// Repairs every failed server in a rack.
  void repair_rack(RackId rack);
  /// VMs currently assigned to no server (crash-evicted or never placed).
  /// Retired VMs are excluded: they left the fleet on purpose and must not
  /// be picked up by the consolidators' homeless-VM re-placement.
  [[nodiscard]] std::vector<VmId> unplaced_vms() const;

  // ---- retirement (horizontal scale-in) -----------------------------------
  /// Permanently removes a VM from service: detaches it from its host and
  /// marks it retired. The slot itself stays — VmIds are positional indices
  /// shared with consolidation snapshots, so deleting the entry would shift
  /// every later id. A retired VM hosts no demand, is skipped by placement
  /// queries, and cannot be placed or migrated again.
  void retire_vm(VmId id);
  [[nodiscard]] bool vm_retired(VmId id) const;
  /// VMs currently in service (not retired).
  [[nodiscard]] std::size_t live_vm_count() const;

 private:
  void check_server(ServerId id) const;
  void check_vm(VmId id) const;
  void detach(VmId vm);

  std::vector<Server> servers_;
  std::vector<Vm> vms_;
  std::vector<bool> retired_;                // per VM; scale-in tombstones
  std::vector<ServerId> host_;               // per VM; kNoServer when unplaced
  std::vector<std::vector<VmId>> hosted_;    // per server
  MigrationModel migration_model_;
  Topology topology_;
  CpuResourceArbitrator arbitrator_;
  MigrationLog migrations_;
  std::size_t wake_count_ = 0;
};

}  // namespace vdc::datacenter
