#include "datacenter/cpu_spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdc::datacenter {

double CpuSpec::frequency_for_demand_ghz(double demand_ghz) const {
  for (const double f : dvfs_freqs_ghz) {
    if (capacity_at_ghz(f) >= demand_ghz - 1e-12) return f;
  }
  return max_freq_ghz;
}

void CpuSpec::validate() const {
  if (cores <= 0) throw std::invalid_argument("CpuSpec: cores must be positive");
  if (!(max_freq_ghz > 0.0)) throw std::invalid_argument("CpuSpec: max frequency");
  if (dvfs_freqs_ghz.empty()) throw std::invalid_argument("CpuSpec: empty DVFS ladder");
  if (!std::is_sorted(dvfs_freqs_ghz.begin(), dvfs_freqs_ghz.end())) {
    throw std::invalid_argument("CpuSpec: DVFS ladder must be ascending");
  }
  if (std::abs(dvfs_freqs_ghz.back() - max_freq_ghz) > 1e-9) {
    throw std::invalid_argument("CpuSpec: DVFS ladder must end at the max frequency");
  }
  if (dvfs_freqs_ghz.front() <= 0.0) {
    throw std::invalid_argument("CpuSpec: DVFS frequencies must be positive");
  }
}

namespace {

std::vector<double> ladder(double fmax) {
  // Six operating points from 50% to 100% of nominal, typical of the
  // 2008-2010 server CPUs the paper's testbed used.
  return {0.5 * fmax, 0.6 * fmax, 0.7 * fmax, 0.8 * fmax, 0.9 * fmax, fmax};
}

}  // namespace

CpuSpec quad_core_3ghz() {
  return CpuSpec{.model = "quad-3.0GHz", .max_freq_ghz = 3.0, .cores = 4,
                 .dvfs_freqs_ghz = ladder(3.0)};
}

CpuSpec dual_core_2ghz() {
  return CpuSpec{.model = "dual-2.0GHz", .max_freq_ghz = 2.0, .cores = 2,
                 .dvfs_freqs_ghz = ladder(2.0)};
}

CpuSpec dual_core_1_5ghz() {
  return CpuSpec{.model = "dual-1.5GHz", .max_freq_ghz = 1.5, .cores = 2,
                 .dvfs_freqs_ghz = ladder(1.5)};
}

}  // namespace vdc::datacenter
