#include "datacenter/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/dc_audit.hpp"

namespace vdc::datacenter {

Cluster::Cluster(MigrationModel migration_model, CpuResourceArbitrator arbitrator)
    : migration_model_(migration_model), arbitrator_(arbitrator) {}

ServerId Cluster::add_server(Server server) {
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.push_back(std::move(server));
  hosted_.emplace_back();
  return id;
}

VmId Cluster::add_vm(Vm vm, std::optional<ServerId> host) {
  const auto id = static_cast<VmId>(vms_.size());
  vms_.push_back(std::move(vm));
  retired_.push_back(false);
  host_.push_back(kNoServer);
  if (host) place(id, *host);
  return id;
}

const Server& Cluster::server(ServerId id) const {
  check_server(id);
  return servers_[id];
}

Server& Cluster::server(ServerId id) {
  check_server(id);
  return servers_[id];
}

const Vm& Cluster::vm(VmId id) const {
  check_vm(id);
  return vms_[id];
}

Vm& Cluster::vm(VmId id) {
  check_vm(id);
  return vms_[id];
}

ServerId Cluster::host_of(VmId id) const {
  check_vm(id);
  return host_[id];
}

std::span<const VmId> Cluster::vms_on(ServerId id) const {
  check_server(id);
  return hosted_[id];
}

void Cluster::place(VmId vm, ServerId host) {
  check_vm(vm);
  check_server(host);
  if (retired_[vm]) throw std::logic_error("Cluster::place: VM is retired");
  if (host_[vm] != kNoServer) {
    throw std::logic_error("Cluster::place: VM already placed (use migrate)");
  }
  host_[vm] = host;
  hosted_[host].push_back(vm);
}

void Cluster::migrate(VmId vm, ServerId host, double now_s) {
  check_vm(vm);
  check_server(host);
  if (retired_[vm]) throw std::logic_error("Cluster::migrate: VM is retired");
  const ServerId from = host_[vm];
  if (from == kNoServer) throw std::logic_error("Cluster::migrate: VM is not placed");
  if (from == host) return;
  detach(vm);
  host_[vm] = host;
  hosted_[host].push_back(vm);
  const NetworkDistance distance =
      topology_.empty() ? NetworkDistance::kSameRack : topology_.distance(from, host);
  migrations_.add(MigrationRecord{
      .vm = vm,
      .from = from,
      .to = host,
      .time_s = now_s,
      .duration_s = migration_model_.duration_s(vms_[vm].memory_mb, distance),
      .bytes = migration_model_.bytes_moved(vms_[vm].memory_mb),
      .distance = distance,
  });
}

double Cluster::server_cpu_demand_ghz(ServerId id) const {
  check_server(id);
  double total = 0.0;
  for (const VmId vm : hosted_[id]) total += vms_[vm].cpu_demand_ghz;
  return total;
}

double Cluster::server_memory_used_mb(ServerId id) const {
  check_server(id);
  double total = 0.0;
  for (const VmId vm : hosted_[id]) total += vms_[vm].memory_mb;
  return total;
}

bool Cluster::overloaded(ServerId id) const {
  check_server(id);
  const double demand = server_cpu_demand_ghz(id);
  if (!servers_[id].active()) return demand > 0.0;
  return demand > servers_[id].max_capacity_ghz() + 1e-9 ||
         server_memory_used_mb(id) > servers_[id].memory_mb() + 1e-9;
}

std::vector<ServerId> Cluster::overloaded_servers() const {
  std::vector<ServerId> out;
  for (ServerId id = 0; id < servers_.size(); ++id) {
    if (overloaded(id)) out.push_back(id);
  }
  return out;
}

std::size_t Cluster::active_server_count() const {
  return static_cast<std::size_t>(
      std::count_if(servers_.begin(), servers_.end(),
                    [](const Server& s) { return s.active(); }));
}

double Cluster::arbitrate_and_power_w(bool dvfs) {
  double total = 0.0;
  std::vector<double> demands;
  // Per-server draws are only materialized when a topology is installed
  // (for the rack conservation audit); the flat accumulation below is
  // untouched either way so flat-mode totals stay bit-identical.
  const bool racked = !topology_.empty();
  std::vector<double> per_server;
  if (racked) per_server.assign(servers_.size(), 0.0);
  for (ServerId id = 0; id < servers_.size(); ++id) {
    Server& srv = servers_[id];
    if (!srv.active()) {
      audit::server_state(srv);
      const double sleep_power = srv.power_w(0.0);
      audit::server_power(srv, sleep_power);
      total += sleep_power;
      if (racked) per_server[id] = sleep_power;
      continue;
    }
    demands.clear();
    for (const VmId vm : hosted_[id]) demands.push_back(vms_[vm].cpu_demand_ghz);
    double power = 0.0;
    if (dvfs) {
      const ArbitrationResult arb = arbitrator_.arbitrate(srv.cpu(), demands);
      audit::arbitration(srv.cpu(), demands, arb);
      srv.set_frequency(arb.frequency_ghz);
      power = srv.power_w(arb.utilization());
    } else {
      srv.set_frequency(srv.cpu().max_freq_ghz);
      const double demand = server_cpu_demand_ghz(id);
      const double cap = srv.capacity_ghz();
      power = srv.power_w(cap > 0.0 ? std::min(1.0, demand / cap) : 0.0);
    }
    audit::server_state(srv);
    audit::server_power(srv, power);
    total += power;
    if (racked) per_server[id] = power;
  }
  if (racked) {
    // Shared infrastructure: a rack's PDU/cooling/ToR draw is paid while
    // any member is awake; a pod's aggregation draw likewise. A rack the
    // consolidator fully evacuates therefore switches its share off.
    for (RackId rack = 0; rack < topology_.rack_count(); ++rack) {
      double members = 0.0;
      bool awake = false;
      for (const ServerId s : topology_.servers_in(rack)) {
        if (s >= servers_.size()) continue;
        members += per_server[s];
        awake = awake || servers_[s].active();
      }
      const double shared = awake ? topology_.rack_shared_power_w(rack) : 0.0;
      audit::rack_power(rack, awake, topology_.rack_shared_power_w(rack), members,
                        members + shared);
      total += shared;
    }
    for (PodId pod = 0; pod < topology_.pod_count(); ++pod) {
      bool awake = false;
      for (const RackId rack : topology_.racks_in(pod)) {
        for (const ServerId s : topology_.servers_in(rack)) {
          if (s < servers_.size() && servers_[s].active()) {
            awake = true;
            break;
          }
        }
        if (awake) break;
      }
      if (awake) total += topology_.pod_shared_power_w(pod);
    }
  }
  return total;
}

std::size_t Cluster::sleep_idle_servers() {
  std::size_t transitioned = 0;
  for (ServerId id = 0; id < servers_.size(); ++id) {
    if (servers_[id].active() && hosted_[id].empty()) {
      servers_[id].set_state(ServerState::kSleeping);
      ++transitioned;
    }
  }
  return transitioned;
}

bool Cluster::wake(ServerId id) {
  check_server(id);
  if (servers_[id].failed()) return false;
  if (!servers_[id].active()) ++wake_count_;
  servers_[id].set_state(ServerState::kActive);
  return true;
}

std::vector<VmId> Cluster::fail_server(ServerId id) {
  check_server(id);
  std::vector<VmId> evicted = hosted_[id];
  for (const VmId vm : evicted) detach(vm);
  servers_[id].set_state(ServerState::kFailed);
  return evicted;
}

void Cluster::repair_server(ServerId id) {
  check_server(id);
  if (servers_[id].failed()) servers_[id].set_state(ServerState::kSleeping);
}

std::vector<VmId> Cluster::fail_rack(RackId rack) {
  std::vector<VmId> evicted;
  for (const ServerId id : topology_.servers_in(rack)) {
    if (id >= servers_.size()) continue;
    std::vector<VmId> from_server = fail_server(id);
    evicted.insert(evicted.end(), from_server.begin(), from_server.end());
  }
  return evicted;
}

void Cluster::repair_rack(RackId rack) {
  for (const ServerId id : topology_.servers_in(rack)) {
    if (id < servers_.size()) repair_server(id);
  }
}

std::vector<VmId> Cluster::unplaced_vms() const {
  std::vector<VmId> out;
  for (VmId id = 0; id < vms_.size(); ++id) {
    if (host_[id] == kNoServer && !retired_[id]) out.push_back(id);
  }
  return out;
}

void Cluster::retire_vm(VmId id) {
  check_vm(id);
  if (retired_[id]) return;
  if (host_[id] != kNoServer) detach(id);
  retired_[id] = true;
  vms_[id].cpu_demand_ghz = 0.0;
}

bool Cluster::vm_retired(VmId id) const {
  check_vm(id);
  return retired_[id];
}

std::size_t Cluster::live_vm_count() const {
  std::size_t live = 0;
  for (VmId id = 0; id < vms_.size(); ++id) {
    if (!retired_[id]) ++live;
  }
  return live;
}

void Cluster::check_server(ServerId id) const {
  if (id >= servers_.size()) throw std::out_of_range("Cluster: bad server id");
}

void Cluster::check_vm(VmId id) const {
  if (id >= vms_.size()) throw std::out_of_range("Cluster: bad VM id");
}

void Cluster::detach(VmId vm) {
  auto& list = hosted_[host_[vm]];
  list.erase(std::remove(list.begin(), list.end(), vm), list.end());
  host_[vm] = kNoServer;
}

}  // namespace vdc::datacenter
