// A physical server: CPU spec + power model + memory + sleep/active state
// and the current DVFS operating point. VM hosting lives in Cluster so
// there is a single source of truth for the mapping.
#pragma once

#include <cstdint>
#include <string>

#include "datacenter/cpu_spec.hpp"
#include "datacenter/power_model.hpp"

namespace vdc::datacenter {

using ServerId = std::uint32_t;
using VmId = std::uint32_t;
inline constexpr ServerId kNoServer = static_cast<ServerId>(-1);
inline constexpr VmId kNoVm = static_cast<VmId>(-1);

enum class ServerState {
  kSleeping,
  kActive,
  /// Crashed: zero capacity, zero draw, and — unlike kSleeping — the server
  /// cannot be woken until repaired. Used by fault injection.
  kFailed,
};

class Server {
 public:
  Server(CpuSpec cpu, PowerModel power, double memory_mb);

  [[nodiscard]] const CpuSpec& cpu() const noexcept { return cpu_; }
  [[nodiscard]] const PowerModel& power_model() const noexcept { return power_; }
  [[nodiscard]] double memory_mb() const noexcept { return memory_mb_; }

  [[nodiscard]] ServerState state() const noexcept { return state_; }
  [[nodiscard]] bool active() const noexcept { return state_ == ServerState::kActive; }
  [[nodiscard]] bool failed() const noexcept { return state_ == ServerState::kFailed; }
  void set_state(ServerState state) noexcept;

  /// Current DVFS frequency (GHz). Meaningful only while active.
  [[nodiscard]] double frequency_ghz() const noexcept { return frequency_ghz_; }
  /// Snaps to the nearest ladder point at or above the request.
  void set_frequency(double freq_ghz);

  /// Aggregate capacity at the current state/frequency; 0 while sleeping.
  [[nodiscard]] double capacity_ghz() const noexcept;
  [[nodiscard]] double max_capacity_ghz() const noexcept { return cpu_.max_capacity_ghz(); }

  /// Instantaneous power draw given utilization (fraction of current
  /// capacity in use, [0,1]).
  [[nodiscard]] double power_w(double utilization) const noexcept;

  /// The paper's power-efficiency metric: max total frequency / max power
  /// (GHz per watt) — servers are consolidated onto high values first.
  [[nodiscard]] double power_efficiency_ghz_per_w() const noexcept {
    return cpu_.max_capacity_ghz() / power_.max_power_w();
  }

 private:
  CpuSpec cpu_;
  PowerModel power_;
  double memory_mb_;
  ServerState state_ = ServerState::kActive;
  double frequency_ghz_;
};

/// A virtual machine: its current CPU demand (GHz, set by the response-time
/// controller or by the utilization trace) and its memory footprint.
struct Vm {
  std::string name;
  double cpu_demand_ghz = 0.0;
  double memory_mb = 1024.0;
  /// Which application/tier this VM runs (free-form; used by reports).
  std::string role;
};

}  // namespace vdc::datacenter
