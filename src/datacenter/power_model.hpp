// Server power model.
//
//   P_sleep                                  when sleeping
//   P(f, u) = base + idle_dyn*(f/fmax)^3 + load_dyn*(f/fmax)^3 * u   when active
//
// base is static/leakage power (also covering fans, disks, memory); the two
// dynamic terms scale cubically with frequency because supply voltage
// scales with frequency under DVFS. The model preserves the two properties
// the paper's algorithms exploit: idle servers still burn most of their
// peak power (so consolidation + sleep wins), and running the same work at
// lower frequency costs quadratically less dynamic power (so DVFS wins).
#pragma once

namespace vdc::datacenter {

struct PowerModel {
  double sleep_w = 5.0;
  double base_w = 120.0;      ///< frequency-independent floor while active
  double idle_dyn_w = 20.0;   ///< clock-tree and uncore dynamic power at fmax
  double load_dyn_w = 80.0;   ///< additional dynamic power at fmax, 100% load
  double dyn_exponent = 3.0;  ///< voltage-frequency scaling exponent

  /// Active power at relative frequency `f_ratio` = f/fmax, utilization
  /// u in [0,1] measured at that frequency.
  [[nodiscard]] double active_power_w(double f_ratio, double utilization) const;

  /// Peak power (fmax, fully loaded) — the denominator of the paper's
  /// power-efficiency metric.
  [[nodiscard]] double max_power_w() const noexcept {
    return base_w + idle_dyn_w + load_dyn_w;
  }

  /// Throws std::invalid_argument on non-physical parameters.
  void validate() const;
};

/// Power models matched to the three simulator server classes; sized so the
/// power-efficiency ranking is quad-3GHz > dual-2GHz > dual-1.5GHz, giving
/// the consolidators meaningful heterogeneity to exploit.
[[nodiscard]] PowerModel power_model_quad_3ghz();
[[nodiscard]] PowerModel power_model_dual_2ghz();
[[nodiscard]] PowerModel power_model_dual_1_5ghz();

}  // namespace vdc::datacenter
