// Physical data-center topology: datacenter -> pod -> rack -> server.
//
// The paper's power model treats every server as an island; real plants do
// not. A rack carries shared infrastructure — its PDU, fans, and top-of-rack
// switch — that draws power while at least one member server is awake and
// can be switched off when the whole rack sleeps; a pod (a row of racks
// behind one aggregation switch and CRAC unit) behaves the same one level
// up. That shared draw is what makes *where* a consolidation plan empties
// servers matter: emptying a whole rack saves its shared power on top of
// the member servers' sleep savings, while emptying the same number of
// servers scattered across racks saves nothing extra (cf. Esfandiarpoor et
// al., "Structure-aware VM consolidation", PAPERS.md).
//
// The topology also fixes the network-distance hierarchy migrations pay
// for: same-rack copies ride the ToR switch, cross-rack copies the pod
// fabric, cross-pod copies the core — each tier with less bandwidth than
// the one below (see MigrationModel's distance tiers).
//
// A default-constructed (empty) Topology means the pre-topology flat world:
// no shared draw, every migration at the base tier. Everything downstream
// treats that case as a provable no-op so flat results stay byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "datacenter/server.hpp"

namespace vdc::datacenter {

using RackId = std::uint32_t;
using PodId = std::uint32_t;
inline constexpr RackId kNoRack = static_cast<RackId>(-1);
inline constexpr PodId kNoPod = static_cast<PodId>(-1);

/// Network distance between two servers, ordered by increasing cost.
enum class NetworkDistance {
  kSameHost = 0,  ///< no network move at all (a no-op migration)
  kSameRack = 1,  ///< via the top-of-rack switch
  kSamePod = 2,   ///< cross-rack via the pod aggregation fabric
  kCrossPod = 3,  ///< via the data-center core
};

[[nodiscard]] std::string to_string(NetworkDistance distance);

class Topology {
 public:
  Topology() = default;

  /// Adds a pod whose shared infrastructure (aggregation switch, CRAC fan
  /// wall) draws `shared_power_w` while >= 1 member server is awake.
  PodId add_pod(double shared_power_w = 0.0);
  /// Adds a rack to `pod`; its shared infrastructure (PDU, fans, ToR
  /// switch) draws `shared_power_w` while >= 1 member server is awake.
  RackId add_rack(PodId pod, double shared_power_w = 0.0);
  /// Assigns a server to a rack. A server may be assigned once; servers
  /// never assigned are topology-less islands (no shared draw, base-tier
  /// migrations), which keeps partial assignment well-defined.
  void assign(ServerId server, RackId rack);

  /// No racks at all: the flat, pre-topology world.
  [[nodiscard]] bool empty() const noexcept { return racks_.empty(); }
  [[nodiscard]] std::size_t pod_count() const noexcept { return pods_.size(); }
  [[nodiscard]] std::size_t rack_count() const noexcept { return racks_.size(); }

  [[nodiscard]] RackId rack_of(ServerId server) const noexcept;
  [[nodiscard]] PodId pod_of(ServerId server) const noexcept;
  [[nodiscard]] PodId pod_of_rack(RackId rack) const;
  [[nodiscard]] double rack_shared_power_w(RackId rack) const;
  [[nodiscard]] double pod_shared_power_w(PodId pod) const;
  [[nodiscard]] std::span<const ServerId> servers_in(RackId rack) const;
  [[nodiscard]] std::span<const RackId> racks_in(PodId pod) const;

  /// Distance tier a migration between the two servers pays. Servers not
  /// assigned to any rack are treated as maximally distant from everything
  /// but themselves (they share no fabric we know about).
  [[nodiscard]] NetworkDistance distance(ServerId a, ServerId b) const noexcept;

  /// Regular grid: `pods` pods of `racks_per_pod` racks of
  /// `servers_per_rack` servers, assigning server ids 0..N-1 contiguously
  /// (rack-major). The layout every bench and test uses.
  [[nodiscard]] static Topology uniform(std::size_t pods, std::size_t racks_per_pod,
                                        std::size_t servers_per_rack,
                                        double rack_shared_power_w,
                                        double pod_shared_power_w = 0.0);

 private:
  struct Rack {
    PodId pod = kNoPod;
    double shared_power_w = 0.0;
    std::vector<ServerId> servers;
  };
  struct Pod {
    double shared_power_w = 0.0;
    std::vector<RackId> racks;
  };

  std::vector<Pod> pods_;
  std::vector<Rack> racks_;
  std::vector<RackId> rack_of_;  ///< per server; kNoRack when unassigned
};

}  // namespace vdc::datacenter
