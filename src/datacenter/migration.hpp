// Live-migration model and accounting. A migration's duration and network
// cost follow the pre-copy model: roughly the VM's memory image must cross
// the network once (plus dirty-page rounds folded into `overhead_factor`).
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/server.hpp"
#include "datacenter/topology.hpp"

namespace vdc::datacenter {

struct MigrationModel {
  double network_bandwidth_mbps = 1000.0;  ///< dedicated migration bandwidth
  double overhead_factor = 1.3;            ///< dirty-page re-send multiplier
  double downtime_s = 0.5;                 ///< stop-and-copy downtime
  // Bandwidth multipliers for the network tiers a transfer may cross.
  // `network_bandwidth_mbps` above is the same-rack (top-of-rack) tier;
  // cross-rack and cross-pod transfers see it scaled by these factors
  // (<= 1 slows distant copies). Defaults of 1.0 make every tier equal —
  // i.e. the flat, pre-topology behavior, byte for byte.
  double cross_rack_bandwidth_factor = 1.0;  ///< pod-fabric tier, in (0, 1]
  double cross_pod_bandwidth_factor = 1.0;   ///< core tier, in (0, 1]

  /// Effective bandwidth for a transfer crossing the given distance tier.
  [[nodiscard]] double bandwidth_mbps(NetworkDistance distance) const noexcept {
    switch (distance) {
      case NetworkDistance::kSamePod:
        return network_bandwidth_mbps * cross_rack_bandwidth_factor;
      case NetworkDistance::kCrossPod:
        return network_bandwidth_mbps * cross_pod_bandwidth_factor;
      case NetworkDistance::kSameHost:
      case NetworkDistance::kSameRack:
        break;
    }
    return network_bandwidth_mbps;
  }

  /// Wall-clock duration of migrating a VM with the given memory footprint
  /// at the base (same-rack) tier.
  [[nodiscard]] double duration_s(double vm_memory_mb) const noexcept {
    const double megabits = vm_memory_mb * 8.0 * overhead_factor;
    return megabits / network_bandwidth_mbps + downtime_s;
  }
  /// Wall-clock duration when the transfer crosses `distance`. A same-host
  /// "move" copies nothing and costs nothing.
  [[nodiscard]] double duration_s(double vm_memory_mb, NetworkDistance distance) const noexcept {
    if (distance == NetworkDistance::kSameHost) return 0.0;
    const double megabits = vm_memory_mb * 8.0 * overhead_factor;
    return megabits / bandwidth_mbps(distance) + downtime_s;
  }
  /// Bytes moved across the network.
  [[nodiscard]] double bytes_moved(double vm_memory_mb) const noexcept {
    return vm_memory_mb * 1e6 * overhead_factor;
  }
};

struct MigrationRecord {
  VmId vm;
  ServerId from;
  ServerId to;
  double time_s;      ///< when the migration was issued
  double duration_s;
  double bytes;
  NetworkDistance distance = NetworkDistance::kSameRack;
};

/// Append-only log of executed migrations with aggregate statistics.
class MigrationLog {
 public:
  void add(MigrationRecord record);

  [[nodiscard]] std::size_t count() const noexcept { return records_.size(); }
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] double total_duration_s() const noexcept { return total_duration_s_; }
  [[nodiscard]] const std::vector<MigrationRecord>& records() const noexcept { return records_; }
  void clear() noexcept;

 private:
  std::vector<MigrationRecord> records_;
  double total_bytes_ = 0.0;
  double total_duration_s_ = 0.0;
};

}  // namespace vdc::datacenter
