#include "datacenter/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdc::datacenter {

double PowerModel::active_power_w(double f_ratio, double utilization) const {
  f_ratio = std::clamp(f_ratio, 0.0, 1.0);
  utilization = std::clamp(utilization, 0.0, 1.0);
  const double dyn = std::pow(f_ratio, dyn_exponent);
  return base_w + idle_dyn_w * dyn + load_dyn_w * dyn * utilization;
}

void PowerModel::validate() const {
  if (sleep_w < 0.0 || base_w < 0.0 || idle_dyn_w < 0.0 || load_dyn_w < 0.0) {
    throw std::invalid_argument("PowerModel: negative power term");
  }
  if (sleep_w > base_w) {
    throw std::invalid_argument("PowerModel: sleep power exceeds active base power");
  }
  if (dyn_exponent < 1.0 || dyn_exponent > 4.0) {
    throw std::invalid_argument("PowerModel: dynamic exponent outside [1,4]");
  }
}

PowerModel power_model_quad_3ghz() {
  // Late-generation, most efficient class: 12 GHz / 270 W peak = 0.044 GHz/W.
  return PowerModel{.sleep_w = 8.0, .base_w = 130.0, .idle_dyn_w = 30.0, .load_dyn_w = 110.0};
}

PowerModel power_model_dual_2ghz() {
  // Mid-generation: 4 GHz / 180 W = 0.022 GHz/W.
  return PowerModel{.sleep_w = 6.0, .base_w = 100.0, .idle_dyn_w = 20.0, .load_dyn_w = 60.0};
}

PowerModel power_model_dual_1_5ghz() {
  // Oldest class, poor perf/W (the heterogeneity the optimizer exploits):
  // 3 GHz / 200 W = 0.015 GHz/W.
  return PowerModel{.sleep_w = 5.0, .base_w = 110.0, .idle_dyn_w = 20.0, .load_dyn_w = 70.0};
}

}  // namespace vdc::datacenter
