#include "datacenter/migration.hpp"

namespace vdc::datacenter {

void MigrationLog::add(MigrationRecord record) {
  total_bytes_ += record.bytes;
  total_duration_s_ += record.duration_s;
  records_.push_back(record);
}

void MigrationLog::clear() noexcept {
  records_.clear();
  total_bytes_ = 0.0;
  total_duration_s_ = 0.0;
}

}  // namespace vdc::datacenter
