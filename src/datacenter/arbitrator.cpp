#include "datacenter/arbitrator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace vdc::datacenter {

CpuResourceArbitrator::CpuResourceArbitrator(double headroom) : headroom_(headroom) {
  if (headroom < 1.0) throw std::invalid_argument("Arbitrator: headroom must be >= 1");
}

ArbitrationResult CpuResourceArbitrator::arbitrate(const CpuSpec& cpu,
                                                   std::span<const double> demands_ghz) const {
  ArbitrationResult result;
  for (const double d : demands_ghz) {
    if (d < 0.0) throw std::invalid_argument("Arbitrator: negative demand");
    result.total_demand_ghz += d;
  }

  result.frequency_ghz = cpu.frequency_for_demand_ghz(result.total_demand_ghz * headroom_);
  result.capacity_ghz = cpu.capacity_at_ghz(result.frequency_ghz);

  result.allocations_ghz.assign(demands_ghz.begin(), demands_ghz.end());
  if (result.total_demand_ghz > result.capacity_ghz + 1e-12) {
    // Saturated: grant proportional shares of the full capacity.
    result.saturated = true;
    const double scale = result.capacity_ghz / result.total_demand_ghz;
    for (double& a : result.allocations_ghz) a *= scale;
  }
  return result;
}

}  // namespace vdc::datacenter
