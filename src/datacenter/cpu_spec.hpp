// CPU specifications with DVFS frequency ladders. Capacity is expressed in
// absolute GHz summed over cores — the unit in which the paper states CPU
// allocations ("c11 = 20% x 5 GHz = 1 GHz").
#pragma once

#include <string>
#include <vector>

namespace vdc::datacenter {

struct CpuSpec {
  std::string model = "generic";
  double max_freq_ghz = 2.0;
  int cores = 2;
  /// Available DVFS operating points, ascending, last == max_freq_ghz.
  std::vector<double> dvfs_freqs_ghz = {1.0, 1.25, 1.5, 1.75, 2.0};

  /// Aggregate capacity (GHz over all cores) when running at `freq_ghz`.
  [[nodiscard]] double capacity_at_ghz(double freq_ghz) const noexcept {
    return freq_ghz * static_cast<double>(cores);
  }
  [[nodiscard]] double max_capacity_ghz() const noexcept {
    return capacity_at_ghz(max_freq_ghz);
  }
  [[nodiscard]] double min_freq_ghz() const {
    return dvfs_freqs_ghz.empty() ? max_freq_ghz : dvfs_freqs_ghz.front();
  }

  /// Lowest DVFS frequency whose capacity covers `demand_ghz`; returns the
  /// max frequency when even that is insufficient.
  [[nodiscard]] double frequency_for_demand_ghz(double demand_ghz) const;

  /// Throws std::invalid_argument when the ladder is empty, unsorted, or
  /// does not end at max_freq_ghz.
  void validate() const;
};

/// The simulator's three server classes (Section VI-B of the paper):
/// 3 GHz quad-core, 2 GHz dual-core, 1.5 GHz dual-core.
[[nodiscard]] CpuSpec quad_core_3ghz();
[[nodiscard]] CpuSpec dual_core_2ghz();
[[nodiscard]] CpuSpec dual_core_1_5ghz();

}  // namespace vdc::datacenter
