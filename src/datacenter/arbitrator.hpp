// Server-level CPU resource arbitrator (Section IV-B, last paragraph):
// collects the CPU demands (GHz) of the VMs hosted on one server, picks the
// lowest DVFS frequency whose capacity satisfies the aggregate demand, and
// divides the capacity among the VMs — proportionally when the server is
// saturated.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "datacenter/cpu_spec.hpp"

namespace vdc::datacenter {

struct ArbitrationResult {
  double frequency_ghz = 0.0;           ///< chosen DVFS operating point
  std::vector<double> allocations_ghz;  ///< per-VM grant, same order as demands
  bool saturated = false;               ///< true when demand exceeds max capacity
  double total_demand_ghz = 0.0;
  double capacity_ghz = 0.0;            ///< capacity at the chosen frequency
  /// Utilization the server will run at: total granted / capacity.
  [[nodiscard]] double utilization() const noexcept {
    return capacity_ghz > 0.0 ? std::min(1.0, total_demand_ghz / capacity_ghz) : 0.0;
  }
};

class CpuResourceArbitrator {
 public:
  /// `headroom` > 1 reserves slack above the aggregate demand before
  /// choosing the frequency (guards against demand jitter between control
  /// periods). 1.0 = run exactly at demand.
  explicit CpuResourceArbitrator(double headroom = 1.1);

  [[nodiscard]] ArbitrationResult arbitrate(const CpuSpec& cpu,
                                            std::span<const double> demands_ghz) const;

  [[nodiscard]] double headroom() const noexcept { return headroom_; }

 private:
  double headroom_;
};

}  // namespace vdc::datacenter
