#include "datacenter/server.hpp"

#include <stdexcept>

namespace vdc::datacenter {

Server::Server(CpuSpec cpu, PowerModel power, double memory_mb)
    : cpu_(std::move(cpu)), power_(power), memory_mb_(memory_mb) {
  cpu_.validate();
  power_.validate();
  if (!(memory_mb > 0.0)) throw std::invalid_argument("Server: memory must be positive");
  frequency_ghz_ = cpu_.max_freq_ghz;
}

void Server::set_state(ServerState state) noexcept {
  state_ = state;
  if (state_ == ServerState::kActive && frequency_ghz_ <= 0.0) {
    frequency_ghz_ = cpu_.max_freq_ghz;
  }
}

void Server::set_frequency(double freq_ghz) {
  // Snap up to the nearest DVFS operating point.
  for (const double f : cpu_.dvfs_freqs_ghz) {
    if (f >= freq_ghz - 1e-12) {
      frequency_ghz_ = f;
      return;
    }
  }
  frequency_ghz_ = cpu_.max_freq_ghz;
}

double Server::capacity_ghz() const noexcept {
  if (state_ != ServerState::kActive) return 0.0;
  return cpu_.capacity_at_ghz(frequency_ghz_);
}

double Server::power_w(double utilization) const noexcept {
  if (state_ == ServerState::kFailed) return 0.0;  // crashed boxes draw nothing
  if (state_ != ServerState::kActive) return power_.sleep_w;
  return power_.active_power_w(frequency_ghz_ / cpu_.max_freq_ghz, utilization);
}

}  // namespace vdc::datacenter
