#include "consolidate/constraints.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdc::consolidate {

CpuCapacityConstraint::CpuCapacityConstraint(double utilization_target)
    : target_(utilization_target) {
  if (!(utilization_target > 0.0) || utilization_target > 1.0) {
    throw std::invalid_argument("CpuCapacityConstraint: target must be in (0,1]");
  }
}

bool CpuCapacityConstraint::admits(const ServerSnapshot& server,
                                   std::span<const VmSnapshot* const> hosted) const {
  double demand = 0.0;
  for (const VmSnapshot* vm : hosted) demand += vm->cpu_demand_ghz;
  return demand <= server.max_capacity_ghz * target_ + 1e-9;
}

bool MemoryConstraint::admits(const ServerSnapshot& server,
                              std::span<const VmSnapshot* const> hosted) const {
  double memory = 0.0;
  for (const VmSnapshot* vm : hosted) memory += vm->memory_mb;
  return memory <= server.memory_mb + 1e-9;
}

CustomConstraint::CustomConstraint(std::string name, Fn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CustomConstraint: empty callable");
}

bool CustomConstraint::admits(const ServerSnapshot& server,
                              std::span<const VmSnapshot* const> hosted) const {
  return fn_(server, hosted);
}

ConstraintSet& ConstraintSet::add(std::unique_ptr<PlacementConstraint> constraint) {
  if (!constraint) throw std::invalid_argument("ConstraintSet: null constraint");
  if (const auto* cpu = dynamic_cast<const CpuCapacityConstraint*>(constraint.get())) {
    profile_.cpu_target =
        profile_.has_cpu ? std::min(profile_.cpu_target, cpu->utilization_target())
                         : cpu->utilization_target();
    profile_.has_cpu = true;
  } else if (dynamic_cast<const MemoryConstraint*>(constraint.get()) != nullptr) {
    profile_.has_memory = true;
  } else {
    profile_.all_builtin = false;
  }
  constraints_.push_back(std::move(constraint));
  return *this;
}

bool ConstraintSet::admits(const ServerSnapshot& server,
                           std::span<const VmSnapshot* const> hosted) const {
  // Single choke point for crashed servers: no algorithm may plan onto one,
  // and a failed server hosting anything is by definition infeasible (which
  // is what makes IPAC's overload-relief step evacuate it).
  if (server.failed) return false;
  for (const auto& constraint : constraints_) {
    if (!constraint->admits(server, hosted)) return false;
  }
  return true;
}

bool ConstraintSet::admits_with(const ServerSnapshot& server,
                                std::span<const VmSnapshot* const> resident,
                                std::span<const VmSnapshot* const> extra,
                                std::vector<const VmSnapshot*>& scratch) const {
  if (server.failed) return false;
  if (profile_.all_builtin) {
    // Builtin-only sets reduce to two running sums — no concatenation, no
    // virtual dispatch. Same formulas and epsilons as the constraint
    // classes themselves.
    double demand = 0.0;
    double memory = 0.0;
    for (const VmSnapshot* vm : resident) {
      demand += vm->cpu_demand_ghz;
      memory += vm->memory_mb;
    }
    for (const VmSnapshot* vm : extra) {
      demand += vm->cpu_demand_ghz;
      memory += vm->memory_mb;
    }
    if (profile_.has_cpu && demand > cpu_limit_ghz(server) + 1e-9) return false;
    if (profile_.has_memory && memory > server.memory_mb + 1e-9) return false;
    return true;
  }
  scratch.clear();
  scratch.reserve(resident.size() + extra.size());
  scratch.insert(scratch.end(), resident.begin(), resident.end());
  scratch.insert(scratch.end(), extra.begin(), extra.end());
  return admits(server, scratch);
}

ConstraintSet ConstraintSet::standard(double utilization_target) {
  ConstraintSet set;
  set.add(std::make_unique<CpuCapacityConstraint>(utilization_target));
  set.add(std::make_unique<MemoryConstraint>());
  return set;
}

}  // namespace vdc::consolidate
