#include "consolidate/constraints.hpp"

#include <stdexcept>

namespace vdc::consolidate {

CpuCapacityConstraint::CpuCapacityConstraint(double utilization_target)
    : target_(utilization_target) {
  if (!(utilization_target > 0.0) || utilization_target > 1.0) {
    throw std::invalid_argument("CpuCapacityConstraint: target must be in (0,1]");
  }
}

bool CpuCapacityConstraint::admits(const ServerSnapshot& server,
                                   std::span<const VmSnapshot* const> hosted) const {
  double demand = 0.0;
  for (const VmSnapshot* vm : hosted) demand += vm->cpu_demand_ghz;
  return demand <= server.max_capacity_ghz * target_ + 1e-9;
}

bool MemoryConstraint::admits(const ServerSnapshot& server,
                              std::span<const VmSnapshot* const> hosted) const {
  double memory = 0.0;
  for (const VmSnapshot* vm : hosted) memory += vm->memory_mb;
  return memory <= server.memory_mb + 1e-9;
}

CustomConstraint::CustomConstraint(std::string name, Fn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CustomConstraint: empty callable");
}

bool CustomConstraint::admits(const ServerSnapshot& server,
                              std::span<const VmSnapshot* const> hosted) const {
  return fn_(server, hosted);
}

ConstraintSet& ConstraintSet::add(std::unique_ptr<PlacementConstraint> constraint) {
  if (!constraint) throw std::invalid_argument("ConstraintSet: null constraint");
  constraints_.push_back(std::move(constraint));
  return *this;
}

bool ConstraintSet::admits(const ServerSnapshot& server,
                           std::span<const VmSnapshot* const> hosted) const {
  // Single choke point for crashed servers: no algorithm may plan onto one,
  // and a failed server hosting anything is by definition infeasible (which
  // is what makes IPAC's overload-relief step evacuate it).
  if (server.failed) return false;
  for (const auto& constraint : constraints_) {
    if (!constraint->admits(server, hosted)) return false;
  }
  return true;
}

ConstraintSet ConstraintSet::standard(double utilization_target) {
  ConstraintSet set;
  set.add(std::make_unique<CpuCapacityConstraint>(utilization_target));
  set.add(std::make_unique<MemoryConstraint>());
  return set;
}

}  // namespace vdc::consolidate
