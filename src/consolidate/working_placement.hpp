// Mutable scratch mapping used inside the consolidation algorithms. Tracks
// which VMs sit on which server with fully incremental aggregates: per-
// server demand/memory sums, the occupied-server count, and a delta-updated
// fleet power estimate, so `cpu_demand_ghz`, `cpu_slack`, `estimated_power_w`
// and `occupied_server_count` are all O(1) and `remove` is O(1) via
// swap-and-pop slot tracking. The original-host map is captured once at
// construction (it is immutable per snapshot), so emitting the diff as a
// PlacementPlan no longer rescans the snapshot.
#pragma once

#include <span>
#include <vector>

#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"

namespace vdc::consolidate {

class SlackIndex;

class WorkingPlacement {
 public:
  explicit WorkingPlacement(const DataCenterSnapshot& snapshot);

  [[nodiscard]] const DataCenterSnapshot& snapshot() const noexcept { return *snapshot_; }

  [[nodiscard]] ServerId host_of(VmId vm) const { return host_.at(vm); }
  /// Host in the snapshot this placement was constructed from (immutable).
  [[nodiscard]] ServerId original_host(VmId vm) const { return original_.at(vm); }
  [[nodiscard]] std::span<const VmId> hosted(ServerId server) const {
    return hosted_.at(server);
  }
  /// The same residents as `hosted`, as snapshot pointers (for constraint
  /// evaluation without per-call lookups). The pointer mirror is built
  /// lazily on first use — builtin-only constraint sets never touch it,
  /// and eagerly mirroring every server cost more than a consolidation
  /// pass saves. Like the rest of this class, not safe for concurrent use.
  [[nodiscard]] std::span<const VmSnapshot* const> hosted_snapshots(ServerId server) const {
    if (!ptrs_valid_) materialize_ptrs();
    return hosted_ptrs_.at(server);
  }
  [[nodiscard]] double cpu_demand_ghz(ServerId server) const { return demand_.at(server); }
  [[nodiscard]] double memory_used_mb(ServerId server) const { return memory_.at(server); }

  /// Detaches a VM from its host (it becomes unplaced). O(1).
  void remove(VmId vm);
  /// Attaches an unplaced VM to a server (no constraint check). O(1).
  void place(VmId vm, ServerId server);

  /// Would `server` admit its current VMs plus `extra` under `constraints`?
  /// O(extra) for builtin-only constraint sets (running sums against the
  /// cached per-server aggregates); allocation-free generic evaluation
  /// otherwise (a reused scratch vector backs the resident list).
  [[nodiscard]] bool admits_with(ServerId server, std::span<const VmId> extra,
                                 const ConstraintSet& constraints) const;
  /// Does the server satisfy the constraints with exactly its current VMs?
  [[nodiscard]] bool feasible(ServerId server, const ConstraintSet& constraints) const {
    return admits_with(server, {}, constraints);
  }

  /// Servers currently hosting at least one VM. O(1).
  [[nodiscard]] std::size_t occupied_server_count() const noexcept { return occupied_count_; }
  [[nodiscard]] bool occupied(ServerId server) const { return !hosted_.at(server).empty(); }

  /// Occupied member servers of a rack / pod, and racks with >= 1 occupied
  /// member. All O(1), maintained incrementally on place/remove so budgeted
  /// rack-aware scoring (does this move empty a rack? light one up?) never
  /// rescans the fleet. Meaningful only when the snapshot carries racks.
  [[nodiscard]] std::size_t rack_occupied_count(RackId rack) const {
    return rack_occupied_.at(rack);
  }
  [[nodiscard]] std::size_t pod_occupied_count(PodId pod) const { return pod_occupied_.at(pod); }
  [[nodiscard]] std::size_t occupied_rack_count() const noexcept { return occupied_rack_count_; }

  /// CPU slack of a server: capacity * utilization_target - demand. Uses
  /// target 1.0; Minimum Slack passes its own target through constraints.
  [[nodiscard]] double cpu_slack(ServerId server) const;

  /// Estimated total power of the placement under IPAC's model: occupied
  /// servers run at max frequency with linear-in-utilization power, empty
  /// servers sleep; when the snapshot carries a topology, each rack/pod
  /// with >= 1 occupied member additionally charges its shared-
  /// infrastructure draw (an evacuated rack switches it off). Maintained
  /// incrementally (Neumaier-compensated running sum of per-server
  /// contributions plus 0 <-> 1 rack/pod occupancy transitions), so each
  /// query is O(1); the reference full scan lives in
  /// naive::estimated_power_w. Flat snapshots never touch the rack terms,
  /// so flat results are bit-identical to the pre-topology estimate.
  [[nodiscard]] double estimated_power_w() const noexcept {
    return power_total_w_ + power_compensation_w_;
  }

  /// Registers a SlackIndex to be kept in sync: every place/remove updates
  /// the touched server's key to its new raw CPU slack. One observer at a
  /// time; pass nullptr to detach. The index is NOT seeded here.
  void set_slack_observer(SlackIndex* index) noexcept { slack_observer_ = index; }

  /// Diff against the original snapshot (placements and migrations).
  [[nodiscard]] PlacementPlan plan(std::span<const VmId> unplaced = {}) const;

 private:
  [[nodiscard]] double power_contribution_w(ServerId server) const;
  void refresh_power(ServerId server);
  void note_occupied(ServerId server);
  void note_emptied(ServerId server);
  void materialize_ptrs() const;

  const DataCenterSnapshot* snapshot_;
  std::vector<ServerId> host_;             // per VM
  std::vector<ServerId> original_;         // per VM, frozen at construction
  std::vector<std::uint32_t> slot_;        // per VM: index within its host list
  std::vector<std::vector<VmId>> hosted_;  // per server
  // Parallel to hosted_, built on demand (see hosted_snapshots).
  mutable std::vector<std::vector<const VmSnapshot*>> hosted_ptrs_;
  mutable bool ptrs_valid_ = false;
  std::vector<double> demand_;             // per server, GHz
  std::vector<double> memory_;             // per server, MB
  std::vector<double> power_;              // per server, cached contribution (W)
  double power_total_w_ = 0.0;               // compensated running fleet power
  double power_compensation_w_ = 0.0;
  std::size_t occupied_count_ = 0;
  std::vector<std::uint32_t> rack_occupied_;  // per rack: occupied member servers
  std::vector<std::uint32_t> pod_occupied_;   // per pod: occupied member servers
  std::size_t occupied_rack_count_ = 0;
  SlackIndex* slack_observer_ = nullptr;
  mutable std::vector<const VmSnapshot*> scratch_;  // generic admits_with
};

}  // namespace vdc::consolidate
