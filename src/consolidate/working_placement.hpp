// Mutable scratch mapping used inside the consolidation algorithms. Tracks
// which VMs sit on which server, incremental demand/memory sums, and can
// emit the diff against the original snapshot as a PlacementPlan.
#pragma once

#include <span>
#include <vector>

#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"

namespace vdc::consolidate {

class WorkingPlacement {
 public:
  explicit WorkingPlacement(const DataCenterSnapshot& snapshot);

  [[nodiscard]] const DataCenterSnapshot& snapshot() const noexcept { return *snapshot_; }

  [[nodiscard]] ServerId host_of(VmId vm) const { return host_.at(vm); }
  [[nodiscard]] std::span<const VmId> hosted(ServerId server) const {
    return hosted_.at(server);
  }
  [[nodiscard]] double cpu_demand(ServerId server) const { return demand_.at(server); }
  [[nodiscard]] double memory_used(ServerId server) const { return memory_.at(server); }

  /// Detaches a VM from its host (it becomes unplaced).
  void remove(VmId vm);
  /// Attaches an unplaced VM to a server (no constraint check).
  void place(VmId vm, ServerId server);

  /// Would `server` admit its current VMs plus `extra` under `constraints`?
  [[nodiscard]] bool admits_with(ServerId server, std::span<const VmId> extra,
                                 const ConstraintSet& constraints) const;
  /// Does the server satisfy the constraints with exactly its current VMs?
  [[nodiscard]] bool feasible(ServerId server, const ConstraintSet& constraints) const {
    return admits_with(server, {}, constraints);
  }

  /// Servers currently hosting at least one VM.
  [[nodiscard]] std::size_t occupied_server_count() const;
  [[nodiscard]] bool occupied(ServerId server) const { return !hosted_.at(server).empty(); }

  /// CPU slack of a server: capacity * utilization_target - demand. Uses
  /// target 1.0; Minimum Slack passes its own target through constraints.
  [[nodiscard]] double cpu_slack(ServerId server) const;

  /// Diff against the original snapshot (placements and migrations).
  [[nodiscard]] PlacementPlan plan(std::span<const VmId> unplaced = {}) const;

 private:
  const DataCenterSnapshot* snapshot_;
  std::vector<ServerId> host_;             // per VM
  std::vector<std::vector<VmId>> hosted_;  // per server
  std::vector<double> demand_;             // per server, GHz
  std::vector<double> memory_;             // per server, MB
};

}  // namespace vdc::consolidate
