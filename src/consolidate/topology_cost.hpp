// Migration economics over the physical topology.
//
// A live migration is not free: the pre-copy transfer keeps source and
// destination NICs/CPUs busy for its whole duration, drawing extra power
// (Srinivasan & Bellur, "Novel Power and Completion Time Models for
// Virtualized Environments", PAPERS.md). The further the copy travels —
// same rack over the ToR switch, cross-rack over the pod fabric, cross-pod
// over the core — the less bandwidth it sees, the longer it runs, and the
// more energy it burns. A net-energy objective must charge that energy
// against the stationary power a move saves.
//
// Units, fixed here once for the whole optimizer boundary: costs and
// budgets are ENERGY in joules (J = W·s). Stationary savings are POWER in
// watts; they convert to energy by multiplying with the benefit horizon
// (how long the new placement is expected to stand, typically one
// consolidation period): benefit_j = benefit_w * benefit_horizon_s.
#pragma once

#include <algorithm>
#include <limits>

#include "consolidate/working_placement.hpp"
#include "datacenter/migration.hpp"
#include "datacenter/topology.hpp"

namespace vdc::consolidate {

/// Energy cost of moving a VM a given network distance.
struct MigrationCostModel {
  /// Transfer timing (bandwidth tiers per distance live inside).
  datacenter::MigrationModel transfer;
  /// Extra power drawn across source + destination while the pre-copy
  /// transfer runs (NICs, copy threads, dirty-page tracking).
  double migration_power_w = 25.0;

  /// Energy (J) to migrate a VM with the given memory footprint across
  /// `distance`. A same-host "move" copies nothing and costs exactly 0.
  [[nodiscard]] double energy_j(double vm_memory_mb,
                                datacenter::NetworkDistance distance) const noexcept {
    if (distance == datacenter::NetworkDistance::kSameHost) return 0.0;
    return transfer.duration_s(vm_memory_mb, distance) * migration_power_w;
  }
};

/// Opt-in knobs for the budgeted, rack-aware consolidation variants.
///
/// The defaults are the provable no-op: disabled, infinite budget, zero
/// effect on any engine — flat plans stay move-for-move identical. Enabling
/// makes every engine (IPAC, PAC, pMapper, Minimum Slack) score candidate
/// moves on NET energy — server dynamic + shared-infrastructure delta minus
/// migration energy — and refuse to spend past the per-plan energy budget.
struct RackAwareOptions {
  /// Master switch. Off = today's benefit-always-wins behavior.
  bool enabled = false;
  /// Distance-dependent migration energy model.
  MigrationCostModel cost;
  /// Per-plan migration energy budget (J). Moves beyond it are rejected;
  /// overload-relief moves are exempt (correctness beats economy) but
  /// still charged against the plan's reported spend.
  double migration_energy_budget_j = std::numeric_limits<double>::infinity();
  /// How long the improved placement is expected to stand (s); converts
  /// stationary W savings into J for comparison against migration cost.
  double benefit_horizon_s = 3600.0;
};

/// Closed-form power delta (W) of adding one VM of `vm_demand_ghz` to
/// `server` in the placement's CURRENT state: linear dynamic power on the
/// server itself, plus — when the server is asleep and the last lit member
/// of its rack/pod — the shared draw its wake-up switches back on.
///
/// Gate comparisons in the fast and reference engines must evaluate THIS
/// function, not their respective fleet-power estimates: the incremental
/// compensated sum and the full rescan agree only to rounding, and a
/// last-bit disagreement across a gate threshold would desynchronize the
/// differential oracle.
[[nodiscard]] inline double placement_delta_w(const WorkingPlacement& placement,
                                              ServerId server, double vm_demand_ghz) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  const ServerSnapshot& info = snapshot.server(server);
  const auto linear_w = [&](double demand_ghz) {
    const double utilization =
        std::min(1.0, demand_ghz / std::max(1e-9, info.max_capacity_ghz));
    return info.idle_power_w + (info.max_power_w - info.idle_power_w) * utilization;
  };
  const double demand = placement.cpu_demand_ghz(server);
  const double before =
      placement.occupied(server) ? linear_w(demand) : info.sleep_power_w;
  double delta = linear_w(demand + vm_demand_ghz) - before;
  if (!placement.occupied(server) && !snapshot.racks.empty()) {
    if (info.rack != datacenter::kNoRack && placement.rack_occupied_count(info.rack) == 0) {
      delta += snapshot.racks[info.rack].shared_power_w;
    }
    if (info.pod != datacenter::kNoPod && placement.pod_occupied_count(info.pod) == 0) {
      delta += snapshot.pods[info.pod].shared_power_w;
    }
  }
  return delta;
}

}  // namespace vdc::consolidate
