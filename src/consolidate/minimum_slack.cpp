#include "consolidate/minimum_slack.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "check/consolidate_audit.hpp"

namespace vdc::consolidate {

namespace {

// The fast engine for Algorithm 1. Five changes against the retained
// reference (naive::minimum_slack), all of them *plan-exact*: the engine
// returns the same selection as the reference for every input, including
// when the step budget binds and epsilon escalates mid-search.
//
//  * Branch-and-bound pruning: candidates are sorted by descending demand,
//    so a suffix sum bounds the demand any subtree can still pack. When
//    even packing the entire suffix cannot beat the incumbent slack, the
//    subtree is abandoned — no improving node is ever pruned. Skipping a
//    subtree skips its step counts, though, which would shift epsilon
//    escalation under a binding budget, so the bound is armed only when
//    the whole search provably fits inside the initial budget (a search
//    over n candidates attempts at most 2^n - 1 placements): then
//    escalation cannot fire and pruning is unobservable.
//
//  * O(1) admission for builtin-only constraint sets: the CPU/memory sums
//    are maintained incrementally alongside the selection instead of being
//    re-summed through the polymorphic constraint chain at every node. The
//    builtin search runs as an explicit-stack loop over contiguous
//    demand/memory mirrors of the candidate list, keeping the whole DFS
//    state in registers and one scratch array. Custom constraints fall
//    back to the generic recursive evaluation, on the placement's cached
//    resident-pointer list (no per-step allocation).
//
//  * Unfittable-prefix jump: within a level, every candidate too large for
//    the remaining raw slack forms a contiguous run (descending demand
//    order), and the reference engine touches each as one counted step
//    with no other effect. The fast engine binary-searches past the run
//    and adds the skipped count in bulk, landing exactly on any budget
//    threshold in between so escalation fires at the same logical step.
//
//  * All-fits tail collapse: once every remaining candidate fits together
//    (CPU, memory and raw slack all hold for the full tail, with a safety
//    margin), the reference engine's behaviour in that subtree is closed
//    form. Its first descent selects the whole tail, improving the
//    incumbent at every step; every other node is a strict subset of the
//    tail, worse by at least the smallest demand, so it is one counted
//    step with no effect. The fast engine simulates the descent explicitly
//    (m attempts, exact floating-point order) and adds the remaining
//    2^m - 1 - m attempts in bulk through the same escalation ladder. This
//    is what makes budget-exhausted relief searches cheap: the exponential
//    churn near the leaves — where tails fit — never runs node by node.
//    Guards: no equal-demand/memory sibling pair in the tail (a symmetry
//    skip would change the attempt count) and a minimum tail demand (so
//    subset slacks cannot tie the incumbent within its 1e-12 margin).
//
//  * Scratch reuse: the candidate ordering, mirrors, suffix sums and the
//    selection stack live in thread-local buffers whose capacity persists
//    across calls — PAC calls Minimum Slack once per server visit, and the
//    allocation churn of fresh vectors per call used to rival the search
//    itself.
struct Scratch {
  std::vector<VmId> order;        // candidates, largest demand first
  std::vector<double> demand_of;  // demand_of[i] = demand of order[i]
  std::vector<double> memory_of;  // memory_of[i] = memory of order[i]
  std::vector<double> suffix;     // suffix[i] = total demand of order[i..]
  std::vector<double> msuffix;    // msuffix[i] = total memory of order[i..]
  std::vector<double> msuffix_min;  // msuffix_min[i] = smallest memory in order[i..]
  std::vector<char> dupfree;      // dupfree[i]: no equal-adjacent pair in order[i..]
  std::vector<std::size_t> stack; // selected candidate index per depth
  std::vector<const VmSnapshot*> resident;  // generic path: existing + selected
  std::vector<VmId> selected;               // generic path: current selection
  const DataCenterSnapshot* cached_snapshot = nullptr;  // sorted-order cache key
  std::vector<VmId> cached;                             // candidate span it was built from
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

/// Builtin-only search: explicit-stack DFS over the scratch mirrors.
/// Mirrors the generic recursion exactly — same visit order, same step
/// accounting, same escalation points — with all hot state in locals.
void search_builtin(Scratch& s, MinSlackResult& best, const MinSlackOptions& options,
                    bool bnb, double cap_minus_base, double base_demand_ghz, double base_memory_mb,
                    bool check_cpu, double cpu_limit, bool check_memory,
                    double memory_limit_mb) {
  const std::size_t n = s.order.size();
  const double* const demand_of = s.demand_of.data();
  const double* const memory_of = s.memory_of.data();
  const double* const suffix = s.suffix.data();
  const double* const msuffix = s.msuffix.data();
  const double* const msuffix_min = s.msuffix_min.data();
  const char* const dupfree = s.dupfree.data();
  std::size_t* const stk = s.stack.data();
  const VmId* const order = s.order.data();

  double epsilon = options.epsilon_ghz;
  std::size_t budget = options.step_budget;
  std::size_t steps = 0;
  std::size_t escalations = 0;
  double best_slack = best.slack_ghz;

  // Consume `count` placement attempts against the step budget, escalating
  // epsilon at every threshold exactly where the reference engine would
  // (lines 15-17 of Algorithm 1). Returns true when the search must stop.
  const auto consume = [&](std::size_t count) -> bool {
    while (count > 0) {
      if (steps < budget) {
        const std::size_t room = budget - steps;
        if (count < room) {
          steps += count;
          return false;
        }
        steps = budget;  // land on the threshold, exactly like ++steps would
        count -= room;
      } else {
        ++steps;  // degenerate zero budget: every attempt escalates
        --count;
      }
      if (escalations >= options.max_escalations) return true;
      ++escalations;
      epsilon *= options.epsilon_escalation;
      budget += options.step_budget;
      if (best_slack < epsilon) return true;
    }
    return false;
  };

  // Tail-collapse precondition: strict-subset selections of an all-fits
  // tail are worse than the full tail by at least the smallest demand, so
  // they can never improve the incumbent past its 1e-12 margin.
  const bool tail_gap = n > 0 && demand_of[n - 1] >= 1e-6;
  constexpr double kCpuMargin = 1e-6;  // dominates suffix-sum rounding (GHz)
  constexpr double kMemMargin = 1e-3;  // dominates suffix-sum rounding (MB)

  double sel_demand = 0.0;
  double sel_memory = 0.0;
  std::size_t depth = 0;
  std::size_t start = 0;
  std::size_t i = 0;

  while (true) {
    // Leave this level when the candidates are exhausted, or when the
    // (armed) branch-and-bound holds: any completion from here adds at
    // most suffix[i] of demand, so its slack is at least slack -
    // suffix[i]; if that cannot undercut the incumbent there is no
    // improving node in this subtree, and since suffix[] is
    // non-increasing, none in any later sibling either.
    if (i >= n || (bnb && cap_minus_base - sel_demand - suffix[i] >= best_slack)) {
      if (depth == 0) break;
      --depth;
      i = stk[depth];
      sel_demand -= demand_of[i];
      sel_memory -= memory_of[i];
      start = depth == 0 ? 0 : stk[depth - 1] + 1;
      ++i;
      continue;
    }
    // A "step" is one candidate-placement attempt (the unit of work).
    if (++steps >= budget) {  // lines 15-17 of Algorithm 1: escalate epsilon
      if (escalations >= options.max_escalations) break;
      ++escalations;
      epsilon *= options.epsilon_escalation;
      budget += options.step_budget;
      if (best_slack < epsilon) break;
    }
    const double demand = demand_of[i];
    const double memory = memory_of[i];
    // Symmetry pruning (standard MBS): identical siblings explore
    // identical subtrees — try only the first of an equal run per level.
    // vdc-lint: float-eq-ok identical VMs are grouped by bitwise equality of their stored demand/memory; the values are copies, never recomputed
    if (i > start && demand_of[i - 1] == demand && memory_of[i - 1] == memory) {
      ++i;
      continue;
    }
    // CPU-slack bound: a VM larger than the remaining raw-capacity slack
    // would push total demand past the server's capacity, which can only
    // worsen the slack objective. The candidates are sorted by descending
    // demand, so the whole unfittable run is a contiguous prefix — jump
    // over it with a binary search instead of paying one loop iteration
    // per candidate. The reference engine touches each skipped candidate
    // as one counted step with no other effect (nothing can select or
    // improve the incumbent), so the skipped count is added in bulk,
    // stopping exactly on any budget threshold in between: epsilon
    // escalation fires at the same logical step as in the reference, and
    // with the incumbent unchanged across the run its exit decisions are
    // identical too.
    const double fit_limit = cap_minus_base - sel_demand + 1e-9;
    if (demand > fit_limit) {
      const std::size_t next = static_cast<std::size_t>(
          std::partition_point(demand_of + i, demand_of + n,
                               [&](double d) { return d > fit_limit; }) -
          demand_of);
      if (consume(next - i - 1)) break;  // candidate i was already counted
      i = next;
      continue;
    }
    // All-fits tail collapse: the whole remaining tail packs together, so
    // the reference engine's exploration from here — at this level and
    // below — is its first descent (select the entire tail, improving at
    // every step) followed by 2^m - 1 - m further counted attempts, none
    // of which select or improve. Simulate the descent in the reference's
    // exact floating-point order, bulk-consume the rest, and exhaust the
    // level. Candidate i's step and symmetry check already ran above.
    if (suffix[i] <= cap_minus_base - sel_demand - kCpuMargin && !bnb && tail_gap &&
        i + 2 <= n && dupfree[i] &&
        (!check_cpu || base_demand_ghz + sel_demand + suffix[i] <= cpu_limit - kCpuMargin) &&
        (!check_memory ||
         base_memory_mb + sel_memory + msuffix[i] <= memory_limit_mb - kMemMargin)) {
      const std::size_t m = n - i;
      const std::size_t root_depth = depth;
      std::size_t pending = 0;  // deferred incumbent copy: best == stk[0..pending)
      bool terminated = false;
      for (std::size_t k = i; k < n; ++k) {
        if (k != i && consume(1)) {  // candidate i's attempt was counted above
          terminated = true;
          break;
        }
        stk[depth++] = k;
        sel_demand += demand_of[k];
        sel_memory += memory_of[k];
        const double slack_now = cap_minus_base - sel_demand;
        if (slack_now < best_slack - 1e-12) {
          best_slack = slack_now;
          pending = depth;
        }
        if (best_slack < epsilon) {
          terminated = true;
          break;
        }
      }
      if (!terminated) {
        const std::size_t subsets = m >= 64 ? std::numeric_limits<std::size_t>::max()
                                            : (std::size_t{1} << m) - 1;
        terminated = consume(subsets - m);
      }
      if (pending > 0) {
        best.selected.resize(pending);
        for (std::size_t k = 0; k < pending; ++k) best.selected[k] = order[stk[k]];
      }
      if (terminated) break;
      while (depth > root_depth) {  // unwind the simulated descent
        --depth;
        sel_demand -= demand_of[stk[depth]];
        sel_memory -= memory_of[stk[depth]];
      }
      i = n;  // level exhausted: the pop branch returns to the parent
      continue;
    }
    if (check_cpu && base_demand_ghz + sel_demand + demand > cpu_limit + 1e-9) {
      ++i;
      continue;
    }
    if (check_memory && base_memory_mb + sel_memory + memory > memory_limit_mb + 1e-9) {
      // Memory-reject run: successive candidates that fit the CPU slack but
      // not the server's memory are each one counted step with no other
      // effect in the reference engine — they cannot select or improve, and
      // a symmetry skip inside the run costs the same one step (its equal
      // predecessor rejects on memory, so it would too). Memory is not
      // sorted, so the run is scanned, but with a tight three-op loop
      // instead of the full per-candidate dispatch; its steps are consumed
      // in bulk, landing exactly on any escalation threshold inside. Later
      // candidates have smaller demand, so the CPU checks that admitted
      // candidate i still hold across the whole run.
      if (bnb) {  // armed B&B prunes inside reject runs at the loop top
        ++i;
        continue;
      }
      const std::size_t run_start = i;
      ++i;
      // Most reject runs reach the end of the candidate list (deep nodes
      // have little memory room left). When even the smallest remaining
      // memory rejects, the whole tail does — the comparison uses the same
      // expression shape as the per-candidate check and min is exact, so
      // monotonicity makes the jump safe without any extra margin.
      if (i < n && base_memory_mb + sel_memory + msuffix_min[i] > memory_limit_mb + 1e-9) {
        i = n;
      } else {
        while (i < n && base_memory_mb + sel_memory + memory_of[i] > memory_limit_mb + 1e-9) ++i;
      }
      if (consume(i - run_start - 1)) break;
      continue;
    }
    stk[depth++] = i;  // line 2 of Algorithm 1: pack VM into S
    sel_demand += demand;
    sel_memory += memory;
    const double slack_now = cap_minus_base - sel_demand;  // lines 11-14
    if (slack_now < best_slack - 1e-12) {
      best_slack = slack_now;
      best.selected.resize(depth);
      for (std::size_t k = 0; k < depth; ++k) best.selected[k] = order[stk[k]];
    }
    if (best_slack < epsilon) break;  // lines 4-5: good-enough fit
    start = i + 1;  // line 7: recurse on the remaining VMs
    i = start;
  }

  best.slack_ghz = best_slack;
  best.steps = steps;
  best.escalations = escalations;
}

/// Generic recursion for constraint sets with custom constraints: identical
/// search shape, admission through the polymorphic chain.
struct GenericSearch {
  const DataCenterSnapshot* snapshot;
  const ServerSnapshot* server;
  const ConstraintSet* constraints;
  Scratch* s;
  double base_demand_ghz = 0.0;
  double selected_demand_ghz = 0.0;

  MinSlackResult best;
  double epsilon;
  std::size_t budget;
  const MinSlackOptions* options;
  bool bnb = false;
  bool done = false;

  [[nodiscard]] double slack() const noexcept {
    return server->max_capacity_ghz - base_demand_ghz - selected_demand_ghz;
  }

  void consider_current() {
    const double sl = slack();
    if (sl < best.slack_ghz - 1e-12) {
      best.slack_ghz = sl;
      best.selected = s->selected;
    }
    if (best.slack_ghz < epsilon) done = true;  // line 4-5 of Algorithm 1
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < s->order.size(); ++i) {
      if (done) return;
      if (bnb && slack() - s->suffix[i] >= best.slack_ghz) return;  // branch-and-bound
      ++best.steps;
      if (best.steps >= budget) {  // lines 15-17: escalate epsilon
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      const double demand = s->demand_of[i];
      // vdc-lint: float-eq-ok identical VMs are grouped by bitwise equality of their stored demand/memory; the values are copies, never recomputed
      if (i > start && s->demand_of[i - 1] == demand && s->memory_of[i - 1] == s->memory_of[i]) {
        continue;  // symmetry pruning
      }
      if (demand > slack() + 1e-9) continue;  // CPU-slack bound
      s->resident.push_back(&snapshot->vm(s->order[i]));  // line 2: pack VM into S
      if (constraints->admits(*server, s->resident)) {    // line 3
        s->selected.push_back(s->order[i]);
        selected_demand_ghz += demand;
        consider_current();
        if (!done) dfs(i + 1);
        selected_demand_ghz -= demand;
        s->selected.pop_back();
      }
      s->resident.pop_back();  // line 9: remove VM from S
    }
  }
};

/// Budgeted Algorithm 1: plain recursive DFS (same visit order, step
/// accounting and epsilon ladder as the reference engines) with one extra
/// prune — a candidate whose migration energy would blow the budget is
/// skipped like a capacity-infeasible one. Costs are non-negative, so the
/// prune is exact: no improving subset is ever abandoned. The elaborate
/// collapse machinery above is deliberately not reused; budgeted searches
/// run over IPAC-sized candidate lists where this shape is already cheap.
struct BudgetedSearch {
  const WorkingPlacement* placement;
  ServerId server;
  const ConstraintSet* constraints;
  std::vector<VmId> order;        // candidates, largest demand first
  std::vector<double> cost_of;    // aligned to order (J)
  std::vector<double> demand_of;  // aligned to order
  std::vector<double> memory_of;  // aligned to order
  std::vector<VmId> selected;
  double selected_demand_ghz = 0.0;
  double selected_cost = 0.0;
  double budget_j = 0.0;
  double base_slack = 0.0;  // capacity - resident demand

  MinSlackResult best;
  double best_cost = 0.0;
  double epsilon = 0.0;
  std::size_t step_budget = 0;
  const MinSlackOptions* options = nullptr;
  bool done = false;

  [[nodiscard]] double slack() const noexcept { return base_slack - selected_demand_ghz; }

  void consider_current() {
    const double sl = slack();
    if (sl < best.slack_ghz - 1e-12) {
      best.slack_ghz = sl;
      best.selected = selected;
      best_cost = selected_cost;
    }
    if (best.slack_ghz < epsilon) done = true;
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < order.size(); ++i) {
      if (done) return;
      ++best.steps;
      if (best.steps >= step_budget) {
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        step_budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      // vdc-lint: float-eq-ok identical VMs are grouped by bitwise equality of their stored demand/memory; the values are copies, never recomputed
      if (i > start && demand_of[i - 1] == demand_of[i] && memory_of[i - 1] == memory_of[i] &&
          cost_of[i - 1] == cost_of[i]) {
        continue;  // symmetry pruning (cost must match too)
      }
      if (demand_of[i] > slack() + 1e-9) continue;               // CPU-slack bound
      if (selected_cost + cost_of[i] > budget_j + 1e-9) continue;  // budget prune
      selected.push_back(order[i]);
      if (placement->admits_with(server, selected, *constraints)) {
        selected_demand_ghz += demand_of[i];
        selected_cost += cost_of[i];
        consider_current();
        if (!done) dfs(i + 1);
        selected_demand_ghz -= demand_of[i];
        selected_cost -= cost_of[i];
      }
      selected.pop_back();
    }
  }
};

}  // namespace

BudgetedMinSlackResult minimum_slack_budgeted(const WorkingPlacement& placement, ServerId server,
                                              std::span<const VmId> candidates,
                                              std::span<const double> candidate_cost_j,
                                              double budget_j, const ConstraintSet& constraints,
                                              const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) {
    throw std::out_of_range("minimum_slack_budgeted: server id");
  }
  if (candidate_cost_j.size() != candidates.size()) {
    throw std::invalid_argument("minimum_slack_budgeted: one cost per candidate required");
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (placement.host_of(candidates[i]) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack_budgeted: candidate VM is already placed");
    }
    if (!(candidate_cost_j[i] >= 0.0)) {
      throw std::invalid_argument("minimum_slack_budgeted: negative candidate cost");
    }
  }
  const ServerSnapshot& target = snapshot.server(server);

  BudgetedSearch state;
  state.placement = &placement;
  state.server = server;
  state.constraints = &constraints;
  state.options = &options;
  state.epsilon = options.epsilon_ghz;
  state.step_budget = options.step_budget;
  state.budget_j = budget_j;
  state.base_slack = target.max_capacity_ghz - placement.cpu_demand_ghz(server);
  state.best.slack_ghz = state.base_slack;

  std::vector<std::size_t> perm(candidates.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    const double da = snapshot.vm(candidates[a]).cpu_demand_ghz;
    const double db = snapshot.vm(candidates[b]).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return candidates[a] < candidates[b];
  });
  state.order.reserve(perm.size());
  state.cost_of.reserve(perm.size());
  state.demand_of.reserve(perm.size());
  state.memory_of.reserve(perm.size());
  for (const std::size_t i : perm) {
    const VmSnapshot& info = snapshot.vm(candidates[i]);
    state.order.push_back(candidates[i]);
    state.cost_of.push_back(candidate_cost_j[i]);
    state.demand_of.push_back(info.cpu_demand_ghz);
    state.memory_of.push_back(info.memory_mb);
  }

  if (state.best.slack_ghz >= options.epsilon_ghz && !target.failed) state.dfs(0);
  audit::min_slack_selection(placement, server, candidates, constraints, state.best.selected);
  return BudgetedMinSlackResult{std::move(state.best), state.best_cost};
}

MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                             std::span<const VmId> candidates,
                             const ConstraintSet& constraints, const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) throw std::out_of_range("minimum_slack: server id");
  const ServerSnapshot& target = snapshot.server(server);

  Scratch& s = scratch();
  for (const VmId vm : candidates) {
    if (placement.host_of(vm) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack: candidate VM is already placed");
    }
  }
  // Sorted-order cache: PAC probes many servers against the *same*
  // candidate list (it only changes after a selection), and relief probes
  // hundreds of receivers with one list — re-sorting per call used to
  // dominate the entry cost. The cached ordering is reused when the
  // candidate span matches the previous call's; the O(n) mirror
  // verification below makes the reuse safe unconditionally (a different
  // snapshot at a recycled address, or mutated demands, fail it and force
  // a rebuild), at a fraction of the sort's cost.
  bool reuse = s.cached_snapshot == &snapshot && s.cached.size() == candidates.size() &&
               std::equal(candidates.begin(), candidates.end(), s.cached.begin());
  if (reuse) {
    for (std::size_t i = 0; i < s.order.size(); ++i) {
      const VmSnapshot& info = snapshot.vm(s.order[i]);
      // vdc-lint: float-eq-ok cached demand/memory are verbatim copies of snapshot values, so bitwise inequality means the cache entry is stale
      if (s.demand_of[i] != info.cpu_demand_ghz || s.memory_of[i] != info.memory_mb) {
        reuse = false;
        break;
      }
    }
  }
  if (!reuse) {
    s.order.assign(candidates.begin(), candidates.end());
    std::sort(s.order.begin(), s.order.end(), [&](VmId a, VmId b) {
      const double da = snapshot.vm(a).cpu_demand_ghz;
      const double db = snapshot.vm(b).cpu_demand_ghz;
      // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
      if (da != db) return da > db;
      return a < b;
    });
    const std::size_t count = s.order.size();
    s.demand_of.resize(count);
    s.memory_of.resize(count);
    s.suffix.resize(count + 1);
    s.msuffix.resize(count + 1);
    s.msuffix_min.resize(count + 1);
    s.dupfree.resize(count + 1);
    s.suffix[count] = 0.0;
    s.msuffix[count] = 0.0;
    s.msuffix_min[count] = std::numeric_limits<double>::infinity();
    s.dupfree[count] = 1;
    for (std::size_t i = count; i-- > 0;) {
      const VmSnapshot& info = snapshot.vm(s.order[i]);
      s.demand_of[i] = info.cpu_demand_ghz;
      s.memory_of[i] = info.memory_mb;
      s.suffix[i] = s.suffix[i + 1] + info.cpu_demand_ghz;
      s.msuffix[i] = s.msuffix[i + 1] + info.memory_mb;
      s.msuffix_min[i] = std::min(s.msuffix_min[i + 1], info.memory_mb);
      s.dupfree[i] = s.dupfree[i + 1] &&
                     // vdc-lint: float-eq-ok exact neighbor comparison detects duplicate (demand, memory) sort keys; equal keys are bitwise-identical copies
                     (i + 1 >= count || s.demand_of[i] != s.demand_of[i + 1] ||
                      // vdc-lint: float-eq-ok exact neighbor comparison detects duplicate (demand, memory) sort keys; equal keys are bitwise-identical copies
                      s.memory_of[i] != s.memory_of[i + 1]);
    }
    s.cached_snapshot = &snapshot;
    s.cached.assign(candidates.begin(), candidates.end());
  }

  const ConstraintSet::BuiltinProfile& profile = constraints.builtin_profile();
  const double base_demand_ghz = placement.cpu_demand_ghz(server);

  MinSlackResult best;
  best.slack_ghz = target.max_capacity_ghz - base_demand_ghz;  // empty selection baseline
  // A failed server admits nothing (ConstraintSet rejects it outright, and
  // the builtin path must match): the search cannot select, so skip it.
  // Likewise skip the search when the empty baseline is already within
  // epsilon (line 4-5 of Algorithm 1 on the root node).
  if (best.slack_ghz >= options.epsilon_ghz && !target.failed) {
    // Arm branch-and-bound only when the search provably cannot exhaust the
    // step budget (at most 2^n - 1 placement attempts over n candidates):
    // then epsilon never escalates and pruning cannot shift any decision.
    const std::size_t n = s.order.size();
    const bool bnb = n < 64 && (std::uint64_t{1} << n) - 1 <= options.step_budget;
    if (profile.all_builtin) {
      if (s.stack.size() < n) s.stack.resize(n);
      search_builtin(s, best, options, bnb, target.max_capacity_ghz - base_demand_ghz, base_demand_ghz,
                     placement.memory_used_mb(server), profile.has_cpu,
                     constraints.cpu_limit_ghz(target), profile.has_memory, target.memory_mb);
    } else {
      GenericSearch state;
      state.snapshot = &snapshot;
      state.server = &target;
      state.constraints = &constraints;
      state.s = &s;
      state.options = &options;
      state.bnb = bnb;
      state.epsilon = options.epsilon_ghz;
      state.budget = options.step_budget;
      state.base_demand_ghz = base_demand_ghz;
      state.best.slack_ghz = best.slack_ghz;
      const auto resident = placement.hosted_snapshots(server);
      s.resident.assign(resident.begin(), resident.end());
      s.selected.clear();
      state.dfs(0);
      best = std::move(state.best);
    }
  }
  audit::min_slack_selection(placement, server, candidates, constraints, best.selected);
  return best;
}

}  // namespace vdc::consolidate
