#include "consolidate/minimum_slack.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/consolidate_audit.hpp"

namespace vdc::consolidate {

namespace {

struct SearchState {
  const DataCenterSnapshot* snapshot;
  const ServerSnapshot* server;
  const ConstraintSet* constraints;
  std::vector<VmId> order;                  // candidates, largest demand first
  std::vector<const VmSnapshot*> resident;  // existing + currently selected
  std::vector<VmId> selected;
  double selected_demand = 0.0;
  double base_demand = 0.0;  // demand of VMs already on the server

  MinSlackResult best;
  double epsilon;
  std::size_t budget;
  const MinSlackOptions* options;
  bool done = false;

  [[nodiscard]] double slack() const noexcept {
    return server->max_capacity_ghz - base_demand - selected_demand;
  }

  void consider_current() {
    const double s = slack();
    if (s < best.slack_ghz - 1e-12) {
      best.slack_ghz = s;
      best.selected = selected;
    }
    if (best.slack_ghz < epsilon) done = true;  // line 4-5 of Algorithm 1
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < order.size(); ++i) {
      if (done) return;
      // A "step" is one candidate-placement attempt (the unit of work).
      ++best.steps;
      if (best.steps >= budget) {  // lines 15-17: escalate epsilon
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      const VmId vm = order[i];
      const VmSnapshot& info = snapshot->vm(vm);
      // Symmetry pruning (standard MBS): identical siblings explore
      // identical subtrees — try only the first of an equal run per level.
      if (i > start) {
        const VmSnapshot& prev = snapshot->vm(order[i - 1]);
        if (prev.cpu_demand_ghz == info.cpu_demand_ghz && prev.memory_mb == info.memory_mb) {
          continue;
        }
      }
      // CPU-slack bound: a VM larger than the remaining raw-capacity slack
      // would push total demand past the server's capacity, which can only
      // worsen the slack objective — prune before the full constraint
      // evaluation.
      if (info.cpu_demand_ghz > slack() + 1e-9) continue;
      resident.push_back(&info);  // line 2: pack VM into S
      if (constraints->admits(*server, resident)) {  // line 3
        selected.push_back(vm);
        selected_demand += info.cpu_demand_ghz;
        consider_current();  // lines 11-14
        if (!done) dfs(i + 1);  // line 7: recurse on the remaining VMs
        selected_demand -= info.cpu_demand_ghz;
        selected.pop_back();
      }
      resident.pop_back();  // line 9: remove VM from S
    }
  }
};

}  // namespace

MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                             std::span<const VmId> candidates,
                             const ConstraintSet& constraints, const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) throw std::out_of_range("minimum_slack: server id");

  SearchState state;
  state.snapshot = &snapshot;
  state.server = &snapshot.server(server);
  state.constraints = &constraints;
  state.options = &options;
  state.epsilon = options.epsilon_ghz;
  state.budget = options.step_budget;

  state.order.assign(candidates.begin(), candidates.end());
  for (const VmId vm : state.order) {
    if (placement.host_of(vm) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack: candidate VM is already placed");
    }
  }
  std::sort(state.order.begin(), state.order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    if (da != db) return da > db;
    return a < b;
  });

  for (const VmId vm : placement.hosted(server)) {
    state.resident.push_back(&snapshot.vm(vm));
    state.base_demand += snapshot.vm(vm).cpu_demand_ghz;
  }

  state.best.slack_ghz = state.slack();  // empty selection is the baseline
  state.consider_current();
  if (!state.done) state.dfs(0);
  audit::min_slack_selection(placement, server, candidates, constraints, state.best.selected);
  return state.best;
}

}  // namespace vdc::consolidate
