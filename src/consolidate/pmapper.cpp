#include "consolidate/pmapper.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

PMapperReport pmapper(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                      const RackAwareOptions& rack) {
  PMapperReport report;
  const bool rack_on = rack.enabled && !snapshot.racks.empty();

  // ---- Phase 1: target allocation on a phantom (emptied) copy -------------
  DataCenterSnapshot phantom = snapshot;
  for (ServerSnapshot& server : phantom.servers) server.hosted.clear();
  WorkingPlacement target(phantom);
  {
    const std::vector<ServerId> order = servers_by_power_efficiency(phantom);
    std::vector<VmId> all;
    all.reserve(phantom.vms.size());
    for (const VmSnapshot& vm : phantom.vms) all.push_back(vm.id);
    (void)first_fit_decreasing(target, order, all, constraints);
  }
  report.target_demand_ghz.resize(snapshot.servers.size(), 0.0);
  for (const ServerSnapshot& server : snapshot.servers) {
    report.target_demand_ghz[server.id] = target.cpu_demand_ghz(server.id);
  }

  // ---- Phase 2: donors shed their smallest VMs; receivers absorb ----------
  WorkingPlacement wp(snapshot);
  report.occupied_before = wp.occupied_server_count();

  std::vector<ServerId> receivers;
  std::vector<VmId> migration_list;
  constexpr double kEps = 1e-9;
  for (const ServerSnapshot& server : snapshot.servers) {
    const double current = wp.cpu_demand_ghz(server.id);
    const double target_demand = report.target_demand_ghz[server.id];
    if (target_demand > current + kEps) {
      receivers.push_back(server.id);
    } else if (target_demand < current - kEps) {
      // Donor: shed the smallest VMs until at (or below) target.
      std::vector<VmId> hosted(wp.hosted(server.id).begin(), wp.hosted(server.id).end());
      std::sort(hosted.begin(), hosted.end(), [&](VmId a, VmId b) {
        const double da = snapshot.vm(a).cpu_demand_ghz;
        const double db = snapshot.vm(b).cpu_demand_ghz;
        // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
        if (da != db) return da < db;
        return a < b;
      });
      for (const VmId vm : hosted) {
        if (wp.cpu_demand_ghz(server.id) <= target_demand + kEps) break;
        wp.remove(vm);
        migration_list.push_back(vm);
      }
    }
  }

  // Receivers absorb the list, most power-efficient first, capped at their
  // phase-1 target so the realized allocation converges to the plan.
  std::sort(receivers.begin(), receivers.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
    const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (ea != eb) return ea > eb;
    return a < b;
  });

  // Remember origins so VMs nobody can absorb return to their donor.
  std::vector<ServerId> origin(snapshot.vms.size(), datacenter::kNoServer);
  for (const ServerSnapshot& server : snapshot.servers) {
    for (const VmId vm : server.hosted) origin[vm] = server.id;
  }

  std::vector<VmId> order = migration_list;
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return a < b;
  });

  // Gate for rack-aware runs, evaluated only AFTER a receiver has admitted
  // the VM (so the rejection counter means "admitted but vetoed"): the move
  // must fit the remaining plan budget and win on net energy. Benefit is
  // the closed-form placement_delta_w at the origin minus at the receiver —
  // identical arithmetic in the reference engine, see topology_cost.hpp.
  bool gate_blocked = false;
  const auto gate_allows = [&](VmId vm, ServerId receiver) {
    if (!rack_on || origin[vm] == datacenter::kNoServer) return true;
    const VmSnapshot& info = snapshot.vm(vm);
    const double cost_j =
        rack.cost.energy_j(info.memory_mb, snapshot.distance(origin[vm], receiver));
    if (report.migration_energy_j + cost_j > rack.migration_energy_budget_j + 1e-9) {
      gate_blocked = true;
      return false;
    }
    const double benefit_w = placement_delta_w(wp, origin[vm], info.cpu_demand_ghz) -
                             placement_delta_w(wp, receiver, info.cpu_demand_ghz);
    if (benefit_w * rack.benefit_horizon_s + 1e-9 < cost_j) {
      gate_blocked = true;
      return false;
    }
    report.migration_energy_j += cost_j;
    return true;
  };

  std::vector<VmId> unplaced;
  for (const VmId vm : order) {
    bool placed = false;
    gate_blocked = false;
    for (const ServerId receiver : receivers) {
      const VmId extra[] = {vm};
      const bool fits_target =
          wp.cpu_demand_ghz(receiver) + snapshot.vm(vm).cpu_demand_ghz <=
          report.target_demand_ghz[receiver] + kEps;
      if (fits_target && wp.admits_with(receiver, extra, constraints) &&
          gate_allows(vm, receiver)) {
        wp.place(vm, receiver);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Second chance ignoring the target cap (constraints still hold):
      // pMapper prefers a slightly off-target placement to losing the VM.
      for (const ServerId receiver : receivers) {
        const VmId extra[] = {vm};
        if (wp.admits_with(receiver, extra, constraints) && gate_allows(vm, receiver)) {
          wp.place(vm, receiver);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      // No receiver can take it: keep it where it was (no migration) rather
      // than leaving it homeless.
      if (gate_blocked) ++report.moves_rejected_by_budget;
      if (origin[vm] != datacenter::kNoServer) {
        wp.place(vm, origin[vm]);
      } else {
        unplaced.push_back(vm);
      }
    }
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  report.moves = report.plan.moves.size();
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate
