// Immutable snapshot of the data center handed to the consolidation
// algorithms. Decoupling them from the live Cluster keeps the algorithms
// pure functions: snapshot in, placement plan out.
#pragma once

#include <vector>

#include "datacenter/cluster.hpp"

namespace vdc::consolidate {

using datacenter::NetworkDistance;
using datacenter::PodId;
using datacenter::RackId;
using datacenter::ServerId;
using datacenter::VmId;

struct VmSnapshot {
  VmId id = 0;
  double cpu_demand_ghz = 0.0;
  double memory_mb = 0.0;
  /// Scale-in tombstone: the VM left the fleet on purpose. It keeps its
  /// positional slot in `vms` (ids are indices), but planners must neither
  /// re-place it when homeless nor migrate it.
  bool retired = false;
};

struct ServerSnapshot {
  ServerId id = 0;
  double max_capacity_ghz = 0.0;  ///< at max DVFS frequency
  double memory_mb = 0.0;
  double max_power_w = 0.0;
  double idle_power_w = 0.0;   ///< active power at min utilization, max freq
  double sleep_power_w = 0.0;
  /// The paper's metric: max total frequency / max power (GHz/W).
  double power_efficiency_ghz_per_w = 0.0;
  bool active = false;
  /// Crashed (fault injection): cannot host anything, cannot be woken.
  /// ConstraintSet::admits rejects failed servers unconditionally, so every
  /// consolidation algorithm skips them without knowing why.
  bool failed = false;
  /// Physical coordinates (kNoRack/kNoPod when the cluster is flat).
  RackId rack = datacenter::kNoRack;
  PodId pod = datacenter::kNoPod;
  std::vector<VmId> hosted;
};

/// A rack's shared infrastructure as the consolidators see it.
struct RackSnapshot {
  RackId id = 0;
  PodId pod = datacenter::kNoPod;
  double shared_power_w = 0.0;  ///< paid while >= 1 member server is occupied
  std::vector<ServerId> members;
};

struct PodSnapshot {
  PodId id = 0;
  double shared_power_w = 0.0;
};

struct DataCenterSnapshot {
  std::vector<ServerSnapshot> servers;  ///< indexed by ServerId
  std::vector<VmSnapshot> vms;          ///< indexed by VmId
  std::vector<RackSnapshot> racks;      ///< indexed by RackId; empty = flat
  std::vector<PodSnapshot> pods;        ///< indexed by PodId

  [[nodiscard]] const VmSnapshot& vm(VmId id) const { return vms.at(id); }
  [[nodiscard]] const ServerSnapshot& server(ServerId id) const { return servers.at(id); }
  /// No topology captured: the flat pre-topology world.
  [[nodiscard]] bool flat() const noexcept { return racks.empty(); }
  /// Network tier between two servers (kCrossPod when either is off-grid).
  [[nodiscard]] NetworkDistance distance(ServerId a, ServerId b) const;
  /// Host of a VM (kNoServer when unplaced). O(total hosted) — use
  /// WorkingPlacement for repeated queries.
  [[nodiscard]] ServerId host_of(VmId id) const;
};

/// Captures the current demands, capacities and mapping.
[[nodiscard]] DataCenterSnapshot snapshot_of(const datacenter::Cluster& cluster);

/// A consolidation decision: the VM moves (or initial placements) to apply.
struct Move {
  VmId vm = 0;
  ServerId from = datacenter::kNoServer;  ///< kNoServer = initial placement
  ServerId to = 0;
};

struct PlacementPlan {
  std::vector<Move> moves;
  /// VMs the algorithm could not place anywhere (capacity exhausted).
  std::vector<VmId> unplaced;
  [[nodiscard]] bool complete() const noexcept { return unplaced.empty(); }
};

/// Applies a plan to the live cluster: wakes target servers, migrates /
/// places the VMs, then puts emptied servers to sleep.
void apply_plan(datacenter::Cluster& cluster, const PlacementPlan& plan, double now_s = 0.0);

}  // namespace vdc::consolidate
