#include "consolidate/ffd.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"
#include "consolidate/slack_index.hpp"

namespace vdc::consolidate {

namespace {

/// Below this many servers the linear first-fit scan beats building a tree.
constexpr std::size_t kIndexThreshold = 64;

}  // namespace

FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<VmId> order(vms.begin(), vms.end());
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return a < b;
  });

  // First-fit has no capacity bound of its own, so slack-skipping is only
  // sound when a CpuCapacityConstraint is present: its target is <= 1, so
  // any server whose raw slack is below the VM's demand would be rejected
  // by it — skipping cannot change which server is "first". Constraint
  // sets without a CPU constraint keep the plain linear scan.
  const ConstraintSet::BuiltinProfile& profile = constraints.builtin_profile();
  const bool use_index = profile.has_cpu && servers.size() >= kIndexThreshold;
  SlackIndex index;
  if (use_index) {
    index.build(servers, snapshot.servers.size());
    for (const ServerId server : servers) index.update(server, placement.cpu_slack(server));
  }

  FfdResult result;
  for (const VmId vm : order) {
    const double demand = snapshot.vm(vm).cpu_demand_ghz;
    const VmId extra[] = {vm};
    bool placed = false;
    if (use_index) {
      for (std::size_t pos = 0;
           (pos = index.find_first(pos, demand - 1e-9)) != SlackIndex::npos; ++pos) {
        const ServerId server = index.server_at(pos);
        if (placement.admits_with(server, extra, constraints)) {
          placement.place(vm, server);
          index.update(server, placement.cpu_slack(server));
          result.placed.push_back(vm);
          placed = true;
          break;
        }
      }
    } else {
      for (const ServerId server : servers) {
        if (placement.admits_with(server, extra, constraints)) {
          placement.place(vm, server);
          result.placed.push_back(vm);
          placed = true;
          break;
        }
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  for (const VmId vm : result.placed) {
    audit::server_feasible(placement, placement.host_of(vm), constraints);
  }
  return result;
}

std::vector<ServerId> servers_by_power_efficiency(const DataCenterSnapshot& snapshot) {
  std::vector<ServerId> order;
  order.reserve(snapshot.servers.size());
  for (const ServerSnapshot& server : snapshot.servers) order.push_back(server.id);
  std::sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
    const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (ea != eb) return ea > eb;
    return a < b;
  });
  return order;
}

}  // namespace vdc::consolidate
