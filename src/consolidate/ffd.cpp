#include "consolidate/ffd.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"

namespace vdc::consolidate {

FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<VmId> order(vms.begin(), vms.end());
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    if (da != db) return da > db;
    return a < b;
  });

  FfdResult result;
  for (const VmId vm : order) {
    bool placed = false;
    for (const ServerId server : servers) {
      const VmId extra[] = {vm};
      if (placement.admits_with(server, extra, constraints)) {
        placement.place(vm, server);
        result.placed.push_back(vm);
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  for (const VmId vm : result.placed) {
    audit::server_feasible(placement, placement.host_of(vm), constraints);
  }
  return result;
}

std::vector<ServerId> servers_by_power_efficiency(const DataCenterSnapshot& snapshot) {
  std::vector<ServerId> order;
  order.reserve(snapshot.servers.size());
  for (const ServerSnapshot& server : snapshot.servers) order.push_back(server.id);
  std::sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency;
    const double eb = snapshot.server(b).power_efficiency;
    if (ea != eb) return ea > eb;
    return a < b;
  });
  return order;
}

}  // namespace vdc::consolidate
