// Reference ("naive") consolidation engine: the pre-optimization
// implementations of Minimum Slack, PAC, FFD, IPAC and pMapper, retained
// verbatim as differential-testing oracles — the same strategy as
// `sim/naive.hpp` for the event loop. The fast engine in the parent
// namespace must produce move-for-move identical plans (see
// tests/test_consolidation_equivalence.cpp); `bench/perf_consolidation`
// measures the speedup against this engine.
//
// The naive engine deliberately keeps the old cost profile: per-DFS-step
// heap allocation of the resident pointer list, generic virtual-dispatch
// constraint evaluation, full-fleet power rescans each consolidation
// round, and linear target scans — so the measured ratio reflects the
// real algorithmic change, not shared-infrastructure noise.
#pragma once

#include <span>

#include "consolidate/cost_policy.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/minimum_slack.hpp"
#include "consolidate/pac.hpp"
#include "consolidate/pmapper.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate::naive {

/// Reference fleet-power estimate: scans every server (the fast engine
/// maintains the same sum incrementally inside WorkingPlacement).
[[nodiscard]] double estimated_power_w(const WorkingPlacement& placement);

/// Algorithm 1 without branch-and-bound pruning or the O(1) builtin
/// constraint path: every DFS step materializes the resident list and
/// walks the polymorphic constraint chain.
[[nodiscard]] MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                                           std::span<const VmId> candidates,
                                           const ConstraintSet& constraints,
                                           const MinSlackOptions& options = {});

/// PAC with a full linear walk over the server order (no slack index).
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options = {});
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order);

/// Budgeted Minimum Slack without the branch-and-bound machinery: the plain
/// recursive search with the migration-cost prune bolted on.
[[nodiscard]] BudgetedMinSlackResult minimum_slack_budgeted(
    const WorkingPlacement& placement, ServerId server, std::span<const VmId> candidates,
    std::span<const double> candidate_cost_j, double budget_j, const ConstraintSet& constraints,
    const MinSlackOptions& options = {});

/// Budgeted PAC over the naive budgeted Minimum Slack.
PacResult power_aware_consolidation_budgeted(WorkingPlacement& placement,
                                             std::span<const VmId> vms,
                                             const ConstraintSet& constraints,
                                             const MinSlackOptions& options,
                                             std::span<const ServerId> server_order,
                                             const MigrationCostContext& cost);

/// FFD with the original linear first-fit scan and allocating admits.
FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints);

/// IPAC recomputing the fleet power estimate by full scan every round and
/// rebuilding the per-round target list. Mirrors the fast engine's
/// rack-aware gates (same closed-form costs, full-rescan occupancy).
[[nodiscard]] IpacReport ipac(const DataCenterSnapshot& snapshot,
                              const ConstraintSet& constraints,
                              const MigrationCostPolicy& policy = FreeMigrationPolicy(),
                              const IpacOptions& options = {},
                              const RackAwareOptions& rack = {});

/// pMapper on the naive FFD and allocating admits.
[[nodiscard]] PMapperReport pmapper(const DataCenterSnapshot& snapshot,
                                    const ConstraintSet& constraints,
                                    const RackAwareOptions& rack = {});

}  // namespace vdc::consolidate::naive
