#include "consolidate/ipac.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/pac.hpp"
#include "consolidate/slack_index.hpp"
#include "util/log.hpp"

namespace vdc::consolidate {

namespace {

/// Smallest-CPU-demand VM on the server (the cheapest to evict).
VmId smallest_vm(const WorkingPlacement& placement, ServerId server) {
  const auto hosted = placement.hosted(server);
  VmId best = hosted.front();
  double best_demand = placement.snapshot().vm(best).cpu_demand_ghz;
  for (const VmId vm : hosted) {
    const double d = placement.snapshot().vm(vm).cpu_demand_ghz;
    if (d < best_demand || (d == best_demand && vm < best)) {
      best = vm;
      best_demand = d;
    }
  }
  return best;
}

}  // namespace

// The fast engine. Three changes against the retained reference
// (naive::ipac), all plan-preserving:
//  * the fleet power estimate is WorkingPlacement's O(1) incremental sum
//    instead of a full server scan per consolidation round;
//  * PAC's target walk runs over a SlackIndex built once over the
//    active-first order and kept in sync by the placement itself, with the
//    donor masked for the duration of its round instead of rebuilding the
//    target list each round;
//  * overload-relief feasibility checks hit the O(1) builtin-constraint
//    path inside WorkingPlacement::feasible.
IpacReport ipac(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                const MigrationCostPolicy& policy, const IpacOptions& options) {
  WorkingPlacement wp(snapshot);
  IpacReport report;
  report.occupied_before = wp.occupied_server_count();
  double bytes_approved = 0.0;
  datacenter::MigrationModel migration_model;  // for byte estimates in proposals

  // Target ordering for PAC: active servers by descending power efficiency
  // first, then sleeping ones ("enough inactive servers which will be waken
  // up and used if necessary") — waking a machine is a last resort, since
  // an extra awake server costs idle power immediately.
  const std::vector<ServerId> efficiency_order = servers_by_power_efficiency(snapshot);
  std::vector<ServerId> active_first;
  active_first.reserve(efficiency_order.size());
  for (const ServerId s : efficiency_order) {
    if (snapshot.server(s).active || !snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }
  for (const ServerId s : efficiency_order) {
    if (!snapshot.server(s).active && snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }

  SlackIndex index;
  index.build(active_first, snapshot.servers.size());
  for (const ServerId s : active_first) index.update(s, wp.cpu_slack(s));
  wp.set_slack_observer(&index);

  // ---- Step 0: pick up homeless VMs --------------------------------------
  // A VM with no host (crash-evicted, or never placed) receives no CPU at
  // all; re-placing it is the most urgent thing the optimizer can do, so it
  // joins the migration list ahead of overload victims.
  std::vector<VmId> migration_list;
  for (const VmSnapshot& vm : snapshot.vms) {
    if (wp.host_of(vm.id) == datacenter::kNoServer) migration_list.push_back(vm.id);
  }
  if (!migration_list.empty()) {
    util::Log(util::LogLevel::kInfo, "ipac")
        << migration_list.size() << " unplaced VM(s) queued for re-placement";
  }

  // ---- Step 1: overload relief -------------------------------------------
  for (const ServerSnapshot& server : snapshot.servers) {
    while (!wp.hosted(server.id).empty() && !wp.feasible(server.id, constraints)) {
      const VmId victim = smallest_vm(wp, server.id);
      wp.remove(victim);
      migration_list.push_back(victim);
    }
  }
  if (!migration_list.empty()) {
    const PacResult pac =
        power_aware_consolidation(wp, migration_list, constraints, options.min_slack, index);
    report.min_slack_steps += pac.min_slack_steps;
    report.overload_moves = pac.placed.size();
    for (const VmId vm : pac.placed) {
      bytes_approved += migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
    }
    // VMs nothing could take remain unplaced and are surfaced in the plan.
    for (const VmId vm : pac.unplaced) {
      util::Log(util::LogLevel::kWarn, "ipac")
          << "overloaded VM " << vm << " could not be re-placed";
    }
    migration_list = pac.unplaced;
  }
  std::vector<VmId> unplaced = std::move(migration_list);

  // ---- Step 2: consolidation rounds --------------------------------------
  // Candidate donors: occupied servers, least power-efficient first.
  std::vector<ServerId> donors;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (wp.occupied(server.id)) donors.push_back(server.id);
  }
  std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency;
    const double eb = snapshot.server(b).power_efficiency;
    if (ea != eb) return ea < eb;
    return a < b;
  });

  // The paper's loop criterion is the number of ACTIVE servers, which
  // includes awake-but-empty machines (they get put to sleep once the plan
  // is applied). Track that live baseline as rounds are accepted.
  std::size_t active_baseline = 0;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (server.active || !server.hosted.empty()) ++active_baseline;
  }

  for (const ServerId donor : donors) {
    if (report.rounds_attempted >= options.max_rounds) break;
    if (!wp.occupied(donor)) continue;  // already emptied by an earlier round
    ++report.rounds_attempted;

    // Evacuate the donor; masking it keeps it out of PAC's target walk for
    // the round (the reference rebuilds the whole target list instead).
    std::vector<VmId> evacuated(wp.hosted(donor).begin(), wp.hosted(donor).end());
    const double power_before_round = wp.estimated_power_w();
    index.set_masked(donor, true);
    for (const VmId vm : evacuated) wp.remove(vm);

    const PacResult pac =
        power_aware_consolidation(wp, evacuated, constraints, options.min_slack, index);
    report.min_slack_steps += pac.min_slack_steps;

    // A round pays when it shrinks the active-server set (applying the plan
    // sleeps every emptied machine), or — at equal count — when the
    // estimated cluster power still drops (the donor was less efficient
    // than the machines that absorbed its VMs).
    bool accept = pac.unplaced.empty() &&
                  (wp.occupied_server_count() < active_baseline ||
                   wp.estimated_power_w() < power_before_round - 1e-9);
    if (accept) {
      // Cost/benefit check: the round's estimated power saving, split
      // across its moves.
      const double benefit_per_move =
          std::max(0.0, power_before_round - wp.estimated_power_w()) /
          static_cast<double>(evacuated.size());
      double round_bytes = 0.0;
      for (const VmId vm : evacuated) {
        MigrationProposal proposal;
        proposal.vm = vm;
        proposal.from = donor;
        proposal.to = wp.host_of(vm);
        proposal.estimated_benefit_w = benefit_per_move;
        proposal.bytes = migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
        proposal.bytes_already_approved = bytes_approved + round_bytes;
        if (!policy.allow(snapshot, proposal)) {
          accept = false;
          ++report.rounds_rejected_by_policy;
          break;
        }
        round_bytes += proposal.bytes;
      }
      if (accept) bytes_approved += round_bytes;
    }

    if (accept) {
      ++report.rounds_accepted;
      report.consolidation_moves += evacuated.size();
      active_baseline = wp.occupied_server_count();
      index.set_masked(donor, false);  // emptied, but a valid future target
      continue;  // try the next least-efficient donor
    }

    // Roll back the round and stop: the active-server count no longer
    // decreases (or the policy vetoed the round).
    for (const VmId vm : evacuated) {
      if (wp.host_of(vm) != datacenter::kNoServer) wp.remove(vm);
      wp.place(vm, donor);
    }
    index.set_masked(donor, false);
    break;
  }
  wp.set_slack_observer(nullptr);

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate
