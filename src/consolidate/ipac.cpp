#include "consolidate/ipac.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/pac.hpp"
#include "util/log.hpp"

namespace vdc::consolidate {

namespace {

/// Estimated total power of the placement: occupied servers run at max
/// frequency with linear-in-utilization power; empty servers sleep. Used to
/// judge whether a consolidation round that does not change the server
/// count still pays (e.g. moving VMs from an inefficient machine onto an
/// efficient one that is already awake).
double estimated_power_w(const WorkingPlacement& placement) {
  const DataCenterSnapshot& snap = placement.snapshot();
  double total = 0.0;
  for (const ServerSnapshot& server : snap.servers) {
    if (!placement.occupied(server.id)) {
      total += server.sleep_power_w;
      continue;
    }
    const double utilization =
        std::min(1.0, placement.cpu_demand(server.id) /
                          std::max(1e-9, server.max_capacity_ghz));
    total += server.idle_power_w + (server.max_power_w - server.idle_power_w) * utilization;
  }
  return total;
}

/// Smallest-CPU-demand VM on the server (the cheapest to evict).
VmId smallest_vm(const WorkingPlacement& placement, ServerId server) {
  const auto hosted = placement.hosted(server);
  VmId best = hosted.front();
  double best_demand = placement.snapshot().vm(best).cpu_demand_ghz;
  for (const VmId vm : hosted) {
    const double d = placement.snapshot().vm(vm).cpu_demand_ghz;
    if (d < best_demand || (d == best_demand && vm < best)) {
      best = vm;
      best_demand = d;
    }
  }
  return best;
}

}  // namespace

IpacReport ipac(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                const MigrationCostPolicy& policy, const IpacOptions& options) {
  WorkingPlacement wp(snapshot);
  IpacReport report;
  report.occupied_before = wp.occupied_server_count();
  double bytes_approved = 0.0;
  datacenter::MigrationModel migration_model;  // for byte estimates in proposals

  // Target ordering for PAC: active servers by descending power efficiency
  // first, then sleeping ones ("enough inactive servers which will be waken
  // up and used if necessary") — waking a machine is a last resort, since
  // an extra awake server costs idle power immediately.
  const std::vector<ServerId> efficiency_order = servers_by_power_efficiency(snapshot);
  std::vector<ServerId> active_first;
  active_first.reserve(efficiency_order.size());
  for (const ServerId s : efficiency_order) {
    if (snapshot.server(s).active || !snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }
  for (const ServerId s : efficiency_order) {
    if (!snapshot.server(s).active && snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }

  // ---- Step 0: pick up homeless VMs --------------------------------------
  // A VM with no host (crash-evicted, or never placed) receives no CPU at
  // all; re-placing it is the most urgent thing the optimizer can do, so it
  // joins the migration list ahead of overload victims.
  std::vector<VmId> migration_list;
  for (const VmSnapshot& vm : snapshot.vms) {
    if (wp.host_of(vm.id) == datacenter::kNoServer) migration_list.push_back(vm.id);
  }
  if (!migration_list.empty()) {
    util::Log(util::LogLevel::kInfo, "ipac")
        << migration_list.size() << " unplaced VM(s) queued for re-placement";
  }

  // ---- Step 1: overload relief -------------------------------------------
  for (const ServerSnapshot& server : snapshot.servers) {
    while (!wp.hosted(server.id).empty() && !wp.feasible(server.id, constraints)) {
      const VmId victim = smallest_vm(wp, server.id);
      wp.remove(victim);
      migration_list.push_back(victim);
    }
  }
  if (!migration_list.empty()) {
    const PacResult pac = power_aware_consolidation(wp, migration_list, constraints,
                                                    options.min_slack, active_first);
    report.min_slack_steps += pac.min_slack_steps;
    report.overload_moves = pac.placed.size();
    for (const VmId vm : pac.placed) {
      bytes_approved += migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
    }
    // VMs nothing could take remain unplaced and are surfaced in the plan.
    for (const VmId vm : pac.unplaced) {
      util::Log(util::LogLevel::kWarn, "ipac")
          << "overloaded VM " << vm << " could not be re-placed";
    }
    migration_list = pac.unplaced;
  }
  std::vector<VmId> unplaced = std::move(migration_list);

  // ---- Step 2: consolidation rounds --------------------------------------
  // Candidate donors: occupied servers, least power-efficient first.
  std::vector<ServerId> donors;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (wp.occupied(server.id)) donors.push_back(server.id);
  }
  std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency;
    const double eb = snapshot.server(b).power_efficiency;
    if (ea != eb) return ea < eb;
    return a < b;
  });

  // The paper's loop criterion is the number of ACTIVE servers, which
  // includes awake-but-empty machines (they get put to sleep once the plan
  // is applied). Track that live baseline as rounds are accepted.
  std::size_t active_baseline = 0;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (server.active || !server.hosted.empty()) ++active_baseline;
  }

  for (const ServerId donor : donors) {
    if (report.rounds_attempted >= options.max_rounds) break;
    if (!wp.occupied(donor)) continue;  // already emptied by an earlier round
    ++report.rounds_attempted;

    // Evacuate the donor.
    std::vector<VmId> evacuated(wp.hosted(donor).begin(), wp.hosted(donor).end());
    const double power_before_round = estimated_power_w(wp);
    for (const VmId vm : evacuated) wp.remove(vm);

    std::vector<ServerId> targets;
    targets.reserve(active_first.size() - 1);
    for (const ServerId s : active_first) {
      if (s != donor) targets.push_back(s);
    }

    const PacResult pac =
        power_aware_consolidation(wp, evacuated, constraints, options.min_slack, targets);
    report.min_slack_steps += pac.min_slack_steps;

    // A round pays when it shrinks the active-server set (applying the plan
    // sleeps every emptied machine), or — at equal count — when the
    // estimated cluster power still drops (the donor was less efficient
    // than the machines that absorbed its VMs).
    bool accept = pac.unplaced.empty() &&
                  (wp.occupied_server_count() < active_baseline ||
                   estimated_power_w(wp) < power_before_round - 1e-9);
    if (accept) {
      // Cost/benefit check: the round's estimated power saving, split
      // across its moves.
      const double benefit_per_move =
          std::max(0.0, power_before_round - estimated_power_w(wp)) /
          static_cast<double>(evacuated.size());
      double round_bytes = 0.0;
      for (const VmId vm : evacuated) {
        MigrationProposal proposal;
        proposal.vm = vm;
        proposal.from = donor;
        proposal.to = wp.host_of(vm);
        proposal.estimated_benefit_w = benefit_per_move;
        proposal.bytes = migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
        proposal.bytes_already_approved = bytes_approved + round_bytes;
        if (!policy.allow(snapshot, proposal)) {
          accept = false;
          ++report.rounds_rejected_by_policy;
          break;
        }
        round_bytes += proposal.bytes;
      }
      if (accept) bytes_approved += round_bytes;
    }

    if (accept) {
      ++report.rounds_accepted;
      report.consolidation_moves += evacuated.size();
      active_baseline = wp.occupied_server_count();
      continue;  // try the next least-efficient donor
    }

    // Roll back the round and stop: the active-server count no longer
    // decreases (or the policy vetoed the round).
    for (const VmId vm : evacuated) {
      if (wp.host_of(vm) != datacenter::kNoServer) wp.remove(vm);
      wp.place(vm, donor);
    }
    break;
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate
