#include "consolidate/ipac.hpp"

#include <algorithm>

#include "check/consolidate_audit.hpp"
#include "consolidate/ffd.hpp"
#include "consolidate/pac.hpp"
#include "consolidate/slack_index.hpp"
#include "util/log.hpp"

namespace vdc::consolidate {

namespace {

/// Smallest-CPU-demand VM on the server (the cheapest to evict).
VmId smallest_vm(const WorkingPlacement& placement, ServerId server) {
  const auto hosted = placement.hosted(server);
  VmId best = hosted.front();
  double best_demand = placement.snapshot().vm(best).cpu_demand_ghz;
  for (const VmId vm : hosted) {
    const double d = placement.snapshot().vm(vm).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact equality gates the deterministic id tie-break; near-equal demands are legitimately ordered by value
    if (d < best_demand || (d == best_demand && vm < best)) {
      best = vm;
      best_demand = d;
    }
  }
  return best;
}

}  // namespace

// The fast engine. Three changes against the retained reference
// (naive::ipac), all plan-preserving:
//  * the fleet power estimate is WorkingPlacement's O(1) incremental sum
//    instead of a full server scan per consolidation round;
//  * PAC's target walk runs over a SlackIndex built once over the
//    active-first order and kept in sync by the placement itself, with the
//    donor masked for the duration of its round instead of rebuilding the
//    target list each round;
//  * overload-relief feasibility checks hit the O(1) builtin-constraint
//    path inside WorkingPlacement::feasible.
IpacReport ipac(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                const MigrationCostPolicy& policy, const IpacOptions& options,
                const RackAwareOptions& rack) {
  WorkingPlacement wp(snapshot);
  IpacReport report;
  report.occupied_before = wp.occupied_server_count();
  double bytes_approved = 0.0;
  datacenter::MigrationModel migration_model;  // for byte estimates in proposals

  // Every rack-aware branch below hangs off this flag; with it false (the
  // default, and always on flat snapshots) the pass is statement-for-
  // statement the pre-topology engine, which is what keeps flat plans
  // move-for-move identical.
  const bool rack_on = rack.enabled && !snapshot.racks.empty();
  // Racks with at least one up (awake or occupied) member: waking a server
  // inside one costs only its own idle power, while waking one in a dark
  // rack also switches the rack's shared draw back on.
  std::vector<char> rack_lit(snapshot.racks.size(), 0);
  if (rack_on) {
    for (const ServerSnapshot& server : snapshot.servers) {
      if (server.rack != datacenter::kNoRack && (server.active || !server.hosted.empty())) {
        rack_lit[server.rack] = 1;
      }
    }
  }

  // Target ordering for PAC: active servers by descending power efficiency
  // first, then sleeping ones ("enough inactive servers which will be waken
  // up and used if necessary") — waking a machine is a last resort, since
  // an extra awake server costs idle power immediately. Rack-aware runs
  // refine only the sleeping tail: sleepers in lit racks come before
  // sleepers in dark racks (stable within each group), avoiding lighting a
  // rack for one VM when an already-lit rack has a cold machine. With one
  // server per rack every sleeper's rack is dark and the refinement is a
  // no-op, preserving flat-equivalent behavior for degenerate topologies.
  const std::vector<ServerId> efficiency_order = servers_by_power_efficiency(snapshot);
  std::vector<ServerId> active_first;
  active_first.reserve(efficiency_order.size());
  for (const ServerId s : efficiency_order) {
    if (snapshot.server(s).active || !snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }
  std::vector<ServerId> sleepers;
  for (const ServerId s : efficiency_order) {
    if (!snapshot.server(s).active && snapshot.server(s).hosted.empty()) {
      sleepers.push_back(s);
    }
  }
  if (rack_on) {
    std::stable_partition(sleepers.begin(), sleepers.end(), [&](ServerId s) {
      const RackId r = snapshot.server(s).rack;
      return r != datacenter::kNoRack && rack_lit[r] != 0;
    });
  }
  active_first.insert(active_first.end(), sleepers.begin(), sleepers.end());

  SlackIndex index;
  index.build(active_first, snapshot.servers.size());
  for (const ServerId s : active_first) index.update(s, wp.cpu_slack(s));
  wp.set_slack_observer(&index);

  // ---- Step 0: pick up homeless VMs --------------------------------------
  // A VM with no host (crash-evicted, or never placed) receives no CPU at
  // all; re-placing it is the most urgent thing the optimizer can do, so it
  // joins the migration list ahead of overload victims.
  std::vector<VmId> migration_list;
  for (const VmSnapshot& vm : snapshot.vms) {
    if (vm.retired) continue;  // scale-in tombstone: left the fleet on purpose
    if (wp.host_of(vm.id) == datacenter::kNoServer) migration_list.push_back(vm.id);
  }
  if (!migration_list.empty()) {
    util::Log(util::LogLevel::kInfo, "ipac")
        << migration_list.size() << " unplaced VM(s) queued for re-placement";
  }

  // ---- Step 1: overload relief -------------------------------------------
  for (const ServerSnapshot& server : snapshot.servers) {
    while (!wp.hosted(server.id).empty() && !wp.feasible(server.id, constraints)) {
      const VmId victim = smallest_vm(wp, server.id);
      wp.remove(victim);
      migration_list.push_back(victim);
    }
  }
  if (!migration_list.empty()) {
    const PacResult pac =
        power_aware_consolidation(wp, migration_list, constraints, options.min_slack, index);
    report.min_slack_steps += pac.min_slack_steps;
    report.overload_moves = pac.placed.size();
    for (const VmId vm : pac.placed) {
      bytes_approved += migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
      if (rack_on) {
        // Relief moves bypass the gates (they protect SLAs) but their energy
        // still counts against the plan budget: a plan that spends its whole
        // allowance on relief has nothing left for consolidation rounds.
        const ServerId origin = wp.original_host(vm);
        if (origin != datacenter::kNoServer) {
          report.migration_energy_j += rack.cost.energy_j(
              snapshot.vm(vm).memory_mb, snapshot.distance(origin, wp.host_of(vm)));
        }
      }
    }
    // VMs nothing could take remain unplaced and are surfaced in the plan.
    for (const VmId vm : pac.unplaced) {
      util::Log(util::LogLevel::kWarn, "ipac")
          << "overloaded VM " << vm << " could not be re-placed";
    }
    migration_list = pac.unplaced;
  }
  std::vector<VmId> unplaced = std::move(migration_list);

  // ---- Step 2: consolidation rounds --------------------------------------
  // Candidate donors: occupied servers, least power-efficient first.
  std::vector<ServerId> donors;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (wp.occupied(server.id)) donors.push_back(server.id);
  }
  if (rack_on) {
    // Nearly-empty racks first: evacuating the last occupied member of a
    // rack switches off its shared draw, so low-occupancy racks carry the
    // largest per-move payoff. Ties fall through to the baseline key, and
    // with one server per rack every occupancy is 1, so the order — and the
    // plan — degenerates to the flat engine's.
    const auto occupancy = [&](ServerId s) -> std::uint32_t {
      const RackId r = snapshot.server(s).rack;
      return r == datacenter::kNoRack ? 1 : wp.rack_occupied_count(r);
    };
    std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
      const std::uint32_t oa = occupancy(a);
      const std::uint32_t ob = occupancy(b);
      if (oa != ob) return oa < ob;
      const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
      const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
      // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
      if (ea != eb) return ea < eb;
      return a < b;
    });
  } else {
    std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
      const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
      const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
      // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
      if (ea != eb) return ea < eb;
      return a < b;
    });
  }

  // The paper's loop criterion is the number of ACTIVE servers, which
  // includes awake-but-empty machines (they get put to sleep once the plan
  // is applied). Track that live baseline as rounds are accepted.
  std::size_t active_baseline = 0;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (server.active || !server.hosted.empty()) ++active_baseline;
  }

  for (const ServerId donor : donors) {
    if (report.rounds_attempted >= options.max_rounds) break;
    if (!wp.occupied(donor)) continue;  // already emptied by an earlier round
    ++report.rounds_attempted;

    // Evacuate the donor; masking it keeps it out of PAC's target walk for
    // the round (the reference rebuilds the whole target list instead).
    std::vector<VmId> evacuated(wp.hosted(donor).begin(), wp.hosted(donor).end());
    const double power_before_round = wp.estimated_power_w();
    index.set_masked(donor, true);
    for (const VmId vm : evacuated) wp.remove(vm);

    const PacResult pac =
        power_aware_consolidation(wp, evacuated, constraints, options.min_slack, index);
    report.min_slack_steps += pac.min_slack_steps;

    // A round pays when it shrinks the active-server set (applying the plan
    // sleeps every emptied machine), or — at equal count — when the
    // estimated cluster power still drops (the donor was less efficient
    // than the machines that absorbed its VMs).
    bool accept = pac.unplaced.empty() &&
                  (wp.occupied_server_count() < active_baseline ||
                   wp.estimated_power_w() < power_before_round - 1e-9);

    // Rack-aware gates sit BETWEEN the baseline acceptance test and the
    // policy: a round the baseline engine would reject is rejected for the
    // baseline reason (and ends the loop exactly as the flat engine does),
    // while a gate rejection merely skips this donor — a cross-pod-expensive
    // round says nothing about the next donor's same-rack-cheap one.
    bool gate_reject = false;
    double round_cost_j = 0.0;
    double benefit_j = 0.0;
    if (accept && rack_on) {
      for (const VmId vm : evacuated) {
        round_cost_j += rack.cost.energy_j(snapshot.vm(vm).memory_mb,
                                           snapshot.distance(donor, wp.host_of(vm)));
      }
      benefit_j = std::max(0.0, power_before_round - wp.estimated_power_w()) *
                  rack.benefit_horizon_s;
      if (report.migration_energy_j + round_cost_j >
          rack.migration_energy_budget_j + 1e-9) {
        accept = false;
        gate_reject = true;
        ++report.rounds_rejected_by_budget;
      } else if (benefit_j + 1e-9 < round_cost_j) {
        accept = false;
        gate_reject = true;
        ++report.rounds_rejected_by_cost;
      }
    }

    if (accept) {
      // Cost/benefit check: the round's estimated power saving, split
      // across its moves.
      const double benefit_per_move =
          std::max(0.0, power_before_round - wp.estimated_power_w()) /
          static_cast<double>(evacuated.size());
      double round_bytes = 0.0;
      double round_cost_so_far_j = 0.0;
      for (const VmId vm : evacuated) {
        MigrationProposal proposal;
        proposal.vm = vm;
        proposal.from = donor;
        proposal.to = wp.host_of(vm);
        proposal.estimated_benefit_w = benefit_per_move;
        proposal.bytes = migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
        proposal.bytes_already_approved = bytes_approved + round_bytes;
        if (rack_on) {
          proposal.distance = snapshot.distance(donor, proposal.to);
          proposal.cost_j =
              rack.cost.energy_j(snapshot.vm(vm).memory_mb, proposal.distance);
          proposal.cost_already_approved_j =
              report.migration_energy_j + round_cost_so_far_j;
          proposal.estimated_benefit_j = benefit_per_move * rack.benefit_horizon_s;
        }
        if (!policy.allow(snapshot, proposal)) {
          accept = false;
          ++report.rounds_rejected_by_policy;
          break;
        }
        round_bytes += proposal.bytes;
        round_cost_so_far_j += proposal.cost_j;
      }
      if (accept) {
        bytes_approved += round_bytes;
        report.migration_energy_j += round_cost_j;
      }
    }

    if (accept) {
      ++report.rounds_accepted;
      report.consolidation_moves += evacuated.size();
      active_baseline = wp.occupied_server_count();
      index.set_masked(donor, false);  // emptied, but a valid future target
      continue;  // try the next least-efficient donor
    }

    // Roll back the round; a gate rejection tries the next donor, anything
    // else stops: the active-server count no longer decreases (or the
    // policy vetoed the round).
    for (const VmId vm : evacuated) {
      if (wp.host_of(vm) != datacenter::kNoServer) wp.remove(vm);
      wp.place(vm, donor);
    }
    index.set_masked(donor, false);
    if (gate_reject) continue;
    break;
  }
  wp.set_slack_observer(nullptr);

  if (rack_on) {
    for (const RackSnapshot& r : snapshot.racks) {
      bool was_occupied = false;
      for (const ServerId member : r.members) {
        if (!snapshot.server(member).hosted.empty()) {
          was_occupied = true;
          break;
        }
      }
      if (was_occupied && wp.rack_occupied_count(r.id) == 0) ++report.racks_emptied;
    }
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate
