// Max-slack segment tree over a fixed server visiting order. PAC, FFD and
// IPAC walk an efficiency-ordered server list looking for "the first server
// from position p whose raw CPU slack can still take the smallest remaining
// candidate"; this index answers that in O(log n) instead of a rescan.
//
// Skipping by *raw* CPU slack is plan-preserving for every constraint set:
// the Minimum Slack DFS prunes any candidate whose demand exceeds the raw
// slack (`demand > slack + 1e-9`) before evaluating constraints, so a
// server whose slack is below the smallest remaining demand yields an empty
// selection no matter what the constraints say. FFD additionally requires a
// CpuCapacityConstraint to be present (see ffd.cpp) because first-fit has
// no such bound of its own.
//
// A WorkingPlacement keeps a registered index in sync automatically (see
// WorkingPlacement::set_slack_observer); `set_masked` pins a server's key
// to -inf so IPAC can exclude the donor being evacuated from the target
// walk without it resurfacing when the evacuation updates its slack.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "consolidate/snapshot.hpp"

namespace vdc::consolidate {

class SlackIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SlackIndex() = default;

  /// Rebuilds the index over `order` (the visiting order; positions are
  /// indices into it). Keys start at -inf; the caller seeds them with
  /// `update`. Servers outside `order` are ignored by every operation.
  void build(std::span<const ServerId> order, std::size_t server_count) {
    n_ = order.size();
    order_.assign(order.begin(), order.end());
    pos_of_.assign(server_count, npos);
    for (std::size_t i = 0; i < n_; ++i) pos_of_[order_[i]] = i;
    base_ = 1;
    while (base_ < n_) base_ <<= 1;
    tree_.assign(2 * base_, kNegInf);
    key_.assign(n_, kNegInf);
    masked_.assign(n_, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] ServerId server_at(std::size_t pos) const { return order_.at(pos); }
  [[nodiscard]] bool contains(ServerId server) const noexcept {
    return server < pos_of_.size() && pos_of_[server] != npos;
  }

  /// Sets the slack key of `server`; no-op for servers not in the order.
  void update(ServerId server, double slack) {
    if (!contains(server)) return;
    const std::size_t pos = pos_of_[server];
    key_[pos] = slack;
    if (masked_[pos] == 0) set_leaf(pos, slack);
  }

  /// Masked servers report -inf (never found) until unmasked; key updates
  /// while masked are retained and restored on unmask.
  void set_masked(ServerId server, bool masked) {
    if (!contains(server)) return;
    const std::size_t pos = pos_of_[server];
    masked_[pos] = masked ? 1 : 0;
    set_leaf(pos, masked ? kNegInf : key_[pos]);
  }

  /// First position >= `from` whose key >= `min_key`; npos when none.
  [[nodiscard]] std::size_t find_first(std::size_t from, double min_key) const {
    if (from >= n_) return npos;
    return descend(1, 0, base_, from, min_key);
  }

 private:
  static constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  void set_leaf(std::size_t pos, double value) {
    std::size_t i = base_ + pos;
    tree_[i] = value;
    for (i >>= 1; i > 0; i >>= 1) tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
  }

  [[nodiscard]] std::size_t descend(std::size_t node, std::size_t lo, std::size_t hi,
                                    std::size_t from, double min_key) const {
    if (hi <= from || tree_[node] < min_key) return npos;
    if (node >= base_) return lo;  // leaf; padding leaves stay at -inf
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t left = descend(2 * node, lo, mid, from, min_key);
    if (left != npos) return left;
    return descend(2 * node + 1, mid, hi, from, min_key);
  }

  std::size_t n_ = 0;
  std::size_t base_ = 1;
  std::vector<double> tree_;        // 1-based max tree over base_ padded leaves
  std::vector<double> key_;         // real key per position (survives masking)
  std::vector<char> masked_;
  std::vector<ServerId> order_;
  std::vector<std::size_t> pos_of_;  // per ServerId; npos = not in the order
};

}  // namespace vdc::consolidate
