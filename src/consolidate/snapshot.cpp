#include "consolidate/snapshot.hpp"

#include <algorithm>

namespace vdc::consolidate {

NetworkDistance DataCenterSnapshot::distance(ServerId a, ServerId b) const {
  if (a == b) return NetworkDistance::kSameHost;
  const RackId rack_a = a < servers.size() ? servers[a].rack : datacenter::kNoRack;
  const RackId rack_b = b < servers.size() ? servers[b].rack : datacenter::kNoRack;
  if (rack_a == datacenter::kNoRack || rack_b == datacenter::kNoRack) {
    return NetworkDistance::kCrossPod;
  }
  if (rack_a == rack_b) return NetworkDistance::kSameRack;
  if (racks[rack_a].pod == racks[rack_b].pod) return NetworkDistance::kSamePod;
  return NetworkDistance::kCrossPod;
}

ServerId DataCenterSnapshot::host_of(VmId id) const {
  for (const ServerSnapshot& s : servers) {
    if (std::find(s.hosted.begin(), s.hosted.end(), id) != s.hosted.end()) return s.id;
  }
  return datacenter::kNoServer;
}

DataCenterSnapshot snapshot_of(const datacenter::Cluster& cluster) {
  DataCenterSnapshot snap;
  snap.servers.reserve(cluster.server_count());
  for (ServerId id = 0; id < cluster.server_count(); ++id) {
    const datacenter::Server& srv = cluster.server(id);
    ServerSnapshot s;
    s.id = id;
    s.max_capacity_ghz = srv.max_capacity_ghz();
    s.memory_mb = srv.memory_mb();
    s.max_power_w = srv.power_model().max_power_w();
    s.idle_power_w = srv.power_model().active_power_w(1.0, 0.0);
    s.sleep_power_w = srv.power_model().sleep_w;
    s.power_efficiency_ghz_per_w = srv.power_efficiency_ghz_per_w();
    s.active = srv.active();
    s.failed = srv.failed();
    s.rack = cluster.topology().rack_of(id);
    s.pod = cluster.topology().pod_of(id);
    const auto hosted = cluster.vms_on(id);
    s.hosted.assign(hosted.begin(), hosted.end());
    snap.servers.push_back(std::move(s));
  }
  const datacenter::Topology& topo = cluster.topology();
  if (!topo.empty()) {
    snap.racks.reserve(topo.rack_count());
    for (RackId rack = 0; rack < topo.rack_count(); ++rack) {
      RackSnapshot r;
      r.id = rack;
      r.pod = topo.pod_of_rack(rack);
      r.shared_power_w = topo.rack_shared_power_w(rack);
      const auto members = topo.servers_in(rack);
      r.members.assign(members.begin(), members.end());
      snap.racks.push_back(std::move(r));
    }
    snap.pods.reserve(topo.pod_count());
    for (PodId pod = 0; pod < topo.pod_count(); ++pod) {
      snap.pods.push_back(PodSnapshot{pod, topo.pod_shared_power_w(pod)});
    }
  }
  snap.vms.reserve(cluster.vm_count());
  for (VmId id = 0; id < cluster.vm_count(); ++id) {
    const datacenter::Vm& vm = cluster.vm(id);
    snap.vms.push_back(VmSnapshot{id, vm.cpu_demand_ghz, vm.memory_mb, cluster.vm_retired(id)});
  }
  return snap;
}

void apply_plan(datacenter::Cluster& cluster, const PlacementPlan& plan, double now_s) {
  for (const Move& move : plan.moves) {
    // A failed target cannot be woken; the plan was made against a snapshot
    // that may have gone stale, so skip the move instead of placing a VM
    // onto a dead box (it keeps its current host, or stays unplaced).
    if (!cluster.wake(move.to)) continue;
    if (move.from == datacenter::kNoServer && cluster.host_of(move.vm) == datacenter::kNoServer) {
      cluster.place(move.vm, move.to);
    } else {
      cluster.migrate(move.vm, move.to, now_s);
    }
  }
  cluster.sleep_idle_servers();
}

}  // namespace vdc::consolidate
