#include "consolidate/snapshot.hpp"

#include <algorithm>

namespace vdc::consolidate {

ServerId DataCenterSnapshot::host_of(VmId id) const {
  for (const ServerSnapshot& s : servers) {
    if (std::find(s.hosted.begin(), s.hosted.end(), id) != s.hosted.end()) return s.id;
  }
  return datacenter::kNoServer;
}

DataCenterSnapshot snapshot_of(const datacenter::Cluster& cluster) {
  DataCenterSnapshot snap;
  snap.servers.reserve(cluster.server_count());
  for (ServerId id = 0; id < cluster.server_count(); ++id) {
    const datacenter::Server& srv = cluster.server(id);
    ServerSnapshot s;
    s.id = id;
    s.max_capacity_ghz = srv.max_capacity_ghz();
    s.memory_mb = srv.memory_mb();
    s.max_power_w = srv.power_model().max_power_w();
    s.idle_power_w = srv.power_model().active_power_w(1.0, 0.0);
    s.sleep_power_w = srv.power_model().sleep_w;
    s.power_efficiency = srv.power_efficiency();
    s.active = srv.active();
    s.failed = srv.failed();
    const auto hosted = cluster.vms_on(id);
    s.hosted.assign(hosted.begin(), hosted.end());
    snap.servers.push_back(std::move(s));
  }
  snap.vms.reserve(cluster.vm_count());
  for (VmId id = 0; id < cluster.vm_count(); ++id) {
    const datacenter::Vm& vm = cluster.vm(id);
    snap.vms.push_back(VmSnapshot{id, vm.cpu_demand_ghz, vm.memory_mb});
  }
  return snap;
}

void apply_plan(datacenter::Cluster& cluster, const PlacementPlan& plan, double now_s) {
  for (const Move& move : plan.moves) {
    // A failed target cannot be woken; the plan was made against a snapshot
    // that may have gone stale, so skip the move instead of placing a VM
    // onto a dead box (it keeps its current host, or stays unplaced).
    if (!cluster.wake(move.to)) continue;
    if (move.from == datacenter::kNoServer && cluster.host_of(move.vm) == datacenter::kNoServer) {
      cluster.place(move.vm, move.to);
    } else {
      cluster.migrate(move.vm, move.to, now_s);
    }
  }
  cluster.sleep_idle_servers();
}

}  // namespace vdc::consolidate
