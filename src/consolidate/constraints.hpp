// Pluggable placement constraints. Algorithm 1 (Minimum Slack) was
// explicitly extended from the MBS heuristic to evaluate "a more general
// constraint in each step, instead of checking if the total size of the
// items exceeds the size of the bin" — this interface is that extension
// point. The paper's simulation adds a memory constraint as its example of
// an administrator-defined real-world constraint.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "consolidate/snapshot.hpp"

namespace vdc::consolidate {

class PlacementConstraint {
 public:
  virtual ~PlacementConstraint() = default;
  /// May `server` host exactly the VMs in `hosted` (existing + candidates)?
  [[nodiscard]] virtual bool admits(const ServerSnapshot& server,
                                    std::span<const VmSnapshot* const> hosted) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Sum of CPU demands must fit within max capacity times a utilization
/// target (<= 1.0 keeps headroom for demand jitter between invocations).
class CpuCapacityConstraint final : public PlacementConstraint {
 public:
  explicit CpuCapacityConstraint(double utilization_target = 1.0);
  [[nodiscard]] bool admits(const ServerSnapshot& server,
                            std::span<const VmSnapshot* const> hosted) const override;
  [[nodiscard]] std::string name() const override { return "cpu-capacity"; }
  [[nodiscard]] double utilization_target() const noexcept { return target_; }

 private:
  double target_;
};

/// Sum of VM memory must not exceed server memory.
class MemoryConstraint final : public PlacementConstraint {
 public:
  [[nodiscard]] bool admits(const ServerSnapshot& server,
                            std::span<const VmSnapshot* const> hosted) const override;
  [[nodiscard]] std::string name() const override { return "memory"; }
};

/// Administrator-defined constraint from a callable.
class CustomConstraint final : public PlacementConstraint {
 public:
  using Fn = std::function<bool(const ServerSnapshot&, std::span<const VmSnapshot* const>)>;
  CustomConstraint(std::string name, Fn fn);
  [[nodiscard]] bool admits(const ServerSnapshot& server,
                            std::span<const VmSnapshot* const> hosted) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

/// Conjunction of constraints; shared by all consolidation algorithms.
class ConstraintSet {
 public:
  /// Classification of the set, maintained by `add`. When every member is a
  /// builtin (CPU capacity / memory) constraint, callers holding running
  /// demand/memory sums can evaluate admission in O(1) against
  /// `cpu_limit_ghz(server)` / the server's memory instead of walking the
  /// polymorphic chain — the fast path of WorkingPlacement::admits_with and
  /// the Minimum Slack DFS. Any custom (or future) constraint type clears
  /// `all_builtin` and forces the generic evaluation everywhere.
  struct BuiltinProfile {
    bool all_builtin = true;
    bool has_cpu = false;
    bool has_memory = false;
    /// Effective utilization target: the minimum across all CPU capacity
    /// constraints (meaningful only when has_cpu).
    double cpu_target = 1.0;
  };

  ConstraintSet() = default;
  ConstraintSet(ConstraintSet&&) = default;
  ConstraintSet& operator=(ConstraintSet&&) = default;

  ConstraintSet& add(std::unique_ptr<PlacementConstraint> constraint);
  [[nodiscard]] bool admits(const ServerSnapshot& server,
                            std::span<const VmSnapshot* const> hosted) const;
  /// Allocation-free variant for callers that hold the residents and the
  /// candidates separately: concatenates them into `scratch` (reused across
  /// calls, grown once) and evaluates the conjunction. Builtin-only sets
  /// are evaluated by direct summation without touching `scratch`.
  [[nodiscard]] bool admits_with(const ServerSnapshot& server,
                                 std::span<const VmSnapshot* const> resident,
                                 std::span<const VmSnapshot* const> extra,
                                 std::vector<const VmSnapshot*>& scratch) const;
  [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }

  [[nodiscard]] const BuiltinProfile& builtin_profile() const noexcept { return profile_; }
  /// CPU admission limit under the builtin profile (GHz): capacity times
  /// the effective utilization target.
  [[nodiscard]] double cpu_limit_ghz(const ServerSnapshot& server) const noexcept {
    return server.max_capacity_ghz * profile_.cpu_target;
  }

  /// The paper's simulation setup: CPU capacity + memory.
  [[nodiscard]] static ConstraintSet standard(double utilization_target = 1.0);

 private:
  std::vector<std::unique_ptr<PlacementConstraint>> constraints_;
  BuiltinProfile profile_;
};

}  // namespace vdc::consolidate
