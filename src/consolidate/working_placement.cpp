#include "consolidate/working_placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdc::consolidate {

WorkingPlacement::WorkingPlacement(const DataCenterSnapshot& snapshot)
    : snapshot_(&snapshot),
      host_(snapshot.vms.size(), datacenter::kNoServer),
      hosted_(snapshot.servers.size()),
      demand_(snapshot.servers.size(), 0.0),
      memory_(snapshot.servers.size(), 0.0) {
  for (const ServerSnapshot& server : snapshot.servers) {
    for (const VmId vm : server.hosted) {
      host_.at(vm) = server.id;
      hosted_[server.id].push_back(vm);
      demand_[server.id] += snapshot.vm(vm).cpu_demand_ghz;
      memory_[server.id] += snapshot.vm(vm).memory_mb;
    }
  }
}

void WorkingPlacement::remove(VmId vm) {
  const ServerId server = host_.at(vm);
  if (server == datacenter::kNoServer) {
    throw std::logic_error("WorkingPlacement::remove: VM is not placed");
  }
  auto& list = hosted_[server];
  list.erase(std::remove(list.begin(), list.end(), vm), list.end());
  demand_[server] -= snapshot_->vm(vm).cpu_demand_ghz;
  memory_[server] -= snapshot_->vm(vm).memory_mb;
  host_[vm] = datacenter::kNoServer;
}

void WorkingPlacement::place(VmId vm, ServerId server) {
  if (host_.at(vm) != datacenter::kNoServer) {
    throw std::logic_error("WorkingPlacement::place: VM already placed");
  }
  if (server >= hosted_.size()) throw std::out_of_range("WorkingPlacement::place: server id");
  host_[vm] = server;
  hosted_[server].push_back(vm);
  demand_[server] += snapshot_->vm(vm).cpu_demand_ghz;
  memory_[server] += snapshot_->vm(vm).memory_mb;
}

bool WorkingPlacement::admits_with(ServerId server, std::span<const VmId> extra,
                                   const ConstraintSet& constraints) const {
  std::vector<const VmSnapshot*> vms;
  vms.reserve(hosted_.at(server).size() + extra.size());
  for (const VmId vm : hosted_[server]) vms.push_back(&snapshot_->vm(vm));
  for (const VmId vm : extra) vms.push_back(&snapshot_->vm(vm));
  return constraints.admits(snapshot_->server(server), vms);
}

std::size_t WorkingPlacement::occupied_server_count() const {
  return static_cast<std::size_t>(
      std::count_if(hosted_.begin(), hosted_.end(),
                    [](const std::vector<VmId>& v) { return !v.empty(); }));
}

double WorkingPlacement::cpu_slack(ServerId server) const {
  return snapshot_->server(server).max_capacity_ghz - demand_.at(server);
}

PlacementPlan WorkingPlacement::plan(std::span<const VmId> unplaced) const {
  PlacementPlan plan;
  // Original host per VM.
  std::vector<ServerId> original(snapshot_->vms.size(), datacenter::kNoServer);
  for (const ServerSnapshot& server : snapshot_->servers) {
    for (const VmId vm : server.hosted) original.at(vm) = server.id;
  }
  for (VmId vm = 0; vm < host_.size(); ++vm) {
    if (host_[vm] == datacenter::kNoServer) continue;
    if (host_[vm] != original[vm]) {
      plan.moves.push_back(Move{vm, original[vm], host_[vm]});
    }
  }
  plan.unplaced.assign(unplaced.begin(), unplaced.end());
  return plan;
}

}  // namespace vdc::consolidate
