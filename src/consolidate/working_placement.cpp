#include "consolidate/working_placement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "consolidate/slack_index.hpp"

namespace vdc::consolidate {

namespace {

/// Neumaier-compensated accumulation: keeps the running fleet power exact
/// to the last bit across millions of add/remove deltas, so the O(1)
/// estimate tracks the naive full scan instead of drifting.
void compensated_add(double& total, double& compensation, double delta) {
  const double t = total + delta;
  if (std::abs(total) >= std::abs(delta)) {
    compensation += (total - t) + delta;
  } else {
    compensation += (delta - t) + total;
  }
  total = t;
}

}  // namespace

WorkingPlacement::WorkingPlacement(const DataCenterSnapshot& snapshot)
    : snapshot_(&snapshot),
      host_(snapshot.vms.size(), datacenter::kNoServer),
      original_(snapshot.vms.size(), datacenter::kNoServer),
      slot_(snapshot.vms.size(), 0),
      hosted_(snapshot.servers.size()),
      demand_(snapshot.servers.size(), 0.0),
      memory_(snapshot.servers.size(), 0.0),
      power_(snapshot.servers.size(), 0.0),
      rack_occupied_(snapshot.racks.size(), 0),
      pod_occupied_(snapshot.pods.size(), 0) {
  for (const ServerSnapshot& server : snapshot.servers) {
    for (const VmId vm : server.hosted) {
      const VmSnapshot& info = snapshot.vm(vm);
      host_.at(vm) = server.id;
      original_.at(vm) = server.id;
      slot_[vm] = static_cast<std::uint32_t>(hosted_[server.id].size());
      hosted_[server.id].push_back(vm);
      demand_[server.id] += info.cpu_demand_ghz;
      memory_[server.id] += info.memory_mb;
    }
  }
  for (const ServerSnapshot& server : snapshot.servers) {
    if (!hosted_[server.id].empty()) ++occupied_count_;
    power_[server.id] = power_contribution_w(server.id);
    compensated_add(power_total_w_, power_compensation_w_, power_[server.id]);
  }
  if (!snapshot.racks.empty()) {
    for (const ServerSnapshot& server : snapshot.servers) {
      if (hosted_[server.id].empty()) continue;
      if (server.rack != datacenter::kNoRack) ++rack_occupied_[server.rack];
      if (server.pod != datacenter::kNoPod) ++pod_occupied_[server.pod];
    }
    for (const RackSnapshot& rack : snapshot.racks) {
      if (rack_occupied_[rack.id] == 0) continue;
      ++occupied_rack_count_;
      compensated_add(power_total_w_, power_compensation_w_, rack.shared_power_w);
    }
    for (const PodSnapshot& pod : snapshot.pods) {
      if (pod_occupied_[pod.id] == 0) continue;
      compensated_add(power_total_w_, power_compensation_w_, pod.shared_power_w);
    }
  }
}

double WorkingPlacement::power_contribution_w(ServerId server) const {
  const ServerSnapshot& info = snapshot_->server(server);
  if (hosted_[server].empty()) return info.sleep_power_w;
  const double utilization =
      std::min(1.0, demand_[server] / std::max(1e-9, info.max_capacity_ghz));
  return info.idle_power_w + (info.max_power_w - info.idle_power_w) * utilization;
}

void WorkingPlacement::refresh_power(ServerId server) {
  const double fresh = power_contribution_w(server);
  compensated_add(power_total_w_, power_compensation_w_, fresh - power_[server]);
  power_[server] = fresh;
}

// Shared-infrastructure accounting on empty <-> occupied transitions. Flat
// snapshots (no racks) return immediately, so the flat power sum sees the
// exact same sequence of compensated adds as before the topology existed.
void WorkingPlacement::note_occupied(ServerId server) {
  if (snapshot_->racks.empty()) return;
  const ServerSnapshot& info = snapshot_->server(server);
  if (info.rack != datacenter::kNoRack && rack_occupied_[info.rack]++ == 0) {
    ++occupied_rack_count_;
    compensated_add(power_total_w_, power_compensation_w_, snapshot_->racks[info.rack].shared_power_w);
  }
  if (info.pod != datacenter::kNoPod && pod_occupied_[info.pod]++ == 0) {
    compensated_add(power_total_w_, power_compensation_w_, snapshot_->pods[info.pod].shared_power_w);
  }
}

void WorkingPlacement::note_emptied(ServerId server) {
  if (snapshot_->racks.empty()) return;
  const ServerSnapshot& info = snapshot_->server(server);
  if (info.rack != datacenter::kNoRack && --rack_occupied_[info.rack] == 0) {
    --occupied_rack_count_;
    compensated_add(power_total_w_, power_compensation_w_,
                    -snapshot_->racks[info.rack].shared_power_w);
  }
  if (info.pod != datacenter::kNoPod && --pod_occupied_[info.pod] == 0) {
    compensated_add(power_total_w_, power_compensation_w_, -snapshot_->pods[info.pod].shared_power_w);
  }
}

void WorkingPlacement::remove(VmId vm) {
  const ServerId server = host_.at(vm);
  if (server == datacenter::kNoServer) {
    throw std::logic_error("WorkingPlacement::remove: VM is not placed");
  }
  auto& list = hosted_[server];
  // Swap-and-pop: O(1) regardless of how many residents the server has.
  const std::uint32_t slot = slot_[vm];
  const VmId moved = list.back();
  list[slot] = moved;
  slot_[moved] = slot;
  list.pop_back();
  if (ptrs_valid_) {
    auto& ptrs = hosted_ptrs_[server];
    ptrs[slot] = ptrs.back();
    ptrs.pop_back();
  }
  if (list.empty()) {
    --occupied_count_;
    note_emptied(server);
  }
  const VmSnapshot& info = snapshot_->vm(vm);
  demand_[server] -= info.cpu_demand_ghz;
  memory_[server] -= info.memory_mb;
  host_[vm] = datacenter::kNoServer;
  refresh_power(server);
  if (slack_observer_ != nullptr) slack_observer_->update(server, cpu_slack(server));
}

void WorkingPlacement::place(VmId vm, ServerId server) {
  if (host_.at(vm) != datacenter::kNoServer) {
    throw std::logic_error("WorkingPlacement::place: VM already placed");
  }
  if (server >= hosted_.size()) throw std::out_of_range("WorkingPlacement::place: server id");
  auto& list = hosted_[server];
  if (list.empty()) {
    ++occupied_count_;
    note_occupied(server);
  }
  host_[vm] = server;
  slot_[vm] = static_cast<std::uint32_t>(list.size());
  const VmSnapshot& info = snapshot_->vm(vm);
  list.push_back(vm);
  if (ptrs_valid_) hosted_ptrs_[server].push_back(&info);
  demand_[server] += info.cpu_demand_ghz;
  memory_[server] += info.memory_mb;
  refresh_power(server);
  if (slack_observer_ != nullptr) slack_observer_->update(server, cpu_slack(server));
}

bool WorkingPlacement::admits_with(ServerId server, std::span<const VmId> extra,
                                   const ConstraintSet& constraints) const {
  const ServerSnapshot& info = snapshot_->server(server);
  const ConstraintSet::BuiltinProfile& profile = constraints.builtin_profile();
  if (profile.all_builtin) {
    // O(extra): the cached aggregates stand in for the resident sums.
    if (info.failed) return false;
    double demand = demand_.at(server);
    double memory = memory_[server];
    for (const VmId vm : extra) {
      const VmSnapshot& vm_info = snapshot_->vm(vm);
      demand += vm_info.cpu_demand_ghz;
      memory += vm_info.memory_mb;
    }
    if (profile.has_cpu && demand > constraints.cpu_limit_ghz(info) + 1e-9) return false;
    if (profile.has_memory && memory > info.memory_mb + 1e-9) return false;
    return true;
  }
  // Generic path: reuse one scratch vector instead of allocating per call.
  const std::span<const VmSnapshot* const> resident = hosted_snapshots(server);
  scratch_.clear();
  scratch_.reserve(resident.size() + extra.size());
  scratch_.insert(scratch_.end(), resident.begin(), resident.end());
  for (const VmId vm : extra) scratch_.push_back(&snapshot_->vm(vm));
  return constraints.admits(info, scratch_);
}

void WorkingPlacement::materialize_ptrs() const {
  hosted_ptrs_.assign(hosted_.size(), {});
  for (ServerId server = 0; server < hosted_.size(); ++server) {
    auto& ptrs = hosted_ptrs_[server];
    ptrs.reserve(hosted_[server].size());
    for (const VmId vm : hosted_[server]) ptrs.push_back(&snapshot_->vm(vm));
  }
  ptrs_valid_ = true;
}

double WorkingPlacement::cpu_slack(ServerId server) const {
  return snapshot_->server(server).max_capacity_ghz - demand_.at(server);
}

PlacementPlan WorkingPlacement::plan(std::span<const VmId> unplaced) const {
  PlacementPlan plan;
  for (VmId vm = 0; vm < host_.size(); ++vm) {
    if (host_[vm] == datacenter::kNoServer) continue;
    if (host_[vm] != original_[vm]) {
      plan.moves.push_back(Move{vm, original_[vm], host_[vm]});
    }
  }
  plan.unplaced.assign(unplaced.begin(), unplaced.end());
  return plan;
}

}  // namespace vdc::consolidate
