#include "consolidate/cost_policy.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::consolidate {

BandwidthBudgetPolicy::BandwidthBudgetPolicy(double max_bytes_per_invocation)
    : max_bytes_(max_bytes_per_invocation) {
  if (!(max_bytes_per_invocation > 0.0)) {
    throw std::invalid_argument("BandwidthBudgetPolicy: budget must be positive");
  }
}

bool BandwidthBudgetPolicy::allow(const DataCenterSnapshot&,
                                  const MigrationProposal& proposal) const {
  return proposal.bytes_already_approved + proposal.bytes <= max_bytes_;
}

MinBenefitPolicy::MinBenefitPolicy(double min_benefit_w, double w_per_gb)
    : min_benefit_w_(min_benefit_w), w_per_gb_(w_per_gb) {
  if (min_benefit_w < 0.0 || w_per_gb < 0.0) {
    throw std::invalid_argument("MinBenefitPolicy: negative threshold");
  }
}

bool MinBenefitPolicy::allow(const DataCenterSnapshot& snapshot,
                             const MigrationProposal& proposal) const {
  const double gb = snapshot.vm(proposal.vm).memory_mb / 1024.0;
  return proposal.estimated_benefit_w >= min_benefit_w_ + w_per_gb_ * gb;
}

MigrationEnergyBudgetPolicy::MigrationEnergyBudgetPolicy(double budget_j) : budget_j_(budget_j) {
  if (!(budget_j > 0.0)) {
    throw std::invalid_argument("MigrationEnergyBudgetPolicy: budget must be positive");
  }
}

bool MigrationEnergyBudgetPolicy::allow(const DataCenterSnapshot&,
                                        const MigrationProposal& proposal) const {
  if (proposal.from == proposal.to ||
      proposal.distance == datacenter::NetworkDistance::kSameHost) {
    return false;  // zero-distance no-op: nothing transfers, nothing saved
  }
  if (!std::isfinite(proposal.cost_j) || proposal.cost_j < 0.0) {
    throw std::invalid_argument(
        "MigrationEnergyBudgetPolicy: proposal carries no valid migration energy "
        "(did the engine run without a cost model?)");
  }
  return proposal.cost_already_approved_j + proposal.cost_j <= budget_j_ + 1e-9;
}

}  // namespace vdc::consolidate
